//! Quantum-boundary edges of [`Multiprogrammed`] scheduling under shared
//! caches, pinned as executable documentation of today's semantics.
//!
//! A context switch is an *instruction-stream* event: the scheduler
//! rotates programs every `quantum` instructions fetched, but the memory
//! system keeps no notion of which program owns an outstanding miss or
//! an in-flight prefetch. A miss issued in program A's last quantum slot
//! completes (and trains predictors, fills frames, extends generations)
//! while program B runs; a timekeeping prefetch triggered by A's access
//! lands in the shared hierarchy regardless of who is scheduled when it
//! arrives. These tests pin that behavior — deterministic, clock-
//! schedule-independent, and oracle-consistent — so any future move to
//! ownership-aware switching shows up as an explicit golden change, not
//! a silent drift.

use timekeeping::snapshot::Snapshot;
use tk_bench::FigureOpts;
use tk_sim::{
    run_workload, run_workload_checked, PrefetchMode, RunResult, SystemConfig, VictimMode,
};
use tk_workloads::{Multiprogrammed, SpecBenchmark};

/// A fresh two-program mix (pointer-chasing + streaming: the pair with
/// the most outstanding-miss overlap) at the given quantum.
fn mix(quantum: u64) -> Multiprogrammed {
    Multiprogrammed::new(
        vec![
            Box::new(SpecBenchmark::Mcf.build(1)),
            Box::new(SpecBenchmark::Swim.build(1)),
        ],
        quantum,
    )
}

fn run(quantum: u64, cfg: SystemConfig, instructions: u64) -> RunResult {
    run_workload(&mut mix(quantum), cfg, instructions)
}

/// A quantum far below the memory latency forces every context switch to
/// land while misses are outstanding. The run must stay bit-identical
/// across repeats: miss completion is keyed to the access that issued
/// it, not to the program scheduled at completion time.
#[test]
fn context_switch_mid_miss_is_deterministic() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 4;
    for quantum in [1, 7, 100] {
        let a = run(quantum, SystemConfig::base(), budget);
        let b = run(quantum, SystemConfig::base(), budget);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "quantum {quantum} repeat diverged"
        );
        assert_eq!(a.core.instructions, budget);
    }
}

/// The hopping clock may schedule a descheduled program's miss
/// completion on a cycle it would otherwise skip; per-cycle stepping
/// visits every cycle. Both must agree bit-exactly even at quantum 1
/// (a switch between every pair of instructions).
#[test]
fn switch_mid_miss_is_clock_schedule_independent() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 4;
    for quantum in [1, 64] {
        let cfg = SystemConfig::base();
        let mut step_cfg = cfg;
        step_cfg.step_every_cycle = true;
        let hop = run(quantum, cfg, budget);
        let step = run(quantum, step_cfg, budget);
        assert_eq!(
            hop.to_json(),
            step.to_json(),
            "quantum {quantum} hop/step diverged"
        );
    }
}

/// An in-flight timekeeping prefetch triggered by one program arrives
/// while another is scheduled. Today the prefetch still fills the shared
/// hierarchy and counts toward the issuing predictor's stats — there is
/// no per-program squash at the quantum boundary. Pin both the arrival
/// accounting and its determinism.
#[test]
fn inflight_prefetch_survives_descheduling() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 4;
    let cfg = SystemConfig::with_prefetch(PrefetchMode::Timekeeping(
        timekeeping::CorrelationConfig::PAPER_8KB,
    ));
    // Quantum 16 is far below the prefetch arrival latency: most
    // arrivals land under a different program than their trigger.
    let a = run(16, cfg, budget);
    assert!(
        a.hierarchy.pf_fills > 0,
        "mix must actually exercise prefetch arrivals across switches"
    );
    let b = run(16, cfg, budget);
    assert_eq!(a.to_json(), b.to_json(), "prefetch mix repeat diverged");

    let mut step_cfg = cfg;
    step_cfg.step_every_cycle = true;
    let step = run(16, step_cfg, budget);
    assert_eq!(
        a.to_json(),
        step.to_json(),
        "prefetch arrivals under descheduled owner diverged hop vs step"
    );
}

/// The functional oracle tracks the shared tag state with no notion of
/// programs at all; lockstep must hold across quantum boundaries,
/// including with a victim cache swapping lines between programs'
/// generations.
#[test]
fn quantum_boundaries_hold_oracle_lockstep() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 4;
    for cfg in [
        SystemConfig::base(),
        SystemConfig::with_victim(VictimMode::paper_dead_time()),
    ] {
        let r = run_workload_checked(&mut mix(5), cfg, budget);
        assert_eq!(r.core.instructions, budget);
    }
}

/// Scheduler bookkeeping at the edges: with a budget deliberately
/// misaligned to the quantum, the final partial quantum still retires
/// every instruction, and the rotation count covers at least the
/// retired stream (the core fetches ahead of retirement, so it may
/// rotate past the last retired instruction — pinned as exactly
/// reproducible rather than exactly computable).
#[test]
fn partial_final_quantum_retires_fully() {
    let quantum = 333; // does not divide the budget
    let budget = 10_000;
    let mut w = mix(quantum);
    let r = run_workload(&mut w, SystemConfig::base(), budget);
    assert_eq!(r.core.instructions, budget);
    assert!(
        w.switches() >= (budget - 1) / quantum,
        "rotations must cover the retired stream: {} switches",
        w.switches()
    );
    let mut again = mix(quantum);
    let _ = run_workload(&mut again, SystemConfig::base(), budget);
    assert_eq!(w.switches(), again.switches(), "rotation count must repeat");
    assert_eq!(
        w.current(),
        again.current(),
        "final schedule slot must repeat"
    );
}
