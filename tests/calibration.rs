//! Calibration snapshots: each benchmark's base-machine behavior must stay
//! inside a band around its calibrated operating point. These are the
//! guardrails for the figure *shapes* — a profile or simulator change that
//! moves a benchmark out of its regime (conflict-bound, capacity-bound,
//! compute-bound) fails here before it silently warps Figures 1, 2, 13,
//! 19 or 22.
//!
//! Bands are deliberately wide (the exact numbers may drift with benign
//! changes); the *regime* must not.

use tk_bench::assert_within_pct;
use tk_sim::{run_workload, SampleConfig, SystemConfig};
use tk_workloads::{BenchGroup, SpecBenchmark};

const INSTS: u64 = 6_000_000;

struct Snapshot {
    bench: SpecBenchmark,
    /// Inclusive IPC band on the base machine.
    ipc: (f64, f64),
    /// Inclusive L1 miss-rate band (percent).
    miss_pct: (f64, f64),
}

fn snapshots() -> Vec<Snapshot> {
    use SpecBenchmark::*;
    let s = |bench, ipc, miss_pct| Snapshot {
        bench,
        ipc,
        miss_pct,
    };
    vec![
        // Few-stalls cluster: near peak IPC, negligible misses.
        s(Eon, (7.5, 8.0), (0.0, 0.5)),
        s(Galgel, (7.5, 8.0), (0.0, 0.5)),
        s(Sixtrack, (7.5, 8.0), (0.0, 0.5)),
        s(Perlbmk, (7.0, 8.0), (0.0, 8.0)),
        // Conflict-bound integer codes: moderate IPC, visible misses.
        s(Gzip, (5.5, 8.0), (0.1, 10.0)),
        s(Crafty, (4.5, 7.8), (0.3, 8.0)),
        s(Twolf, (1.0, 4.0), (10.0, 45.0)),
        s(Parser, (1.2, 4.0), (10.0, 45.0)),
        // Capacity-bound codes: memory-bound IPC, high miss rates.
        s(Mcf, (0.1, 0.8), (15.0, 50.0)),
        s(Swim, (1.0, 3.0), (10.0, 35.0)),
        s(Ammp, (0.5, 2.2), (15.0, 45.0)),
        s(Art, (2.0, 5.0), (10.0, 40.0)),
        s(Facerec, (3.0, 7.0), (5.0, 30.0)),
        s(Gcc, (1.8, 4.5), (8.0, 30.0)),
    ]
}

#[test]
fn base_machine_operating_points_hold() {
    for snap in snapshots() {
        let r = run_workload(&mut snap.bench.build(1), SystemConfig::base(), INSTS);
        let ipc = r.ipc();
        let miss = r.hierarchy.l1_miss_rate() * 100.0;
        assert!(
            (snap.ipc.0..=snap.ipc.1).contains(&ipc),
            "{}: IPC {ipc:.3} left its calibrated band {:?}",
            snap.bench,
            snap.ipc
        );
        assert!(
            (snap.miss_pct.0..=snap.miss_pct.1).contains(&miss),
            "{}: miss rate {miss:.2}% left its calibrated band {:?}",
            snap.bench,
            snap.miss_pct
        );
    }
}

#[test]
fn conflict_programs_stay_conflict_dominated() {
    // Among non-cold misses, the victim-helped group must skew conflict...
    // (perlbmk's single light conflict pattern appears too rarely at this
    // budget to test reliably; crafty is the canonical case.)
    {
        let b = SpecBenchmark::Crafty;
        let r = run_workload(&mut b.build(1), SystemConfig::base(), INSTS);
        let bd = r.breakdown;
        assert!(
            bd.conflict > bd.capacity,
            "{b}: conflict {} must dominate capacity {}",
            bd.conflict,
            bd.capacity
        );
    }
    // ...and the prefetch-helped group must skew capacity.
    for b in [
        SpecBenchmark::Mcf,
        SpecBenchmark::Swim,
        SpecBenchmark::Ammp,
        SpecBenchmark::Art,
    ] {
        let r = run_workload(&mut b.build(1), SystemConfig::base(), INSTS);
        let bd = r.breakdown;
        assert!(
            bd.capacity > 2 * bd.conflict,
            "{b}: capacity {} must dominate conflict {}",
            bd.capacity,
            bd.conflict
        );
    }
}

/// Error-bound pins for the sampling estimator: on the memory-bound
/// benchmarks (where relative bounds are meaningful) a sampled run's
/// derived percentage stats must track the golden full run within a
/// calibrated tolerance. The exact errors today are far inside these
/// bands (`sample_calibrate` reports them per workload); the bands
/// leave room for benign drift while catching an estimator regression
/// long before it warps a figure.
#[test]
fn sampled_estimates_track_full_runs_within_calibrated_error() {
    const BUDGET: u64 = 1_000_000;
    let full_cfg = SystemConfig::base();
    let mut sampled_cfg = full_cfg;
    sampled_cfg.sample = Some(SampleConfig {
        interval: 2_500,
        k: 8,
    });

    // (bench, allowed miss-rate error %, allowed IPC error %) — relative.
    let pins = [
        (SpecBenchmark::Mcf, 5.0, 5.0),
        (SpecBenchmark::Swim, 5.0, 10.0),
        (SpecBenchmark::Gcc, 5.0, 10.0),
        (SpecBenchmark::Art, 5.0, 10.0),
        (SpecBenchmark::Facerec, 5.0, 10.0),
    ];
    for (bench, miss_tol, ipc_tol) in pins {
        let full = run_workload(&mut bench.build(1), full_cfg, BUDGET);
        let sampled = run_workload(&mut bench.build(1), sampled_cfg, BUDGET);
        assert!(sampled.sampled.is_some(), "{bench}: result must be tagged");
        assert_within_pct(
            sampled.hierarchy.l1_miss_rate(),
            full.hierarchy.l1_miss_rate(),
            miss_tol,
            &format!("{bench}: sampled L1 miss rate"),
        );
        assert_within_pct(
            sampled.ipc(),
            full.ipc(),
            ipc_tol,
            &format!("{bench}: sampled IPC"),
        );
    }
}

#[test]
fn groups_cover_the_whole_suite() {
    let mut counts = [0usize; 3];
    for b in SpecBenchmark::ALL {
        counts[match b.group() {
            BenchGroup::FewStalls => 0,
            BenchGroup::VictimHelped => 1,
            BenchGroup::PrefetchHelped => 2,
        }] += 1;
    }
    assert_eq!(counts.iter().sum::<usize>(), 26);
    assert!(
        counts.iter().all(|&c| c >= 4),
        "every regime is populated: {counts:?}"
    );
}
