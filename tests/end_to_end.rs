//! End-to-end integration tests spanning all crates: workloads drive the
//! simulator, the simulator drives the timekeeping machinery, and the
//! aggregate behavior must be self-consistent.

use timekeeping::{CorrelationConfig, DbcpConfig};
use tk_sim::{run_workload, PrefetchMode, SystemConfig, VictimMode};
use tk_workloads::SpecBenchmark;

const INSTS: u64 = 400_000;

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut w = SpecBenchmark::Gcc.build(7);
        run_workload(&mut w, SystemConfig::base(), INSTS)
    };
    let a = run();
    let b = run();
    assert_eq!(a.core, b.core);
    assert_eq!(a.hierarchy.l1_accesses, b.hierarchy.l1_accesses);
    assert_eq!(a.hierarchy.l1_hits, b.hierarchy.l1_hits);
    assert_eq!(a.breakdown, b.breakdown);
    assert_eq!(a.metrics.generations(), b.metrics.generations());
}

#[test]
fn seeds_change_the_stream_but_not_the_character() {
    let mut w1 = SpecBenchmark::Swim.build(1);
    let mut w2 = SpecBenchmark::Swim.build(2);
    let a = run_workload(&mut w1, SystemConfig::base(), INSTS);
    let b = run_workload(&mut w2, SystemConfig::base(), INSTS);
    assert_ne!(
        a.hierarchy.l1_hits, b.hierarchy.l1_hits,
        "seeds must differ"
    );
    // Same qualitative behavior: within 3x miss rate of each other.
    let (ma, mb) = (a.hierarchy.l1_miss_rate(), b.hierarchy.l1_miss_rate());
    assert!(ma < 3.0 * mb && mb < 3.0 * ma, "{ma} vs {mb}");
}

#[test]
fn ideal_cache_never_slower_than_base() {
    for b in [
        SpecBenchmark::Twolf,
        SpecBenchmark::Ammp,
        SpecBenchmark::Eon,
    ] {
        let base = run_workload(&mut b.build(1), SystemConfig::base(), INSTS);
        let ideal = run_workload(&mut b.build(1), SystemConfig::ideal(), INSTS);
        assert!(
            ideal.ipc() >= base.ipc() * 0.999,
            "{b}: ideal {} < base {}",
            ideal.ipc(),
            base.ipc()
        );
    }
}

#[test]
fn miss_classification_accounts_for_every_miss() {
    let r = run_workload(
        &mut SpecBenchmark::Parser.build(1),
        SystemConfig::base(),
        INSTS,
    );
    // Every classified miss corresponds to an L1 miss that was not served
    // by the victim cache (none here) and vice versa.
    assert_eq!(r.breakdown.total(), r.hierarchy.l1_misses());
}

#[test]
fn generations_match_eviction_plus_flush_accounting() {
    let r = run_workload(
        &mut SpecBenchmark::Gzip.build(1),
        SystemConfig::base(),
        INSTS,
    );
    // Each generation starts with a miss; generations (closed at eviction
    // or final flush) can never exceed misses.
    assert!(r.metrics.generations() <= r.hierarchy.l1_misses());
    // And with ~1024 frames, at most 1024 generations remain open at the
    // flush, so the two counts are close.
    assert!(r.metrics.generations() + 2048 >= r.hierarchy.l1_misses());
}

#[test]
fn victim_cache_helps_conflict_bound_workload() {
    // Pattern phases are ~64 K accesses; give twolf enough instructions to
    // sample several conflict phases.
    let insts = 2_000_000;
    let base = run_workload(
        &mut SpecBenchmark::Twolf.build(1),
        SystemConfig::base(),
        insts,
    );
    let vc = run_workload(
        &mut SpecBenchmark::Twolf.build(1),
        SystemConfig::with_victim(VictimMode::paper_dead_time()),
        insts,
    );
    assert!(
        vc.speedup_over(&base) > 0.02,
        "dead-time victim filter must speed up twolf: {:.3} vs {:.3}",
        vc.ipc(),
        base.ipc()
    );
    let stats = vc.victim.expect("configured");
    assert!(stats.hits > 0, "victim cache must hit");
    assert!(
        stats.admitted < stats.offered,
        "the filter must actually filter ({} of {})",
        stats.admitted,
        stats.offered
    );
}

#[test]
fn timekeeping_prefetch_helps_streaming_workload() {
    let insts = 2_000_000; // streams need laps to train
    let base = run_workload(
        &mut SpecBenchmark::Swim.build(1),
        SystemConfig::base(),
        insts,
    );
    let tk = run_workload(
        &mut SpecBenchmark::Swim.build(1),
        SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB)),
        insts,
    );
    assert!(
        tk.speedup_over(&base) > 0.05,
        "timekeeping prefetch must speed up swim: {:.3} vs {:.3}",
        tk.ipc(),
        base.ipc()
    );
    assert!(tk.hierarchy.pf_fills > 0);
}

#[test]
fn dbcp_baseline_also_runs_and_prefetches() {
    let insts = 2_000_000;
    let r = run_workload(
        &mut SpecBenchmark::Ammp.build(1),
        SystemConfig::with_prefetch(PrefetchMode::Dbcp(DbcpConfig::PAPER_2MB)),
        insts,
    );
    let d = r.dbcp.expect("dbcp configured");
    assert!(d.predictions > 0, "DBCP must match signatures");
    assert!(r.hierarchy.pf_fills > 0, "DBCP must fill prefetches");
}

#[test]
fn few_stall_benchmarks_run_near_peak_ipc() {
    for b in [
        SpecBenchmark::Eon,
        SpecBenchmark::Galgel,
        SpecBenchmark::Sixtrack,
    ] {
        let r = run_workload(&mut b.build(1), SystemConfig::base(), INSTS);
        assert!(
            r.ipc() > 7.0,
            "{b} must be compute-bound, got {:.2}",
            r.ipc()
        );
    }
}

#[test]
fn memory_bound_benchmarks_are_memory_bound() {
    let r = run_workload(
        &mut SpecBenchmark::Mcf.build(1),
        SystemConfig::base(),
        INSTS,
    );
    assert!(r.ipc() < 1.0, "mcf must crawl, got {:.2}", r.ipc());
    assert!(r.hierarchy.mem_accesses > 0, "mcf must reach main memory");
}

#[test]
fn ignoring_software_prefetch_changes_fp_behavior() {
    let insts = 1_000_000;
    let with = run_workload(
        &mut SpecBenchmark::Swim.build(1),
        SystemConfig::base(),
        insts,
    );
    let mut cfg = SystemConfig::base();
    cfg.ignore_sw_prefetch = true;
    let without = run_workload(&mut SpecBenchmark::Swim.build(1), cfg, insts);
    assert!(with.core.sw_prefetches > 0);
    assert_eq!(without.core.sw_prefetches, 0);
    assert!(
        with.hierarchy.l1_accesses > without.hierarchy.l1_accesses,
        "software prefetches are extra references"
    );
}

#[test]
fn predict_only_mode_issues_no_prefetches() {
    let mut cfg =
        SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB));
    cfg.predict_only = true;
    let r = run_workload(&mut SpecBenchmark::Swim.build(1), cfg, INSTS);
    assert_eq!(r.hierarchy.pf_issued, 0);
    assert_eq!(r.hierarchy.pf_fills, 0);
    assert!(
        r.hierarchy.addr_predictions > 0,
        "predictions must still be scored"
    );
}

#[test]
fn markov_and_stride_baselines_prefetch() {
    use timekeeping::{MarkovConfig, StrideConfig};
    let insts = 1_500_000;
    // Markov thrives on the repeatable chase. On a serialized miss chain
    // its prefetches are overtaken by the demand misses they accelerate
    // (demand takes ownership of the in-flight line), so the win shows up
    // as latency overlap, not completed fills.
    let ammp_base = run_workload(
        &mut SpecBenchmark::Ammp.build(1),
        SystemConfig::base(),
        insts,
    );
    let mk = run_workload(
        &mut SpecBenchmark::Ammp.build(1),
        SystemConfig::with_prefetch(PrefetchMode::Markov(MarkovConfig::LARGE_1MB)),
        insts,
    );
    assert!(mk.hierarchy.pf_issued > 0, "Markov must issue prefetches");
    assert!(
        mk.speedup_over(&ammp_base) > 0.05,
        "Markov must overlap ammp's chain: {:.3} vs {:.3}",
        mk.ipc(),
        ammp_base.ipc()
    );
    // Stride thrives on streaming sweeps.
    let base = run_workload(
        &mut SpecBenchmark::Swim.build(1),
        SystemConfig::base(),
        insts,
    );
    let st = run_workload(
        &mut SpecBenchmark::Swim.build(1),
        SystemConfig::with_prefetch(PrefetchMode::Stride(StrideConfig::CLASSIC)),
        insts,
    );
    assert!(st.hierarchy.pf_fills > 0, "stride must fill prefetches");
    assert!(
        st.speedup_over(&base) > 0.0,
        "stride must help a pure stream: {:.3} vs {:.3}",
        st.ipc(),
        base.ipc()
    );
}

#[test]
fn adaptive_filter_matches_static_with_fewer_admissions() {
    let insts = 2_000_000;
    let b = SpecBenchmark::Twolf;
    let static_f = run_workload(
        &mut b.build(1),
        SystemConfig::with_victim(VictimMode::paper_dead_time()),
        insts,
    );
    let adaptive = run_workload(
        &mut b.build(1),
        SystemConfig::with_victim(VictimMode::AdaptiveDeadTime),
        insts,
    );
    assert!(
        adaptive.ipc() >= static_f.ipc() * 0.97,
        "adaptive filter must keep the static filter's IPC: {:.3} vs {:.3}",
        adaptive.ipc(),
        static_f.ipc()
    );
    let (sa, aa) = (
        static_f.victim.expect("vc").admitted,
        adaptive.victim.expect("vc").admitted,
    );
    assert!(
        aa <= sa,
        "the §4.2 adaptive control must not admit more: {aa} vs {sa}"
    );
}
