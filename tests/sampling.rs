//! Sampling subsystem: functional-warmup soundness, degenerate
//! parameters, and composition with the other engine modes.
//!
//! The load-bearing property is the first test: fast-forwarding cache
//! state through a prefix with the timing-free oracle and then timing a
//! suffix must reproduce the *exact* L1-level outcomes (accesses, hits,
//! victim hits, miss classification) that a full timing run produces
//! over the same suffix. On the base machine every tag mutation happens
//! at access time in program order, so warmup is not an approximation
//! there — it is an equality, and a regression in it silently corrupts
//! every sampled figure.

use tk_sim::sample::warm_prefix_then_time;
use tk_sim::{
    run_workload, run_workload_checked, MemBackendConfig, RunResult, SampleConfig, SystemConfig,
};
use tk_workloads::SpecBenchmark;

/// Unsampled base machine: the reference the warmup must match.
fn full_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::base();
    cfg.sample = None;
    cfg
}

fn sampled_cfg(interval: u64, k: u32) -> SystemConfig {
    let mut cfg = full_cfg();
    cfg.sample = Some(SampleConfig { interval, k });
    cfg
}

fn run(bench: SpecBenchmark, cfg: SystemConfig, budget: u64) -> RunResult {
    run_workload(&mut bench.build(1), cfg, budget)
}

/// Warm-prefix-then-time must equal the full-run delta at the L1 level,
/// across workloads from every regime (conflict-, capacity- and
/// compute-bound, with and without software prefetches in the stream).
///
/// Only L1-level outcomes are pinned: L2/memory counters depend on
/// machine state the representative deliberately starts cold (MSHR
/// occupancy, prefetcher tables), which the calibration report bounds
/// statistically instead.
#[test]
fn warm_prefix_then_time_matches_full_run_l1_outcomes() {
    const PREFIX: u64 = 120_000;
    const SUFFIX: u64 = 40_000;
    for bench in [
        SpecBenchmark::Gzip,
        SpecBenchmark::Twolf,
        SpecBenchmark::Mcf,
        SpecBenchmark::Swim,
        SpecBenchmark::Mgrid,
        SpecBenchmark::Art,
        SpecBenchmark::Eon,
        SpecBenchmark::Equake,
    ] {
        let cfg = full_cfg();
        let a = run(bench, cfg, PREFIX);
        let b = run(bench, cfg, PREFIX + SUFFIX);
        let w = warm_prefix_then_time(&mut bench.build(1), cfg, PREFIX, SUFFIX);

        assert_eq!(
            w.hierarchy.l1_accesses,
            b.hierarchy.l1_accesses - a.hierarchy.l1_accesses,
            "{bench}: L1 accesses over the suffix"
        );
        assert_eq!(
            w.hierarchy.l1_hits,
            b.hierarchy.l1_hits - a.hierarchy.l1_hits,
            "{bench}: L1 hits over the suffix"
        );
        assert_eq!(
            w.hierarchy.vc_hits,
            b.hierarchy.vc_hits - a.hierarchy.vc_hits,
            "{bench}: victim hits over the suffix"
        );
        assert_eq!(
            w.breakdown.cold,
            b.breakdown.cold - a.breakdown.cold,
            "{bench}: cold misses over the suffix"
        );
        assert_eq!(
            w.breakdown.conflict,
            b.breakdown.conflict - a.breakdown.conflict,
            "{bench}: conflict misses over the suffix"
        );
        assert_eq!(
            w.breakdown.capacity,
            b.breakdown.capacity - a.breakdown.capacity,
            "{bench}: capacity misses over the suffix"
        );
    }
}

/// A budget smaller than one interval cannot be sampled; the engine
/// must fall back to the full timing model — bit-identical to an
/// unsampled run — while still tagging the result as sampled, because
/// the configuration (and its cache key) asked for sampling.
#[test]
fn budget_smaller_than_one_interval_runs_full_but_tagged() {
    const BUDGET: u64 = 30_000;
    let full = run(SpecBenchmark::Twolf, full_cfg(), BUDGET);
    let mut r = run(SpecBenchmark::Twolf, sampled_cfg(1_000_000, 4), BUDGET);

    let stats = r
        .sampled
        .take()
        .expect("sampled config must tag its result");
    assert_eq!(stats.intervals, 0);
    assert_eq!(stats.representatives, 0);
    assert_eq!(stats.timed_instructions, BUDGET);
    assert_eq!(r, full, "degenerate sampling must equal the full run");
}

/// `k >= interval count` means clustering could skip nothing; same
/// full-but-tagged contract.
#[test]
fn k_at_least_interval_count_runs_full_but_tagged() {
    const BUDGET: u64 = 50_000;
    let full = run(SpecBenchmark::Gzip, full_cfg(), BUDGET);
    let mut r = run(SpecBenchmark::Gzip, sampled_cfg(10_000, 8), BUDGET);

    let stats = r
        .sampled
        .take()
        .expect("sampled config must tag its result");
    assert_eq!(stats.intervals, 5);
    assert_eq!(stats.representatives, 5);
    assert_eq!(stats.timed_instructions, BUDGET);
    assert_eq!(r, full, "degenerate sampling must equal the full run");
}

/// `k = 1` is the coarsest real sampling: one representative carries
/// every whole interval's weight, plus the sub-interval tail at weight
/// one. The reconstruction must still account for every instruction in
/// the budget.
#[test]
fn k_of_one_times_a_single_representative() {
    const BUDGET: u64 = 105_000; // 10 intervals + 5 000-instruction tail
    let r = run(SpecBenchmark::Mcf, sampled_cfg(10_000, 1), BUDGET);

    let stats = r.sampled.expect("sampled config must tag its result");
    assert_eq!(stats.intervals, 10);
    assert_eq!(stats.representatives, 1);
    assert_eq!(stats.timed_instructions, 10_000 + 5_000);
    assert_eq!(
        r.core.instructions, BUDGET,
        "weighted reconstruction must cover the whole budget"
    );
    assert!(r.hierarchy.l1_accesses > 0);
}

/// `--sample --check` composes: the lockstep checker is installed on
/// every timed representative, seeded from the warmed oracle. A
/// divergence panics, so completing the run *is* the assertion.
#[test]
fn sampling_composes_with_lockstep_check() {
    const BUDGET: u64 = 100_000;
    let r = run_workload_checked(
        &mut SpecBenchmark::Twolf.build(1),
        sampled_cfg(10_000, 3),
        BUDGET,
    );
    let stats = r.sampled.expect("checked sampled run keeps its tag");
    assert_eq!(stats.representatives, 3);
    assert_eq!(r.core.instructions, BUDGET);
}

/// `--sample --dram=banked` composes: representatives run on the banked
/// memory model and the reconstructed result still carries DRAM stats.
#[test]
fn sampling_composes_with_banked_dram() {
    const BUDGET: u64 = 100_000;
    let cfg = SystemConfig::builder()
        .memory(MemBackendConfig::Banked(tk_sim::BankedDramConfig::DDR2))
        .sample(SampleConfig {
            interval: 10_000,
            k: 3,
        })
        .build()
        .expect("banked + sampled is a valid combination");
    let r = run_workload(&mut SpecBenchmark::Swim.build(1), cfg, BUDGET);

    let stats = r.sampled.expect("sampled config must tag its result");
    assert_eq!(stats.representatives, 3);
    assert_eq!(r.core.instructions, BUDGET);
    let dram = r.dram.expect("banked runs report DRAM stats");
    assert!(
        dram.reads > 0,
        "representatives must exercise the banked model"
    );
}

/// Sampled results are deterministic: the same (workload, config, seed,
/// budget) tuple reproduces bit-identically across invocations.
#[test]
fn sampled_runs_reproduce_bit_identically() {
    const BUDGET: u64 = 200_000;
    let first = run(SpecBenchmark::Art, sampled_cfg(5_000, 4), BUDGET);
    let second = run(SpecBenchmark::Art, sampled_cfg(5_000, 4), BUDGET);
    assert_eq!(first, second);
}

/// External traces compose with `--sample`: a registered `--trace-file`
/// workload runs sampled, keeps its tag, and reproduces bit-identically.
#[test]
fn sampling_composes_with_trace_file_workloads() {
    const BUDGET: u64 = 60_000;
    let dir = std::env::temp_dir().join(format!("tk-sample-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("sampled.trace");
    let mut text = String::new();
    for i in 0u64..48_000 {
        text.push_str(&format!("L {:x} {:x}\n", (i % 4_096) * 32, 0x400 + i % 64));
    }
    std::fs::write(&path, &text).expect("write trace");

    let h = tk_bench::register_trace(path.to_str().expect("utf-8 temp path"))
        .expect("registering the trace");
    let id = tk_bench::WorkloadId::Trace(h);
    let first = run_workload(&mut id.build(1), sampled_cfg(10_000, 3), BUDGET);
    let second = run_workload(&mut id.build(1), sampled_cfg(10_000, 3), BUDGET);

    let stats = first.sampled.expect("sampled trace replay keeps its tag");
    assert_eq!(stats.representatives, 3);
    assert_eq!(first.core.instructions, BUDGET);
    assert_eq!(first, second, "sampled trace replay must be deterministic");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// The adversarial checkpoint-aliasing case: two traces identical
/// through the 32 Ki-instruction stream probe but differing in one
/// record beyond it. The probe cannot tell them apart — the
/// digest-qualified workload name must, so their checkpoint
/// fingerprints and engine cache keys never alias.
#[test]
fn trace_fingerprints_incorporate_the_content_digest() {
    const BUDGET: u64 = 120_000;
    let dir = std::env::temp_dir().join(format!("tk-fp-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let mut lines: Vec<String> = (0u64..40_000)
        .map(|i| format!("L {:x} {:x}", (i % 2_048) * 32, 0x800 + i % 32))
        .collect();
    let a_path = dir.join("a.trace");
    std::fs::write(&a_path, lines.join("\n")).expect("write trace a");
    // One record, well past the probe window, flips to a store at a
    // fresh address.
    lines[36_000] = "S deadbe0 999".to_owned();
    let b_path = dir.join("b.trace");
    std::fs::write(&b_path, lines.join("\n")).expect("write trace b");

    let a = tk_bench::WorkloadId::Trace(
        tk_bench::register_trace(a_path.to_str().unwrap()).expect("register a"),
    );
    let b = tk_bench::WorkloadId::Trace(
        tk_bench::register_trace(b_path.to_str().unwrap()).expect("register b"),
    );

    let a_probe = tk_sim::stream_probe(&a.build(1)).expect("traces fork, so they probe");
    let b_probe = tk_sim::stream_probe(&b.build(1)).expect("traces fork, so they probe");
    assert_eq!(
        a_probe, b_probe,
        "the premise: identical prefixes defeat the probe"
    );

    let cfg = sampled_cfg(10_000, 3);
    let a_fp = tk_sim::job_fingerprint(a_probe, &a.name(), &cfg, BUDGET)
        .expect("sampled configs fingerprint");
    let b_fp = tk_sim::job_fingerprint(b_probe, &b.name(), &cfg, BUDGET)
        .expect("sampled configs fingerprint");
    assert_ne!(
        a_fp, b_fp,
        "digest-qualified names must separate probe-aliased traces"
    );

    let a_key = tk_bench::Job::new(a, cfg, 1, BUDGET).cache_key();
    let b_key = tk_bench::Job::new(b, cfg, 1, BUDGET).cache_key();
    assert_ne!(
        a_key, b_key,
        "cache keys must separate probe-aliased traces"
    );

    let _ = std::fs::remove_file(&a_path);
    let _ = std::fs::remove_file(&b_path);
    let _ = std::fs::remove_dir(&dir);
}
