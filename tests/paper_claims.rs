//! The paper's qualitative claims, checked end-to-end at a moderate
//! instruction budget. Each test names the section/figure it guards.

use timekeeping::{CorrelationConfig, DbcpConfig, MissKind};
use tk_sim::{run_workload, PrefetchMode, SystemConfig, VictimMode};
use tk_workloads::SpecBenchmark;

const INSTS: u64 = 1_500_000;

fn base(b: SpecBenchmark) -> tk_sim::RunResult {
    run_workload(&mut b.build(1), SystemConfig::base(), INSTS)
}

/// §3 / Figure 4: "Dead times are in general much longer than average
/// live times."
#[test]
fn dead_times_dominate_live_times() {
    let mut live = 0.0;
    let mut dead = 0.0;
    for b in [
        SpecBenchmark::Gcc,
        SpecBenchmark::Twolf,
        SpecBenchmark::Facerec,
    ] {
        let r = base(b);
        live += r.metrics.live.mean().unwrap_or(0.0);
        dead += r.metrics.dead.mean().unwrap_or(0.0);
    }
    assert!(
        dead > 2.0 * live,
        "mean dead {dead:.0} must dwarf mean live {live:.0}"
    );
}

/// §4.1 / Figure 7: "The average reload interval for a capacity miss is
/// one to two orders of magnitude larger than that for a conflict miss."
#[test]
fn capacity_reload_intervals_dwarf_conflict_reload_intervals() {
    let r = base(SpecBenchmark::Twolf);
    let conflict = r
        .metrics
        .reload_for(MissKind::Conflict)
        .mean()
        .expect("conflict misses");
    let capacity = r
        .metrics
        .reload_for(MissKind::Capacity)
        .mean()
        .expect("capacity misses");
    assert!(
        capacity > 5.0 * conflict,
        "capacity reload {capacity:.0} vs conflict reload {conflict:.0}"
    );
}

/// §4.1 / Figure 8: small reload intervals predict conflict misses far
/// better than the base rate.
#[test]
fn reload_interval_conflict_prediction_is_accurate() {
    let r = base(SpecBenchmark::Twolf);
    // Small thresholds sit on the near-perfect plateau of Figure 8; the
    // 16 K breakpoint is exercised (with coverage) by the fig08 harness.
    let points = r.metrics.conflict_sweep_reload(&[2_000]);
    let acc = points[0].accuracy.expect("predictions made");
    let bd = r.breakdown;
    let base_rate = bd.conflict as f64 / (bd.conflict + bd.capacity).max(1) as f64;
    assert!(
        acc > 0.6 && acc > 1.5 * base_rate,
        "2k-threshold accuracy {acc:.2} must beat the {base_rate:.2} base rate"
    );
}

/// §4.1 / Figure 10: short dead times predict conflict misses accurately
/// but with partial coverage.
#[test]
fn dead_time_conflict_prediction_is_accurate() {
    let r = base(SpecBenchmark::Twolf);
    let points = r.metrics.conflict_sweep_dead(&[1024]);
    let acc = points[0].accuracy.expect("predictions made");
    let cov = points[0].coverage.expect("conflicts observed");
    let bd = r.breakdown;
    let base_rate = bd.conflict as f64 / (bd.conflict + bd.capacity).max(1) as f64;
    assert!(
        acc > 0.6 && acc > 1.5 * base_rate,
        "1K dead-time accuracy {acc:.2} must beat the {base_rate:.2} base rate"
    );
    assert!(cov > 0.05, "coverage must be nonzero, got {cov:.2}");
}

/// §4.2 / Figure 13: the dead-time filter keeps the unfiltered victim
/// cache's performance at a fraction of the fill traffic.
#[test]
fn dead_time_filter_matches_unfiltered_ipc_with_less_traffic() {
    let b = SpecBenchmark::Twolf;
    let unfiltered = run_workload(
        &mut b.build(1),
        SystemConfig::with_victim(VictimMode::Unfiltered),
        INSTS,
    );
    let filtered = run_workload(
        &mut b.build(1),
        SystemConfig::with_victim(VictimMode::paper_dead_time()),
        INSTS,
    );
    assert!(
        filtered.ipc() >= unfiltered.ipc() * 0.97,
        "filter must not lose IPC: {:.3} vs {:.3}",
        filtered.ipc(),
        unfiltered.ipc()
    );
    let (fu, ff) = (
        unfiltered.victim.expect("vc").admitted,
        filtered.victim.expect("vc").admitted,
    );
    assert!(
        (ff as f64) < 0.7 * fu as f64,
        "filter must cut fill traffic substantially: {ff} vs {fu}"
    );
}

/// §5.1.2 / Figure 15: live times are regular — most are within 2x of the
/// previous live time of the same line.
#[test]
fn live_times_are_regular() {
    let r = base(SpecBenchmark::Facerec);
    let v = &r.metrics.variability;
    assert!(v.pairs() > 100, "need live-time pairs");
    assert!(
        v.fraction_within_2x() > 0.6,
        "most live times must be < 2x previous, got {:.2}",
        v.fraction_within_2x()
    );
}

/// §5.1.2 / Figures 14 vs 16: the live-time dead-block predictor beats
/// decay's coverage at comparable accuracy.
#[test]
fn live_time_predictor_has_better_coverage_than_decay() {
    let r = base(SpecBenchmark::Facerec);
    let lt = &r.metrics.live_time_predictor;
    let decay = &r.metrics.decay_sweep;
    let decay_high_acc = decay
        .points()
        .into_iter()
        .find(|p| p.threshold == 5120)
        .expect("paper threshold present");
    assert!(
        lt.coverage().unwrap_or(0.0) > decay_high_acc.coverage.unwrap_or(1.0),
        "live-time coverage {:?} must beat decay coverage {:?}",
        lt.coverage(),
        decay_high_acc.coverage
    );
}

/// §5.2.3 / Figure 19: timekeeping prefetch beats DBCP on the streaming
/// benchmarks despite a 256x smaller table...
#[test]
fn timekeeping_beats_dbcp_on_swim() {
    let b = SpecBenchmark::Swim;
    let baseline = base(b);
    let tk = run_workload(
        &mut b.build(1),
        SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB)),
        INSTS,
    );
    let dbcp = run_workload(
        &mut b.build(1),
        SystemConfig::with_prefetch(PrefetchMode::Dbcp(DbcpConfig::PAPER_2MB)),
        INSTS,
    );
    assert!(
        tk.speedup_over(&baseline) > dbcp.speedup_over(&baseline),
        "TK {:.3} must beat DBCP {:.3} on swim",
        tk.ipc(),
        dbcp.ipc()
    );
}

/// ...while DBCP's 2 MB table wins on mcf, whose working set of histories
/// thrashes 8 KB (§5.2.3: "this program benefits from very large address
/// correlation tables").
#[test]
fn dbcp_beats_timekeeping_on_mcf() {
    let b = SpecBenchmark::Mcf;
    // mcf's 64K-node chase needs ~3 full laps before DBCP's confidence
    // counters open the prefetch gate.
    let insts = 8_000_000;
    let baseline = run_workload(&mut b.build(1), SystemConfig::base(), insts);
    let tk = run_workload(
        &mut b.build(1),
        SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB)),
        insts,
    );
    let dbcp = run_workload(
        &mut b.build(1),
        SystemConfig::with_prefetch(PrefetchMode::Dbcp(DbcpConfig::PAPER_2MB)),
        insts,
    );
    assert!(
        dbcp.speedup_over(&baseline) > tk.speedup_over(&baseline),
        "DBCP {:.3} must beat TK {:.3} on mcf",
        dbcp.ipc(),
        tk.ipc()
    );
}

/// §5.2.2: a larger timekeeping table helps mcf specifically ("We observed
/// better performance for mcf with our timekeeping prefetch when we used a
/// larger address correlation table of 2MB").
#[test]
fn larger_correlation_table_helps_mcf() {
    let b = SpecBenchmark::Mcf;
    let insts = 4_000_000;
    let small = run_workload(
        &mut b.build(1),
        SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB)),
        insts,
    );
    let large = run_workload(
        &mut b.build(1),
        SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::LARGE_2MB)),
        insts,
    );
    assert!(
        large.ipc() > small.ipc(),
        "2 MB TK table must beat 8 KB on mcf: {:.3} vs {:.3}",
        large.ipc(),
        small.ipc()
    );
}

/// Figure 22: the two mechanisms are complementary — conflict-bound
/// programs gain from the victim filter, capacity-bound ones from
/// prefetch.
#[test]
fn mechanisms_are_complementary() {
    let twolf_base = base(SpecBenchmark::Twolf);
    let twolf_vc = run_workload(
        &mut SpecBenchmark::Twolf.build(1),
        SystemConfig::with_victim(VictimMode::paper_dead_time()),
        INSTS,
    );
    let swim_base = base(SpecBenchmark::Swim);
    let swim_tk = run_workload(
        &mut SpecBenchmark::Swim.build(1),
        SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB)),
        INSTS,
    );
    assert!(
        twolf_vc.speedup_over(&twolf_base) > 0.02,
        "victim helps twolf"
    );
    assert!(
        swim_tk.speedup_over(&swim_base) > 0.02,
        "prefetch helps swim"
    );
}
