//! Golden-figure regression harness.
//!
//! Pins the full stats digest behind every figure/table binary (see
//! `tk_bench::golden`) against `tests/golden/<name>.json`, compared
//! bit-exactly. Any stat-level change to a figure's simulations — a new
//! counter value, a reordered job, a changed render — fails here with a
//! message naming the figure and the first differing line.
//!
//! To accept an intentional change, re-bless and commit the results:
//!
//! ```text
//! TK_BLESS=1 cargo test --test golden_figures
//! ```

use tk_bench::golden;

fn blessing() -> bool {
    std::env::var("TK_BLESS").map(|v| v == "1").unwrap_or(false)
}

#[test]
fn golden_figures_match() {
    let opts = golden::golden_opts();
    let dir = golden::golden_dir();
    let bless = blessing();
    if bless {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let mut failures = Vec::new();
    for (name, generate) in golden::figure_manifest() {
        let doc = golden::digest(name, generate, opts).render();
        let path = dir.join(format!("{name}.json"));
        if bless {
            std::fs::write(&path, &doc).expect("write golden file");
            continue;
        }
        let expected = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(_) => {
                failures.push(format!(
                    "{name}: missing golden file {} — generate it with \
                     TK_BLESS=1 cargo test --test golden_figures",
                    path.display()
                ));
                continue;
            }
        };
        if expected != doc {
            failures.push(format!("{name}: {}", golden::first_diff(&expected, &doc)));
        }
    }
    assert!(
        failures.is_empty(),
        "golden digests diverged for {} figure(s); if the change is \
         intentional, re-bless with TK_BLESS=1 cargo test --test \
         golden_figures\n\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}

/// The digest of a figure must not depend on the worker-pool size: a
/// serial (`--jobs 1`) regeneration reproduces the blessed file that the
/// (parallel) main test checks.
#[test]
fn golden_digest_pool_size_invariant() {
    if blessing() {
        return; // the main test is rewriting the files right now
    }
    let mut opts = golden::golden_opts();
    opts.jobs = 1;
    let (name, generate) = golden::figure_manifest()[3]; // fig04
    let doc = golden::digest(name, generate, opts).render();
    let path = golden::golden_dir().join(format!("{name}.json"));
    let Ok(expected) = std::fs::read_to_string(&path) else {
        panic!("missing golden file {}; bless first", path.display());
    };
    assert_eq!(
        expected,
        doc,
        "serial digest diverged: {}",
        golden::first_diff(&expected, &doc)
    );
}
