//! Sweep-level checkpoint plane: bit-identity and fault tolerance.
//!
//! The checkpoint store is a pure amortization layer — profile,
//! clustering and functional warmup computed once per distinct stream
//! and shared across timing configurations. Nothing it does may change
//! a single bit of any result: these tests pin warm / cold / disabled
//! equality across workloads from every regime, composed with the
//! banked-DRAM backend (a timing knob that *shares* checkpoints) and
//! with multi-core configs (which bypass the plane entirely), plus
//! silent recompute when the on-disk tier is corrupted or stale.
//!
//! The checkpoint flags are process-global, so every test serializes on
//! one mutex and restores the flags it found.

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use tk_bench::engine::{self, Job};
use tk_sim::{BankedDramConfig, MemBackendConfig, SampleConfig, SystemConfig};
use tk_workloads::SpecBenchmark;

/// Serializes tests that toggle the process-global checkpoint flags.
static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GLOBAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the global checkpoint flags on drop, even if a test panics.
struct RestoreFlags {
    enabled: bool,
    dir: Option<PathBuf>,
}

impl RestoreFlags {
    fn capture() -> Self {
        Self {
            enabled: tk_sim::checkpoints_enabled(),
            dir: tk_sim::checkpoint_dir(),
        }
    }
}

impl Drop for RestoreFlags {
    fn drop(&mut self) {
        tk_sim::set_checkpoints_enabled(self.enabled);
        tk_sim::set_checkpoint_dir(self.dir.take());
    }
}

const BUDGET: u64 = 200_000;
const SAMPLE: SampleConfig = SampleConfig {
    interval: 2_000,
    k: 4,
};

/// Eight workloads spanning the conflict-, capacity- and compute-bound
/// regimes (same spread the sampling soundness tests use).
const BENCHES: [SpecBenchmark; 8] = [
    SpecBenchmark::Gzip,
    SpecBenchmark::Twolf,
    SpecBenchmark::Mcf,
    SpecBenchmark::Swim,
    SpecBenchmark::Mgrid,
    SpecBenchmark::Art,
    SpecBenchmark::Eon,
    SpecBenchmark::Equake,
];

fn sampled_base() -> SystemConfig {
    SystemConfig::builder()
        .sample(SAMPLE)
        .build()
        .expect("base sampled config is valid")
}

fn sampled_banked() -> SystemConfig {
    SystemConfig::builder()
        .memory(MemBackendConfig::Banked(BankedDramConfig::DDR2))
        .sample(SAMPLE)
        .build()
        .expect("banked sampled config is valid")
}

fn dual_core() -> SystemConfig {
    SystemConfig::builder()
        .cores(2)
        .sample(SAMPLE)
        .build()
        .expect("dual-core config is valid")
}

/// Runs `jobs` on a cold engine memo and returns the plain results.
fn run_pass(jobs: &[Job]) -> Vec<tk_sim::RunResult> {
    engine::reset_stats();
    engine::run_jobs(jobs, 2)
        .iter()
        .map(|r| (**r).clone())
        .collect()
}

/// Warm, cold and disabled runs of one sweep must agree bit-for-bit.
///
/// The sweep composes the base machine and the banked-DDR2 backend
/// (identical functional fingerprint — the checkpoint is shared across
/// the two timing variants) with a dual-core config that the plane must
/// leave untouched (multi-core runs bypass sampling checkpoints).
#[test]
fn warm_cold_and_disabled_runs_are_bit_identical() {
    let _g = lock();
    let _restore = RestoreFlags::capture();
    tk_sim::set_checkpoint_dir(None);

    let jobs: Vec<Job> = [sampled_base(), sampled_banked(), dual_core()]
        .iter()
        .flat_map(|cfg| BENCHES.iter().map(|&b| Job::new(b, *cfg, 1, BUDGET)))
        .collect();

    // Per-job sampling: the pre-checkpoint behavior.
    tk_sim::set_checkpoints_enabled(false);
    let disabled = run_pass(&jobs);

    // Cold store: one checkpoint per distinct stream, shared across the
    // base and banked variants; dual-core jobs are gated out.
    tk_sim::set_checkpoints_enabled(true);
    tk_sim::reset_checkpoint_store();
    let cold = run_pass(&jobs);
    let stats = tk_sim::checkpoint_stats();
    assert_eq!(
        stats.builds,
        BENCHES.len() as u64,
        "one checkpoint per distinct stream, shared by base + banked"
    );

    // Warm store: only the timing shards run.
    let cold_stats = stats;
    let warm = run_pass(&jobs);
    let warm_stats = tk_sim::checkpoint_stats();
    assert_eq!(
        warm_stats.builds, cold_stats.builds,
        "a warm store must not rebuild anything"
    );
    assert!(
        warm_stats.mem_hits > cold_stats.mem_hits,
        "the warm pass must hit the in-process tier"
    );

    for (i, job) in jobs.iter().enumerate() {
        assert_eq!(
            disabled[i],
            cold[i],
            "{} / {}: cold-store result differs from per-job sampling",
            job.bench.name(),
            job.cfg.cache_key()
        );
        assert_eq!(
            cold[i],
            warm[i],
            "{} / {}: warm-store result differs from cold",
            job.bench.name(),
            job.cfg.cache_key()
        );
    }
}

/// Lists the checkpoint files the disk tier wrote under `dir`.
fn ckpt_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("checkpoint dir readable")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ck_") && n.ends_with(".bin"))
        })
        .collect();
    files.sort();
    files
}

/// The disk tier round-trips; corrupted or version-stale files are
/// silently recomputed — identical results, no error surfaced.
#[test]
fn corrupted_or_stale_disk_checkpoints_fall_back_silently() {
    let _g = lock();
    let _restore = RestoreFlags::capture();

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("ckpt-fault-test-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch checkpoint dir");

    tk_sim::set_checkpoints_enabled(true);
    tk_sim::set_checkpoint_dir(Some(dir.clone()));

    let jobs: Vec<Job> = BENCHES[..2]
        .iter()
        .map(|&b| Job::new(b, sampled_base(), 1, BUDGET))
        .collect();

    // Cold build populates the disk tier.
    tk_sim::reset_checkpoint_store();
    let reference = run_pass(&jobs);
    assert_eq!(tk_sim::checkpoint_stats().builds, 2);
    let files = ckpt_files(&dir);
    assert_eq!(files.len(), 2, "one checkpoint file per distinct stream");

    // Fresh process store + intact disk: served from the disk tier.
    tk_sim::reset_checkpoint_store();
    let from_disk = run_pass(&jobs);
    let s = tk_sim::checkpoint_stats();
    assert_eq!(s.disk_hits, 2, "intact files must be loaded, not rebuilt");
    assert_eq!(s.builds, 0);
    assert_eq!(reference, from_disk);

    // Bit-flip the payload of every file: checksum mismatch must mean
    // silent recompute, not an error and not a wrong result.
    for f in &files {
        let mut bytes = fs::read(f).expect("read checkpoint file");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(f, &bytes).expect("write corrupted checkpoint");
    }
    tk_sim::reset_checkpoint_store();
    let after_corruption = run_pass(&jobs);
    let s = tk_sim::checkpoint_stats();
    assert_eq!(s.disk_hits, 0, "corrupted files must not be trusted");
    assert_eq!(s.builds, 2, "corrupted files are rebuilt");
    assert_eq!(reference, after_corruption);

    // Stale format version: rewrite the magic of every (now rebuilt)
    // file; same silent recompute.
    for f in &ckpt_files(&dir) {
        let mut bytes = fs::read(f).expect("read checkpoint file");
        bytes[..8].copy_from_slice(b"TKCKPT00");
        fs::write(f, &bytes).expect("write stale checkpoint");
    }
    tk_sim::reset_checkpoint_store();
    let after_stale = run_pass(&jobs);
    let s = tk_sim::checkpoint_stats();
    assert_eq!(s.disk_hits, 0, "stale-version files must not be trusted");
    assert_eq!(s.builds, 2);
    assert_eq!(reference, after_stale);

    // Truncated file (shorter than the header): same story.
    for f in &ckpt_files(&dir) {
        fs::write(f, b"TK").expect("truncate checkpoint");
    }
    tk_sim::reset_checkpoint_store();
    let after_truncation = run_pass(&jobs);
    assert_eq!(tk_sim::checkpoint_stats().disk_hits, 0);
    assert_eq!(reference, after_truncation);

    let _ = fs::remove_dir_all(&dir);
}
