//! Temporary review probe: c2c owner-side LRU behavior vs the checker
//! mirror with a 2-way associative L1.

use timekeeping::{Addr, CacheGeometry, Cycle, Pc};
use tk_sim::trace::MemRef;
use tk_sim::{MachineConfig, MultiCoreSystem, SystemConfig};

#[test]
fn c2c_owner_lru_matches_checker_with_assoc_l1() {
    let mut machine = MachineConfig::paper_default();
    machine.l1d = CacheGeometry::new(32 * 1024, 2, 32).unwrap();
    let cfg = SystemConfig::builder()
        .machine(machine)
        .cores(2)
        .build()
        .unwrap();
    let mut sys = MultiCoreSystem::new(cfg);
    sys.install_checker();

    let a = MemRef::new(Addr::new(0), Pc::new(4)); // set 0
    let x = MemRef::new(Addr::new(16 * 1024), Pc::new(4)); // same set, other way
    let y = MemRef::new(Addr::new(32 * 1024), Pc::new(4)); // same set, third line

    // Core 1: store A (M, MRU), then load X (X MRU, A LRU).
    sys.access(1, &a, true, Cycle::new(0));
    sys.access(1, &x, false, Cycle::new(200));
    // Core 0: load A -> c2c from core 1.
    sys.access(0, &a, false, Cycle::new(400));
    // Core 1: load Y -> set full, must evict its LRU way.
    sys.access(1, &y, false, Cycle::new(600));
}
