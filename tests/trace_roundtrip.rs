//! Differential net over the capture→replay loop: a TKTRACE1 capture
//! exported with `tk_trace_export` and replayed through `--trace-file`
//! must reproduce the source run's hit/miss stream exactly.
//!
//! The capture is taken hermetically (a `Ref`-category observer
//! installed directly on the [`MemorySystem`], not via the
//! process-global `--trace` flags), so these tests cannot race other
//! tests over the global observability configuration. The engine-level
//! tests do touch the process-global trace registry and engine memo,
//! so they serialize on a local lock.

use std::sync::Mutex;

use tk_bench::engine::{self, Job};
use tk_bench::workload::{self, WorkloadId};
use tk_sim::obs::{TraceCategories, TraceCategory, TraceKind};
use tk_sim::trace::{Instr, Workload};
use tk_sim::{run_workload, HierarchyStats, MemorySystem, OooCore, RunResult, SystemConfig};
use tk_workloads::{capture_to_trace_text, gzip, SpecBenchmark, TraceFileWorkload};

/// The trace registry, once-mode flag and engine memo are process
/// globals; tests that touch them must not interleave.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

const CAPTURE_INSTRUCTIONS: u64 = 60_000;
/// The base machine's L1 block size — the granularity of captured lines.
const BLOCK_BYTES: u64 = 32;

/// Runs the pinned source simulation with a `Ref` observer installed
/// and returns (exported trace text, source hierarchy stats).
fn captured_trace() -> (String, HierarchyStats) {
    let cfg = SystemConfig::base();
    let mut w = SpecBenchmark::Gzip.build(1);
    let mut core = OooCore::new(&cfg);
    let mut mem = MemorySystem::new(cfg);
    mem.install_trace(TraceCategories::none().with(TraceCategory::Ref), 1);
    let stats = core.run(&mut w, &mut mem, CAPTURE_INSTRUCTIONS);
    assert_eq!(stats.instructions, CAPTURE_INSTRUCTIONS);
    let hier = mem.stats();
    let records = mem.trace_records().expect("memory trace installed");
    let accesses = records
        .iter()
        .filter(|r| r.kind == TraceKind::Access)
        .count() as u64;
    assert_eq!(
        accesses, hier.l1_accesses,
        "--trace=ref must record exactly one Access per L1 access"
    );
    let text = capture_to_trace_text(records, BLOCK_BYTES).expect("capture holds refs");
    (text, hier)
}

fn replay(text: &str, budget: u64) -> RunResult {
    let mut w =
        TraceFileWorkload::from_reader("replay", text.as_bytes()).expect("exported text parses");
    run_workload(&mut w, SystemConfig::base(), budget)
}

/// The headline invariant: on the timing-free base configuration, the
/// replayed reference stream produces the same hit/miss counts at every
/// level of the hierarchy as the run it was captured from.
#[test]
fn replay_reproduces_the_source_hit_miss_stream() {
    let (text, src) = captured_trace();
    let refs = text.lines().count() as u64;
    assert_eq!(refs, src.l1_accesses);

    let r = replay(&text, refs);
    assert_eq!(r.hierarchy.l1_accesses, src.l1_accesses, "l1_accesses");
    assert_eq!(r.hierarchy.l1_hits, src.l1_hits, "l1_hits");
    assert_eq!(r.hierarchy.vc_hits, src.vc_hits, "vc_hits");
    assert_eq!(r.hierarchy.l2_accesses, src.l2_accesses, "l2_accesses");
    assert_eq!(r.hierarchy.l2_hits, src.l2_hits, "l2_hits");
    assert_eq!(r.hierarchy.mem_accesses, src.mem_accesses, "mem_accesses");
    assert_eq!(
        r.hierarchy.l1_writebacks, src.l1_writebacks,
        "l1_writebacks"
    );
    assert_eq!(
        r.hierarchy.l2_writebacks, src.l2_writebacks,
        "l2_writebacks"
    );
}

/// Replaying the same trace twice is bit-identical, end to end.
#[test]
fn replay_is_deterministic() {
    let (text, _) = captured_trace();
    let refs = text.lines().count() as u64;
    assert_eq!(replay(&text, refs), replay(&text, refs));
}

/// Capture→replay→re-capture is a fixed point: tracing the replay run
/// with the same `Ref` observer and re-exporting reproduces the trace
/// text byte for byte.
#[test]
fn re_export_of_a_replay_is_a_fixed_point() {
    let (text, _) = captured_trace();
    let refs = text.lines().count() as u64;

    let cfg = SystemConfig::base();
    let mut w =
        TraceFileWorkload::from_reader("replay", text.as_bytes()).expect("exported text parses");
    let mut core = OooCore::new(&cfg);
    let mut mem = MemorySystem::new(cfg);
    mem.install_trace(TraceCategories::none().with(TraceCategory::Ref), 1);
    core.run(&mut w, &mut mem, refs);
    let again = capture_to_trace_text(mem.trace_records().expect("trace installed"), BLOCK_BYTES)
        .expect("re-capture holds refs");
    assert_eq!(text, again, "re-exported capture diverged from its source");
}

/// A trace past its end wraps to the beginning: the second pass of a
/// looping replay replays the first pass exactly.
#[test]
fn looping_replay_wraps_to_the_start() {
    let (text, _) = captured_trace();
    let refs = text.lines().count();
    let mut w =
        TraceFileWorkload::from_reader("replay", text.as_bytes()).expect("exported text parses");
    let stream: Vec<Instr> = (0..refs * 2).map(|_| w.next_instr()).collect();
    assert_eq!(
        stream[..refs],
        stream[refs..],
        "second pass must replay the first"
    );
}

/// `--trace-once` mode pads with architectural no-ops instead of
/// wrapping, so a replay never re-touches the cache after one pass.
#[test]
fn once_mode_pads_instead_of_wrapping() {
    let (text, _) = captured_trace();
    let refs = text.lines().count();
    let mut w =
        TraceFileWorkload::from_reader("replay", text.as_bytes()).expect("exported text parses");
    w.set_once(true);
    for _ in 0..refs {
        assert!(!matches!(w.next_instr(), Instr::Op));
    }
    for _ in 0..refs {
        assert!(matches!(w.next_instr(), Instr::Op), "once mode must pad");
    }
    assert!(w.exhausted());
}

/// Registering an exported (and gzipped) trace makes it a first-class
/// engine workload: the digest-qualified cache key never aliases a
/// synthetic benchmark, and the engine's result equals the direct
/// serial run bit for bit.
#[test]
fn registered_trace_runs_through_the_engine() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    let (text, src) = captured_trace();
    let refs = text.lines().count() as u64;

    let dir = std::env::temp_dir().join(format!("tk-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("roundtrip.trace.gz");
    std::fs::write(&path, gzip::gzip_store(text.as_bytes())).expect("write gz trace");

    let h = workload::register_trace(path.to_str().expect("utf-8 temp path"))
        .expect("registering an exported trace");
    let id = WorkloadId::Trace(h);
    let info = workload::trace_info(h);
    assert!(info.compressed, "a .gz trace must register as compressed");
    assert_eq!(info.records, refs);

    let job = Job::new(id, SystemConfig::base(), 1, refs);
    assert!(
        job.cache_key()
            .starts_with(&format!("trace={:016x};", info.digest)),
        "cache key must carry the content digest: {}",
        job.cache_key()
    );
    engine::reset_stats();
    let via_engine = engine::run_jobs(&[job], 2);
    let direct = run_workload(&mut id.build(1), SystemConfig::base(), refs);
    assert_eq!(&*via_engine[0], &direct, "engine diverged from serial run");
    assert_eq!(direct.hierarchy.l1_hits, src.l1_hits);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// `--trace-once` is part of the experiment identity: the same trace in
/// once mode names itself differently and keys its results separately,
/// so looped and single-pass runs never alias in the memo, the disk
/// cache, or a golden digest.
#[test]
fn once_mode_changes_the_cache_key() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    let (full, _) = captured_trace();
    // A distinct prefix, so this registration cannot dedupe against the
    // full trace registered by the engine test above.
    let text: String = full.lines().take(1_000).fold(String::new(), |mut s, l| {
        s.push_str(l);
        s.push('\n');
        s
    });
    let dir = std::env::temp_dir().join(format!("tk-roundtrip-once-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("once.trace");
    std::fs::write(&path, &text).expect("write trace");

    let h = workload::register_trace(path.to_str().expect("utf-8 temp path"))
        .expect("registering the trace");
    let id = WorkloadId::Trace(h);
    let job = Job::new(id, SystemConfig::base(), 1, 10_000);

    workload::set_trace_once(false);
    let looped_key = job.cache_key();
    let looped_name = id.name();
    workload::set_trace_once(true);
    let once_key = job.cache_key();
    let once_name = id.name();
    workload::set_trace_once(false);

    assert_ne!(looped_key, once_key);
    assert!(once_key.contains(";once"));
    assert_ne!(looped_name, once_name);
    assert!(once_name.ends_with("+once"));

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
