//! Oracle lockstep sweep: the cycle simulator agrees with the
//! timing-free `FunctionalOracle` on every access of every workload.
//!
//! Each run here executes with the lockstep checker installed
//! ([`tk_sim::run_workload_checked`]): any disagreement on hit/miss
//! classification, level serviced, evicted-line identity or generation
//! boundaries panics with a divergence report, so these tests pass only
//! if the two models track each other exactly.

use tk_bench::FigureOpts;
use tk_sim::{run_workload_checked, PrefetchMode, SystemConfig, VictimMode};
use tk_workloads::SpecBenchmark;

fn checked(bench: SpecBenchmark, cfg: SystemConfig, instructions: u64) {
    let mut w = bench.build(1);
    let r = run_workload_checked(&mut w, cfg, instructions);
    assert_eq!(r.core.instructions, instructions, "{}", bench.name());
}

/// All 26 workloads under the base machine at the quick budget.
#[test]
fn all_workloads_base_config() {
    for &b in &SpecBenchmark::ALL {
        checked(b, SystemConfig::base(), FigureOpts::QUICK_INSTRUCTIONS);
    }
}

/// Victim-cache configurations (swap path, filters, admission mirror).
#[test]
fn victim_cache_configs() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 2;
    for victim in [
        VictimMode::Unfiltered,
        VictimMode::Collins,
        VictimMode::paper_dead_time(),
        VictimMode::AdaptiveDeadTime,
        VictimMode::ReloadInterval { threshold: 4096 },
    ] {
        for b in [SpecBenchmark::Mcf, SpecBenchmark::Gzip, SpecBenchmark::Art] {
            checked(b, SystemConfig::with_victim(victim), budget);
        }
    }
}

/// Prefetcher configurations (prefetch fills and prefetch L2 touches).
#[test]
fn prefetch_configs() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 2;
    let modes = [
        PrefetchMode::Timekeeping(timekeeping::CorrelationConfig::PAPER_8KB),
        PrefetchMode::Dbcp(timekeeping::DbcpConfig::PAPER_2MB),
        PrefetchMode::Stride(timekeeping::StrideConfig::default()),
    ];
    for mode in modes {
        for b in [SpecBenchmark::Mcf, SpecBenchmark::Swim, SpecBenchmark::Gcc] {
            checked(b, SystemConfig::with_prefetch(mode), budget);
        }
    }
}

/// Cache decay (generation close at switch-off, refetch without evict).
#[test]
fn decay_config() {
    for b in [SpecBenchmark::Mcf, SpecBenchmark::Gzip] {
        checked(
            b,
            SystemConfig::with_decay(8_192),
            FigureOpts::QUICK_INSTRUCTIONS / 2,
        );
    }
}

/// The banked DRAM backend changes *when* lines arrive, never *which*
/// lines hit or miss — the oracle is timing-free, so lockstep must hold
/// under it bit-for-bit, mechanisms included.
#[test]
fn banked_dram_configs() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 2;
    for mem in [
        tk_sim::MemBackendConfig::Banked(tk_sim::BankedDramConfig::DDR2),
        tk_sim::MemBackendConfig::Banked(tk_sim::BankedDramConfig::DDR4),
    ] {
        let cfgs = [
            SystemConfig::builder()
                .memory(mem)
                .build()
                .expect("banked config is valid"),
            SystemConfig::builder()
                .memory(mem)
                .victim(VictimMode::paper_dead_time())
                .prefetch(PrefetchMode::Timekeeping(
                    timekeeping::CorrelationConfig::PAPER_8KB,
                ))
                .build()
                .expect("banked mechanism config is valid"),
        ];
        for cfg in cfgs {
            for b in [SpecBenchmark::Mcf, SpecBenchmark::Swim] {
                checked(b, cfg, budget);
            }
        }
    }
}

/// The cold-miss-only study mode has no tag array to mirror: the oracle
/// declines it rather than diverging.
#[test]
fn cold_only_mode_runs_unchecked() {
    let mut w = SpecBenchmark::Gzip.build(1);
    let r = run_workload_checked(&mut w, SystemConfig::ideal(), 50_000);
    assert_eq!(r.core.instructions, 50_000);
}

/// Multi-core configs route through [`tk_sim::multicore`]'s
/// `CoherentChecker`: a timing-free MESI mirror that independently
/// derives the service level (L1, victim cache, cache-to-cache, L2,
/// memory) and the invalidation set of every access. Rate mode (N forks
/// of one benchmark) maximizes sharing; the banked backend changes
/// completion times but never the coherent state the mirror tracks.
#[test]
fn multicore_configs() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 4;
    for cores in [2u32, 4] {
        let cfgs = [
            SystemConfig::builder()
                .cores(cores)
                .build()
                .expect("multi-core base config is valid"),
            SystemConfig::builder()
                .cores(cores)
                .victim(VictimMode::paper_dead_time())
                .build()
                .expect("multi-core victim config is valid"),
            SystemConfig::builder()
                .cores(cores)
                .memory(tk_sim::MemBackendConfig::Banked(
                    tk_sim::BankedDramConfig::DDR4,
                ))
                .victim(VictimMode::paper_dead_time())
                .prefetch(PrefetchMode::Timekeeping(
                    timekeeping::CorrelationConfig::PAPER_8KB,
                ))
                .predict_only()
                .build()
                .expect("multi-core banked config is valid"),
        ];
        for cfg in cfgs {
            for b in [SpecBenchmark::Mcf, SpecBenchmark::Gzip] {
                // The budget is per core; the result aggregates over cores.
                let r = run_workload_checked(&mut b.build(1), cfg, budget);
                assert_eq!(
                    r.core.instructions,
                    budget * u64::from(cores),
                    "{} at {cores} cores",
                    b.name()
                );
            }
        }
    }
}

/// Heterogeneous concurrent mixes under the checker: distinct per-core
/// streams exercise asymmetric sharing (one core's upgrades invalidate
/// another's read-only copies) that rate mode cannot produce.
#[test]
fn multicore_mix_checked() {
    use tk_sim::run_workload_checked;
    use tk_workloads::ConcurrentMix;
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 4;
    for cores in [2u32, 4] {
        let mut mix = ConcurrentMix::new(vec![
            Box::new(SpecBenchmark::Twolf.build(1)),
            Box::new(SpecBenchmark::Art.build(1)),
        ]);
        let cfg = SystemConfig::builder()
            .cores(cores)
            .victim(VictimMode::paper_dead_time())
            .build()
            .expect("multi-core mix config is valid");
        let r = run_workload_checked(&mut mix, cfg, budget);
        assert_eq!(r.core.instructions, budget * u64::from(cores));
    }
}
