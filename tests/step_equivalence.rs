//! Differential proof that event-driven clock hopping is bit-identical
//! to per-cycle stepping.
//!
//! Every workload runs twice from identical state: once with the default
//! hopping clock (`OooCore::run` jumps over provably dead cycles and
//! `MemorySystem::advance` replays intermediate events at their true
//! timestamps) and once in the `step_every_cycle` reference mode (the
//! original cycle-by-cycle loop). The *entire* [`RunResult`] snapshot —
//! core stats, hierarchy counters, miss breakdown, metric distributions,
//! victim/prefetch/timeliness/correlation/DBCP statistics — must compare
//! bit-equal. Any divergence means a skipped cycle was not actually dead.

use timekeeping::snapshot::Snapshot;
use tk_bench::FigureOpts;
use tk_sim::{
    run_workload, BankedDramConfig, MemBackendConfig, PrefetchMode, SystemConfig, VictimMode,
};
use tk_workloads::SpecBenchmark;

/// Runs `bench` under `cfg` with both clocks and asserts bit-equality.
fn assert_equivalent(bench: SpecBenchmark, cfg: SystemConfig, instructions: u64) {
    assert!(
        !cfg.step_every_cycle,
        "pass the hopping config; the reference is derived here"
    );
    let mut step_cfg = cfg;
    step_cfg.step_every_cycle = true;

    let hop = run_workload(&mut bench.build(1), cfg, instructions);
    let step = run_workload(&mut bench.build(1), step_cfg, instructions);

    // The load-bearing snapshots first, for readable failures...
    assert_eq!(
        hop.core,
        step.core,
        "CoreStats diverged on {} under {}",
        bench.name(),
        cfg.cache_key()
    );
    assert_eq!(
        hop.hierarchy,
        step.hierarchy,
        "HierarchyStats diverged on {} under {}",
        bench.name(),
        cfg.cache_key()
    );
    // ...then the full result (breakdown, metrics, victim, timeliness,
    // correlation, DBCP, queue discards): everything observable must match.
    assert_eq!(
        hop.to_json(),
        step.to_json(),
        "RunResult snapshot diverged on {} under {}",
        bench.name(),
        cfg.cache_key()
    );
}

/// All 26 workloads under the base machine: window-full stalls and MSHR /
/// bus contention are the dominant hop sources here.
#[test]
fn all_workloads_base_config() {
    for &b in &SpecBenchmark::ALL {
        assert_equivalent(b, SystemConfig::base(), FigureOpts::QUICK_INSTRUCTIONS);
    }
}

/// Prefetcher configurations: global ticks, queued/issued prefetch
/// arrivals, and issue-gate openings are all events the hopping clock
/// must replay at exact timestamps.
#[test]
fn prefetch_configs() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 2;
    let tk = PrefetchMode::Timekeeping(timekeeping::CorrelationConfig::PAPER_8KB);
    let modes = [
        SystemConfig::with_prefetch(tk),
        SystemConfig::builder()
            .prefetch(tk)
            .slack_prefetch()
            .build()
            .expect("slack config is valid"),
        SystemConfig::with_prefetch(PrefetchMode::Dbcp(timekeeping::DbcpConfig::PAPER_2MB)),
        SystemConfig::with_prefetch(PrefetchMode::Stride(timekeeping::StrideConfig::default())),
    ];
    for cfg in modes {
        for b in [SpecBenchmark::Mcf, SpecBenchmark::Swim, SpecBenchmark::Gcc] {
            assert_equivalent(b, cfg, budget);
        }
    }
}

/// Victim-cache and decay configurations: lazily evaluated mechanisms
/// (admission filters, decay switch-off) must be insensitive to which
/// cycles the clock actually visits.
#[test]
fn victim_and_decay_configs() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 2;
    for cfg in [
        SystemConfig::with_victim(VictimMode::paper_dead_time()),
        SystemConfig::with_victim(VictimMode::Collins),
        SystemConfig::with_decay(8_192),
    ] {
        for b in [SpecBenchmark::Mcf, SpecBenchmark::Gzip, SpecBenchmark::Art] {
            assert_equivalent(b, cfg, budget);
        }
    }
}

/// All 26 workloads under the banked DDR2 backend: DRAM completions now
/// depend on row-buffer state and bank/channel busy times, so the
/// hopping clock must wake at every `MemBackend::next_event` boundary
/// and the backend must see the identical (request, timestamp) sequence
/// under both clocks.
#[test]
fn all_workloads_banked_ddr2() {
    let cfg = SystemConfig::builder()
        .memory(MemBackendConfig::Banked(BankedDramConfig::DDR2))
        .build()
        .expect("banked config is valid");
    for &b in &SpecBenchmark::ALL {
        assert_equivalent(b, cfg, FigureOpts::QUICK_INSTRUCTIONS);
    }
}

/// Banked DDR4 combined with the paper's mechanisms: prefetch arrivals
/// and victim swaps layered on top of variable DRAM completions is the
/// densest event interleaving the clock faces.
#[test]
fn banked_ddr4_with_mechanisms() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 2;
    let mem = MemBackendConfig::Banked(BankedDramConfig::DDR4);
    let configs = [
        SystemConfig::builder()
            .memory(mem)
            .prefetch(PrefetchMode::Timekeeping(
                timekeeping::CorrelationConfig::PAPER_8KB,
            ))
            .build()
            .expect("banked prefetch config is valid"),
        SystemConfig::builder()
            .memory(mem)
            .victim(VictimMode::paper_dead_time())
            .build()
            .expect("banked victim config is valid"),
    ];
    for cfg in configs {
        for b in [SpecBenchmark::Mcf, SpecBenchmark::Swim, SpecBenchmark::Gcc] {
            assert_equivalent(b, cfg, budget);
        }
    }
}

/// Chained-load stalls (`chain_ready` hops) dominate pointer-chasing
/// workloads; cover them explicitly with software prefetches stripped so
/// the stall pattern differs from the base sweep.
#[test]
fn pointer_chasing_chain_stalls() {
    let cfg = SystemConfig::builder()
        .ignore_sw_prefetch()
        .build()
        .expect("config is valid");
    for b in [SpecBenchmark::Mcf, SpecBenchmark::Art, SpecBenchmark::Ammp] {
        assert_equivalent(b, cfg, FigureOpts::QUICK_INSTRUCTIONS);
    }
}

/// Builds the multi-core config matrix for one core count: base, victim
/// cache (coherent swap path), predict-only timekeeping (the only
/// prefetcher form legal past one core) and the banked-DDR4 + victim
/// composition, which layers variable DRAM completions under snoop
/// traffic.
fn multicore_cfgs(cores: u32) -> Vec<SystemConfig> {
    vec![
        SystemConfig::builder()
            .cores(cores)
            .build()
            .expect("multi-core base config is valid"),
        SystemConfig::builder()
            .cores(cores)
            .victim(VictimMode::paper_dead_time())
            .build()
            .expect("multi-core victim config is valid"),
        SystemConfig::builder()
            .cores(cores)
            .prefetch(PrefetchMode::Timekeeping(
                timekeeping::CorrelationConfig::PAPER_8KB,
            ))
            .predict_only()
            .build()
            .expect("multi-core predict-only config is valid"),
        SystemConfig::builder()
            .cores(cores)
            .memory(MemBackendConfig::Banked(BankedDramConfig::DDR4))
            .victim(VictimMode::paper_dead_time())
            .build()
            .expect("multi-core banked config is valid"),
    ]
}

/// Multi-core rate mode: every core runs a fork of the same benchmark,
/// so all sharing comes from identical reference streams hitting the
/// shared L2. The hopping clock's wake rule (minimum over unfinished
/// cores of window-front retirement and chain-ready stalls) must visit
/// every cycle a snoop, invalidation or cache-to-cache transfer lands
/// on.
#[test]
fn multicore_rate_mode() {
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 4;
    for cores in [2, 4] {
        for cfg in multicore_cfgs(cores) {
            for b in [SpecBenchmark::Mcf, SpecBenchmark::Swim] {
                assert_equivalent(b, cfg, budget);
            }
        }
    }
}

/// Multi-core heterogeneous mixes: distinct benchmarks per core produce
/// asymmetric finish times, so late-running cores hop across cycles
/// where finished cores no longer pin the clock. The full `RunResult`
/// (including the coherence block) must still compare bit-equal.
#[test]
fn multicore_heterogeneous_mixes() {
    use tk_workloads::ConcurrentMix;
    let budget = FigureOpts::QUICK_INSTRUCTIONS / 4;
    let mix = |seed: u64| {
        ConcurrentMix::new(vec![
            Box::new(SpecBenchmark::Gzip.build(seed)),
            Box::new(SpecBenchmark::Swim.build(seed)),
            Box::new(SpecBenchmark::Mcf.build(seed)),
            Box::new(SpecBenchmark::Art.build(seed)),
        ])
    };
    for cores in [2, 4] {
        for cfg in multicore_cfgs(cores) {
            let mut step_cfg = cfg;
            step_cfg.step_every_cycle = true;
            let hop = run_workload(&mut mix(1), cfg, budget);
            let step = run_workload(&mut mix(1), step_cfg, budget);
            assert_eq!(
                hop.to_json(),
                step.to_json(),
                "mix RunResult diverged at {cores} cores under {}",
                cfg.cache_key()
            );
        }
    }
}
