//! Golden regression for the observability plane's trace format.
//!
//! Runs a pinned 10k-instruction simulation with an in-memory trace
//! observer and pins the `tk_obs_dump`-style filtered summary against
//! `tests/golden/obs_dump.json`, bit-exactly. Any change to the record
//! taxonomy, the category filter, the sampling rule or the summary
//! shape — i.e. to the trace *format* — fails here and must be
//! re-blessed deliberately:
//!
//! ```text
//! TK_BLESS=1 cargo test --test golden_obs
//! ```
//!
//! The trace is installed directly on the [`MemorySystem`] (not via the
//! process-global `--trace` flags), so this test is hermetic and cannot
//! race with other tests over the global observability configuration.

use timekeeping::CorrelationConfig;
use tk_sim::obs::{summarize, TraceCategories, TraceKind};
use tk_sim::{MemorySystem, OooCore, PrefetchMode, SystemConfig};
use tk_workloads::SpecBenchmark;

const INSTRUCTIONS: u64 = 10_000;

fn blessing() -> bool {
    std::env::var("TK_BLESS").map(|v| v == "1").unwrap_or(false)
}

fn golden_path() -> std::path::PathBuf {
    tk_bench::golden::golden_dir().join("obs_dump.json")
}

/// The pinned run: gzip under the paper's timekeeping prefetcher, so the
/// trace exercises the prefetch lifecycle records alongside the demand
/// path.
fn pinned_trace_summary() -> String {
    let cfg = SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB));
    let mut w = SpecBenchmark::Gzip.build(1);
    let mut core = OooCore::new(&cfg);
    let mut mem = MemorySystem::new(cfg);
    mem.install_trace(TraceCategories::all(), 1);
    let stats = core.run(&mut w, &mut mem, INSTRUCTIONS);
    assert_eq!(stats.instructions, INSTRUCTIONS);
    let records = mem.trace_records().expect("memory trace installed");
    // The dump filter under pin: everything except the high-volume
    // lookup/hit stream — the same selection a production `--trace=CATS`
    // run would keep.
    let filter = TraceCategories::parse("miss,fill,evict,gen,pf").expect("valid filter");
    summarize(records, filter).render()
}

#[test]
fn golden_obs_dump_summary_matches() {
    let doc = pinned_trace_summary();
    let path = golden_path();
    if blessing() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create tests/golden");
        std::fs::write(&path, &doc).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {} — generate it with TK_BLESS=1 cargo test --test golden_obs",
            path.display()
        )
    });
    assert_eq!(
        expected,
        doc,
        "trace summary diverged from the blessed format; if the change is \
         intentional, re-bless with TK_BLESS=1 cargo test --test golden_obs\n{}",
        tk_bench::golden::first_diff(&expected, &doc)
    );
}

/// The pinned run must actually exercise the taxonomy the golden file
/// pins: demand misses, fills, generation boundaries.
#[test]
fn pinned_run_covers_the_taxonomy() {
    let doc = pinned_trace_summary();
    let json = timekeeping::Json::parse(&doc).expect("summary is valid JSON");
    assert!(json.u64_field("kept_records").unwrap() > 0);
    let by_kind = json.get("by_kind").unwrap();
    for kind in [TraceKind::Miss, TraceKind::Fill, TraceKind::GenOpen] {
        assert!(
            by_kind.u64_field(kind.name()).unwrap() > 0,
            "pinned run produced no {} records",
            kind.name()
        );
    }
}
