//! The contract of the parallel experiment engine: fanning jobs across a
//! worker pool must be invisible in the results. `--jobs 1` and `--jobs N`
//! produce bit-identical `RunResult`s, each distinct job tuple simulates at
//! most once per process, and the JSON snapshot round-trips exactly.

use std::sync::Mutex;

use timekeeping::{CorrelationConfig, Snapshot};
use tk_bench::engine::{self, Job};
use tk_bench::runner::{run_bench, run_suite, FigureOpts};
use tk_bench::workload::WorkloadId;
use tk_sim::{
    run_workload, ConfigError, PrefetchMode, RunResult, SampleConfig, SystemConfig, VictimMode,
};
use tk_workloads::SpecBenchmark;

/// The engine's memo, stat counters, and disk-cache directory are global to
/// the process; tests that assert on them must not interleave.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

const INSTS: u64 = 250_000;

fn serial_reference(bench: WorkloadId, cfg: SystemConfig, seed: u64, insts: u64) -> RunResult {
    run_workload(&mut bench.build(seed), cfg, insts)
}

#[test]
fn parallel_results_bit_identical_to_serial() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    engine::reset_stats();

    let cfgs = [
        SystemConfig::base(),
        SystemConfig::with_victim(VictimMode::paper_dead_time()),
        SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB)),
    ];
    let jobs: Vec<Job> = cfgs
        .iter()
        .map(|&c| Job::new(SpecBenchmark::Gzip, c, 1, INSTS))
        .collect();

    // Ground truth: the plain serial path, no engine involved.
    let reference: Vec<RunResult> = jobs
        .iter()
        .map(|j| serial_reference(j.bench, j.cfg, j.seed, j.instructions))
        .collect();

    // One worker...
    let serial = engine::run_jobs(&jobs, 1);
    // ...and a pool wider than the batch. The memo would mask a
    // nondeterministic pool, so clear it between runs.
    engine::reset_stats();
    let parallel = engine::run_jobs(&jobs, 8);

    for ((r, s), p) in reference.iter().zip(&serial).zip(&parallel) {
        // Full structural equality first: every counter, histogram bucket,
        // and nested stat block.
        assert_eq!(r, &**s, "jobs=1 diverged from the serial path");
        assert_eq!(r, &**p, "jobs=8 diverged from the serial path");
        // Spell out the headline stats the figures consume, so a failure
        // names the field instead of dumping two structs.
        assert_eq!(r.core.cycles, p.core.cycles);
        assert_eq!(r.core.instructions, p.core.instructions);
        assert_eq!(r.breakdown, p.breakdown);
        assert_eq!(r.hierarchy, p.hierarchy);
        assert_eq!(r.metrics, p.metrics);
    }
}

/// Sampling inherits the engine contract: a sampled job produces the
/// same bits whether it runs on one worker, on a wide pool, or again in
/// a later invocation. Clustering, warmup and reconstruction are all
/// deterministic — worker scheduling must stay invisible through them.
#[test]
fn sampled_results_bit_identical_to_serial() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    engine::reset_stats();

    let cfg = SystemConfig::builder()
        .sample(SampleConfig {
            interval: 25_000,
            k: 3,
        })
        .build()
        .expect("sampled base config");
    let jobs: Vec<Job> = [SpecBenchmark::Gzip, SpecBenchmark::Mcf, SpecBenchmark::Art]
        .iter()
        .map(|&b| Job::new(b, cfg, 1, INSTS))
        .collect();

    // Ground truth: the plain serial path, no engine involved.
    let reference: Vec<RunResult> = jobs
        .iter()
        .map(|j| serial_reference(j.bench, j.cfg, j.seed, j.instructions))
        .collect();

    let serial = engine::run_jobs(&jobs, 1);
    engine::reset_stats();
    let parallel = engine::run_jobs(&jobs, 8);
    engine::reset_stats();
    let repeat = engine::run_jobs(&jobs, 8);

    for (((r, s), p), q) in reference.iter().zip(&serial).zip(&parallel).zip(&repeat) {
        assert!(r.sampled.is_some(), "sampled config must tag its results");
        assert_eq!(r, &**s, "sampled jobs=1 diverged from the serial path");
        assert_eq!(r, &**p, "sampled jobs=8 diverged from the serial path");
        assert_eq!(r, &**q, "sampled repeat invocation diverged");
    }
}

#[test]
fn result_order_follows_submission_order() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    engine::reset_stats();

    let jobs: Vec<Job> = SpecBenchmark::ALL
        .iter()
        .map(|&b| Job::new(b, SystemConfig::base(), 1, 60_000))
        .collect();
    let results = engine::run_jobs(&jobs, 6);
    assert_eq!(results.len(), jobs.len());
    for (job, result) in jobs.iter().zip(&results) {
        let expected = serial_reference(job.bench, job.cfg, job.seed, job.instructions);
        assert_eq!(
            &expected,
            &**result,
            "slot for {} out of order",
            job.bench.name()
        );
    }
}

#[test]
fn memo_simulates_each_distinct_tuple_once() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    engine::reset_stats();

    let base = Job::new(SpecBenchmark::Gzip, SystemConfig::base(), 1, 90_000);
    let vc = Job::new(
        SpecBenchmark::Gzip,
        SystemConfig::with_victim(VictimMode::paper_dead_time()),
        1,
        90_000,
    );
    // Duplicates both within a batch and across calls.
    let batch = [base, vc, base, vc, base];
    let first = engine::run_jobs(&batch, 4);
    let (memo_hits, disk_hits, sims) = engine::memo_stats();
    assert_eq!(sims, 2, "two distinct tuples -> exactly two simulations");
    assert_eq!(memo_hits, 3, "three within-batch duplicates must memo-hit");
    assert_eq!(disk_hits, 0);

    // A later call over the same tuples costs zero additional simulations.
    let again = engine::run_jobs(&[vc, base], 4);
    let (memo_hits, _, sims) = engine::memo_stats();
    assert_eq!(sims, 2, "repeat invocation must not re-simulate");
    assert_eq!(memo_hits, 5);
    assert_eq!(&*again[0], &*first[1]);
    assert_eq!(&*again[1], &*first[0]);

    // The figure-facing wrappers ride the same memo: a second run_suite and
    // a run_bench over a suite member add no simulations.
    engine::reset_stats();
    let mut opts = FigureOpts::quick();
    opts.instructions = 70_000;
    opts.jobs = 4;
    let suite = run_suite(SystemConfig::base(), opts);
    let (_, _, sims_after_suite) = engine::memo_stats();
    assert_eq!(sims_after_suite, SpecBenchmark::ALL.len() as u64);
    let suite2 = run_suite(SystemConfig::base(), opts);
    let one = run_bench(SpecBenchmark::Mcf, SystemConfig::base(), opts);
    let (memo_hits, _, sims) = engine::memo_stats();
    assert_eq!(
        sims,
        SpecBenchmark::ALL.len() as u64,
        "suite re-run must be free"
    );
    assert_eq!(memo_hits, SpecBenchmark::ALL.len() as u64 + 1);
    assert_eq!(suite, suite2);
    let mcf = suite
        .iter()
        .find(|(b, _)| *b == SpecBenchmark::Mcf)
        .map(|(_, r)| r)
        .expect("mcf in suite");
    assert_eq!(&**mcf, &*one);
}

#[test]
fn disk_cache_round_trips_results_across_memo_resets() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("tk-engine-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    engine::reset_stats();
    engine::set_disk_cache(Some(dir.clone()));

    let job = Job::new(SpecBenchmark::Twolf, SystemConfig::base(), 3, 80_000);
    let fresh = engine::run_jobs(&[job], 1);
    let (_, disk_hits, sims) = engine::memo_stats();
    assert_eq!((disk_hits, sims), (0, 1));

    // Dropping the memo (a new process, in effect) must recover the result
    // from disk instead of re-simulating.
    engine::reset_stats();
    let cached = engine::run_jobs(&[job], 1);
    let (_, disk_hits, sims) = engine::memo_stats();
    assert_eq!(sims, 0, "disk cache must satisfy the re-run");
    assert_eq!(disk_hits, 1);
    assert_eq!(&*fresh[0], &*cached[0]);

    engine::set_disk_cache(None);
    engine::reset_stats();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_round_trip_is_exact_on_a_real_run() {
    let r = serial_reference(
        WorkloadId::Spec(SpecBenchmark::Swim),
        SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB)),
        1,
        INSTS,
    );
    let json = r.to_json();
    let text = json.render();
    let reparsed = timekeeping::Json::parse(&text).expect("rendered JSON must parse");
    let back = RunResult::from_json(&reparsed).expect("snapshot must deserialize");
    assert_eq!(r, back, "JSON round-trip must be bit-exact");
}

#[test]
fn builder_matches_constructors_and_rejects_bad_combos() {
    assert_eq!(
        SystemConfig::builder().build().unwrap(),
        SystemConfig::base()
    );
    assert_eq!(
        SystemConfig::builder()
            .victim(VictimMode::paper_dead_time())
            .build()
            .unwrap(),
        SystemConfig::with_victim(VictimMode::paper_dead_time())
    );
    assert_eq!(
        SystemConfig::builder()
            .prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB))
            .build()
            .unwrap(),
        SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB))
    );
    assert_eq!(
        SystemConfig::builder().oracle_l1().build().unwrap(),
        SystemConfig::ideal()
    );

    assert_eq!(
        SystemConfig::builder().predict_only().build(),
        Err(ConfigError::PredictOnlyWithoutPrefetcher)
    );
    assert_eq!(
        SystemConfig::builder().slack_prefetch().build(),
        Err(ConfigError::SlackWithoutPrefetcher)
    );
    assert_eq!(
        SystemConfig::builder()
            .oracle_l1()
            .victim(VictimMode::Unfiltered)
            .build(),
        Err(ConfigError::OracleWithMechanism)
    );
    assert_eq!(
        SystemConfig::builder()
            .victim(VictimMode::DeadTime { threshold: 0 })
            .build(),
        Err(ConfigError::ZeroVictimThreshold)
    );
    assert_eq!(
        SystemConfig::builder().decay(0).build(),
        Err(ConfigError::ZeroDecayInterval)
    );
}
