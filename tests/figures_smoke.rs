//! Smoke tests: every figure report generates successfully at a reduced
//! instruction budget and contains its key structural elements.

use tk_bench::{figures, FigureOpts};

fn tiny() -> FigureOpts {
    let mut o = FigureOpts::quick();
    o.instructions = 120_000;
    o
}

#[test]
fn table1_renders() {
    let t = figures::table1();
    assert!(t.contains("Table 1"));
    assert!(t.contains("70 cycles"));
}

#[test]
fn fig01_sorted_potentials() {
    let r = figures::fig01(tiny());
    assert!(r.contains("Figure 1"));
    for b in ["ammp", "eon", "mcf"] {
        assert!(r.contains(b), "missing {b}");
    }
}

#[test]
fn fig02_breakdown_rows() {
    let r = figures::fig02(tiny());
    assert!(r.contains("%conflict"));
    assert!(r.lines().count() > 26);
}

#[test]
fn fig04_05_distributions() {
    let r4 = figures::fig04(tiny());
    assert!(r4.contains("live times"));
    assert!(r4.contains('#'));
    let r5 = figures::fig05(tiny());
    assert!(r5.contains("Reload interval"));
}

#[test]
fn fig07_09_split_distributions() {
    let r7 = figures::fig07(tiny());
    assert!(r7.contains("Conflict misses"));
    let r9 = figures::fig09(tiny());
    assert!(r9.contains("Capacity misses"));
}

#[test]
fn fig08_10_sweeps() {
    let r8 = figures::fig08(tiny());
    assert!(r8.contains("16k"));
    let r10 = figures::fig10(tiny());
    assert!(r10.contains("accuracy"));
}

#[test]
fn fig11_zero_live_time() {
    let r = figures::fig11(tiny());
    assert!(r.contains("[geomean]"));
}

#[test]
fn fig13_victim_filters() {
    let r = figures::fig13(tiny());
    assert!(r.contains("unfiltered"));
    assert!(r.contains("traffic reduction"));
}

#[test]
fn fig14_15_16_dead_block() {
    assert!(figures::fig14(tiny()).contains(">5120"));
    assert!(figures::fig15(tiny()).contains("ammp"));
    assert!(figures::fig16(tiny()).contains("[all]"));
}

#[test]
fn fig19_prefetch_comparison() {
    let r = figures::fig19(tiny());
    assert!(r.contains("dbcp 2MB"));
    assert!(r.contains("timekeeping 8KB"));
    assert!(r.contains("[geomean]"));
}

#[test]
fn fig20_21_address_and_timeliness() {
    assert!(figures::fig20(tiny()).contains("coverage"));
    let r21 = figures::fig21(tiny());
    assert!(r21.contains("Correct address predictions"));
    assert!(r21.contains("Wrong address predictions"));
}

#[test]
fn fig22_venn_summary() {
    let r = figures::fig22(tiny());
    assert!(r.contains("few memory stalls"));
    assert!(r.contains("helped by prefetch"));
}
