//! Hand-rolled property tests for the external-trace parser.
//!
//! The offline container has no `proptest`, so these use the workspace's
//! own deterministic [`Rng`] to drive two properties over thousands of
//! generated inputs:
//!
//! 1. **Totality** — `TraceFileWorkload::from_reader` never panics, for
//!    arbitrary byte soup (including invalid UTF-8) and for adversarial
//!    token soup assembled from near-valid fragments. It returns a
//!    structured [`ParseTraceError`] or a usable workload, nothing else.
//! 2. **Round-trip identity** — rendering any instruction sequence with
//!    [`render_instr`] and re-parsing it reproduces the sequence exactly,
//!    for every [`Instr`] variant.
//!
//! Everything is seeded, so a failure reproduces bit-for-bit.

use tk_sim::trace::{Instr, MemRef, Workload};
use tk_workloads::rng::Rng;
use tk_workloads::{render_instr, TraceFileWorkload};

/// Arbitrary byte soup — mostly printable, salted with newlines, NULs and
/// invalid UTF-8 continuation bytes.
fn byte_soup(rng: &mut Rng, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| match rng.below(10) {
            0 => b'\n',
            1 => b' ',
            2 => b'#',
            3 => 0x00,
            4 => 0xFF, // never valid in UTF-8
            5 => 0xC3, // dangling continuation-start
            _ => (rng.below(94) + 33) as u8,
        })
        .collect()
}

/// Adversarial *token* soup: lines built from fragments that sit right at
/// the parser's decision points (valid kinds, bad hex, missing fields,
/// comments, 0x prefixes, trailing junk).
fn token_soup(rng: &mut Rng) -> String {
    const FRAGMENTS: &[&str] = &[
        "O",
        "o",
        "L",
        "c",
        "S",
        "P",
        "X",
        "LL",
        "0x",
        "0x10",
        "zzz",
        "ffffffffffffffff",
        "10000000000000000", // overflows u64
        "#",
        "# comment",
        "",
        " ",
        "\t",
        "-1",
        "4 0 0",
        "0xgg",
    ];
    let lines = rng.below(20) + 1;
    let mut text = String::new();
    for _ in 0..lines {
        let tokens = rng.below(4);
        for t in 0..=tokens {
            if t > 0 {
                text.push(if rng.chance(1, 8) { '\t' } else { ' ' });
            }
            text.push_str(FRAGMENTS[rng.below(FRAGMENTS.len() as u64) as usize]);
        }
        text.push('\n');
    }
    text
}

/// A uniformly random instruction, covering every variant.
fn arbitrary_instr(rng: &mut Rng) -> Instr {
    let mref = MemRef::new(
        timekeeping::Addr::new(rng.next_u64() >> rng.below(64) as u32),
        timekeeping::Pc::new(rng.next_u64() >> rng.below(64) as u32),
    );
    match rng.below(5) {
        0 => Instr::Op,
        1 => Instr::Load(mref),
        2 => Instr::ChainedLoad(mref),
        3 => Instr::Store(mref),
        _ => Instr::SwPrefetch(mref),
    }
}

#[test]
fn arbitrary_bytes_never_panic_the_parser() {
    let mut rng = Rng::new(0x7ace_f11e);
    for case in 0..2_000u64 {
        let len = rng.below(200) as usize;
        let soup = byte_soup(&mut rng, len);
        // Ok or Err are both fine; panicking is the only failure.
        let result = TraceFileWorkload::from_reader("soup", &soup[..]);
        if let Err(e) = result {
            // The error is structured: it renders and carries a line
            // number within the input (0 marks whole-trace errors).
            let lines = soup.iter().filter(|&&b| b == b'\n').count() + 1;
            assert!(
                e.line() <= lines,
                "case {case}: line {} of {lines}",
                e.line()
            );
            assert!(!e.to_string().is_empty());
        }
    }
}

#[test]
fn adversarial_token_soup_never_panics() {
    let mut rng = Rng::new(0x50da_ca11);
    for _ in 0..2_000u64 {
        let text = token_soup(&mut rng);
        match TraceFileWorkload::from_reader("tokens", text.as_bytes()) {
            Ok(mut w) => {
                assert!(!w.is_empty(), "empty traces must be rejected");
                // A parsed workload must actually be drivable.
                for _ in 0..w.len() * 2 {
                    let _ = w.next_instr();
                }
            }
            Err(e) => assert!(e.line() <= text.lines().count()),
        }
    }
}

#[test]
fn render_parse_round_trip_is_identity() {
    let mut rng = Rng::new(0x0b5e_55ed);
    for case in 0..500u64 {
        let n = rng.below(64) as usize + 1;
        let instrs: Vec<Instr> = (0..n).map(|_| arbitrary_instr(&mut rng)).collect();
        let text: String = instrs.iter().map(|i| render_instr(i) + "\n").collect();
        let mut w = TraceFileWorkload::from_reader("rt", text.as_bytes())
            .unwrap_or_else(|e| panic!("case {case}: rendered trace must parse: {e}\n{text}"));
        assert_eq!(w.len(), instrs.len(), "case {case}");
        for (k, want) in instrs.iter().enumerate() {
            assert_eq!(w.next_instr(), *want, "case {case}, instr {k}");
        }
    }
}

#[test]
fn workload_render_round_trips_through_itself() {
    let text = "O\nL 7f001040 400a\nC 7f002000 400e\nS 7f001048 4012\nP 7f003000 4016\n";
    let w = TraceFileWorkload::from_reader("canon", text.as_bytes()).unwrap();
    let rendered = w.render();
    // The canonical form is stable: render is idempotent through a parse.
    let w2 = TraceFileWorkload::from_reader("canon", rendered.as_bytes()).unwrap();
    assert_eq!(w2.render(), rendered);
    // And for already-canonical text (lowercase hex, single spaces, no
    // comments), render reproduces the input exactly.
    assert_eq!(rendered, text);
}

#[test]
fn structured_errors_replace_the_old_panics() {
    // Regression for the `.expect("nonempty line")` that used to live in
    // parse_line: every malformed shape comes back as Err, with the
    // offending line number.
    for (text, needle, line) in [
        ("L 10 1\nQ 20 2\n", "unknown event kind", 2),
        ("O extra\n", "trailing token", 1),
        ("L 10 1 junk\n", "trailing token", 1),
        ("L 10000000000000000 1\n", "bad address", 1),
        ("S 10\n", "missing pc", 1),
        ("P\n", "missing address", 1),
    ] {
        let e = TraceFileWorkload::from_reader("t", text.as_bytes())
            .expect_err(&format!("{text:?} must be rejected"));
        assert!(e.to_string().contains(needle), "{text:?} -> {e}");
        assert_eq!(e.line(), line, "{text:?}");
    }
}

/// Gzip-framed byte soup: a valid member header followed by garbage.
/// The streaming decoder must surface a structured error (or, for the
/// rare soup that decodes, a usable workload) — never a panic. Line
/// numbers are meaningless inside a corrupt compressed stream, so only
/// totality is asserted.
#[test]
fn gzip_byte_soup_never_panics() {
    let mut rng = Rng::new(0x621b_50af);
    for _ in 0..2_000u64 {
        let len = rng.below(200) as usize;
        let mut soup = vec![0x1f, 0x8b]; // the gzip magic the sniffer keys on
        soup.extend(byte_soup(&mut rng, len));
        if let Err(e) = TraceFileWorkload::from_reader("gz-soup", &soup[..]) {
            assert!(!e.to_string().is_empty());
        }
    }
}

/// Truncating a valid gzip member at every byte boundary never panics,
/// and the untruncated stream still parses.
#[test]
fn truncated_gzip_members_never_panic() {
    let text = "L 1000 40\nS 1020 44\nO\nC 2000 48\nP 3000 4c\n".repeat(40);
    let gz = tk_workloads::gzip::gzip_store(text.as_bytes());
    for cut in 1..gz.len() {
        if let Err(e) = TraceFileWorkload::from_reader("cut", &gz[..cut]) {
            assert!(!e.to_string().is_empty(), "cut at {cut}");
        }
    }
    let w = TraceFileWorkload::from_reader("full", &gz[..]).expect("untruncated member parses");
    assert_eq!(w.len(), 200);
    assert!(w.is_compressed());
}

/// Render→gzip→parse is still the identity, and compression is
/// invisible to the content digest.
#[test]
fn render_parse_identity_survives_gzip() {
    let mut rng = Rng::new(0x9b1e_55ed);
    for case in 0..200u64 {
        let n = rng.below(64) as usize + 1;
        let instrs: Vec<Instr> = (0..n).map(|_| arbitrary_instr(&mut rng)).collect();
        let text: String = instrs.iter().map(|i| render_instr(i) + "\n").collect();
        let plain = TraceFileWorkload::from_reader("rt", text.as_bytes())
            .unwrap_or_else(|e| panic!("case {case}: plain parse: {e}"));
        let gz = tk_workloads::gzip::gzip_store(text.as_bytes());
        let mut w = TraceFileWorkload::from_reader("rt", &gz[..])
            .unwrap_or_else(|e| panic!("case {case}: gzip parse: {e}"));
        assert!(w.is_compressed(), "case {case}");
        assert_eq!(w.len(), instrs.len(), "case {case}");
        assert_eq!(
            w.digest(),
            plain.digest(),
            "case {case}: digest must ignore compression"
        );
        for (k, want) in instrs.iter().enumerate() {
            assert_eq!(w.next_instr(), *want, "case {case}, instr {k}");
        }
    }
}

/// ChampSim export→import reproduces the stream up to the documented
/// lossy mapping: chained loads and software prefetches degrade to
/// plain loads, everything else is exact.
#[test]
fn champsim_round_trip_is_identity_up_to_the_lossy_mapping() {
    use tk_workloads::champsim;
    let mut rng = Rng::new(0xc4a9_5131);
    for case in 0..200u64 {
        let n = rng.below(64) as usize + 1;
        let instrs: Vec<Instr> = (0..n).map(|_| arbitrary_instr(&mut rng)).collect();
        let bytes = champsim::render_trace(&instrs);
        let mut w = TraceFileWorkload::from_reader_fmt(
            "cs",
            &bytes[..],
            tk_workloads::TraceFormat::Champsim,
        )
        .unwrap_or_else(|e| panic!("case {case}: rendered champsim must parse: {e}"));
        assert_eq!(w.len(), instrs.len(), "case {case}");
        for (k, want) in instrs.iter().enumerate() {
            let want = match *want {
                Instr::ChainedLoad(m) | Instr::SwPrefetch(m) => Instr::Load(m),
                other => other,
            };
            assert_eq!(w.next_instr(), want, "case {case}, instr {k}");
        }
    }
}

/// ChampSim parse failures mirror `ParseTraceError::line` for binary
/// input: the error carries the 1-based record index and the absolute
/// byte offset of the offending record.
#[test]
fn champsim_errors_locate_the_offending_record() {
    use tk_workloads::champsim::{self, RECORD_BYTES};
    let good: Vec<Instr> = vec![
        Instr::Load(MemRef::new(
            timekeeping::Addr::new(0x1000),
            timekeeping::Pc::new(0x40),
        )),
        Instr::Op,
        Instr::Store(MemRef::new(
            timekeeping::Addr::new(0x2000),
            timekeeping::Pc::new(0x44),
        )),
    ];
    let mut bytes = champsim::render_trace(&good);

    // An out-of-range kind byte in the third record.
    bytes[2 * RECORD_BYTES] = 7;
    let e =
        TraceFileWorkload::from_reader_fmt("cs", &bytes[..], tk_workloads::TraceFormat::Champsim)
            .expect_err("kind byte 7 must be rejected");
    assert!(e.to_string().contains("kind byte 7"), "{e}");
    assert_eq!(e.record(), Some(3));
    assert_eq!(e.byte_offset(), Some(2 * RECORD_BYTES as u64));
    assert_eq!(e.line(), 0, "binary errors report record, not line");

    // A truncated trailing record.
    bytes[2 * RECORD_BYTES] = 1;
    bytes.truncate(3 * RECORD_BYTES - 5);
    let e =
        TraceFileWorkload::from_reader_fmt("cs", &bytes[..], tk_workloads::TraceFormat::Champsim)
            .expect_err("partial trailing record must be rejected");
    assert!(e.to_string().contains("truncated record"), "{e}");
    assert_eq!(e.record(), Some(3));
    assert_eq!(e.byte_offset(), Some(2 * RECORD_BYTES as u64));
}

/// The content digest names the decoded instruction stream, not its
/// encoding: the same stream serialized as text, gzipped text, and
/// ChampSim binary digests identically.
#[test]
fn digest_is_format_and_compression_independent() {
    use tk_workloads::champsim;
    let mut rng = Rng::new(0xd16e_57ab);
    // Only the lossless subset: the champsim leg would degrade C/P.
    let instrs: Vec<Instr> = (0..256)
        .map(|_| loop {
            match arbitrary_instr(&mut rng) {
                Instr::ChainedLoad(_) | Instr::SwPrefetch(_) => continue,
                i => break i,
            }
        })
        .collect();
    let text: String = instrs.iter().map(|i| render_instr(i) + "\n").collect();
    let gz = tk_workloads::gzip::gzip_store(text.as_bytes());
    let bin = champsim::render_trace(&instrs);

    let d_text = TraceFileWorkload::from_reader("t", text.as_bytes())
        .unwrap()
        .digest();
    let d_gz = TraceFileWorkload::from_reader("t", &gz[..])
        .unwrap()
        .digest();
    let d_bin =
        TraceFileWorkload::from_reader_fmt("t", &bin[..], tk_workloads::TraceFormat::Champsim)
            .unwrap()
            .digest();
    assert_eq!(d_text, d_gz);
    assert_eq!(d_text, d_bin);
}
