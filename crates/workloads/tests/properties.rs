//! Property-based tests of the workload generators: determinism, pattern
//! containment, instruction-mix bounds, and the full-period guarantee of
//! the pointer chase.

#![cfg(feature = "property-tests")]

use proptest::prelude::*;
use std::collections::HashSet;

use tk_sim::trace::{Instr, Workload};
use tk_workloads::patterns::{
    BlockedPattern, Pattern, PointerChasePattern, StreamPattern, TriadPattern,
};
use tk_workloads::rng::Rng;
use tk_workloads::{SpecBenchmark, SyntheticWorkload};

proptest! {
    /// Every benchmark is deterministic per seed and distinct across
    /// seeds.
    #[test]
    fn benchmarks_deterministic_per_seed(bench_idx in 0usize..26, seed in 0u64..1000) {
        let b = SpecBenchmark::ALL[bench_idx];
        let sample = |s: u64| {
            let mut w = b.build(s);
            (0..256).map(|_| w.next_instr()).collect::<Vec<_>>()
        };
        prop_assert_eq!(sample(seed), sample(seed));
    }

    /// The stream pattern never leaves its footprint and advances by its
    /// stride.
    #[test]
    fn stream_stays_in_footprint(
        base in 0u64..(1 << 40),
        footprint_log in 10u32..24,
        stride_log in 3u32..7,
        n in 1usize..500,
    ) {
        let footprint = 1u64 << footprint_log;
        let mut p = StreamPattern::new(base, footprint, 1 << stride_log, 0x400, 4);
        let mut rng = Rng::new(1);
        for _ in 0..n {
            let a = p.next_access(&mut rng);
            prop_assert!(a.addr >= base && a.addr < base + footprint);
        }
    }

    /// The pointer chase visits every node exactly once per lap, for any
    /// power-of-two node count and any seed (the full-period LCG
    /// guarantee).
    #[test]
    fn chase_is_a_full_permutation(nodes_log in 2u32..10, seed in any::<u64>()) {
        let nodes = 1u64 << nodes_log;
        let mut p = PointerChasePattern::new(0, nodes, 64, 0x400, seed, 1);
        let mut rng = Rng::new(2);
        let mut seen = HashSet::new();
        for _ in 0..nodes {
            seen.insert(p.next_access(&mut rng).addr);
        }
        prop_assert_eq!(seen.len() as u64, nodes, "lap must cover all nodes");
        // Second lap repeats the identical order.
        let first_of_lap2 = p.next_access(&mut rng).addr;
        prop_assert_eq!(first_of_lap2, 0, "laps must restart at node 0");
    }

    /// Blocked traversal stays within its footprint and revisits each tile
    /// exactly `sweeps` times before moving on.
    #[test]
    fn blocked_tile_revisits(sweeps in 1u64..5, tiles in 1u64..6) {
        let tile = 4096u64;
        let footprint = tile * tiles;
        let mut p = BlockedPattern::new(0, footprint, tile, sweeps, 64, 0x400);
        let mut rng = Rng::new(3);
        let per_sweep = tile / 64;
        // First tile: all accesses below `tile` for sweeps * per_sweep.
        for _ in 0..sweeps * per_sweep {
            let a = p.next_access(&mut rng);
            prop_assert!(a.addr < tile);
        }
        // Then the second tile (or wrap to the first if only one tile).
        let next = p.next_access(&mut rng);
        if tiles > 1 {
            prop_assert!(next.addr >= tile && next.addr < 2 * tile);
        } else {
            prop_assert!(next.addr < tile);
        }
    }

    /// Triads rotate load/load/store over three disjoint arrays.
    #[test]
    fn triad_mix_is_two_loads_one_store(n in 1usize..200) {
        let mut p = TriadPattern::new([0, 1 << 30, 2 << 30], 1 << 20, 8, 0x400);
        let mut rng = Rng::new(4);
        let mut stores = 0usize;
        for _ in 0..3 * n {
            let a = p.next_access(&mut rng);
            if matches!(a.kind, tk_workloads::patterns::AccessKind::Store) {
                stores += 1;
            }
        }
        prop_assert_eq!(stores, n, "exactly one store per triple");
    }

    /// The composite workload's memory fraction matches its compute gap
    /// configuration within tolerance.
    #[test]
    fn workload_instruction_mix(base_gap in 0u64..6) {
        let mut w = SyntheticWorkload::builder("t", 5)
            .compute_per_mem(base_gap, 0)
            .pattern(1, Box::new(StreamPattern::new(0, 1 << 20, 8, 0x400, 0)))
            .build();
        let n = 4000usize;
        let mem = (0..n).filter(|_| w.next_instr().is_mem()).count();
        let expected = n as f64 / (1.0 + base_gap as f64);
        prop_assert!(
            (mem as f64 - expected).abs() < expected * 0.1 + 10.0,
            "mem {} vs expected {}", mem, expected
        );
    }
}

/// The SPEC suite's instruction streams contain only well-formed
/// instructions (every memory reference has a nonzero PC region and the
/// suite mixes loads and stores). The walk is long enough to sample
/// several 64 K-access pattern phases per benchmark.
#[test]
fn suite_streams_are_well_formed() {
    for b in SpecBenchmark::ALL {
        let mut w = b.build(1);
        let mut loads = 0;
        let mut stores = 0;
        for _ in 0..2_000_000 {
            match w.next_instr() {
                Instr::Load(m) | Instr::ChainedLoad(m) | Instr::SwPrefetch(m) => {
                    assert!(m.pc.get() > 0, "{b}: zero PC");
                    loads += 1;
                }
                Instr::Store(m) => {
                    assert!(m.pc.get() > 0, "{b}: zero PC");
                    stores += 1;
                }
                Instr::Op => {}
            }
        }
        assert!(loads > 0, "{b} must load");
        assert!(stores > 0, "{b} must store");
    }
}
