//! Edge-case coverage for [`Multiprogrammed`] round-robin scheduling:
//! degenerate program counts, degenerate quanta, and determinism when the
//! same mix is rebuilt across a sweep.

use tk_sim::trace::{Instr, MemRef, Workload};
use tk_sim::{run_workload, SystemConfig};
use tk_workloads::{Multiprogrammed, SpecBenchmark};

/// A workload whose loads are tagged with its identity and a running
/// counter, so the interleaving is fully observable.
struct Counter {
    tag: u64,
    n: u64,
}

impl Counter {
    fn boxed(tag: u64) -> Box<dyn Workload> {
        Box::new(Counter { tag, n: 0 })
    }
}

impl Workload for Counter {
    fn next_instr(&mut self) -> Instr {
        use timekeeping::{Addr, Pc};
        self.n += 1;
        Instr::Load(MemRef::new(
            Addr::new((self.tag << 32) | self.n),
            Pc::new(1),
        ))
    }
    fn name(&self) -> &str {
        "counter"
    }
}

fn addrs(mp: &mut Multiprogrammed, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| mp.next_instr().mem_ref().unwrap().addr.get())
        .collect()
}

#[test]
fn single_program_is_transparent() {
    // A one-program "mix" must behave exactly like the program alone:
    // same instruction stream, the scheduled index pinned at 0, and
    // self-switches at quantum boundaries invisible in the output.
    let mut mp = Multiprogrammed::new(vec![Counter::boxed(7)], 4);
    let got = addrs(&mut mp, 10);
    let want: Vec<u64> = (1..=10).map(|n| (7u64 << 32) | n).collect();
    assert_eq!(got, want);
    assert_eq!(mp.current(), 0);
    assert_eq!(mp.name(), "mp[counter]");
}

#[test]
fn quantum_one_alternates_every_instruction() {
    // The finest legal quantum: strict alternation, one switch per
    // retired instruction after the first.
    let mut mp = Multiprogrammed::new(vec![Counter::boxed(1), Counter::boxed(2)], 1);
    let got: Vec<u64> = addrs(&mut mp, 6).iter().map(|a| a >> 32).collect();
    assert_eq!(got, vec![1, 2, 1, 2, 1, 2]);
    assert_eq!(mp.switches(), 5);
    // Each program sees a contiguous private history despite the
    // interleaving.
    let mut mp = Multiprogrammed::new(vec![Counter::boxed(1), Counter::boxed(2)], 1);
    let low: Vec<u64> = addrs(&mut mp, 6).iter().map(|a| a & 0xffff_ffff).collect();
    assert_eq!(low, vec![1, 1, 2, 2, 3, 3]);
}

#[test]
fn quantum_beyond_budget_never_switches() {
    // A quantum larger than the whole instruction budget degenerates to
    // running the first program only.
    let budget = 1_000u64;
    let mut mp = Multiprogrammed::new(vec![Counter::boxed(3), Counter::boxed(4)], budget * 10);
    let tags: Vec<u64> = addrs(&mut mp, budget as usize)
        .iter()
        .map(|a| a >> 32)
        .collect();
    assert!(
        tags.iter().all(|&t| t == 3),
        "budget stays inside quantum 1"
    );
    assert_eq!(mp.switches(), 0);
    assert_eq!(mp.current(), 0);
}

#[test]
fn quantum_exactly_budget_never_switches() {
    // Boundary case: the switch happens on the *next* instruction after a
    // quantum expires, so quantum == budget also completes switch-free.
    let budget = 64u64;
    let mut mp = Multiprogrammed::new(vec![Counter::boxed(5), Counter::boxed(6)], budget);
    let _ = addrs(&mut mp, budget as usize);
    assert_eq!(mp.switches(), 0);
    // One more instruction crosses the boundary.
    let _ = mp.next_instr();
    assert_eq!(mp.switches(), 1);
    assert_eq!(mp.current(), 1);
}

#[test]
fn mixes_are_deterministic_across_sweeps() {
    // Rebuilding the same mix (same benchmarks, seeds, quantum) across a
    // parameter sweep must reproduce the simulation bit-for-bit — the
    // property the engine's memoization and the golden figures rely on.
    let build = || {
        Multiprogrammed::new(
            vec![
                Box::new(SpecBenchmark::Gzip.build(1)) as Box<dyn Workload>,
                Box::new(SpecBenchmark::Mcf.build(2)),
            ],
            5_000,
        )
    };
    let run = |mut mp: Multiprogrammed| run_workload(&mut mp, SystemConfig::base(), 100_000);
    let a = run(build());
    let b = run(build());
    assert_eq!(a.hierarchy.l1_accesses, b.hierarchy.l1_accesses);
    assert_eq!(a.hierarchy.l1_misses(), b.hierarchy.l1_misses());
    assert_eq!(a.core.cycles, b.core.cycles);
    // And the interleaving differs from either program alone, i.e. the
    // mix is actually mixing.
    let mut alone = SpecBenchmark::Gzip.build(1);
    let solo = run_workload(&mut alone, SystemConfig::base(), 100_000);
    assert_ne!(a.hierarchy.l1_misses(), solo.hierarchy.l1_misses());
}

#[test]
fn seed_changes_the_mix() {
    // Different inner seeds must produce a different simulation — guards
    // against the wrapper accidentally discarding per-program state.
    let run = |seed: u64| {
        let mut mp = Multiprogrammed::new(
            vec![
                Box::new(SpecBenchmark::Gzip.build(seed)) as Box<dyn Workload>,
                Box::new(SpecBenchmark::Mcf.build(seed + 1)),
            ],
            5_000,
        );
        run_workload(&mut mp, SystemConfig::base(), 100_000)
    };
    assert_ne!(run(1).hierarchy.l1_misses(), run(99).hierarchy.l1_misses());
}
