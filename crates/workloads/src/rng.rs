//! Deterministic pseudo-random number generation for workload synthesis.
//!
//! A small splitmix64/xorshift combination: fast, seedable, and stable
//! across platforms, so every figure regenerates bit-for-bit. (The `rand`
//! crate is deliberately not used in the hot path.)

/// A deterministic 64-bit PRNG (xorshift* seeded via splitmix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; distinct seeds give independent
    /// streams.
    pub fn new(seed: u64) -> Self {
        // Splitmix the seed so that small seeds (0, 1, 2...) diverge.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng { state: z | 1 }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift range reduction (unbiased enough for synthesis).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// True with probability `num / den`.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(3);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = Rng::new(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues must appear");
    }

    #[test]
    fn unit_in_range_and_varied() {
        let mut r = Rng::new(5);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 1000.0;
        assert!(
            (mean - 0.5).abs() < 0.05,
            "mean must be near 0.5, got {mean}"
        );
    }

    #[test]
    fn chance_statistics() {
        let mut r = Rng::new(6);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "~25% expected, got {hits}");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bound_panics() {
        Rng::new(1).below(0);
    }
}
