//! Multiprogrammed workloads: round-robin context switching between
//! several programs sharing the cache hierarchy.
//!
//! The paper's lineage runs through Mendelson, Thiébaut & Pradhan's
//! analytic model of live and dead lines *under multitasking* (citation \[11\], §1):
//! context switches end generations wholesale and restart them cold. This
//! wrapper lets any set of workloads be interleaved at a configurable
//! quantum so those effects are measurable with the same timekeeping
//! machinery.

use tk_sim::trace::{Instr, Workload};

/// Round-robin interleaving of several workloads with a fixed quantum.
///
/// Address-space separation (or deliberate sharing) is the inner
/// workloads' responsibility — SPEC profiles already live in disjoint
/// regions, so their conflict behavior under multiprogramming comes from
/// cache contention, exactly as in the Mendelson model.
///
/// # Examples
///
/// ```
/// use tk_workloads::{Multiprogrammed, SpecBenchmark};
/// use tk_sim::trace::Workload;
///
/// let mut mp = Multiprogrammed::new(
///     vec![
///         Box::new(SpecBenchmark::Gzip.build(1)),
///         Box::new(SpecBenchmark::Swim.build(1)),
///     ],
///     50_000, // instructions per quantum
/// );
/// let _ = mp.next_instr();
/// assert_eq!(mp.name(), "mp[gzip+swim]");
/// ```
pub struct Multiprogrammed {
    name: String,
    workloads: Vec<Box<dyn Workload>>,
    quantum: u64,
    current: usize,
    left_in_quantum: u64,
    switches: u64,
}

impl std::fmt::Debug for Multiprogrammed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Multiprogrammed")
            .field("name", &self.name)
            .field("quantum", &self.quantum)
            .field("current", &self.current)
            .field("switches", &self.switches)
            .finish_non_exhaustive()
    }
}

impl Multiprogrammed {
    /// Creates a round-robin schedule over `workloads` with `quantum`
    /// instructions per turn.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty or `quantum` is zero.
    pub fn new(workloads: Vec<Box<dyn Workload>>, quantum: u64) -> Self {
        assert!(!workloads.is_empty(), "need at least one workload");
        assert!(quantum > 0, "quantum must be nonzero");
        let name = format!(
            "mp[{}]",
            workloads
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join("+")
        );
        Multiprogrammed {
            name,
            workloads,
            quantum,
            current: 0,
            left_in_quantum: quantum,
            switches: 0,
        }
    }

    /// Number of context switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The currently scheduled workload index.
    pub fn current(&self) -> usize {
        self.current
    }
}

impl Workload for Multiprogrammed {
    fn next_instr(&mut self) -> Instr {
        if self.left_in_quantum == 0 {
            self.current = (self.current + 1) % self.workloads.len();
            self.left_in_quantum = self.quantum;
            self.switches += 1;
        }
        self.left_in_quantum -= 1;
        self.workloads[self.current].next_instr()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn fork(&self) -> Option<Box<dyn Workload>> {
        let workloads = self
            .workloads
            .iter()
            .map(|w| w.fork())
            .collect::<Option<Vec<_>>>()?;
        Some(Box::new(Multiprogrammed {
            name: self.name.clone(),
            workloads,
            quantum: self.quantum,
            current: self.current,
            left_in_quantum: self.left_in_quantum,
            switches: self.switches,
        }))
    }
}

/// A true concurrent mix: one member program per core.
///
/// Where [`Multiprogrammed`] time-slices programs on one core (the
/// Mendelson multitasking model), `ConcurrentMix` runs them *at the same
/// time* on a multi-core hierarchy: [`per_core_streams`] hands core `c`
/// an independent stream of member `c % members`, so a 2-program mix on
/// 4 cores runs two copies of each — sharing the L2 and, when members
/// touch common regions, exercising the MESI protocol. This is the
/// workload behind the `fig22_mp` figure.
///
/// Run on a single core it degrades gracefully to instruction-grained
/// round-robin interleaving (quantum 1), keeping the name usable in
/// `--cores=1` baselines.
///
/// [`per_core_streams`]: Workload::per_core_streams
///
/// # Examples
///
/// ```
/// use tk_workloads::{ConcurrentMix, SpecBenchmark};
/// use tk_sim::trace::Workload;
///
/// let mix = ConcurrentMix::new(vec![
///     Box::new(SpecBenchmark::Gzip.build(1)),
///     Box::new(SpecBenchmark::Swim.build(1)),
/// ]);
/// assert_eq!(mix.name(), "cmix[gzip+swim]");
/// let streams = mix.per_core_streams(4).unwrap();
/// assert_eq!(streams.len(), 4);
/// assert_eq!(streams[0].name(), "gzip");
/// assert_eq!(streams[1].name(), "swim");
/// assert_eq!(streams[2].name(), "gzip");
/// ```
pub struct ConcurrentMix {
    name: String,
    members: Vec<Box<dyn Workload>>,
    current: usize,
}

impl std::fmt::Debug for ConcurrentMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentMix")
            .field("name", &self.name)
            .field("members", &self.members.len())
            .finish_non_exhaustive()
    }
}

impl ConcurrentMix {
    /// Creates a mix of `members`, one per core (cycling when there are
    /// more cores than members).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn Workload>>) -> Self {
        assert!(!members.is_empty(), "need at least one member");
        let name = format!(
            "cmix[{}]",
            members
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join("+")
        );
        ConcurrentMix {
            name,
            members,
            current: 0,
        }
    }

    /// Number of member programs.
    pub fn members(&self) -> usize {
        self.members.len()
    }
}

impl Workload for ConcurrentMix {
    fn next_instr(&mut self) -> Instr {
        let i = self.current;
        self.current = (self.current + 1) % self.members.len();
        self.members[i].next_instr()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn fork(&self) -> Option<Box<dyn Workload>> {
        let members = self
            .members
            .iter()
            .map(|w| w.fork())
            .collect::<Option<Vec<_>>>()?;
        Some(Box::new(ConcurrentMix {
            name: self.name.clone(),
            members,
            current: self.current,
        }))
    }

    fn per_core_streams(&self, cores: u32) -> Option<Vec<Box<dyn Workload>>> {
        (0..cores as usize)
            .map(|c| self.members[c % self.members.len()].fork())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecBenchmark;

    struct Tagged(u64);
    impl Workload for Tagged {
        fn next_instr(&mut self) -> Instr {
            use timekeeping::{Addr, Pc};
            Instr::Load(tk_sim::trace::MemRef::new(Addr::new(self.0), Pc::new(1)))
        }
        fn name(&self) -> &str {
            "tagged"
        }
    }

    #[test]
    fn round_robin_respects_quantum() {
        let mut mp =
            Multiprogrammed::new(vec![Box::new(Tagged(0x100)), Box::new(Tagged(0x200))], 3);
        let addrs: Vec<u64> = (0..9)
            .map(|_| mp.next_instr().mem_ref().unwrap().addr.get())
            .collect();
        assert_eq!(
            addrs,
            vec![0x100, 0x100, 0x100, 0x200, 0x200, 0x200, 0x100, 0x100, 0x100]
        );
        assert_eq!(mp.switches(), 2);
    }

    #[test]
    fn single_workload_never_switches() {
        let mut mp = Multiprogrammed::new(vec![Box::new(Tagged(0x100))], 2);
        for _ in 0..10 {
            mp.next_instr();
        }
        // It "switches" back to itself at quantum boundaries, but stays
        // at index 0.
        assert_eq!(mp.current(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_set_rejected() {
        let _ = Multiprogrammed::new(vec![], 10);
    }

    #[test]
    fn context_switches_shorten_generations() {
        // The Mendelson effect: co-scheduling a cache-hungry program with a
        // small one cuts the small program's hit rate vs running alone.
        use tk_sim::{run_workload, SystemConfig};
        let insts = 600_000;
        let alone = {
            let mut w = SpecBenchmark::Eon.build(1);
            run_workload(&mut w, SystemConfig::base(), insts)
        };
        let shared = {
            let mut mp = Multiprogrammed::new(
                vec![
                    Box::new(SpecBenchmark::Eon.build(1)),
                    Box::new(SpecBenchmark::Art.build(1)),
                ],
                20_000,
            );
            run_workload(&mut mp, SystemConfig::base(), insts)
        };
        // eon alone barely misses; sharing with art floods the cache.
        assert!(
            shared.hierarchy.l1_miss_rate() > alone.hierarchy.l1_miss_rate(),
            "contention must raise the miss rate: {} vs {}",
            shared.hierarchy.l1_miss_rate(),
            alone.hierarchy.l1_miss_rate()
        );
        assert!(shared.ipc() < alone.ipc());
    }
}
