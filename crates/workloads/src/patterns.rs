//! Composable reference-pattern building blocks.
//!
//! Each SPEC2000 benchmark profile is assembled from a weighted mix of
//! these patterns. Every pattern is deterministic given the shared
//! [`Rng`] and produces raw accesses (address, PC, kind);
//! the composite workload interleaves them with compute instructions.

use crate::rng::Rng;

/// How an access reaches the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Independent load (array-style; overlaps in the window).
    Load,
    /// Address-dependent load (pointer-style; serializes).
    ChainedLoad,
    /// Store (retires through the write buffer).
    Store,
}

/// One raw memory access produced by a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawAccess {
    /// Byte address.
    pub addr: u64,
    /// Synthetic program counter.
    pub pc: u64,
    /// Access kind.
    pub kind: AccessKind,
}

/// A deterministic source of raw accesses.
pub trait Pattern: std::fmt::Debug {
    /// Produces the next access.
    fn next_access(&mut self, rng: &mut Rng) -> RawAccess;

    /// Address this pattern would like software-prefetched (a compiler
    /// lookahead), if it has one.
    fn prefetch_hint(&self) -> Option<u64> {
        None
    }

    /// An independent copy with identical state, so a composite workload
    /// can be forked mid-stream (`Workload::fork`). Both copies produce
    /// the same future access sequence given the same `Rng` stream.
    fn box_clone(&self) -> Box<dyn Pattern>;
}

/// Sequential sweep over a large region, wrapping at the end — the
/// dominant pattern of streaming FP codes (swim, facerec). Generates
/// capacity misses with long, regular reload intervals.
#[derive(Debug, Clone)]
pub struct StreamPattern {
    base: u64,
    footprint: u64,
    stride: u64,
    pos: u64,
    pc_base: u64,
    store_every: u64,
    count: u64,
    lookahead: u64,
}

impl StreamPattern {
    /// Creates a sweep of `footprint` bytes starting at `base`, advancing
    /// `stride` bytes per access.
    ///
    /// `store_every` makes every n-th access a store (0 = never).
    ///
    /// # Panics
    ///
    /// Panics if `footprint` or `stride` is zero.
    pub fn new(base: u64, footprint: u64, stride: u64, pc_base: u64, store_every: u64) -> Self {
        assert!(
            footprint > 0 && stride > 0,
            "footprint and stride must be nonzero"
        );
        StreamPattern {
            base,
            footprint,
            stride,
            pos: 0,
            pc_base,
            store_every,
            count: 0,
            lookahead: 8 * 64,
        }
    }
}

impl Pattern for StreamPattern {
    fn box_clone(&self) -> Box<dyn Pattern> {
        Box::new(self.clone())
    }

    fn next_access(&mut self, _rng: &mut Rng) -> RawAccess {
        let addr = self.base + self.pos;
        self.pos = (self.pos + self.stride) % self.footprint;
        self.count += 1;
        let kind = if self.store_every > 0 && self.count.is_multiple_of(self.store_every) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        // A small rotating set of PCs models the loop body.
        let pc = self.pc_base + (self.count % 4) * 4;
        RawAccess { addr, pc, kind }
    }

    fn prefetch_hint(&self) -> Option<u64> {
        Some(self.base + (self.pos + self.lookahead) % self.footprint)
    }
}

/// Triad-style multi-array loop: `a[i] = b[i] + c[i]` — three interleaved
/// streams with fixed per-array PCs (wupwise, swim kernels).
#[derive(Debug, Clone)]
pub struct TriadPattern {
    bases: [u64; 3],
    footprint: u64,
    stride: u64,
    pos: u64,
    phase: usize,
    pc_base: u64,
}

impl TriadPattern {
    /// Creates a triad over three arrays of `footprint` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `footprint` or `stride` is zero.
    pub fn new(bases: [u64; 3], footprint: u64, stride: u64, pc_base: u64) -> Self {
        assert!(
            footprint > 0 && stride > 0,
            "footprint and stride must be nonzero"
        );
        TriadPattern {
            bases,
            footprint,
            stride,
            pos: 0,
            phase: 0,
            pc_base,
        }
    }
}

impl Pattern for TriadPattern {
    fn box_clone(&self) -> Box<dyn Pattern> {
        Box::new(self.clone())
    }

    fn next_access(&mut self, _rng: &mut Rng) -> RawAccess {
        let (array, kind) = match self.phase {
            0 => (1, AccessKind::Load),  // b[i]
            1 => (2, AccessKind::Load),  // c[i]
            _ => (0, AccessKind::Store), // a[i]
        };
        let addr = self.bases[array] + self.pos;
        let pc = self.pc_base + self.phase as u64 * 4;
        self.phase += 1;
        if self.phase == 3 {
            self.phase = 0;
            self.pos = (self.pos + self.stride) % self.footprint;
        }
        RawAccess { addr, pc, kind }
    }

    fn prefetch_hint(&self) -> Option<u64> {
        Some(self.bases[1] + (self.pos + 8 * 64) % self.footprint)
    }
}

/// Pointer chase over a fixed pseudo-random cycle of nodes (mcf's lists,
/// ammp's neighbor structures). The traversal order is a full-period LCG
/// permutation, so it *repeats identically* every lap — the regularity the
/// paper's per-frame predictors exploit — while looking random to the
/// cache.
#[derive(Debug, Clone)]
pub struct PointerChasePattern {
    base: u64,
    nodes: u64,
    node_spacing: u64,
    idx: u64,
    mult: u64,
    inc: u64,
    pc: u64,
    fields: u64,
    field: u64,
    noise_pct: u64,
}

impl PointerChasePattern {
    /// Creates a chase over `nodes` nodes spaced `node_spacing` bytes
    /// apart starting at `base`. Each visit dereferences the node pointer
    /// (a chained load) and then touches `fields - 1` further 8-byte
    /// fields of the node — plain loads, with the final field written
    /// back (real traversals update node state). Multi-word nodes are
    /// what give chased blocks nonzero live times.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is a power of two (needed for the full-period
    /// traversal), or if `node_spacing` or `fields` is zero.
    pub fn new(base: u64, nodes: u64, node_spacing: u64, pc: u64, seed: u64, fields: u64) -> Self {
        assert!(nodes.is_power_of_two(), "node count must be a power of two");
        assert!(node_spacing > 0, "node spacing must be nonzero");
        assert!(fields > 0, "nodes must have at least the pointer field");
        assert!(
            fields * 8 <= node_spacing,
            "fields must fit within the node"
        );
        // Full period over 2^k: multiplier ≡ 1 (mod 4), odd increment.
        let mut r = Rng::new(seed);
        let mult = (r.next_u64() & (nodes - 1) & !3) | 5;
        let inc = r.next_u64() | 1;
        PointerChasePattern {
            base,
            nodes,
            node_spacing,
            idx: 0,
            mult,
            inc,
            pc,
            fields,
            field: 0,
            noise_pct: 0,
        }
    }

    /// Makes the given percentage of pointer steps jump to a random node
    /// instead of following the cycle — real traversals are data-dependent
    /// and not perfectly repeatable, which caps how well *any* history
    /// predictor can do on them.
    pub fn with_noise_pct(mut self, pct: u64) -> Self {
        self.noise_pct = pct;
        self
    }

    /// Number of nodes in the cycle.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }
}

impl Pattern for PointerChasePattern {
    fn box_clone(&self) -> Box<dyn Pattern> {
        Box::new(self.clone())
    }

    fn next_access(&mut self, rng: &mut Rng) -> RawAccess {
        let node_addr = self.base + self.idx * self.node_spacing;
        let (addr, kind) = if self.field == 0 {
            (node_addr, AccessKind::ChainedLoad)
        } else if self.field == self.fields - 1 {
            (node_addr + self.field * 8, AccessKind::Store)
        } else {
            (node_addr + self.field * 8, AccessKind::Load)
        };
        let pc = self.pc + self.field * 4;
        self.field += 1;
        if self.field >= self.fields {
            self.field = 0;
            self.idx = if self.noise_pct > 0 && rng.chance(self.noise_pct, 100) {
                rng.below(self.nodes)
            } else {
                (self.idx.wrapping_mul(self.mult).wrapping_add(self.inc)) & (self.nodes - 1)
            };
        }
        RawAccess { addr, pc, kind }
    }
}

/// Tiled traversal: sweep a tile several times, then move to the next tile
/// (art's blocked matrix passes). Produces capacity misses whose live
/// times are highly regular.
#[derive(Debug, Clone)]
pub struct BlockedPattern {
    base: u64,
    footprint: u64,
    tile: u64,
    sweeps_per_tile: u64,
    tile_start: u64,
    pos: u64,
    sweep: u64,
    stride: u64,
    pc_base: u64,
}

impl BlockedPattern {
    /// Creates a tiled traversal of `footprint` bytes in tiles of `tile`
    /// bytes, each swept `sweeps_per_tile` times with `stride`-byte steps.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero or `tile > footprint`.
    pub fn new(
        base: u64,
        footprint: u64,
        tile: u64,
        sweeps_per_tile: u64,
        stride: u64,
        pc_base: u64,
    ) -> Self {
        assert!(footprint > 0 && tile > 0 && sweeps_per_tile > 0 && stride > 0);
        assert!(tile <= footprint, "tile must fit in the footprint");
        BlockedPattern {
            base,
            footprint,
            tile,
            sweeps_per_tile,
            tile_start: 0,
            pos: 0,
            sweep: 0,
            stride,
            pc_base,
        }
    }
}

impl Pattern for BlockedPattern {
    fn box_clone(&self) -> Box<dyn Pattern> {
        Box::new(self.clone())
    }

    fn next_access(&mut self, _rng: &mut Rng) -> RawAccess {
        let addr = self.base + self.tile_start + self.pos;
        let pc = self.pc_base + (self.sweep % 4) * 4;
        self.pos += self.stride;
        if self.pos >= self.tile {
            self.pos = 0;
            self.sweep += 1;
            if self.sweep >= self.sweeps_per_tile {
                self.sweep = 0;
                self.tile_start = (self.tile_start + self.tile) % self.footprint;
            }
        }
        RawAccess {
            addr,
            pc,
            kind: AccessKind::Load,
        }
    }

    fn prefetch_hint(&self) -> Option<u64> {
        Some(self.base + self.tile_start + (self.pos + 4 * 64) % self.tile)
    }
}

/// Round-robin walk over `ways` lines that all map to the same cache sets
/// — a pure conflict-miss generator (twolf's and parser's hot structures
/// aliasing in the direct-mapped L1). With `ways` greater than the L1
/// associativity every access misses, dead times are short, and the
/// victim cache rescues the whole pattern.
#[derive(Debug, Clone)]
pub struct ConflictWalkPattern {
    base: u64,
    alias_stride: u64,
    ways: u64,
    sets_used: u64,
    set_stride: u64,
    words_per_visit: u64,
    step: u64,
    word: u64,
    pc_base: u64,
    chained: bool,
    randomized: bool,
    cur_way: u64,
}

impl ConflictWalkPattern {
    /// Creates a walk of `ways` aliasing lines (spaced `alias_stride`
    /// apart — use the L1 cache size) across `sets_used` consecutive sets.
    /// Each visit touches `words_per_visit` 8-byte words of the line (real
    /// structures are used several times before the conflicting line
    /// knocks them out — this is what makes conflict-evicted blocks die
    /// with *short* dead times).
    ///
    /// `chained` makes the first access of each visit dependent
    /// (latency-exposed).
    ///
    /// # Panics
    ///
    /// Panics if `ways`, `sets_used`, `alias_stride` or `words_per_visit`
    /// is zero.
    #[allow(clippy::too_many_arguments)] // mirrors the knobs of the modeled loop nest
    pub fn new(
        base: u64,
        alias_stride: u64,
        ways: u64,
        sets_used: u64,
        set_stride: u64,
        words_per_visit: u64,
        pc_base: u64,
        chained: bool,
    ) -> Self {
        assert!(ways > 0 && sets_used > 0 && alias_stride > 0 && words_per_visit > 0);
        ConflictWalkPattern {
            base,
            alias_stride,
            ways,
            sets_used,
            set_stride,
            words_per_visit,
            step: 0,
            word: 0,
            pc_base,
            chained,
            randomized: false,
            cur_way: 0,
        }
    }

    /// Visits the aliasing ways in random order instead of round-robin.
    /// The misses remain conflict misses, but the successor of any given
    /// block becomes unpredictable — the twolf/parser behavior that defeats
    /// address prediction (§5.2.3).
    pub fn randomized(mut self) -> Self {
        self.randomized = true;
        self
    }
}

impl Pattern for ConflictWalkPattern {
    fn box_clone(&self) -> Box<dyn Pattern> {
        Box::new(self.clone())
    }

    fn next_access(&mut self, rng: &mut Rng) -> RawAccess {
        if self.randomized && self.word == 0 {
            self.cur_way = rng.below(self.ways);
        }
        let way = if self.randomized {
            self.cur_way
        } else {
            self.step % self.ways
        };
        let set = (self.step / self.ways) % self.sets_used;
        let addr =
            self.base + way * self.alias_stride + set * self.set_stride + (self.word % 4) * 8;
        let kind = if self.chained && self.word == 0 {
            AccessKind::ChainedLoad
        } else {
            AccessKind::Load
        };
        // Branchy code: each word is touched from one of two code paths,
        // so a block's per-generation PC trace varies between visits. The
        // timekeeping predictor never sees PCs; PC-trace predictors (DBCP)
        // lose their signatures here — the fragility §5.2.1 calls out.
        let pc = self.pc_base + way * 16 + self.word * 4 + rng.below(4) * 256;
        self.word += 1;
        if self.word >= self.words_per_visit {
            self.word = 0;
            self.step += 1;
        }
        RawAccess { addr, pc, kind }
    }
}

/// Random accesses within a small, cache-resident working set — the
/// mostly-hitting base traffic of low-memory-stall programs (eon, vortex,
/// sixtrack, crafty's tables).
#[derive(Debug, Clone)]
pub struct HotWorkingSetPattern {
    base: u64,
    working_set: u64,
    pc_base: u64,
    store_chance_pct: u64,
    chained_chance_pct: u64,
}

impl HotWorkingSetPattern {
    /// Creates a hot working set of `working_set` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `working_set` is zero.
    pub fn new(base: u64, working_set: u64, pc_base: u64, store_chance_pct: u64) -> Self {
        assert!(working_set > 0, "working set must be nonzero");
        HotWorkingSetPattern {
            base,
            working_set,
            pc_base,
            store_chance_pct,
            chained_chance_pct: 0,
        }
    }

    /// Makes the given percentage of loads address-dependent — random
    /// *and* latency-exposed, the signature of parser's and twolf's
    /// irregular structures (and the reason hardware prefetchers cannot
    /// help them).
    pub fn with_chained_pct(mut self, pct: u64) -> Self {
        self.chained_chance_pct = pct;
        self
    }
}

impl Pattern for HotWorkingSetPattern {
    fn box_clone(&self) -> Box<dyn Pattern> {
        Box::new(self.clone())
    }

    fn next_access(&mut self, rng: &mut Rng) -> RawAccess {
        let off = rng.below(self.working_set) & !7;
        let kind = if rng.chance(self.store_chance_pct, 100) {
            AccessKind::Store
        } else if rng.chance(self.chained_chance_pct, 100) {
            AccessKind::ChainedLoad
        } else {
            AccessKind::Load
        };
        RawAccess {
            addr: self.base + off,
            pc: self.pc_base + rng.below(8) * 4,
            kind,
        }
    }
}

/// Five-point stencil sweep over a 2-D grid (mgrid, applu): several
/// simultaneous streams offset by one row, with a store per point.
#[derive(Debug, Clone)]
pub struct StencilPattern {
    base: u64,
    row_bytes: u64,
    rows: u64,
    elem: u64,
    row: u64,
    col: u64,
    phase: usize,
    pc_base: u64,
}

impl StencilPattern {
    /// Creates a stencil over a `rows × (row_bytes / elem)` grid of
    /// `elem`-byte elements.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `rows < 3`.
    pub fn new(base: u64, row_bytes: u64, rows: u64, elem: u64, pc_base: u64) -> Self {
        assert!(
            row_bytes > 0 && elem > 0 && rows >= 3,
            "grid must be at least 3 rows"
        );
        StencilPattern {
            base,
            row_bytes,
            rows,
            elem,
            row: 1,
            col: 0,
            phase: 0,
            pc_base,
        }
    }
}

impl Pattern for StencilPattern {
    fn box_clone(&self) -> Box<dyn Pattern> {
        Box::new(self.clone())
    }

    fn next_access(&mut self, _rng: &mut Rng) -> RawAccess {
        // north, west, center, east, south, then store to center.
        let (dr, dc, kind) = match self.phase {
            0 => (-1i64, 0i64, AccessKind::Load),
            1 => (0, -1, AccessKind::Load),
            2 => (0, 0, AccessKind::Load),
            3 => (0, 1, AccessKind::Load),
            4 => (1, 0, AccessKind::Load),
            _ => (0, 0, AccessKind::Store),
        };
        let r = (self.row as i64 + dr).rem_euclid(self.rows as i64) as u64;
        let cols = self.row_bytes / self.elem;
        let c = (self.col as i64 + dc).rem_euclid(cols as i64) as u64;
        let addr = self.base + r * self.row_bytes + c * self.elem;
        let pc = self.pc_base + self.phase as u64 * 4;
        self.phase += 1;
        if self.phase == 6 {
            self.phase = 0;
            self.col += 1;
            if self.col >= cols {
                self.col = 0;
                self.row += 1;
                if self.row >= self.rows - 1 {
                    self.row = 1;
                }
            }
        }
        RawAccess { addr, pc, kind }
    }

    fn prefetch_hint(&self) -> Option<u64> {
        let cols = self.row_bytes / self.elem;
        let c = (self.col + 16).min(cols - 1);
        Some(self.base + (self.row + 1) % self.rows * self.row_bytes + c * self.elem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::new(1)
    }

    #[test]
    fn stream_wraps_and_strides() {
        let mut p = StreamPattern::new(0x1000, 256, 64, 0x400, 0);
        let mut r = rng();
        let addrs: Vec<u64> = (0..5).map(|_| p.next_access(&mut r).addr).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10C0, 0x1000]);
        assert!(p.prefetch_hint().is_some());
    }

    #[test]
    fn stream_emits_stores() {
        let mut p = StreamPattern::new(0, 1 << 20, 8, 0x400, 4);
        let mut r = rng();
        let kinds: Vec<AccessKind> = (0..8).map(|_| p.next_access(&mut r).kind).collect();
        assert_eq!(kinds.iter().filter(|&&k| k == AccessKind::Store).count(), 2);
    }

    #[test]
    fn triad_rotates_arrays() {
        let mut p = TriadPattern::new([0, 1 << 24, 2 << 24], 1 << 20, 8, 0x500);
        let mut r = rng();
        let a1 = p.next_access(&mut r); // b[0]
        let a2 = p.next_access(&mut r); // c[0]
        let a3 = p.next_access(&mut r); // a[0] store
        assert_eq!(a1.addr, 1 << 24);
        assert_eq!(a2.addr, 2 << 24);
        assert_eq!(a3.addr, 0);
        assert_eq!(a3.kind, AccessKind::Store);
        // Next triple advances by the stride.
        assert_eq!(p.next_access(&mut r).addr, (1 << 24) + 8);
    }

    #[test]
    fn pointer_chase_full_period() {
        let mut p = PointerChasePattern::new(0, 64, 128, 0x600, 9, 1);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let a = p.next_access(&mut r);
            assert_eq!(a.kind, AccessKind::ChainedLoad);
            seen.insert(a.addr);
        }
        assert_eq!(
            seen.len(),
            64,
            "LCG walk must visit every node before repeating"
        );
        // The next lap repeats the identical order.
        let first_again = p.next_access(&mut r).addr;
        assert_eq!(first_again, 0, "lap must restart at the initial node");
    }

    #[test]
    fn blocked_reuses_tile_then_moves() {
        // tile 128 bytes, stride 64: 2 accesses per sweep, 3 sweeps.
        let mut p = BlockedPattern::new(0, 512, 128, 3, 64, 0x700);
        let mut r = rng();
        let addrs: Vec<u64> = (0..8).map(|_| p.next_access(&mut r).addr).collect();
        // Three sweeps of [0, 64], then the next tile [128, 192].
        assert_eq!(addrs, vec![0, 64, 0, 64, 0, 64, 128, 192]);
    }

    #[test]
    fn conflict_walk_aliases_same_set() {
        let l1 = 32 * 1024;
        let mut p = ConflictWalkPattern::new(0x40, l1, 3, 2, 32, 1, 0x800, true);
        let mut r = rng();
        let a: Vec<RawAccess> = (0..6).map(|_| p.next_access(&mut r)).collect();
        // First three share the low bits (same set), differ by the cache
        // size (alias), then the next set.
        assert_eq!(a[0].addr % l1, a[1].addr % l1);
        assert_eq!(a[1].addr % l1, a[2].addr % l1);
        assert_eq!(a[3].addr % l1, a[0].addr % l1 + 32);
        assert!(a.iter().all(|x| x.kind == AccessKind::ChainedLoad));
    }

    #[test]
    fn hot_working_set_stays_inside() {
        let mut p = HotWorkingSetPattern::new(0x10_0000, 4096, 0x900, 20);
        let mut r = rng();
        for _ in 0..500 {
            let a = p.next_access(&mut r);
            assert!(a.addr >= 0x10_0000 && a.addr < 0x10_0000 + 4096);
        }
    }

    #[test]
    fn stencil_touches_neighbors() {
        let mut p = StencilPattern::new(0, 512, 8, 8, 0xA00);
        let mut r = rng();
        let pts: Vec<RawAccess> = (0..6).map(|_| p.next_access(&mut r)).collect();
        // Center at row 1, col 0: north is row 0.
        assert_eq!(pts[0].addr, 0); // north (0,0)
        assert_eq!(pts[2].addr, 512); // center (1,0)
        assert_eq!(pts[4].addr, 1024); // south (2,0)
        assert_eq!(pts[5].kind, AccessKind::Store);
        assert!(p.prefetch_hint().is_some());
    }

    #[test]
    fn patterns_are_deterministic() {
        let run = || {
            let mut p = PointerChasePattern::new(0, 256, 64, 1, 42, 1);
            let mut r = Rng::new(5);
            (0..100)
                .map(|_| p.next_access(&mut r).addr)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
