//! Capture→replay: convert a TKTRACE1 observability capture into a
//! replayable trace file.
//!
//! A run traced with `--trace=ref` records one
//! [`TraceKind::Access`] record per demand reference entering the L1
//! (`line` = L1 line address, `aux` = PC×2 + store bit). This module
//! rebuilds the reference stream from those records — the conversion
//! `tk_trace_export` performs — so a capture from one run can be fed
//! back through `--trace-file` as a first-class workload in another.
//!
//! The reconstruction is line-granular: the simulator hashes addresses
//! to lines before the observer sees them, so the replayed address is
//! `line × block_bytes` (byte offsets within a line never influence
//! cache behavior — DESIGN.md §2i documents the full invariant set).
//! Chained loads and software prefetches are captured as the demand
//! references they generate, so a replay degrades them to plain
//! loads; on timing-free configurations the hit/miss stream is
//! nevertheless identical (`tests/trace_roundtrip.rs` pins it).

use tk_sim::obs::{TraceKind, TraceRecord};
use tk_sim::trace::{Instr, MemRef};

use timekeeping::{Addr, Pc};

use crate::tracefile::render_instr;

/// Rebuilds the demand-reference instruction stream from a TKTRACE1
/// capture: every [`TraceKind::Access`] record becomes a load or store
/// at `line × block_bytes`; all other record kinds are ignored.
///
/// # Errors
///
/// Returns a message when the capture holds no `Access` records (the
/// run was not traced with `--trace=ref`) or `block_bytes` is 0.
pub fn capture_to_instrs(records: &[TraceRecord], block_bytes: u64) -> Result<Vec<Instr>, String> {
    if block_bytes == 0 {
        return Err("block size must be nonzero".to_owned());
    }
    let mut out = Vec::new();
    for rec in records {
        if rec.kind != TraceKind::Access {
            continue;
        }
        let addr = Addr::new(rec.line.wrapping_mul(block_bytes));
        let pc = Pc::new(rec.aux >> 1);
        let mref = MemRef::new(addr, pc);
        out.push(if rec.aux & 1 == 1 {
            Instr::Store(mref)
        } else {
            Instr::Load(mref)
        });
    }
    if out.is_empty() {
        return Err(
            "capture holds no access records — was the source run traced with --trace=ref?"
                .to_owned(),
        );
    }
    Ok(out)
}

/// Renders a capture as text-format trace lines (the composition of
/// [`capture_to_instrs`] and [`render_instr`]).
///
/// # Errors
///
/// As for [`capture_to_instrs`].
pub fn capture_to_trace_text(records: &[TraceRecord], block_bytes: u64) -> Result<String, String> {
    let instrs = capture_to_instrs(records, block_bytes)?;
    let mut out = String::with_capacity(instrs.len() * 16);
    for i in &instrs {
        out.push_str(&render_instr(i));
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(line: u64, pc: u64, store: bool) -> TraceRecord {
        TraceRecord {
            kind: TraceKind::Access,
            cycle: 0,
            line,
            aux: pc * 2 + u64::from(store),
        }
    }

    #[test]
    fn rebuilds_loads_and_stores_at_line_granularity() {
        let recs = vec![
            access(0x100, 0x40, false),
            TraceRecord {
                kind: TraceKind::Miss,
                cycle: 1,
                line: 0x100,
                aux: 0,
            },
            access(0x101, 0x44, true),
        ];
        let instrs = capture_to_instrs(&recs, 32).unwrap();
        assert_eq!(
            instrs,
            vec![
                Instr::Load(MemRef::new(Addr::new(0x100 * 32), Pc::new(0x40))),
                Instr::Store(MemRef::new(Addr::new(0x101 * 32), Pc::new(0x44))),
            ]
        );
        let text = capture_to_trace_text(&recs, 32).unwrap();
        assert_eq!(text, "L 2000 40\nS 2020 44\n");
    }

    #[test]
    fn rejects_captures_without_access_records() {
        let recs = vec![TraceRecord {
            kind: TraceKind::Miss,
            cycle: 1,
            line: 0x100,
            aux: 0,
        }];
        let e = capture_to_instrs(&recs, 32).unwrap_err();
        assert!(e.contains("--trace=ref"));
        assert!(capture_to_instrs(&[access(1, 1, false)], 0).is_err());
    }
}
