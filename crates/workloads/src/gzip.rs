//! Dependency-free gzip (RFC 1952) decompression and a stored-block
//! compressor, so multi-GB compressed trace captures ingest without any
//! external crate.
//!
//! The centerpiece is [`GzDecoder`], a streaming [`Read`] adapter that
//! inflates DEFLATE (RFC 1951) members incrementally: it holds only an
//! 8 KiB input buffer, the 32 KiB LZ77 back-reference window, and a
//! small staging buffer — never the whole decompressed stream — so a
//! trace reader layered on top of it ([`crate::tracefile`]) can walk
//! arbitrarily large captures in constant memory. All three DEFLATE
//! block types (stored, fixed Huffman, dynamic Huffman) are supported,
//! per-member CRC32 and ISIZE trailers are verified, and multi-member
//! concatenations (`cat a.gz b.gz`) decode as one stream, exactly like
//! `gunzip`.
//!
//! Corrupt input of any shape — byte soup, truncated members, bad
//! Huffman tables, over-subscribed codes, out-of-window distances, bad
//! checksums — surfaces as [`std::io::Error`] with
//! [`std::io::ErrorKind::InvalidData`] or
//! [`std::io::ErrorKind::UnexpectedEof`];
//! the decoder never panics (pinned by the fuzz tests in
//! `tests/trace_ingest.rs`).
//!
//! The matching writer, [`gzip_store`], emits *stored* (uncompressed)
//! DEFLATE blocks with a correct header and trailer. That trades
//! compression ratio for simplicity — it exists so tests, CI smokes and
//! `tk_trace_export --gzip` can produce files any gzip implementation
//! (including this decoder) accepts.

use std::io::{Error, ErrorKind, Read, Result};

/// The two-byte magic opening every gzip member.
pub const GZIP_MAGIC: [u8; 2] = [0x1f, 0x8b];

/// Whether `head` starts with the gzip magic (transparent-decompression
/// sniff used by the trace readers).
pub fn is_gzip(head: &[u8]) -> bool {
    head.len() >= 2 && head[0] == GZIP_MAGIC[0] && head[1] == GZIP_MAGIC[1]
}

fn bad(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, msg.into())
}

fn eof(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::UnexpectedEof, msg.into())
}

// ---------------------------------------------------------------------------
// CRC32 (the gzip polynomial, reflected)
// ---------------------------------------------------------------------------

fn crc_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (n, e) in t.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC32 of `data` (the gzip/zlib polynomial), for trailers and tests.
pub fn crc32(data: &[u8]) -> u32 {
    update_crc(0xffff_ffff, data) ^ 0xffff_ffff
}

fn update_crc(crc: u32, data: &[u8]) -> u32 {
    let t = crc_table();
    let mut c = crc;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

// ---------------------------------------------------------------------------
// Huffman decoding (canonical codes, puff-style)
// ---------------------------------------------------------------------------

const MAX_BITS: usize = 15;

/// A canonical Huffman code: symbol counts per code length plus the
/// symbols sorted by (length, symbol) — enough to decode bit-by-bit.
struct Huffman {
    count: [u16; MAX_BITS + 1],
    symbol: Vec<u16>,
}

impl Huffman {
    /// Builds the decode tables from per-symbol code lengths; rejects
    /// over-subscribed codes (an incomplete code is tolerated, matching
    /// zlib — it only errors if the stream actually uses a gap).
    fn new(lengths: &[u16]) -> Result<Huffman> {
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            if len as usize > MAX_BITS {
                return Err(bad("code length exceeds 15 bits"));
            }
            count[len as usize] += 1;
        }
        if count[0] as usize == lengths.len() {
            return Err(bad("empty Huffman code"));
        }
        let mut left: i32 = 1;
        for c in &count[1..] {
            left <<= 1;
            left -= i32::from(*c);
            if left < 0 {
                return Err(bad("over-subscribed Huffman code"));
            }
        }
        let mut offs = [0u16; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offs[len + 1] = offs[len] + count[len];
        }
        let mut symbol = vec![0u16; lengths.len()];
        for (sym, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbol[offs[len as usize] as usize] = sym as u16;
                offs[len as usize] += 1;
            }
        }
        Ok(Huffman { count, symbol })
    }
}

// ---------------------------------------------------------------------------
// The streaming decoder
// ---------------------------------------------------------------------------

const WINDOW: usize = 32 * 1024;
const INBUF: usize = 8 * 1024;

/// What the decoder does next when its staging buffer drains.
enum State {
    /// At the start of a gzip member header (or EOF, if no byte follows).
    Member,
    /// Between DEFLATE blocks; `true` once the final block has closed.
    BlockBoundary(bool),
    /// Inside a stored block with this many bytes left to copy.
    Stored { remaining: u16, final_block: bool },
    /// Inside a compressed block with these live decode tables.
    Huff {
        lit: Huffman,
        dist: Huffman,
        final_block: bool,
    },
    /// Clean end of the whole stream.
    Done,
}

/// A streaming gzip inflater: wraps any [`Read`] of gzip bytes and
/// yields the decompressed bytes, member after member, in constant
/// memory.
///
/// # Examples
///
/// ```
/// use std::io::Read;
/// use tk_workloads::gzip::{gzip_store, GzDecoder};
///
/// let gz = gzip_store(b"L 1040 400\nO\n");
/// let mut out = String::new();
/// GzDecoder::new(&gz[..]).read_to_string(&mut out)?;
/// assert_eq!(out, "L 1040 400\nO\n");
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct GzDecoder<R: Read> {
    inner: R,
    inbuf: [u8; INBUF],
    inpos: usize,
    inlen: usize,
    bitbuf: u32,
    bitcnt: u32,
    window: Box<[u8; WINDOW]>,
    /// Total bytes decoded in the current member (ISIZE check and
    /// back-reference range check).
    member_out: u64,
    crc: u32,
    state: State,
    /// Decoded bytes staged for the caller.
    out: Vec<u8>,
    outpos: usize,
}

impl<R: Read> std::fmt::Debug for GzDecoder<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GzDecoder")
            .field("member_out", &self.member_out)
            .finish_non_exhaustive()
    }
}

impl<R: Read> GzDecoder<R> {
    /// Wraps a reader of gzip bytes.
    pub fn new(inner: R) -> Self {
        GzDecoder {
            inner,
            inbuf: [0; INBUF],
            inpos: 0,
            inlen: 0,
            bitbuf: 0,
            bitcnt: 0,
            window: Box::new([0; WINDOW]),
            member_out: 0,
            crc: 0xffff_ffff,
            state: State::Member,
            out: Vec::with_capacity(4096),
            outpos: 0,
        }
    }

    /// Next raw input byte, or `None` at a clean end of input.
    fn try_byte(&mut self) -> Result<Option<u8>> {
        if self.inpos == self.inlen {
            self.inpos = 0;
            self.inlen = loop {
                match self.inner.read(&mut self.inbuf) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            if self.inlen == 0 {
                return Ok(None);
            }
        }
        let b = self.inbuf[self.inpos];
        self.inpos += 1;
        Ok(Some(b))
    }

    fn byte(&mut self) -> Result<u8> {
        self.try_byte()?
            .ok_or_else(|| eof("unexpected end of gzip stream"))
    }

    fn bits(&mut self, n: u32) -> Result<u32> {
        while self.bitcnt < n {
            let b = self.byte()?;
            self.bitbuf |= u32::from(b) << self.bitcnt;
            self.bitcnt += 8;
        }
        let v = self.bitbuf & ((1u32 << n) - 1);
        self.bitbuf >>= n;
        self.bitcnt -= n;
        Ok(v)
    }

    /// Discards the partial byte so the next read is byte-aligned.
    fn align(&mut self) {
        self.bitbuf = 0;
        self.bitcnt = 0;
    }

    fn decode(&mut self, which: Which) -> Result<u16> {
        let mut code: i32 = 0;
        let mut first: i32 = 0;
        let mut index: i32 = 0;
        for len in 1..=MAX_BITS {
            code |= self.bits(1)? as i32;
            let count = {
                let h = match (&self.state, which) {
                    (State::Huff { lit, .. }, Which::Lit) => lit,
                    (State::Huff { dist, .. }, Which::Dist) => dist,
                    _ => return Err(bad("decode outside a Huffman block")),
                };
                i32::from(h.count[len])
            };
            if code - count < first {
                let h = match (&self.state, which) {
                    (State::Huff { lit, .. }, Which::Lit) => lit,
                    (State::Huff { dist, .. }, Which::Dist) => dist,
                    _ => unreachable!("state checked above"),
                };
                return Ok(h.symbol[(index + (code - first)) as usize]);
            }
            index += count;
            first += count;
            first <<= 1;
            code <<= 1;
        }
        Err(bad("invalid Huffman code (no symbol within 15 bits)"))
    }

    /// Emits one decoded byte into the window, the CRC and the staging
    /// buffer.
    fn emit(&mut self, b: u8) {
        self.window[(self.member_out % WINDOW as u64) as usize] = b;
        self.member_out += 1;
        self.crc = update_crc_byte(self.crc, b);
        self.out.push(b);
    }

    /// Parses one gzip member header (the magic already consumed is
    /// passed in `magic0`/`magic1` by the caller).
    fn read_header(&mut self, magic: [u8; 2]) -> Result<()> {
        if magic != GZIP_MAGIC {
            return Err(bad("not a gzip stream (bad magic)"));
        }
        let cm = self.byte()?;
        if cm != 8 {
            return Err(bad(format!("unsupported compression method {cm}")));
        }
        let flg = self.byte()?;
        if flg & 0xe0 != 0 {
            return Err(bad("reserved gzip header flags set"));
        }
        for _ in 0..6 {
            self.byte()?; // MTIME, XFL, OS
        }
        if flg & 0x04 != 0 {
            // FEXTRA
            let xlen = u16::from_le_bytes([self.byte()?, self.byte()?]);
            for _ in 0..xlen {
                self.byte()?;
            }
        }
        if flg & 0x08 != 0 {
            // FNAME
            while self.byte()? != 0 {}
        }
        if flg & 0x10 != 0 {
            // FCOMMENT
            while self.byte()? != 0 {}
        }
        if flg & 0x02 != 0 {
            // FHCRC
            self.byte()?;
            self.byte()?;
        }
        self.member_out = 0;
        self.crc = 0xffff_ffff;
        Ok(())
    }

    /// Verifies the member trailer (CRC32 + ISIZE) against the running
    /// values.
    fn read_trailer(&mut self) -> Result<()> {
        self.align();
        let mut w = [0u8; 8];
        for b in &mut w {
            *b = self.byte()?;
        }
        let want_crc = u32::from_le_bytes(w[0..4].try_into().expect("4 bytes"));
        let want_len = u32::from_le_bytes(w[4..8].try_into().expect("4 bytes"));
        if want_crc != self.crc ^ 0xffff_ffff {
            return Err(bad("gzip CRC32 mismatch"));
        }
        if want_len != (self.member_out & 0xffff_ffff) as u32 {
            return Err(bad("gzip ISIZE mismatch"));
        }
        Ok(())
    }

    /// Reads one block header and installs the matching state.
    fn enter_block(&mut self) -> Result<()> {
        let final_block = self.bits(1)? == 1;
        match self.bits(2)? {
            0 => {
                self.align();
                let len = u16::from_le_bytes([self.byte()?, self.byte()?]);
                let nlen = u16::from_le_bytes([self.byte()?, self.byte()?]);
                if len != !nlen {
                    return Err(bad("stored block LEN/NLEN mismatch"));
                }
                self.state = State::Stored {
                    remaining: len,
                    final_block,
                };
            }
            1 => {
                let (lit, dist) = fixed_tables()?;
                self.state = State::Huff {
                    lit,
                    dist,
                    final_block,
                };
            }
            2 => {
                let (lit, dist) = self.dynamic_tables()?;
                self.state = State::Huff {
                    lit,
                    dist,
                    final_block,
                };
            }
            _ => return Err(bad("reserved DEFLATE block type 3")),
        }
        Ok(())
    }

    /// Reads a dynamic-Huffman block's code descriptions.
    fn dynamic_tables(&mut self) -> Result<(Huffman, Huffman)> {
        const ORDER: [usize; 19] = [
            16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
        ];
        let hlit = self.bits(5)? as usize + 257;
        let hdist = self.bits(5)? as usize + 1;
        let hclen = self.bits(4)? as usize + 4;
        if hlit > 286 || hdist > 30 {
            return Err(bad("too many literal/distance codes"));
        }
        let mut cl_lengths = [0u16; 19];
        for &o in ORDER.iter().take(hclen) {
            cl_lengths[o] = self.bits(3)? as u16;
        }
        let cl = Huffman::new(&cl_lengths)?;
        // Decode the combined literal+distance code lengths. The
        // code-length decode loop cannot use `self.decode` (state still
        // holds the previous block), so decode inline against `cl`.
        let mut lengths = vec![0u16; hlit + hdist];
        let mut i = 0;
        while i < lengths.len() {
            let sym = self.decode_with(&cl)?;
            match sym {
                0..=15 => {
                    lengths[i] = sym;
                    i += 1;
                }
                16 => {
                    if i == 0 {
                        return Err(bad("repeat with no previous code length"));
                    }
                    let prev = lengths[i - 1];
                    let n = 3 + self.bits(2)? as usize;
                    if i + n > lengths.len() {
                        return Err(bad("code-length repeat overflows"));
                    }
                    for e in &mut lengths[i..i + n] {
                        *e = prev;
                    }
                    i += n;
                }
                17 | 18 => {
                    let n = if sym == 17 {
                        3 + self.bits(3)? as usize
                    } else {
                        11 + self.bits(7)? as usize
                    };
                    if i + n > lengths.len() {
                        return Err(bad("code-length repeat overflows"));
                    }
                    i += n; // already zero
                }
                _ => return Err(bad("invalid code-length symbol")),
            }
        }
        if lengths[256] == 0 {
            return Err(bad("no end-of-block code"));
        }
        let lit = Huffman::new(&lengths[..hlit])?;
        let dist = Huffman::new(&lengths[hlit..])?;
        Ok((lit, dist))
    }

    /// Bit-by-bit canonical decode against a standalone table (used for
    /// the code-length code, where `self.state` is not yet a Huff block).
    fn decode_with(&mut self, h: &Huffman) -> Result<u16> {
        let mut code: i32 = 0;
        let mut first: i32 = 0;
        let mut index: i32 = 0;
        for len in 1..=MAX_BITS {
            code |= self.bits(1)? as i32;
            let count = i32::from(h.count[len]);
            if code - count < first {
                return Ok(h.symbol[(index + (code - first)) as usize]);
            }
            index += count;
            first += count;
            first <<= 1;
            code <<= 1;
        }
        Err(bad("invalid Huffman code (no symbol within 15 bits)"))
    }

    /// Advances the decoder until staged output is available or the
    /// stream cleanly ends. Each call does a bounded amount of work.
    fn step(&mut self) -> Result<()> {
        match std::mem::replace(&mut self.state, State::Done) {
            State::Member => match self.try_byte()? {
                None => self.state = State::Done,
                Some(m0) => {
                    let m1 = self.byte()?;
                    self.read_header([m0, m1])?;
                    self.state = State::BlockBoundary(false);
                }
            },
            State::BlockBoundary(final_done) => {
                if final_done {
                    self.read_trailer()?;
                    self.state = State::Member;
                } else {
                    self.state = State::BlockBoundary(false);
                    self.enter_block()?;
                }
            }
            State::Stored {
                remaining,
                final_block,
            } => {
                let n = usize::from(remaining).min(INBUF);
                for _ in 0..n {
                    let b = self.byte()?;
                    self.emit(b);
                }
                let left = remaining - n as u16;
                self.state = if left == 0 {
                    State::BlockBoundary(final_block)
                } else {
                    State::Stored {
                        remaining: left,
                        final_block,
                    }
                };
            }
            State::Huff {
                lit,
                dist,
                final_block,
            } => {
                self.state = State::Huff {
                    lit,
                    dist,
                    final_block,
                };
                // Decode symbols until a chunk of output is staged or
                // the block ends.
                while self.out.len() - self.outpos < 4096 {
                    let sym = self.decode(Which::Lit)?;
                    match sym {
                        0..=255 => self.emit(sym as u8),
                        256 => {
                            self.state = State::BlockBoundary(final_block);
                            break;
                        }
                        257..=285 => {
                            let idx = sym as usize - 257;
                            let len =
                                usize::from(LEN_BASE[idx]) + self.bits(LEN_EXTRA[idx])? as usize;
                            let dsym = self.decode(Which::Dist)? as usize;
                            if dsym >= 30 {
                                return Err(bad("invalid distance symbol"));
                            }
                            let d = u64::from(DIST_BASE[dsym])
                                + u64::from(self.bits(DIST_EXTRA[dsym])?);
                            if d > self.member_out || d as usize > WINDOW {
                                return Err(bad("distance too far back"));
                            }
                            for _ in 0..len {
                                let b =
                                    self.window[((self.member_out - d) % WINDOW as u64) as usize];
                                self.emit(b);
                            }
                        }
                        _ => return Err(bad("invalid literal/length symbol")),
                    }
                }
            }
            State::Done => {}
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
enum Which {
    Lit,
    Dist,
}

#[inline]
fn update_crc_byte(crc: u32, b: u8) -> u32 {
    crc_table()[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8)
}

const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// The fixed-Huffman tables of RFC 1951 §3.2.6.
fn fixed_tables() -> Result<(Huffman, Huffman)> {
    let mut lit_lengths = [0u16; 288];
    for (sym, len) in lit_lengths.iter_mut().enumerate() {
        *len = match sym {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist_lengths = [5u16; 30];
    Ok((Huffman::new(&lit_lengths)?, Huffman::new(&dist_lengths)?))
}

impl<R: Read> Read for GzDecoder<R> {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.outpos == self.out.len() {
            if matches!(self.state, State::Done) {
                return Ok(0);
            }
            // Reclaim the staging buffer between refills.
            self.out.clear();
            self.outpos = 0;
            self.step()?;
        }
        let n = buf.len().min(self.out.len() - self.outpos);
        buf[..n].copy_from_slice(&self.out[self.outpos..self.outpos + n]);
        self.outpos += n;
        Ok(n)
    }
}

/// Decompresses a complete in-memory gzip stream (convenience wrapper
/// over [`GzDecoder`]).
///
/// # Errors
///
/// Any decode failure, as for [`GzDecoder`].
pub fn gunzip(bytes: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    GzDecoder::new(bytes).read_to_end(&mut out)?;
    Ok(out)
}

/// Compresses `data` into a valid single-member gzip stream of *stored*
/// (uncompressed) DEFLATE blocks: correct header, block framing, CRC32
/// and ISIZE, zero compression. Output is ~0.005% larger than the input
/// plus 18 bytes of framing.
pub fn gzip_store(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 64);
    // Header: magic, deflate, no flags, zero mtime, no XFL, OS=unknown.
    out.extend_from_slice(&[0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 255]);
    let mut chunks = data.chunks(0xffff).peekable();
    if data.is_empty() {
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xff, 0xff]);
    }
    while let Some(chunk) = chunks.next() {
        let len = chunk.len() as u16;
        out.push(if chunks.peek().is_none() { 0x01 } else { 0x00 });
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn crc32_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn store_round_trips() {
        for len in [0usize, 1, 100, 0xffff, 0x10000, 200_000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let gz = gzip_store(&data);
            assert!(is_gzip(&gz));
            assert_eq!(gunzip(&gz).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn multi_member_concatenation_decodes_like_gunzip() {
        let mut gz = gzip_store(b"hello ");
        gz.extend_from_slice(&gzip_store(b"world"));
        assert_eq!(gunzip(&gz).unwrap(), b"hello world");
    }

    #[test]
    fn zlib_fixed_huffman_member_decodes() {
        // A fixed-Huffman member produced by zlib (level 9 compression
        // of "a"×32 + "\n"): exercises the compressed-block path with
        // real back-references.
        let gz: &[u8] = &[
            0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x4b, 0x4c, 0xc4, 0x0f,
            0xb8, 0x00, 0x1b, 0x53, 0x7c, 0xfc, 0x21, 0x00, 0x00, 0x00,
        ];
        let want: Vec<u8> = vec![b'a'; 32].into_iter().chain([b'\n']).collect();
        assert_eq!(gunzip(gz).unwrap(), want);
    }

    #[test]
    fn zlib_dynamic_huffman_member_decodes() {
        // zlib level-9 compression of ((i*7)%251 for i in 0..4096)
        // repeated 4×: a dynamic-Huffman member with long-range
        // back-references spanning the full 4 KiB period.
        let gz: &[u8] = &[
            0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0xed, 0xd7, 0x57, 0x3b,
            0x10, 0x00, 0x00, 0x46, 0x61, 0x2b, 0x44, 0x19, 0xd9, 0x29, 0xab, 0x61, 0x6f, 0x32,
            0xb2, 0x57, 0x49, 0x65, 0x96, 0xbd, 0xb7, 0x52, 0x08, 0xd9, 0x94, 0x3d, 0x5b, 0x36,
            0x65, 0x96, 0x59, 0xd9, 0x7b, 0xef, 0xbd, 0x57, 0xd1, 0xce, 0x08, 0x45, 0x52, 0xe1,
            0xca, 0xdf, 0xf0, 0x3c, 0xbe, 0x9f, 0xf0, 0x9e, 0xbb, 0x43, 0x40, 0x46, 0xc5, 0x70,
            0xea, 0x0c, 0x9f, 0xa8, 0xb4, 0xa2, 0xc6, 0x35, 0x03, 0x53, 0x1b, 0x67, 0xb7, 0xfb,
            0x41, 0xe1, 0x71, 0xcf, 0xd2, 0x73, 0x0a, 0xdf, 0xd6, 0x34, 0x77, 0x0d, 0x4e, 0xbc,
            0xfb, 0xbc, 0xfc, 0xeb, 0x2f, 0x21, 0x39, 0x35, 0xe3, 0xe9, 0xb3, 0xfc, 0x62, 0x32,
            0x4a, 0x97, 0xae, 0xdf, 0x30, 0xb3, 0x75, 0x71, 0xf7, 0x09, 0x8e, 0x88, 0x4f, 0xcc,
            0xc8, 0x2d, 0x2a, 0xab, 0x6d, 0xe9, 0x1e, 0x9a, 0x7c, 0xff, 0x65, 0x65, 0xe3, 0x1f,
            0xd1, 0x51, 0x1a, 0x26, 0xb6, 0x73, 0x02, 0xe2, 0xb2, 0xca, 0x97, 0xb5, 0x6f, 0x9a,
            0xdb, 0xdd, 0xf2, 0xf0, 0x0d, 0x89, 0x4c, 0x48, 0xca, 0xcc, 0x2b, 0x2e, 0xaf, 0x6b,
            0xed, 0x19, 0x9e, 0x9a, 0xff, 0xfa, 0x63, 0xf3, 0x3f, 0x31, 0x05, 0x2d, 0x33, 0xfb,
            0x79, 0x41, 0x89, 0x8b, 0x2a, 0x9a, 0x3a, 0x86, 0x16, 0xf6, 0xb7, 0xef, 0xf9, 0x3d,
            0x88, 0x7a, 0x94, 0xfc, 0x3c, 0xbf, 0xa4, 0xa2, 0xbe, 0xad, 0x77, 0x64, 0x7a, 0xe1,
            0xdb, 0xea, 0xef, 0x1d, 0x12, 0xca, 0x13, 0x2c, 0x1c, 0xdc, 0x42, 0x92, 0x72, 0xaa,
            0x57, 0x74, 0x8d, 0x2c, 0x1d, 0x5c, 0x3d, 0xfd, 0x1f, 0x46, 0x3f, 0x4e, 0x79, 0xf1,
            0xb2, 0xb4, 0xb2, 0xa1, 0xbd, 0x6f, 0x74, 0xe6, 0xc3, 0xf7, 0xb5, 0xad, 0xdd, 0x23,
            0xc7, 0xe8, 0x4e, 0x72, 0xf2, 0x08, 0x5f, 0x90, 0x57, 0xd3, 0xd2, 0x33, 0xb6, 0x72,
            0xbc, 0xe3, 0x15, 0x10, 0x1a, 0xf3, 0x24, 0x35, 0xeb, 0xd5, 0xeb, 0xaa, 0xc6, 0x8e,
            0xfe, 0xb1, 0xd9, 0x8f, 0x8b, 0xeb, 0x7f, 0xf6, 0x48, 0x8f, 0xd3, 0xb3, 0x72, 0xf1,
            0x8a, 0x48, 0x29, 0xa8, 0x5f, 0xd5, 0x37, 0xb1, 0x76, 0xba, 0xeb, 0x1d, 0x18, 0x16,
            0xfb, 0x34, 0x2d, 0xbb, 0xe0, 0x4d, 0x75, 0x53, 0xe7, 0xc0, 0xf8, 0xdc, 0xa7, 0xa5,
            0x9f, 0xdb, 0x04, 0xa0, 0x83, 0x0e, 0x3a, 0xe8, 0xa0, 0x83, 0x0e, 0x3a, 0xe8, 0xa0,
            0x83, 0x0e, 0x3a, 0xe8, 0xa0, 0x83, 0x7e, 0x58, 0xe8, 0x48, 0x09, 0x3a, 0xe8, 0xa0,
            0x83, 0x0e, 0x3a, 0xe8, 0xa0, 0x83, 0x0e, 0x3a, 0xe8, 0xa0, 0x83, 0x0e, 0x3a, 0xe8,
            0xf8, 0x7f, 0xa4, 0x04, 0x1d, 0x74, 0xd0, 0x41, 0x07, 0x1d, 0x74, 0xd0, 0x41, 0x07,
            0x1d, 0x74, 0xd0, 0x41, 0x07, 0x1d, 0x74, 0xfc, 0x3f, 0x52, 0x82, 0x0e, 0x3a, 0xe8,
            0xa0, 0x83, 0x0e, 0x3a, 0xe8, 0xa0, 0x83, 0x0e, 0x3a, 0xe8, 0xa0, 0x83, 0x0e, 0xfa,
            0xc1, 0xa7, 0xef, 0x03, 0xe9, 0x19, 0xd0, 0xc5, 0x00, 0x40, 0x00, 0x00,
        ];
        let want: Vec<u8> = (0..4u32)
            .flat_map(|_| (0..4096u32).map(|i| ((i * 7) % 251) as u8))
            .collect();
        assert_eq!(gunzip(gz).unwrap(), want);
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        // Truncations of a valid stream at every byte boundary. Cut 0
        // is exempt: zero members is a clean (empty) stream, matching
        // the multi-member concatenation rule.
        let gz = gzip_store(b"some reasonably sized payload for truncation");
        for cut in 1..gz.len() {
            assert!(gunzip(&gz[..cut]).is_err(), "cut at {cut}");
        }
        // Flipped bytes anywhere must error (CRC or structure) or —
        // never — panic. (Flips in skipped header fields like MTIME can
        // legitimately still decode.)
        for i in 0..gz.len() {
            let mut bad = gz.clone();
            bad[i] ^= 0x5a;
            let _ = gunzip(&bad);
        }
    }

    #[test]
    fn byte_soup_never_panics() {
        let mut rng = Rng::new(0x6211_9deb);
        for _ in 0..2_000 {
            let len = rng.below(300) as usize;
            let mut soup: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
            // Half the cases get a valid magic so decode reaches the
            // header/deflate machinery instead of failing at byte 0.
            if rng.chance(1, 2) && soup.len() >= 2 {
                soup[0] = 0x1f;
                soup[1] = 0x8b;
            }
            let _ = gunzip(&soup);
        }
    }

    #[test]
    fn streaming_read_yields_identical_bytes_in_small_chunks() {
        let data: Vec<u8> = (0..100_000u64).flat_map(|i| i.to_le_bytes()).collect();
        let gz = gzip_store(&data);
        let mut dec = GzDecoder::new(&gz[..]);
        let mut got = Vec::new();
        let mut buf = [0u8; 7]; // deliberately tiny, unaligned reads
        loop {
            let n = dec.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, data);
    }
}
