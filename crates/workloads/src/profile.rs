//! Composite synthetic workloads: weighted pattern mixes interleaved with
//! compute instructions, optional burstiness, and compiler-style software
//! prefetching.

use timekeeping::{Addr, Pc};
use tk_sim::trace::{Instr, MemRef, Workload};

use crate::patterns::{AccessKind, Pattern};
use crate::rng::Rng;

/// Burstiness control: occasionally emit runs of back-to-back memory
/// accesses with no interleaved compute (the behavior behind `art`'s
/// discarded prefetches in Figure 21).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burstiness {
    /// Probability (percent) that a memory access starts a burst.
    pub burst_chance_pct: u64,
    /// Number of accesses in a burst.
    pub burst_len: u64,
}

/// Software-prefetch emission (SPEC peak binaries aggressively prefetch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwPrefetchPolicy {
    /// Emit one software prefetch per this many memory accesses.
    pub every: u64,
}

/// A composite workload assembled from weighted patterns.
///
/// # Examples
///
/// ```
/// use tk_workloads::{SyntheticWorkload, patterns::StreamPattern};
/// use tk_sim::trace::Workload;
///
/// let mut w = SyntheticWorkload::builder("demo", 42)
///     .compute_per_mem(3, 2)
///     .pattern(1, Box::new(StreamPattern::new(0, 1 << 20, 64, 0x400, 0)))
///     .build();
/// let _first = w.next_instr();
/// assert_eq!(w.name(), "demo");
/// ```
#[derive(Debug)]
pub struct SyntheticWorkload {
    name: String,
    rng: Rng,
    patterns: Vec<(u64, Box<dyn Pattern>)>,
    total_weight: u64,
    compute_base: u64,
    compute_spread: u64,
    burst: Option<Burstiness>,
    sw_prefetch: Option<SwPrefetchPolicy>,
    ops_remaining: u64,
    burst_remaining: u64,
    mem_count: u64,
    pending: std::collections::VecDeque<Instr>,
    phase_len: u64,
    phase_remaining: u64,
    phase_dominant: usize,
}

impl Clone for SyntheticWorkload {
    fn clone(&self) -> Self {
        SyntheticWorkload {
            name: self.name.clone(),
            rng: self.rng.clone(),
            patterns: self
                .patterns
                .iter()
                .map(|(w, p)| (*w, p.box_clone()))
                .collect(),
            total_weight: self.total_weight,
            compute_base: self.compute_base,
            compute_spread: self.compute_spread,
            burst: self.burst,
            sw_prefetch: self.sw_prefetch,
            ops_remaining: self.ops_remaining,
            burst_remaining: self.burst_remaining,
            mem_count: self.mem_count,
            pending: self.pending.clone(),
            phase_len: self.phase_len,
            phase_remaining: self.phase_remaining,
            phase_dominant: self.phase_dominant,
        }
    }
}

/// Builder for [`SyntheticWorkload`].
#[derive(Debug)]
pub struct SyntheticWorkloadBuilder {
    inner: SyntheticWorkload,
}

impl SyntheticWorkload {
    /// Starts building a workload with the given report name and RNG seed.
    pub fn builder(name: &str, seed: u64) -> SyntheticWorkloadBuilder {
        SyntheticWorkloadBuilder {
            inner: SyntheticWorkload {
                name: name.to_owned(),
                rng: Rng::new(seed),
                patterns: Vec::new(),
                total_weight: 0,
                compute_base: 3,
                compute_spread: 2,
                burst: None,
                sw_prefetch: None,
                ops_remaining: 0,
                burst_remaining: 0,
                mem_count: 0,
                pending: std::collections::VecDeque::new(),
                phase_len: 65536,
                phase_remaining: 0,
                phase_dominant: 0,
            },
        }
    }

    fn pick_weighted(&mut self) -> usize {
        debug_assert!(self.total_weight > 0);
        let mut roll = self.rng.below(self.total_weight);
        for (i, (w, _)) in self.patterns.iter().enumerate() {
            if roll < *w {
                return i;
            }
            roll -= *w;
        }
        self.patterns.len() - 1
    }

    /// Pattern selection is *phased*: real programs run one loop nest at
    /// a time, so a weighted-random dominant pattern owns each phase of
    /// `phase_len` accesses outright. The default phase is 64 K accesses
    /// (~16 fills per L1 frame) — long enough for per-frame histories to
    /// stabilize, as in real loop nests. (An earlier design interleaved a
    /// few percent of "background" accesses from the other patterns; with
    /// the correlation table's constructive aliasing, one entry serves an
    /// entire wavefront of frames, so even rare foreign fills poisoned
    /// whole waves of predictions — behavior real programs do not show,
    /// because their side accesses are cache-resident.)
    fn pick_pattern(&mut self) -> usize {
        if self.patterns.len() == 1 {
            return 0;
        }
        if self.phase_remaining == 0 {
            self.phase_remaining = self.phase_len;
            self.phase_dominant = self.pick_weighted();
        }
        self.phase_remaining -= 1;
        self.phase_dominant
    }

    fn emit_mem(&mut self) -> Instr {
        let idx = self.pick_pattern();
        let access = self.patterns[idx].1.next_access(&mut self.rng);
        self.mem_count += 1;
        // Compiler software prefetch: look ahead in the same pattern.
        if let Some(policy) = self.sw_prefetch {
            if self.mem_count.is_multiple_of(policy.every) {
                if let Some(hint) = self.patterns[idx].1.prefetch_hint() {
                    self.pending.push_back(Instr::SwPrefetch(MemRef::new(
                        Addr::new(hint),
                        Pc::new(0xF000 + idx as u64 * 8),
                    )));
                }
            }
        }
        let mref = MemRef::new(Addr::new(access.addr), Pc::new(access.pc));
        match access.kind {
            AccessKind::Load => Instr::Load(mref),
            AccessKind::ChainedLoad => Instr::ChainedLoad(mref),
            AccessKind::Store => Instr::Store(mref),
        }
    }
}

impl SyntheticWorkloadBuilder {
    /// Sets the average number of compute instructions between memory
    /// accesses: each gap is `base + uniform(0..=spread)` instructions.
    pub fn compute_per_mem(mut self, base: u64, spread: u64) -> Self {
        self.inner.compute_base = base;
        self.inner.compute_spread = spread;
        self
    }

    /// Adds a pattern with the given selection weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn pattern(mut self, weight: u64, pattern: Box<dyn Pattern>) -> Self {
        assert!(weight > 0, "pattern weight must be nonzero");
        self.inner.total_weight += weight;
        self.inner.patterns.push((weight, pattern));
        self
    }

    /// Enables bursty access clustering.
    pub fn burstiness(mut self, burst: Burstiness) -> Self {
        self.inner.burst = Some(burst);
        self
    }

    /// Sets the phase length in memory accesses (default 65536): one
    /// weighted-random dominant pattern owns each phase.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn phase_length(mut self, len: u64) -> Self {
        assert!(len > 0, "phase length must be nonzero");
        self.inner.phase_len = len;
        self
    }

    /// Enables compiler-style software prefetching.
    pub fn software_prefetch(mut self, policy: SwPrefetchPolicy) -> Self {
        self.inner.sw_prefetch = Some(policy);
        self
    }

    /// Finalizes the workload.
    ///
    /// # Panics
    ///
    /// Panics if no pattern was added.
    pub fn build(self) -> SyntheticWorkload {
        assert!(
            !self.inner.patterns.is_empty(),
            "workload needs at least one pattern"
        );
        self.inner
    }
}

impl Workload for SyntheticWorkload {
    fn next_instr(&mut self) -> Instr {
        if let Some(i) = self.pending.pop_front() {
            return i;
        }
        if self.ops_remaining > 0 {
            self.ops_remaining -= 1;
            return Instr::Op;
        }
        let instr = self.emit_mem();
        // Decide the gap before the next memory access.
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            // Within a burst: no compute gap.
        } else if let Some(b) = self.burst {
            if self.rng.chance(b.burst_chance_pct, 100) {
                self.burst_remaining = b.burst_len;
            } else {
                self.ops_remaining = self.compute_base + self.rng.below(self.compute_spread + 1);
            }
        } else {
            self.ops_remaining = self.compute_base + self.rng.below(self.compute_spread + 1);
        }
        instr
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{HotWorkingSetPattern, StreamPattern};

    fn sample(w: &mut SyntheticWorkload, n: usize) -> Vec<Instr> {
        (0..n).map(|_| w.next_instr()).collect()
    }

    #[test]
    fn interleaves_compute_and_memory() {
        let mut w = SyntheticWorkload::builder("t", 1)
            .compute_per_mem(3, 0)
            .pattern(1, Box::new(StreamPattern::new(0, 1 << 16, 64, 0x400, 0)))
            .build();
        let instrs = sample(&mut w, 400);
        let mem = instrs.iter().filter(|i| i.is_mem()).count();
        // One memory access per 4 instructions (3 ops + 1 mem).
        assert!((90..=110).contains(&mem), "expected ~100 mem, got {mem}");
    }

    #[test]
    fn weighted_mix_respects_weights() {
        // Two streams in disjoint regions, 3:1 weights; phase length 1 so
        // selection is effectively per-access.
        let mut w = SyntheticWorkload::builder("t", 2)
            .compute_per_mem(0, 0)
            .phase_length(1)
            .pattern(3, Box::new(StreamPattern::new(0, 1 << 16, 64, 0x400, 0)))
            .pattern(
                1,
                Box::new(StreamPattern::new(1 << 30, 1 << 16, 64, 0x500, 0)),
            )
            .build();
        let instrs = sample(&mut w, 4000);
        let high = instrs
            .iter()
            .filter_map(|i| i.mem_ref())
            .filter(|m| m.addr.get() >= 1 << 30)
            .count();
        assert!(
            (800..1200).contains(&high),
            "expected ~1000 high-region, got {high}"
        );
    }

    #[test]
    fn phased_selection_produces_coherent_runs() {
        // With the default 4096-access phases, a window of accesses should
        // be dominated by one region.
        let mut w = SyntheticWorkload::builder("t", 5)
            .compute_per_mem(0, 0)
            .pattern(1, Box::new(StreamPattern::new(0, 1 << 16, 64, 0x400, 0)))
            .pattern(
                1,
                Box::new(StreamPattern::new(1 << 30, 1 << 16, 64, 0x500, 0)),
            )
            .build();
        let instrs = sample(&mut w, 2000);
        let high = instrs
            .iter()
            .filter_map(|i| i.mem_ref())
            .filter(|m| m.addr.get() >= 1 << 30)
            .count();
        // The dominant pattern owns ~75% + background; whichever side won,
        // the split must be lopsided, not 50/50.
        let share = high as f64 / 2000.0;
        assert!(
            !(0.3..=0.7).contains(&share),
            "phase dominance must skew the mix, got share {share}"
        );
    }

    #[test]
    fn software_prefetch_emitted() {
        let mut w = SyntheticWorkload::builder("t", 3)
            .compute_per_mem(1, 0)
            .pattern(1, Box::new(StreamPattern::new(0, 1 << 16, 64, 0x400, 0)))
            .software_prefetch(SwPrefetchPolicy { every: 4 })
            .build();
        let instrs = sample(&mut w, 1000);
        let pf = instrs
            .iter()
            .filter(|i| matches!(i, Instr::SwPrefetch(_)))
            .count();
        assert!(pf > 50, "software prefetches must appear, got {pf}");
    }

    #[test]
    fn burstiness_clusters_accesses() {
        let mut w = SyntheticWorkload::builder("t", 4)
            .compute_per_mem(6, 0)
            .pattern(1, Box::new(HotWorkingSetPattern::new(0, 4096, 0x400, 0)))
            .burstiness(Burstiness {
                burst_chance_pct: 30,
                burst_len: 8,
            })
            .build();
        let instrs = sample(&mut w, 5000);
        // Count maximal runs of consecutive memory instructions.
        let mut max_run = 0;
        let mut run = 0;
        for i in &instrs {
            if i.is_mem() {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(
            max_run >= 8,
            "bursts of accesses must appear, got max run {max_run}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let mk = || {
            let mut w = SyntheticWorkload::builder("t", 9)
                .pattern(1, Box::new(HotWorkingSetPattern::new(0, 8192, 0x400, 10)))
                .build();
            sample(&mut w, 500)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn fork_replays_the_identical_future_stream() {
        let mut w = SyntheticWorkload::builder("t", 7)
            .pattern(1, Box::new(HotWorkingSetPattern::new(0, 8192, 0x400, 10)))
            .pattern(2, Box::new(StreamPattern::new(0, 1 << 16, 64, 0x500, 4)))
            .burstiness(Burstiness {
                burst_chance_pct: 10,
                burst_len: 4,
            })
            .software_prefetch(SwPrefetchPolicy { every: 8 })
            .build();
        // Advance mid-stream, then fork: both copies continue identically
        // without perturbing each other.
        let _ = sample(&mut w, 777);
        let mut f = w.fork().expect("synthetic workloads fork");
        assert_eq!(f.name(), "t");
        let a = sample(&mut w, 500);
        let b: Vec<Instr> = (0..500).map(|_| f.next_instr()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn empty_build_panics() {
        let _ = SyntheticWorkload::builder("t", 1).build();
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_weight_panics() {
        let _ = SyntheticWorkload::builder("t", 1)
            .pattern(0, Box::new(HotWorkingSetPattern::new(0, 64, 0, 0)));
    }
}
