//! Calibrated SPEC CPU2000 benchmark profiles.
//!
//! Each of the 26 SPEC2000 benchmarks is modeled as a weighted mix of
//! reference patterns chosen to land the benchmark in the same regime the
//! paper reports for it:
//!
//! * **few memory stalls** (eon, vortex, galgel, sixtrack, …) — small hot
//!   working sets that fit the 32 KB L1;
//! * **conflict-heavy, helped by the victim filter** (gzip, vpr, crafty,
//!   parser, bzip2, perlbmk, wupwise, twolf) — hot sets plus aliasing
//!   walks that ping-pong a few direct-mapped sets with short dead times;
//! * **capacity-heavy, helped by timekeeping prefetch** (gcc, mcf, swim,
//!   mgrid, applu, art, facerec, ammp) — multi-megabyte streams, stencils,
//!   tiled passes and pointer chases with repeatable traversal orders.
//!
//! The pointer-chase node counts encode the paper's table-size story:
//! `ammp`'s structure cycle (1 K nodes) fits the 8 KB correlation table —
//! near-perfect prediction, the paper's 257% speedup — while `mcf`'s
//! 128 K-node chase thrashes 8 KB but fits the 2 MB DBCP, which is exactly
//! why mcf is one of the two programs where DBCP wins in Figure 19.
//!
//! Floating-point profiles emit compiler software prefetches, matching the
//! SPEC peak binaries of §2.2.

use std::fmt;

use crate::patterns::{
    BlockedPattern, ConflictWalkPattern, HotWorkingSetPattern, PointerChasePattern, StencilPattern,
    StreamPattern, TriadPattern,
};
use crate::profile::{Burstiness, SwPrefetchPolicy, SyntheticWorkload};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;
/// The L1 size: the aliasing stride for conflict walks.
const L1: u64 = 32 * KB;

/// Region spacing between patterns of one workload (keeps footprints
/// disjoint).
const REGION: u64 = 1 << 28;

/// Paper-reported behavior group of a benchmark (Figure 22).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchGroup {
    /// Few memory stalls; negligible speedup expected from either
    /// mechanism.
    FewStalls,
    /// Helped by the timekeeping victim-cache filter (conflict-heavy).
    VictimHelped,
    /// Helped by timekeeping prefetch (capacity-heavy).
    PrefetchHelped,
}

/// The SPEC CPU2000 suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SpecBenchmark {
    // SPECint2000
    Gzip,
    Vpr,
    Gcc,
    Mcf,
    Crafty,
    Parser,
    Eon,
    Perlbmk,
    Gap,
    Vortex,
    Bzip2,
    Twolf,
    // SPECfp2000
    Wupwise,
    Swim,
    Mgrid,
    Applu,
    Mesa,
    Galgel,
    Art,
    Equake,
    Facerec,
    Ammp,
    Lucas,
    Fma3d,
    Sixtrack,
    Apsi,
}

impl SpecBenchmark {
    /// All 26 benchmarks in suite order.
    pub const ALL: [SpecBenchmark; 26] = [
        SpecBenchmark::Gzip,
        SpecBenchmark::Vpr,
        SpecBenchmark::Gcc,
        SpecBenchmark::Mcf,
        SpecBenchmark::Crafty,
        SpecBenchmark::Parser,
        SpecBenchmark::Eon,
        SpecBenchmark::Perlbmk,
        SpecBenchmark::Gap,
        SpecBenchmark::Vortex,
        SpecBenchmark::Bzip2,
        SpecBenchmark::Twolf,
        SpecBenchmark::Wupwise,
        SpecBenchmark::Swim,
        SpecBenchmark::Mgrid,
        SpecBenchmark::Applu,
        SpecBenchmark::Mesa,
        SpecBenchmark::Galgel,
        SpecBenchmark::Art,
        SpecBenchmark::Equake,
        SpecBenchmark::Facerec,
        SpecBenchmark::Ammp,
        SpecBenchmark::Lucas,
        SpecBenchmark::Fma3d,
        SpecBenchmark::Sixtrack,
        SpecBenchmark::Apsi,
    ];

    /// The eight "best performers" §5.2.3 examines in detail
    /// (Figures 15, 20, 21).
    pub const BEST_PERFORMERS: [SpecBenchmark; 8] = [
        SpecBenchmark::Gcc,
        SpecBenchmark::Mcf,
        SpecBenchmark::Swim,
        SpecBenchmark::Mgrid,
        SpecBenchmark::Applu,
        SpecBenchmark::Art,
        SpecBenchmark::Facerec,
        SpecBenchmark::Ammp,
    ];

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            SpecBenchmark::Gzip => "gzip",
            SpecBenchmark::Vpr => "vpr",
            SpecBenchmark::Gcc => "gcc",
            SpecBenchmark::Mcf => "mcf",
            SpecBenchmark::Crafty => "crafty",
            SpecBenchmark::Parser => "parser",
            SpecBenchmark::Eon => "eon",
            SpecBenchmark::Perlbmk => "perlbmk",
            SpecBenchmark::Gap => "gap",
            SpecBenchmark::Vortex => "vortex",
            SpecBenchmark::Bzip2 => "bzip2",
            SpecBenchmark::Twolf => "twolf",
            SpecBenchmark::Wupwise => "wupwise",
            SpecBenchmark::Swim => "swim",
            SpecBenchmark::Mgrid => "mgrid",
            SpecBenchmark::Applu => "applu",
            SpecBenchmark::Mesa => "mesa",
            SpecBenchmark::Galgel => "galgel",
            SpecBenchmark::Art => "art",
            SpecBenchmark::Equake => "equake",
            SpecBenchmark::Facerec => "facerec",
            SpecBenchmark::Ammp => "ammp",
            SpecBenchmark::Lucas => "lucas",
            SpecBenchmark::Fma3d => "fma3d",
            SpecBenchmark::Sixtrack => "sixtrack",
            SpecBenchmark::Apsi => "apsi",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(name: &str) -> Option<SpecBenchmark> {
        Self::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// True for the SPECfp2000 half of the suite (which the peak compiler
    /// builds with software prefetching).
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            SpecBenchmark::Wupwise
                | SpecBenchmark::Swim
                | SpecBenchmark::Mgrid
                | SpecBenchmark::Applu
                | SpecBenchmark::Mesa
                | SpecBenchmark::Galgel
                | SpecBenchmark::Art
                | SpecBenchmark::Equake
                | SpecBenchmark::Facerec
                | SpecBenchmark::Ammp
                | SpecBenchmark::Lucas
                | SpecBenchmark::Fma3d
                | SpecBenchmark::Sixtrack
                | SpecBenchmark::Apsi
        )
    }

    /// The behavior group the paper places this benchmark in (Figure 22).
    pub fn group(&self) -> BenchGroup {
        match self {
            SpecBenchmark::Eon
            | SpecBenchmark::Vortex
            | SpecBenchmark::Galgel
            | SpecBenchmark::Sixtrack
            | SpecBenchmark::Mesa
            | SpecBenchmark::Gap
            | SpecBenchmark::Fma3d
            | SpecBenchmark::Apsi => BenchGroup::FewStalls,
            SpecBenchmark::Gzip
            | SpecBenchmark::Vpr
            | SpecBenchmark::Crafty
            | SpecBenchmark::Parser
            | SpecBenchmark::Bzip2
            | SpecBenchmark::Perlbmk
            | SpecBenchmark::Wupwise
            | SpecBenchmark::Twolf => BenchGroup::VictimHelped,
            SpecBenchmark::Gcc
            | SpecBenchmark::Mcf
            | SpecBenchmark::Swim
            | SpecBenchmark::Mgrid
            | SpecBenchmark::Applu
            | SpecBenchmark::Art
            | SpecBenchmark::Facerec
            | SpecBenchmark::Ammp
            | SpecBenchmark::Lucas
            | SpecBenchmark::Equake => BenchGroup::PrefetchHelped,
        }
    }

    /// Builds the calibrated synthetic workload for this benchmark.
    ///
    /// The same `seed` always produces the identical instruction stream.
    pub fn build(&self, seed: u64) -> SyntheticWorkload {
        // Give every benchmark an independent stream even for equal seeds.
        let seed = seed ^ (0xB5 + *self as u64 * 0x9E37);
        // Region bases are staggered by a few lines so that distinct
        // patterns (and triad arrays) never alias the same L1/L2 sets.
        let r = |i: u64| (i + 1) * REGION + i * 4192;
        let b = SyntheticWorkload::builder(self.name(), seed);
        let b = match self {
            // ------------------------- few stalls -------------------------
            SpecBenchmark::Eon => b.compute_per_mem(3, 2).pattern(
                1,
                Box::new(HotWorkingSetPattern::new(r(0), 20 * KB, 0x400, 15)),
            ),
            SpecBenchmark::Vortex => b
                .compute_per_mem(3, 2)
                .pattern(
                    12,
                    Box::new(HotWorkingSetPattern::new(r(0), 24 * KB, 0x400, 20)),
                )
                .pattern(1, Box::new(StreamPattern::new(r(1), 128 * KB, 8, 0x500, 5))),
            SpecBenchmark::Galgel => b.compute_per_mem(2, 2).pattern(
                1,
                Box::new(HotWorkingSetPattern::new(r(0), 16 * KB, 0x400, 10)),
            ),
            SpecBenchmark::Sixtrack => b.compute_per_mem(4, 2).pattern(
                1,
                Box::new(HotWorkingSetPattern::new(r(0), 20 * KB, 0x400, 10)),
            ),
            SpecBenchmark::Mesa => b
                .compute_per_mem(3, 2)
                .pattern(
                    12,
                    Box::new(HotWorkingSetPattern::new(r(0), 24 * KB, 0x400, 15)),
                )
                .pattern(1, Box::new(StreamPattern::new(r(1), 256 * KB, 8, 0x500, 4))),
            SpecBenchmark::Gap => b
                .compute_per_mem(3, 2)
                .pattern(
                    12,
                    Box::new(HotWorkingSetPattern::new(r(0), 24 * KB, 0x400, 15)),
                )
                .pattern(1, Box::new(StreamPattern::new(r(1), 64 * KB, 8, 0x500, 5))),
            SpecBenchmark::Fma3d => b
                .compute_per_mem(3, 2)
                .pattern(
                    12,
                    Box::new(HotWorkingSetPattern::new(r(0), 24 * KB, 0x400, 12)),
                )
                .pattern(1, Box::new(StreamPattern::new(r(1), 128 * KB, 8, 0x500, 4))),
            SpecBenchmark::Apsi => b
                .compute_per_mem(3, 2)
                .pattern(
                    10,
                    Box::new(HotWorkingSetPattern::new(r(0), 20 * KB, 0x400, 12)),
                )
                .pattern(1, Box::new(StreamPattern::new(r(1), 256 * KB, 8, 0x500, 4))),

            // ----------------------- victim-helped ------------------------
            SpecBenchmark::Gzip => b
                .compute_per_mem(3, 2)
                .pattern(
                    18,
                    Box::new(HotWorkingSetPattern::new(r(0), 24 * KB, 0x400, 25)),
                )
                .pattern(
                    1,
                    Box::new(ConflictWalkPattern::new(
                        r(1),
                        L1,
                        2,
                        16,
                        32,
                        8,
                        0x500,
                        true,
                    )),
                )
                .pattern(1, Box::new(StreamPattern::new(r(2), 128 * KB, 8, 0x600, 3))),
            SpecBenchmark::Vpr => b
                .compute_per_mem(3, 1)
                .pattern(
                    12,
                    Box::new(HotWorkingSetPattern::new(r(0), 20 * KB, 0x400, 15)),
                )
                .pattern(
                    1,
                    Box::new(
                        ConflictWalkPattern::new(r(1), L1, 3, 20, 32, 8, 0x500, true).randomized(),
                    ),
                )
                .pattern(
                    2,
                    Box::new(
                        PointerChasePattern::new(r(2), 1024, 272, 0x600, seed, 2)
                            .with_noise_pct(10),
                    ),
                ),
            SpecBenchmark::Crafty => b
                .compute_per_mem(3, 2)
                .pattern(
                    14,
                    Box::new(HotWorkingSetPattern::new(r(0), 24 * KB, 0x400, 10)),
                )
                .pattern(
                    1,
                    Box::new(ConflictWalkPattern::new(r(1), L1, 3, 8, 32, 6, 0x500, true)),
                ),
            SpecBenchmark::Parser => b
                .compute_per_mem(3, 1)
                .pattern(
                    8,
                    Box::new(HotWorkingSetPattern::new(r(0), 16 * KB, 0x400, 20)),
                )
                .pattern(
                    2,
                    Box::new(
                        ConflictWalkPattern::new(r(1), L1, 2, 20, 32, 3, 0x500, true).randomized(),
                    ),
                )
                .pattern(
                    5,
                    Box::new(
                        HotWorkingSetPattern::new(r(2), 512 * KB, 0x600, 10).with_chained_pct(40),
                    ),
                ),
            SpecBenchmark::Bzip2 => b
                .compute_per_mem(3, 2)
                .pattern(
                    14,
                    Box::new(HotWorkingSetPattern::new(r(0), 24 * KB, 0x400, 30)),
                )
                .pattern(2, Box::new(StreamPattern::new(r(1), 512 * KB, 8, 0x500, 3)))
                .pattern(
                    1,
                    Box::new(ConflictWalkPattern::new(
                        r(2),
                        L1,
                        2,
                        12,
                        32,
                        6,
                        0x600,
                        true,
                    )),
                ),
            SpecBenchmark::Perlbmk => b
                .compute_per_mem(3, 2)
                .pattern(
                    16,
                    Box::new(HotWorkingSetPattern::new(r(0), 28 * KB, 0x400, 25)),
                )
                .pattern(
                    1,
                    Box::new(ConflictWalkPattern::new(
                        r(1),
                        L1,
                        2,
                        12,
                        32,
                        2,
                        0x500,
                        false,
                    )),
                ),
            SpecBenchmark::Twolf => b
                .compute_per_mem(2, 1)
                .pattern(
                    8,
                    Box::new(HotWorkingSetPattern::new(r(0), 16 * KB, 0x400, 15)),
                )
                .pattern(
                    2,
                    Box::new(
                        ConflictWalkPattern::new(r(1), L1, 4, 8, 32, 3, 0x500, true).randomized(),
                    ),
                )
                .pattern(
                    3,
                    Box::new(
                        HotWorkingSetPattern::new(r(2), 256 * KB, 0x600, 10).with_chained_pct(30),
                    ),
                ),
            SpecBenchmark::Wupwise => b
                .compute_per_mem(2, 1)
                .pattern(
                    10,
                    Box::new(HotWorkingSetPattern::new(r(0), 20 * KB, 0x400, 10)),
                )
                .pattern(
                    2,
                    Box::new(TriadPattern::new(
                        [r(1), r(1) + 8 * MB + 341 * 32, r(1) + 16 * MB + 682 * 32],
                        384 * KB,
                        8,
                        0x500,
                    )),
                )
                .pattern(
                    1,
                    Box::new(ConflictWalkPattern::new(
                        r(2),
                        L1,
                        2,
                        12,
                        32,
                        8,
                        0x600,
                        true,
                    )),
                )
                .software_prefetch(SwPrefetchPolicy { every: 8 }),

            // ---------------------- prefetch-helped -----------------------
            SpecBenchmark::Gcc => b
                .compute_per_mem(3, 2)
                .pattern(
                    6,
                    Box::new(HotWorkingSetPattern::new(r(0), 24 * KB, 0x400, 20)),
                )
                .pattern(
                    5,
                    Box::new(StreamPattern::new(r(1), MB + 512 * KB, 8, 0x500, 4)),
                )
                .pattern(
                    5,
                    Box::new(BlockedPattern::new(r(2), MB, 64 * KB, 2, 8, 0x600)),
                )
                .pattern(
                    1,
                    Box::new(ConflictWalkPattern::new(
                        r(3),
                        L1,
                        2,
                        16,
                        32,
                        8,
                        0x700,
                        true,
                    )),
                )
                .burstiness(Burstiness {
                    burst_chance_pct: 10,
                    burst_len: 12,
                }),
            SpecBenchmark::Mcf => b
                .compute_per_mem(2, 1)
                .pattern(
                    4,
                    Box::new(PointerChasePattern::new(
                        r(0),
                        64 * 1024,
                        64,
                        0x400,
                        seed,
                        2,
                    )),
                )
                .pattern(
                    10,
                    Box::new(HotWorkingSetPattern::new(r(1), 32 * KB, 0x500, 10)),
                )
                .pattern(2, Box::new(StreamPattern::new(r(2), 512 * KB, 8, 0x600, 4))),
            SpecBenchmark::Swim => b
                .compute_per_mem(1, 1)
                .pattern(
                    10,
                    Box::new(TriadPattern::new(
                        [r(0), r(0) + 8 * MB + 341 * 32, r(0) + 16 * MB + 682 * 32],
                        MB,
                        8,
                        0x400,
                    )),
                )
                .pattern(
                    4,
                    Box::new(StencilPattern::new(r(1), 4 * KB, 128, 8, 0x500)),
                )
                .software_prefetch(SwPrefetchPolicy { every: 6 }),
            SpecBenchmark::Mgrid => b
                .compute_per_mem(1, 1)
                .pattern(
                    10,
                    Box::new(StencilPattern::new(r(0), 2 * KB, 768, 8, 0x400)),
                )
                .pattern(4, Box::new(StreamPattern::new(r(1), 512 * KB, 8, 0x500, 5)))
                .software_prefetch(SwPrefetchPolicy { every: 8 }),
            SpecBenchmark::Applu => b
                .compute_per_mem(2, 1)
                .pattern(
                    8,
                    Box::new(StencilPattern::new(r(0), 2 * KB, 512, 8, 0x400)),
                )
                .pattern(
                    4,
                    Box::new(BlockedPattern::new(r(1), 512 * KB, 64 * KB, 2, 8, 0x500)),
                )
                .pattern(2, Box::new(StreamPattern::new(r(2), 256 * KB, 8, 0x600, 5)))
                .software_prefetch(SwPrefetchPolicy { every: 8 }),
            SpecBenchmark::Art => b
                .compute_per_mem(1, 0)
                .pattern(
                    10,
                    Box::new(BlockedPattern::new(r(0), 2 * MB, 128 * KB, 4, 8, 0x400)),
                )
                .pattern(
                    1,
                    Box::new(HotWorkingSetPattern::new(r(1), 16 * KB, 0x500, 10)),
                )
                .burstiness(Burstiness {
                    burst_chance_pct: 25,
                    burst_len: 16,
                }),
            SpecBenchmark::Equake => b
                .compute_per_mem(2, 1)
                .pattern(
                    1,
                    Box::new(PointerChasePattern::new(r(0), 1024, 320, 0x400, seed, 2)),
                )
                .pattern(6, Box::new(StreamPattern::new(r(1), 512 * KB, 8, 0x500, 4)))
                .pattern(
                    9,
                    Box::new(HotWorkingSetPattern::new(r(2), 24 * KB, 0x600, 15)),
                )
                .software_prefetch(SwPrefetchPolicy { every: 10 }),
            SpecBenchmark::Facerec => b
                .compute_per_mem(2, 1)
                .pattern(
                    8,
                    Box::new(StreamPattern::new(r(0), MB + 512 * KB, 8, 0x400, 0)),
                )
                .pattern(
                    4,
                    Box::new(BlockedPattern::new(r(1), 256 * KB, 16 * KB, 2, 8, 0x500)),
                )
                .pattern(
                    4,
                    Box::new(HotWorkingSetPattern::new(r(2), 16 * KB, 0x600, 10)),
                )
                .software_prefetch(SwPrefetchPolicy { every: 8 }),
            SpecBenchmark::Ammp => b
                .compute_per_mem(3, 1)
                .pattern(
                    12,
                    Box::new(PointerChasePattern::new(r(0), 2048, 480, 0x400, seed, 3)),
                )
                .pattern(
                    2,
                    Box::new(HotWorkingSetPattern::new(r(1), 8 * KB, 0x500, 10)),
                )
                .software_prefetch(SwPrefetchPolicy { every: 12 }),
            SpecBenchmark::Lucas => b
                .compute_per_mem(3, 1)
                .pattern(6, Box::new(StreamPattern::new(r(0), MB, 8, 0x400, 4)))
                .pattern(
                    10,
                    Box::new(HotWorkingSetPattern::new(r(1), 20 * KB, 0x500, 10)),
                )
                .software_prefetch(SwPrefetchPolicy { every: 10 }),
        };
        b.build()
    }
}

impl fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk_sim::trace::Workload;

    #[test]
    fn suite_has_26_unique_names() {
        let names: std::collections::HashSet<_> =
            SpecBenchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn from_name_round_trips() {
        for b in SpecBenchmark::ALL {
            assert_eq!(SpecBenchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(SpecBenchmark::from_name("nosuch"), None);
    }

    #[test]
    fn int_fp_split_is_12_14() {
        let fp = SpecBenchmark::ALL.iter().filter(|b| b.is_fp()).count();
        assert_eq!(fp, 14);
    }

    #[test]
    fn best_performers_are_prefetch_helped() {
        for b in SpecBenchmark::BEST_PERFORMERS {
            assert_eq!(b.group(), BenchGroup::PrefetchHelped, "{b}");
        }
    }

    #[test]
    fn all_profiles_build_and_stream() {
        for b in SpecBenchmark::ALL {
            let mut w = b.build(1);
            assert_eq!(w.name(), b.name());
            let mem = (0..2000).filter(|_| w.next_instr().is_mem()).count();
            assert!(mem > 100, "{b} must reference memory, got {mem}");
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        for b in [SpecBenchmark::Gcc, SpecBenchmark::Mcf, SpecBenchmark::Ammp] {
            let sample = |seed| {
                let mut w = b.build(seed);
                (0..500).map(|_| w.next_instr()).collect::<Vec<_>>()
            };
            assert_eq!(sample(7), sample(7));
            assert_ne!(sample(7), sample(8), "{b} must vary with seed");
        }
    }

    #[test]
    fn fp_peak_profiles_emit_software_prefetches() {
        use tk_sim::trace::Instr;
        for b in [
            SpecBenchmark::Swim,
            SpecBenchmark::Mgrid,
            SpecBenchmark::Applu,
        ] {
            let mut w = b.build(3);
            let pf = (0..5000)
                .filter(|_| matches!(w.next_instr(), Instr::SwPrefetch(_)))
                .count();
            assert!(pf > 0, "{b} (FP peak) must software-prefetch");
        }
    }

    #[test]
    fn conflict_benchmarks_alias_the_l1() {
        // twolf's conflict walk must produce addresses separated by the L1
        // size (same set, different tags).
        // Pattern phases are 64 K accesses, so walk until a conflict phase
        // has been sampled (deterministic for the fixed seed).
        let mut w = SpecBenchmark::Twolf.build(1);
        let mut mod_l1 = std::collections::HashMap::<u64, std::collections::HashSet<u64>>::new();
        let mut found = false;
        for _ in 0..8_000_000u64 {
            if let Some(m) = w.next_instr().mem_ref() {
                let a = m.addr.get();
                if (2 * REGION..3 * REGION).contains(&a) {
                    let set = mod_l1.entry(a % L1).or_default();
                    set.insert(a);
                    if set.len() >= 4 {
                        found = true;
                        break;
                    }
                }
            }
        }
        assert!(found, "conflict walk must alias >= 4 lines per set");
    }
}
