//! ChampSim-style binary memtrace importer.
//!
//! The format is a headerless sequence of fixed-size 17-byte
//! little-endian records, one per retired instruction:
//!
//! ```text
//! offset  size  field
//! 0       1     kind: 0 = other, 1 = load, 2 = store
//! 1       8     effective address (u64 LE; ignored for kind 0)
//! 9       8     program counter   (u64 LE; ignored for kind 0)
//! ```
//!
//! Mapping onto [`Instr`] is deliberately lossy in both directions; the
//! full field-by-field accounting lives in DESIGN.md §2i. In brief:
//!
//! * importing: kind 0 becomes [`Instr::Op`], **dropping** the record's
//!   address and pc (the simulator models non-memory instructions as
//!   opaque single-cycle ops); kinds 1/2 become `Load`/`Store`. There
//!   is no ChampSim kind for chained loads or software prefetches, so
//!   none are produced.
//! * exporting ([`render_record`]): `ChainedLoad` and `SwPrefetch`
//!   degrade to kind 1 (load) — the dependence-chain and prefetch hints
//!   do not survive a ChampSim round-trip, only the reference stream.
//!
//! Malformed input — an unknown kind byte or a truncated trailing
//! record — yields a structured [`ParseTraceError`] carrying the
//! 1-based *record* index and absolute byte offset (the binary
//! counterpart of [`ParseTraceError::line`]).

use std::io::Read;

use timekeeping::{Addr, Pc};
use tk_sim::trace::{Instr, MemRef};

use crate::tracefile::ParseTraceError;

/// Bytes per ChampSim-style record.
pub const RECORD_BYTES: usize = 17;

const KIND_OTHER: u8 = 0;
const KIND_LOAD: u8 = 1;
const KIND_STORE: u8 = 2;

/// Decodes one record (exactly [`RECORD_BYTES`] bytes). `index` is the
/// 1-based record number, used only for error reporting.
///
/// # Errors
///
/// Unknown kind bytes produce a [`ParseTraceError`] locating the record.
pub fn parse_record(buf: &[u8; RECORD_BYTES], index: u64) -> Result<Instr, ParseTraceError> {
    let addr = u64::from_le_bytes(buf[1..9].try_into().expect("8 bytes"));
    let pc = u64::from_le_bytes(buf[9..17].try_into().expect("8 bytes"));
    match buf[0] {
        KIND_OTHER => Ok(Instr::Op),
        KIND_LOAD => Ok(Instr::Load(MemRef::new(Addr::new(addr), Pc::new(pc)))),
        KIND_STORE => Ok(Instr::Store(MemRef::new(Addr::new(addr), Pc::new(pc)))),
        kind => Err(ParseTraceError::at_record(
            index,
            (index - 1) * RECORD_BYTES as u64,
            format!("unknown ChampSim kind byte {kind} (expected 0, 1 or 2)"),
        )),
    }
}

/// Encodes one instruction as a ChampSim record. The inverse of
/// [`parse_record`] on the `Op`/`Load`/`Store` subset; `ChainedLoad`
/// and `SwPrefetch` degrade to plain loads (documented lossy mapping).
pub fn render_record(instr: &Instr) -> [u8; RECORD_BYTES] {
    let mut buf = [0u8; RECORD_BYTES];
    let (kind, mref) = match instr {
        Instr::Op => (KIND_OTHER, None),
        Instr::Load(m) | Instr::ChainedLoad(m) | Instr::SwPrefetch(m) => (KIND_LOAD, Some(m)),
        Instr::Store(m) => (KIND_STORE, Some(m)),
    };
    buf[0] = kind;
    if let Some(m) = mref {
        buf[1..9].copy_from_slice(&m.addr.get().to_le_bytes());
        buf[9..17].copy_from_slice(&m.pc.get().to_le_bytes());
    }
    buf
}

/// Streams records from a reader, decoding each into an [`Instr`].
///
/// # Errors
///
/// A trailing partial record (stream length not a multiple of
/// [`RECORD_BYTES`]), I/O failures, and unknown kind bytes all produce
/// [`ParseTraceError`]s with the record index and byte offset.
pub fn read_records<R: Read>(
    mut reader: R,
    mut sink: impl FnMut(Instr) -> Result<(), ParseTraceError>,
) -> Result<(), ParseTraceError> {
    let mut buf = [0u8; RECORD_BYTES];
    let mut index: u64 = 0;
    loop {
        index += 1;
        let offset = (index - 1) * RECORD_BYTES as u64;
        let mut got = 0;
        while got < RECORD_BYTES {
            match reader.read(&mut buf[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(ParseTraceError::at_record(
                        index,
                        offset,
                        format!("read error: {e}"),
                    ))
                }
            }
        }
        if got == 0 {
            return Ok(());
        }
        if got < RECORD_BYTES {
            return Err(ParseTraceError::at_record(
                index,
                offset,
                format!("truncated record: {got} of {RECORD_BYTES} bytes"),
            ));
        }
        sink(parse_record(&buf, index)?)?;
    }
}

/// Renders a whole instruction sequence as ChampSim bytes (the
/// concatenation of [`render_record`]).
pub fn render_trace(instrs: &[Instr]) -> Vec<u8> {
    let mut out = Vec::with_capacity(instrs.len() * RECORD_BYTES);
    for i in instrs {
        out.extend_from_slice(&render_record(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mref(a: u64, p: u64) -> MemRef {
        MemRef::new(Addr::new(a), Pc::new(p))
    }

    #[test]
    fn render_parse_inverse_on_supported_subset() {
        let instrs = [
            Instr::Op,
            Instr::Load(mref(0x7f00_1040, 0x400a)),
            Instr::Store(mref(0x7f00_1048, 0x4012)),
            Instr::Load(mref(u64::MAX, 0)),
        ];
        let bytes = render_trace(&instrs);
        let mut got = Vec::new();
        read_records(&bytes[..], |i| {
            got.push(i);
            Ok(())
        })
        .unwrap();
        assert_eq!(got, instrs);
    }

    #[test]
    fn chained_and_prefetch_degrade_to_loads() {
        for instr in [
            Instr::ChainedLoad(mref(0x100, 0x1)),
            Instr::SwPrefetch(mref(0x100, 0x1)),
        ] {
            let rec = render_record(&instr);
            assert_eq!(
                parse_record(&rec, 1).unwrap(),
                Instr::Load(mref(0x100, 0x1))
            );
        }
    }

    #[test]
    fn unknown_kind_reports_record_and_byte_offset() {
        let mut bytes = render_trace(&[Instr::Op, Instr::Op]);
        bytes.extend_from_slice(&[9u8; RECORD_BYTES]); // record 3, bad kind
        let mut n = 0;
        let e = read_records(&bytes[..], |_| {
            n += 1;
            Ok(())
        })
        .unwrap_err();
        assert_eq!(n, 2);
        assert_eq!(e.record(), Some(3));
        assert_eq!(e.byte_offset(), Some(2 * RECORD_BYTES as u64));
        assert!(e.to_string().contains("unknown ChampSim kind byte 9"));
    }

    #[test]
    fn truncated_trailing_record_is_an_error() {
        let mut bytes = render_trace(&[Instr::Op]);
        bytes.push(1); // one stray byte
        let e = read_records(&bytes[..], |_| Ok(())).unwrap_err();
        assert_eq!(e.record(), Some(2));
        assert!(e.to_string().contains("truncated record"));
    }
}
