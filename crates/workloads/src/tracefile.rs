//! External trace support: drive the simulator with reference traces
//! captured from real programs instead of the synthetic generators.
//!
//! The format is one event per line, whitespace-separated:
//!
//! ```text
//! # comment lines and blank lines are ignored
//! O                 # a non-memory instruction
//! L 7f001040 400a   # load      <hex addr> <hex pc>
//! C 7f002000 400e   # chained (address-dependent) load
//! S 7f001048 4012   # store
//! P 7f003000 4016   # software prefetch
//! ```
//!
//! The trace loops when exhausted, so any instruction budget can be
//! simulated from a finite capture.

use std::fmt;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use timekeeping::{Addr, Pc};
use tk_sim::trace::{Instr, MemRef, Workload};

/// A parse failure, with the offending line number.
#[derive(Debug)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    /// 1-based line number of the failure.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// A workload replaying a captured reference trace, looping at the end.
///
/// # Examples
///
/// ```
/// use tk_workloads::TraceFileWorkload;
/// use tk_sim::trace::{Instr, Workload};
///
/// let text = "O\nL 1040 400\nS 1048 404\n";
/// let mut w = TraceFileWorkload::from_reader("demo", text.as_bytes())?;
/// assert_eq!(w.next_instr(), Instr::Op);
/// assert!(matches!(w.next_instr(), Instr::Load(_)));
/// assert!(matches!(w.next_instr(), Instr::Store(_)));
/// // The trace loops.
/// assert_eq!(w.next_instr(), Instr::Op);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceFileWorkload {
    name: String,
    instrs: Vec<Instr>,
    pos: usize,
}

impl TraceFileWorkload {
    /// Parses a trace from any reader. Note that a `&mut R` is also a
    /// reader, so a mutable reference can be passed for readers you want
    /// to keep.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on malformed lines, unknown event kinds
    /// or an empty trace; I/O failures are reported at the line where they
    /// occur.
    pub fn from_reader<R: Read>(name: &str, reader: R) -> Result<Self, ParseTraceError> {
        let mut instrs = Vec::new();
        for (i, line) in BufReader::new(reader).lines().enumerate() {
            let lineno = i + 1;
            let line = line.map_err(|e| ParseTraceError {
                line: lineno,
                message: format!("read error: {e}"),
            })?;
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            instrs.push(Self::parse_line(line, lineno)?);
        }
        if instrs.is_empty() {
            return Err(ParseTraceError {
                line: 0,
                message: "empty trace".into(),
            });
        }
        Ok(TraceFileWorkload {
            name: name.to_owned(),
            instrs,
            pos: 0,
        })
    }

    /// Parses a trace file from disk; the file's stem becomes the workload
    /// name.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] for unreadable or malformed files.
    pub fn from_path<P: AsRef<Path>>(path: P) -> Result<Self, ParseTraceError> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_owned());
        let file = std::fs::File::open(path).map_err(|e| ParseTraceError {
            line: 0,
            message: format!("cannot open {}: {e}", path.display()),
        })?;
        Self::from_reader(&name, file)
    }

    fn parse_line(line: &str, lineno: usize) -> Result<Instr, ParseTraceError> {
        let err = |message: String| ParseTraceError {
            line: lineno,
            message,
        };
        let mut parts = line.split_whitespace();
        // Callers pass trimmed, non-empty lines, but a structured error
        // here keeps the parser total over arbitrary input.
        let Some(kind) = parts.next() else {
            return Err(err("empty event line".into()));
        };
        if kind.eq_ignore_ascii_case("O") {
            if let Some(extra) = parts.next() {
                return Err(err(format!("trailing token `{extra}` after O event")));
            }
            return Ok(Instr::Op);
        }
        let addr = parts
            .next()
            .ok_or_else(|| err("missing address".into()))
            .and_then(|t| {
                u64::from_str_radix(t.trim_start_matches("0x"), 16)
                    .map_err(|e| err(format!("bad address `{t}`: {e}")))
            })?;
        let pc = parts
            .next()
            .ok_or_else(|| err("missing pc".into()))
            .and_then(|t| {
                u64::from_str_radix(t.trim_start_matches("0x"), 16)
                    .map_err(|e| err(format!("bad pc `{t}`: {e}")))
            })?;
        if let Some(extra) = parts.next() {
            return Err(err(format!("trailing token `{extra}` after pc")));
        }
        let mref = MemRef::new(Addr::new(addr), Pc::new(pc));
        match kind.to_ascii_uppercase().as_str() {
            "L" => Ok(Instr::Load(mref)),
            "C" => Ok(Instr::ChainedLoad(mref)),
            "S" => Ok(Instr::Store(mref)),
            "P" => Ok(Instr::SwPrefetch(mref)),
            other => Err(err(format!("unknown event kind `{other}`"))),
        }
    }

    /// Number of events in one loop of the trace.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Renders the trace back into the text format, one event per line.
    ///
    /// `render` and [`from_reader`](Self::from_reader) are exact inverses:
    /// parsing the rendered text reproduces the instruction sequence
    /// identically (the round-trip property test in
    /// `tests/trace_ingest.rs` pins this for every [`Instr`] variant).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for i in &self.instrs {
            out.push_str(&render_instr(i));
            out.push('\n');
        }
        out
    }

    /// Always false: empty traces are rejected at parse time.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Renders one instruction in the trace-file text format (no newline).
///
/// The inverse of the line parser: `O` for non-memory ops, `<kind> <hex
/// addr> <hex pc>` for memory events.
pub fn render_instr(instr: &Instr) -> String {
    let line = |kind: char, m: &MemRef| format!("{kind} {:x} {:x}", m.addr.get(), m.pc.get());
    match instr {
        Instr::Op => "O".to_owned(),
        Instr::Load(m) => line('L', m),
        Instr::ChainedLoad(m) => line('C', m),
        Instr::Store(m) => line('S', m),
        Instr::SwPrefetch(m) => line('P', m),
    }
}

impl Workload for TraceFileWorkload {
    fn next_instr(&mut self) -> Instr {
        let i = self.instrs[self.pos];
        self.pos = (self.pos + 1) % self.instrs.len();
        i
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_event_kinds() {
        let text = "O\nL 10 1\nC 20 2\nS 30 3\nP 40 4\n";
        let mut w = TraceFileWorkload::from_reader("t", text.as_bytes()).unwrap();
        assert_eq!(w.len(), 5);
        assert_eq!(w.next_instr(), Instr::Op);
        assert!(matches!(w.next_instr(), Instr::Load(m) if m.addr.get() == 0x10));
        assert!(matches!(w.next_instr(), Instr::ChainedLoad(m) if m.addr.get() == 0x20));
        assert!(matches!(w.next_instr(), Instr::Store(m) if m.pc.get() == 0x3));
        assert!(matches!(w.next_instr(), Instr::SwPrefetch(_)));
    }

    #[test]
    fn comments_blanks_and_0x_prefixes() {
        let text = "# header\n\n  L 0x1040 0x400  # inline comment\n";
        let w = TraceFileWorkload::from_reader("t", text.as_bytes()).unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn loops_at_end() {
        let mut w = TraceFileWorkload::from_reader("t", "L 10 1\nS 20 2\n".as_bytes()).unwrap();
        let a = w.next_instr();
        let _ = w.next_instr();
        assert_eq!(w.next_instr(), a);
    }

    #[test]
    fn rejects_malformed_lines() {
        let e = TraceFileWorkload::from_reader("t", "L zzz 1\n".as_bytes()).unwrap_err();
        assert_eq!(e.line(), 1);
        assert!(e.to_string().contains("bad address"));

        let e = TraceFileWorkload::from_reader("t", "L 10\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("missing pc"));

        let e = TraceFileWorkload::from_reader("t", "X 10 1\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("unknown event kind"));
    }

    #[test]
    fn rejects_empty_trace() {
        let e = TraceFileWorkload::from_reader("t", "# only comments\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("empty trace"));
    }

    #[test]
    fn from_path_round_trips() {
        let dir = std::env::temp_dir().join("tk_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.trace");
        std::fs::write(&path, "L 1040 400\nO\n").unwrap();
        let w = TraceFileWorkload::from_path(&path).unwrap();
        assert_eq!(w.name(), "mini");
        assert_eq!(w.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn runs_through_the_simulator() {
        use tk_sim::{run_workload, SystemConfig};
        let mut text = String::new();
        for i in 0..64 {
            text.push_str(&format!("L {:x} 400\nO\nO\n", 0x10000 + i * 32));
        }
        let mut w = TraceFileWorkload::from_reader("loop", text.as_bytes()).unwrap();
        let r = run_workload(&mut w, SystemConfig::base(), 10_000);
        assert!(r.hierarchy.l1_accesses > 3_000);
        assert!(r.ipc() > 0.0);
    }
}
