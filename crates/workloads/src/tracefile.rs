//! External trace support: drive the simulator with reference traces
//! captured from real programs instead of the synthetic generators.
//!
//! Two on-disk formats are understood, both transparently
//! gzip-decompressed (members are sniffed by magic, never by file
//! extension):
//!
//! * **text** — one event per line, whitespace-separated:
//!
//!   ```text
//!   # comment lines and blank lines are ignored
//!   O                 # a non-memory instruction
//!   L 7f001040 400a   # load      <hex addr> <hex pc>
//!   C 7f002000 400e   # chained (address-dependent) load
//!   S 7f001048 4012   # store
//!   P 7f003000 4016   # software prefetch
//!   ```
//!
//! * **champsim** — headerless 17-byte binary records (see
//!   [`crate::champsim`]), selected by a `.champsim` extension or an
//!   explicit format tag.
//!
//! [`TraceFileWorkload::open_spec`] accepts the `PATH[:fmt]` syntax the
//! `--trace-file` CLI flag uses: `fmt` is any of `text`, `champsim`,
//! `auto` (extension sniff, the default) and the orthogonal `stream`
//! (force the constant-memory streaming backend). Tags stack:
//! `capture.bin:champsim:stream`.
//!
//! Every open validates the *entire* trace up front — structured
//! [`ParseTraceError`]s with line numbers (text) or record indices and
//! byte offsets (champsim) — and computes a format- and
//! compression-independent FNV-1a [`digest`](TraceFileWorkload::digest)
//! of the decoded instruction stream, which the bench engine folds into
//! cache keys and sampling fingerprints so two different traces can
//! never alias.
//!
//! Files at or above 64 MiB (and any open with the `stream` tag) use a
//! streaming backend that re-reads from disk on every loop instead of
//! materializing the instruction vector, so multi-GB captures replay in
//! constant memory.
//!
//! The trace loops when exhausted, so any instruction budget can be
//! simulated from a finite capture; [`set_once`](TraceFileWorkload::set_once)
//! (the `--trace-once` escape hatch) pads with non-memory `O` ops after
//! one full pass instead.

use std::fmt;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use timekeeping::{Addr, Pc};
use tk_sim::trace::{Instr, MemRef, Workload};

use crate::champsim;
use crate::gzip::{is_gzip, GzDecoder};

/// Files at or above this size stream from disk instead of
/// materializing (64 MiB).
pub const STREAM_THRESHOLD: u64 = 64 * 1024 * 1024;

/// Where in a trace a parse failure occurred.
#[derive(Debug, Clone, Copy)]
enum Loc {
    /// 1-based line of a text trace (0 when no line applies).
    Line(usize),
    /// 1-based record index and absolute byte offset of a binary trace.
    Record { index: u64, byte: u64 },
}

/// A parse failure, locating the offending line (text traces) or
/// record and byte offset (binary traces).
#[derive(Debug)]
pub struct ParseTraceError {
    loc: Loc,
    message: String,
}

impl ParseTraceError {
    /// A failure at a 1-based text line (0 when no single line is at
    /// fault, e.g. an unopenable file or an empty trace).
    pub fn at_line(line: usize, message: impl Into<String>) -> Self {
        ParseTraceError {
            loc: Loc::Line(line),
            message: message.into(),
        }
    }

    /// A failure at a 1-based binary record starting at absolute byte
    /// offset `byte` — the binary counterpart of [`at_line`](Self::at_line).
    pub fn at_record(index: u64, byte: u64, message: impl Into<String>) -> Self {
        ParseTraceError {
            loc: Loc::Record { index, byte },
            message: message.into(),
        }
    }

    /// 1-based line number of the failure; 0 for failures without one
    /// (file-level errors and binary-format records).
    pub fn line(&self) -> usize {
        match self.loc {
            Loc::Line(line) => line,
            Loc::Record { .. } => 0,
        }
    }

    /// 1-based record index of a binary-trace failure, if any.
    pub fn record(&self) -> Option<u64> {
        match self.loc {
            Loc::Line(_) => None,
            Loc::Record { index, .. } => Some(index),
        }
    }

    /// Absolute byte offset of a binary-trace failure, if any.
    pub fn byte_offset(&self) -> Option<u64> {
        match self.loc {
            Loc::Line(_) => None,
            Loc::Record { byte, .. } => Some(byte),
        }
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.loc {
            Loc::Line(line) => write!(f, "trace line {}: {}", line, self.message),
            Loc::Record { index, byte } => {
                write!(
                    f,
                    "trace record {} (byte {}): {}",
                    index, byte, self.message
                )
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// The on-disk encodings a trace file can use (orthogonal to gzip
/// compression, which is sniffed by magic on any format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFormat {
    /// One event per line: `O` / `L addr pc` / `C` / `S` / `P`.
    Text,
    /// ChampSim-style 17-byte binary records ([`crate::champsim`]).
    Champsim,
}

impl TraceFormat {
    /// The format's CLI/manifest name.
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Text => "text",
            TraceFormat::Champsim => "champsim",
        }
    }
}

/// How the instruction stream is held.
enum Backend {
    /// Fully materialized (shared so clones are cheap).
    Eager(Arc<Vec<Instr>>),
    /// Re-read from disk on every loop.
    Stream(Stream),
}

/// A workload replaying a captured reference trace, looping at the end
/// (or padding with `O` ops once exhausted, in `once` mode).
///
/// # Examples
///
/// ```
/// use tk_workloads::TraceFileWorkload;
/// use tk_sim::trace::{Instr, Workload};
///
/// let text = "O\nL 1040 400\nS 1048 404\n";
/// let mut w = TraceFileWorkload::from_reader("demo", text.as_bytes())?;
/// assert_eq!(w.next_instr(), Instr::Op);
/// assert!(matches!(w.next_instr(), Instr::Load(_)));
/// assert!(matches!(w.next_instr(), Instr::Store(_)));
/// // The trace loops.
/// assert_eq!(w.next_instr(), Instr::Op);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct TraceFileWorkload {
    name: String,
    backend: Backend,
    /// Position of the next instruction within the current loop.
    pos: u64,
    /// Events per loop (≥ 1: empty traces are rejected at open).
    len: u64,
    /// FNV-1a over the decoded instruction stream (format- and
    /// compression-independent).
    digest: u64,
    format: TraceFormat,
    compressed: bool,
    once: bool,
    exhausted: bool,
}

impl fmt::Debug for TraceFileWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceFileWorkload")
            .field("name", &self.name)
            .field("len", &self.len)
            .field("digest", &format_args!("{:016x}", self.digest))
            .field("format", &self.format)
            .field("compressed", &self.compressed)
            .field("streaming", &self.is_streaming())
            .field("once", &self.once)
            .field("pos", &self.pos)
            .finish()
    }
}

impl Clone for TraceFileWorkload {
    fn clone(&self) -> Self {
        let backend = match &self.backend {
            Backend::Eager(v) => Backend::Eager(Arc::clone(v)),
            Backend::Stream(s) => Backend::Stream(s.reopen_at(self.pos)),
        };
        TraceFileWorkload {
            name: self.name.clone(),
            backend,
            pos: self.pos,
            len: self.len,
            digest: self.digest,
            format: self.format,
            compressed: self.compressed,
            once: self.once,
            exhausted: self.exhausted,
        }
    }
}

// -- digest ------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one instruction into the digest using a canonical encoding
/// (kind byte, then addr/pc little-endian for memory events), so the
/// same stream digests identically whether it arrived as text,
/// gzip-compressed text or ChampSim binary.
fn digest_instr(h: u64, instr: &Instr) -> u64 {
    let (kind, mref): (u8, Option<&MemRef>) = match instr {
        Instr::Op => (0, None),
        Instr::Load(m) => (1, Some(m)),
        Instr::ChainedLoad(m) => (2, Some(m)),
        Instr::Store(m) => (3, Some(m)),
        Instr::SwPrefetch(m) => (4, Some(m)),
    };
    let mut h = fnv_bytes(h, &[kind]);
    if let Some(m) = mref {
        h = fnv_bytes(h, &m.addr.get().to_le_bytes());
        h = fnv_bytes(h, &m.pc.get().to_le_bytes());
    }
    h
}

// -- opening -----------------------------------------------------------------

/// The sniffed head bytes stitched back in front of the rest of the
/// stream.
type Resniffed<R> = std::io::Chain<std::io::Cursor<Vec<u8>>, R>;

/// Sniffs the gzip magic and returns a unified reader over the
/// *decompressed* bytes, plus whether decompression was engaged.
fn maybe_gunzip<R: Read>(mut reader: R) -> std::io::Result<(bool, Resniffed<R>)> {
    let mut head = [0u8; 2];
    let mut got = 0;
    while got < 2 {
        match reader.read(&mut head[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let gz = is_gzip(&head[..got]);
    let chained = std::io::Cursor::new(head[..got].to_vec()).chain(reader);
    Ok((gz, chained))
}

fn infer_format(path: &Path) -> TraceFormat {
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().to_ascii_lowercase())
        .unwrap_or_default();
    let base = name.strip_suffix(".gz").unwrap_or(&name);
    if base.ends_with(".champsim") {
        TraceFormat::Champsim
    } else {
        TraceFormat::Text
    }
}

/// One validation/collection pass over a decompressed byte stream:
/// parses every event, folds the digest, and (optionally) collects the
/// instruction vector. `gz` only affects how read errors are located.
fn scan<R: Read>(
    reader: R,
    format: TraceFormat,
    gz: bool,
    collect: bool,
) -> Result<(u64, u64, Vec<Instr>), ParseTraceError> {
    let mut len: u64 = 0;
    let mut digest = FNV_OFFSET;
    let mut instrs = Vec::new();
    let mut take = |i: Instr| {
        len += 1;
        digest = digest_instr(digest, &i);
        if collect {
            instrs.push(i);
        }
    };
    match format {
        TraceFormat::Text => {
            for (i, line) in BufReader::new(reader).lines().enumerate() {
                let lineno = i + 1;
                let line = line.map_err(|e| {
                    let what = if gz { "gzip read error" } else { "read error" };
                    ParseTraceError::at_line(lineno, format!("{what}: {e}"))
                })?;
                let line = line.split('#').next().unwrap_or("").trim();
                if line.is_empty() {
                    continue;
                }
                take(TraceFileWorkload::parse_line(line, lineno)?);
            }
        }
        TraceFormat::Champsim => {
            champsim::read_records(reader, |i| {
                take(i);
                Ok(())
            })?;
        }
    }
    if len == 0 {
        return Err(ParseTraceError::at_line(0, "empty trace"));
    }
    Ok((len, digest, instrs))
}

impl TraceFileWorkload {
    /// Parses a text-format trace from any reader, transparently
    /// gunzipping when the stream opens with the gzip magic. Note that
    /// a `&mut R` is also a reader, so a mutable reference can be
    /// passed for readers you want to keep.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on malformed lines, unknown event
    /// kinds, corrupt gzip bytes or an empty trace; I/O failures are
    /// reported at the line where they occur.
    pub fn from_reader<R: Read>(name: &str, reader: R) -> Result<Self, ParseTraceError> {
        Self::from_reader_fmt(name, reader, TraceFormat::Text)
    }

    /// [`from_reader`](Self::from_reader) with an explicit format
    /// (gzip is still sniffed transparently).
    ///
    /// # Errors
    ///
    /// As for [`from_reader`](Self::from_reader).
    pub fn from_reader_fmt<R: Read>(
        name: &str,
        reader: R,
        format: TraceFormat,
    ) -> Result<Self, ParseTraceError> {
        let (gz, chained) = maybe_gunzip(reader)
            .map_err(|e| ParseTraceError::at_line(0, format!("read error: {e}")))?;
        let (len, digest, instrs) = if gz {
            scan(GzDecoder::new(chained), format, true, true)?
        } else {
            scan(chained, format, false, true)?
        };
        Ok(TraceFileWorkload {
            name: name.to_owned(),
            backend: Backend::Eager(Arc::new(instrs)),
            pos: 0,
            len,
            digest,
            format,
            compressed: gz,
            once: false,
            exhausted: false,
        })
    }

    /// Parses a trace file from disk; the file's stem becomes the
    /// workload name, the format follows the extension (`.champsim`,
    /// optionally behind `.gz`, selects the binary importer; anything
    /// else is text), gzip compression is sniffed by magic, and files
    /// at or above [`STREAM_THRESHOLD`] use the constant-memory
    /// streaming backend.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] for unreadable or malformed files —
    /// the whole file is validated before the workload is returned.
    ///
    /// # Panics (streaming backend only)
    ///
    /// A streaming workload re-reads the file on every loop and on
    /// [`fork`](Workload::fork); the open-time validation pass makes
    /// re-parse failures impossible unless the file is modified or
    /// removed mid-run, which panics with context.
    pub fn from_path<P: AsRef<Path>>(path: P) -> Result<Self, ParseTraceError> {
        Self::from_path_with(path, None, false)
    }

    /// [`from_path`](Self::from_path) with an explicit format override
    /// and/or forced streaming.
    ///
    /// # Errors
    ///
    /// As for [`from_path`](Self::from_path).
    pub fn from_path_with<P: AsRef<Path>>(
        path: P,
        format: Option<TraceFormat>,
        force_stream: bool,
    ) -> Result<Self, ParseTraceError> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_owned());
        let format = format.unwrap_or_else(|| infer_format(path));
        let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let streaming = force_stream || size >= STREAM_THRESHOLD;

        // Validation pass: parse everything once, collecting only when
        // the eager backend will serve the instructions from memory.
        let (gz, reader) = open_decompressed(path)?;
        let (len, digest, instrs) = scan(reader, format, gz, !streaming)?;

        let backend = if streaming {
            Backend::Stream(Stream::open(path.to_owned(), format))
        } else {
            Backend::Eager(Arc::new(instrs))
        };
        Ok(TraceFileWorkload {
            name,
            backend,
            pos: 0,
            len,
            digest,
            format,
            compressed: gz,
            once: false,
            exhausted: false,
        })
    }

    /// Opens a trace from the CLI `PATH[:fmt]` syntax: trailing
    /// `:`-separated tags select the format (`text`, `champsim`,
    /// `auto`) and/or force streaming (`stream`); tags stack, and
    /// unknown suffixes are treated as part of the path.
    ///
    /// # Errors
    ///
    /// As for [`from_path`](Self::from_path).
    pub fn open_spec(spec: &str) -> Result<Self, ParseTraceError> {
        let mut path = spec;
        let mut format: Option<TraceFormat> = None;
        let mut force_stream = false;
        while let Some((head, tail)) = path.rsplit_once(':') {
            match tail.to_ascii_lowercase().as_str() {
                "text" => {
                    format.get_or_insert(TraceFormat::Text);
                    path = head;
                }
                "champsim" => {
                    format.get_or_insert(TraceFormat::Champsim);
                    path = head;
                }
                "auto" => path = head,
                "stream" => {
                    force_stream = true;
                    path = head;
                }
                _ => break,
            }
        }
        if path.is_empty() {
            return Err(ParseTraceError::at_line(
                0,
                format!("empty path in `{spec}`"),
            ));
        }
        Self::from_path_with(path, format, force_stream)
    }

    fn parse_line(line: &str, lineno: usize) -> Result<Instr, ParseTraceError> {
        let err = |message: String| ParseTraceError::at_line(lineno, message);
        let mut parts = line.split_whitespace();
        // Callers pass trimmed, non-empty lines, but a structured error
        // here keeps the parser total over arbitrary input.
        let Some(kind) = parts.next() else {
            return Err(err("empty event line".into()));
        };
        if kind.eq_ignore_ascii_case("O") {
            if let Some(extra) = parts.next() {
                return Err(err(format!("trailing token `{extra}` after O event")));
            }
            return Ok(Instr::Op);
        }
        let addr = parts
            .next()
            .ok_or_else(|| err("missing address".into()))
            .and_then(|t| {
                u64::from_str_radix(t.trim_start_matches("0x"), 16)
                    .map_err(|e| err(format!("bad address `{t}`: {e}")))
            })?;
        let pc = parts
            .next()
            .ok_or_else(|| err("missing pc".into()))
            .and_then(|t| {
                u64::from_str_radix(t.trim_start_matches("0x"), 16)
                    .map_err(|e| err(format!("bad pc `{t}`: {e}")))
            })?;
        if let Some(extra) = parts.next() {
            return Err(err(format!("trailing token `{extra}` after pc")));
        }
        let mref = MemRef::new(Addr::new(addr), Pc::new(pc));
        match kind.to_ascii_uppercase().as_str() {
            "L" => Ok(Instr::Load(mref)),
            "C" => Ok(Instr::ChainedLoad(mref)),
            "S" => Ok(Instr::Store(mref)),
            "P" => Ok(Instr::SwPrefetch(mref)),
            other => Err(err(format!("unknown event kind `{other}`"))),
        }
    }

    /// Number of events in one loop of the trace.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false: empty traces are rejected at parse time.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// FNV-1a digest of the decoded instruction stream. The digest is
    /// format- and compression-independent: the same stream stored as
    /// text, gzipped text or ChampSim binary digests identically, and
    /// any one-record change produces a different value. The bench
    /// engine embeds it in cache keys (`trace={digest:016x}`) and
    /// sampling fingerprints.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The trace's on-disk format.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// Whether the source bytes were gzip-compressed.
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// Whether the streaming (constant-memory, re-read-per-loop)
    /// backend is in use.
    pub fn is_streaming(&self) -> bool {
        matches!(self.backend, Backend::Stream(_))
    }

    /// In `once` mode the trace plays a single pass and then emits
    /// non-memory `O` ops forever instead of wrapping — the
    /// `--trace-once` escape hatch for the wrap-depends-on-budget seam
    /// (DESIGN.md §2i).
    pub fn set_once(&mut self, once: bool) {
        self.once = once;
        if !once {
            self.exhausted = false;
        }
    }

    /// Whether `once` mode is armed ([`set_once`](Self::set_once)).
    pub fn once(&self) -> bool {
        self.once
    }

    /// Whether a `once`-mode trace has completed its single pass.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Renders the trace back into the text format, one event per line.
    ///
    /// `render` and [`from_reader`](Self::from_reader) are exact inverses:
    /// parsing the rendered text reproduces the instruction sequence
    /// identically (the round-trip property test in
    /// `tests/trace_ingest.rs` pins this for every [`Instr`] variant).
    /// On a streaming backend this re-reads the file and materializes
    /// the full text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.backend {
            Backend::Eager(instrs) => {
                for i in instrs.iter() {
                    out.push_str(&render_instr(i));
                    out.push('\n');
                }
            }
            Backend::Stream(s) => {
                let (gz, reader) = open_decompressed(&s.path).unwrap_or_else(|e| {
                    panic!("{}: vanished during render: {e}", s.path.display())
                });
                let (_, _, instrs) = scan(reader, s.format, gz, true)
                    .unwrap_or_else(|e| panic!("{}: changed during render: {e}", s.path.display()));
                for i in &instrs {
                    out.push_str(&render_instr(i));
                    out.push('\n');
                }
            }
        }
        out
    }
}

fn open_decompressed(path: &Path) -> Result<(bool, Box<dyn Read + Send>), ParseTraceError> {
    let file = std::fs::File::open(path)
        .map_err(|e| ParseTraceError::at_line(0, format!("cannot open {}: {e}", path.display())))?;
    let (gz, chained) =
        maybe_gunzip(file).map_err(|e| ParseTraceError::at_line(0, format!("read error: {e}")))?;
    let reader: Box<dyn Read + Send> = if gz {
        Box::new(GzDecoder::new(chained))
    } else {
        Box::new(chained)
    };
    Ok((gz, reader))
}

/// Renders one instruction in the trace-file text format (no newline).
///
/// The inverse of the line parser: `O` for non-memory ops, `<kind> <hex
/// addr> <hex pc>` for memory events.
pub fn render_instr(instr: &Instr) -> String {
    let line = |kind: char, m: &MemRef| format!("{kind} {:x} {:x}", m.addr.get(), m.pc.get());
    match instr {
        Instr::Op => "O".to_owned(),
        Instr::Load(m) => line('L', m),
        Instr::ChainedLoad(m) => line('C', m),
        Instr::Store(m) => line('S', m),
        Instr::SwPrefetch(m) => line('P', m),
    }
}

// -- streaming backend -------------------------------------------------------

/// The streaming backend: an open decode pipeline over the file, torn
/// down and reopened at every wrap. Parse/IO failures after the
/// open-time validation pass mean the file changed mid-run and panic.
struct Stream {
    path: PathBuf,
    format: TraceFormat,
    reader: BufReader<Box<dyn Read + Send>>,
    /// 1-based location of the next event (text line / binary record).
    at: u64,
}

impl Stream {
    fn open(path: PathBuf, format: TraceFormat) -> Stream {
        let (_, reader) = open_decompressed(&path)
            .unwrap_or_else(|e| panic!("{}: vanished during replay: {e}", path.display()));
        Stream {
            path,
            format,
            reader: BufReader::new(reader),
            at: 0,
        }
    }

    /// A fresh pipeline advanced past `pos` events (clone support).
    fn reopen_at(&self, pos: u64) -> Stream {
        let mut s = Stream::open(self.path.clone(), self.format);
        for _ in 0..pos {
            if s.next().is_none() {
                panic!("{}: shrank during replay", self.path.display());
            }
        }
        s
    }

    /// Next event, or `None` at a clean end of file.
    fn next(&mut self) -> Option<Instr> {
        match self.format {
            TraceFormat::Text => {
                let mut buf = String::new();
                loop {
                    buf.clear();
                    self.at += 1;
                    let n = self.reader.read_line(&mut buf).unwrap_or_else(|e| {
                        panic!("{}: read error during replay: {e}", self.path.display())
                    });
                    if n == 0 {
                        return None;
                    }
                    let line = buf.split('#').next().unwrap_or("").trim();
                    if line.is_empty() {
                        continue;
                    }
                    let instr = TraceFileWorkload::parse_line(line, self.at as usize)
                        .unwrap_or_else(|e| {
                            panic!("{}: changed during replay: {e}", self.path.display())
                        });
                    return Some(instr);
                }
            }
            TraceFormat::Champsim => {
                let mut buf = [0u8; champsim::RECORD_BYTES];
                let mut got = 0;
                while got < buf.len() {
                    match self.reader.read(&mut buf[got..]) {
                        Ok(0) => break,
                        Ok(n) => got += n,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => panic!("{}: read error during replay: {e}", self.path.display()),
                    }
                }
                if got == 0 {
                    return None;
                }
                self.at += 1;
                if got < buf.len() {
                    panic!("{}: truncated during replay", self.path.display());
                }
                let instr = champsim::parse_record(&buf, self.at).unwrap_or_else(|e| {
                    panic!("{}: changed during replay: {e}", self.path.display())
                });
                Some(instr)
            }
        }
    }

    /// Next event, wrapping to the start of the file at EOF.
    fn next_or_wrap(&mut self) -> Instr {
        if let Some(i) = self.next() {
            return i;
        }
        *self = Stream::open(self.path.clone(), self.format);
        self.next()
            .unwrap_or_else(|| panic!("{}: emptied during replay", self.path.display()))
    }
}

impl Workload for TraceFileWorkload {
    fn next_instr(&mut self) -> Instr {
        if self.exhausted {
            return Instr::Op;
        }
        let instr = match &mut self.backend {
            Backend::Eager(instrs) => instrs[self.pos as usize],
            Backend::Stream(s) => s.next_or_wrap(),
        };
        self.pos += 1;
        if self.pos >= self.len {
            self.pos = 0;
            self.exhausted = self.once;
        }
        instr
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gzip::gzip_store;

    #[test]
    fn parses_all_event_kinds() {
        let text = "O\nL 10 1\nC 20 2\nS 30 3\nP 40 4\n";
        let mut w = TraceFileWorkload::from_reader("t", text.as_bytes()).unwrap();
        assert_eq!(w.len(), 5);
        assert_eq!(w.next_instr(), Instr::Op);
        assert!(matches!(w.next_instr(), Instr::Load(m) if m.addr.get() == 0x10));
        assert!(matches!(w.next_instr(), Instr::ChainedLoad(m) if m.addr.get() == 0x20));
        assert!(matches!(w.next_instr(), Instr::Store(m) if m.pc.get() == 0x3));
        assert!(matches!(w.next_instr(), Instr::SwPrefetch(_)));
    }

    #[test]
    fn comments_blanks_and_0x_prefixes() {
        let text = "# header\n\n  L 0x1040 0x400  # inline comment\n";
        let w = TraceFileWorkload::from_reader("t", text.as_bytes()).unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn loops_at_end() {
        let mut w = TraceFileWorkload::from_reader("t", "L 10 1\nS 20 2\n".as_bytes()).unwrap();
        let a = w.next_instr();
        let _ = w.next_instr();
        assert_eq!(w.next_instr(), a);
    }

    #[test]
    fn rejects_malformed_lines() {
        let e = TraceFileWorkload::from_reader("t", "L zzz 1\n".as_bytes()).unwrap_err();
        assert_eq!(e.line(), 1);
        assert!(e.to_string().contains("bad address"));

        let e = TraceFileWorkload::from_reader("t", "L 10\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("missing pc"));

        let e = TraceFileWorkload::from_reader("t", "X 10 1\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("unknown event kind"));
    }

    #[test]
    fn rejects_empty_trace() {
        let e = TraceFileWorkload::from_reader("t", "# only comments\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("empty trace"));
    }

    #[test]
    fn from_path_round_trips() {
        let dir = std::env::temp_dir().join("tk_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.trace");
        std::fs::write(&path, "L 1040 400\nO\n").unwrap();
        let w = TraceFileWorkload::from_path(&path).unwrap();
        assert_eq!(w.name(), "mini");
        assert_eq!(w.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gzip_is_transparent_and_digest_invariant() {
        let text = "O\nL 7f001040 400a\nS 7f001048 4012\n";
        let plain = TraceFileWorkload::from_reader("t", text.as_bytes()).unwrap();
        let gz = gzip_store(text.as_bytes());
        let zipped = TraceFileWorkload::from_reader("t", &gz[..]).unwrap();
        assert!(zipped.is_compressed());
        assert!(!plain.is_compressed());
        assert_eq!(plain.len(), zipped.len());
        assert_eq!(plain.digest(), zipped.digest());
        assert_eq!(plain.render(), zipped.render());
    }

    #[test]
    fn digest_is_sensitive_to_one_record() {
        let a = TraceFileWorkload::from_reader("a", "L 10 1\nS 20 2\n".as_bytes()).unwrap();
        let b = TraceFileWorkload::from_reader("b", "L 10 1\nS 20 3\n".as_bytes()).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn champsim_and_text_share_a_digest() {
        let instrs = [
            Instr::Op,
            Instr::Load(MemRef::new(Addr::new(0x10), Pc::new(0x1))),
            Instr::Store(MemRef::new(Addr::new(0x20), Pc::new(0x2))),
        ];
        let bin = crate::champsim::render_trace(&instrs);
        let cs = TraceFileWorkload::from_reader_fmt("t", &bin[..], TraceFormat::Champsim).unwrap();
        let txt = TraceFileWorkload::from_reader("t", "O\nL 10 1\nS 20 2\n".as_bytes()).unwrap();
        assert_eq!(cs.digest(), txt.digest());
        assert_eq!(cs.render(), txt.render());
    }

    #[test]
    fn open_spec_parses_format_and_stream_tags() {
        let dir = std::env::temp_dir().join("tk_trace_spec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spec.trace");
        std::fs::write(&path, "L 1040 400\nO\n").unwrap();
        let base = path.display().to_string();

        let w = TraceFileWorkload::open_spec(&base).unwrap();
        assert!(!w.is_streaming());
        assert_eq!(w.format(), TraceFormat::Text);

        let w = TraceFileWorkload::open_spec(&format!("{base}:text:stream")).unwrap();
        assert!(w.is_streaming());
        assert_eq!(w.format(), TraceFormat::Text);

        assert!(TraceFileWorkload::open_spec(":stream").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_and_eager_yield_identical_streams() {
        let dir = std::env::temp_dir().join("tk_trace_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.trace");
        let mut text = String::from("# captured\n");
        for i in 0..300u64 {
            text.push_str(&format!(
                "L {:x} {:x}\nO\nS {:x} {:x}\n",
                0x1000 + i * 32,
                0x40 + i,
                0x9000 + i * 8,
                0x80 + i
            ));
        }
        std::fs::write(&path, &text).unwrap();

        let mut eager = TraceFileWorkload::from_path(&path).unwrap();
        let mut stream = TraceFileWorkload::from_path_with(&path, None, true).unwrap();
        assert!(!eager.is_streaming());
        assert!(stream.is_streaming());
        assert_eq!(eager.digest(), stream.digest());
        assert_eq!(eager.len(), stream.len());
        // Walk well past one wrap: every instruction must agree.
        for i in 0..(eager.len() * 2 + 7) {
            assert_eq!(eager.next_instr(), stream.next_instr(), "instr {i}");
        }
        // Clones resume from the current position identically.
        let mut ec = eager.clone();
        let mut sc = stream.clone();
        for i in 0..23 {
            let want = ec.next_instr();
            assert_eq!(want, sc.next_instr(), "cloned instr {i}");
            assert_eq!(want, eager.next_instr());
            assert_eq!(want, stream.next_instr());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn once_mode_pads_with_ops_after_one_pass() {
        let mut w = TraceFileWorkload::from_reader("t", "L 10 1\nS 20 2\n".as_bytes()).unwrap();
        w.set_once(true);
        assert!(matches!(w.next_instr(), Instr::Load(_)));
        assert!(matches!(w.next_instr(), Instr::Store(_)));
        assert!(w.exhausted());
        for _ in 0..10 {
            assert_eq!(w.next_instr(), Instr::Op);
        }
        // Disarming resumes the loop from the top.
        w.set_once(false);
        assert!(matches!(w.next_instr(), Instr::Load(_)));
    }

    #[test]
    fn runs_through_the_simulator() {
        use tk_sim::{run_workload, SystemConfig};
        let mut text = String::new();
        for i in 0..64 {
            text.push_str(&format!("L {:x} 400\nO\nO\n", 0x10000 + i * 32));
        }
        let mut w = TraceFileWorkload::from_reader("loop", text.as_bytes()).unwrap();
        let r = run_workload(&mut w, SystemConfig::base(), 10_000);
        assert!(r.hierarchy.l1_accesses > 3_000);
        assert!(r.ipc() > 0.0);
    }
}
