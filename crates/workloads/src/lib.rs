//! # tk-workloads — deterministic SPEC2000-like workload generators
//!
//! The paper evaluates on SPEC CPU2000 binaries; this crate substitutes
//! deterministic synthetic reference generators, one per benchmark,
//! calibrated so each benchmark exhibits the qualitative behavior the
//! paper reports for it (miss mix, memory-stall sensitivity, live-time
//! regularity, address predictability, burstiness — see DESIGN.md §1).
//!
//! * [`patterns`] — the building blocks: streams, triads, stencils, tiled
//!   passes, pointer chases and conflict walks.
//! * [`profile`] — [`SyntheticWorkload`]: a weighted pattern mix with
//!   interleaved compute, burstiness, and compiler-style software
//!   prefetching.
//! * [`spec`] — [`SpecBenchmark`]: the calibrated 26-benchmark suite.
//!
//! ```
//! use tk_workloads::SpecBenchmark;
//! use tk_sim::{run_workload, SystemConfig};
//!
//! let mut ammp = SpecBenchmark::Ammp.build(1);
//! let result = run_workload(&mut ammp, SystemConfig::base(), 20_000);
//! assert!(result.hierarchy.l1_accesses > 1_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod capture;
pub mod champsim;
pub mod gzip;
pub mod multiprog;
pub mod patterns;
pub mod profile;
pub mod rng;
pub mod spec;
pub mod tracefile;

pub use capture::{capture_to_instrs, capture_to_trace_text};
pub use multiprog::{ConcurrentMix, Multiprogrammed};
pub use profile::{Burstiness, SwPrefetchPolicy, SyntheticWorkload};
pub use rng::Rng;
pub use spec::{BenchGroup, SpecBenchmark};
pub use tracefile::{render_instr, ParseTraceError, TraceFileWorkload, TraceFormat};

/// The crate version, for run manifests.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
