//! Property-based tests of the simulator substrate: the set-associative
//! cache against a reference LRU model, MSHR bookkeeping, bus
//! serialization, and whole-system conservation laws.

#![cfg(feature = "property-tests")]

use proptest::collection::vec;
use proptest::prelude::*;

use timekeeping::{Addr, CacheGeometry, Cycle, LineAddr, Pc};
use tk_sim::bus::Bus;
use tk_sim::cache::{ProbeResult, SetAssocCache};
use tk_sim::mshr::MshrFile;
use tk_sim::trace::{Instr, MemRef, Workload};
use tk_sim::{run_workload, SystemConfig};

// ----------------------------------------------------- set-assoc cache LRU

/// Reference model: per-set ordered vectors of tags.
struct RefCache {
    geom: CacheGeometry,
    sets: Vec<Vec<u64>>,
}

impl RefCache {
    fn new(geom: CacheGeometry) -> Self {
        RefCache {
            geom,
            sets: vec![Vec::new(); geom.num_sets() as usize],
        }
    }

    /// Returns whether the access hit, applying LRU update + fill.
    fn access(&mut self, addr: Addr) -> bool {
        let set = &mut self.sets[self.geom.index_of(addr) as usize];
        let tag = self.geom.tag_of(addr);
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            set.remove(pos);
            set.push(tag);
            true
        } else {
            set.push(tag);
            if set.len() > self.geom.assoc() as usize {
                set.remove(0);
            }
            false
        }
    }
}

proptest! {
    /// probe+fill agrees with the reference LRU model on hit/miss for
    /// every access of any trace and any small geometry.
    #[test]
    fn cache_matches_reference_lru(
        trace in vec(0u64..4096, 1..500),
        assoc_log in 0u32..3,
    ) {
        let geom = CacheGeometry::new(1024, 1 << assoc_log, 32).unwrap();
        let mut cache = SetAssocCache::new(geom);
        let mut reference = RefCache::new(geom);
        for &raw in &trace {
            let addr = Addr::new(raw * 8);
            let expected_hit = reference.access(addr);
            match cache.probe(addr) {
                ProbeResult::Hit(frame) => {
                    prop_assert!(expected_hit, "model says miss, cache hit");
                    prop_assert_eq!(cache.line_in_frame(frame), Some(geom.line_of(addr)));
                }
                ProbeResult::Miss { .. } => {
                    prop_assert!(!expected_hit, "model says hit, cache missed");
                    cache.fill(addr);
                }
            }
        }
        prop_assert_eq!(
            cache.hits() + cache.misses(),
            trace.len() as u64
        );
    }

    /// The victim reported by a missing probe is exactly the line that a
    /// subsequent fill evicts.
    #[test]
    fn probe_victim_prediction_matches_fill(trace in vec(0u64..512, 1..200)) {
        let geom = CacheGeometry::new(512, 2, 32).unwrap();
        let mut cache = SetAssocCache::new(geom);
        for &raw in &trace {
            let addr = Addr::new(raw * 32);
            if let ProbeResult::Miss { victim_frame, evicted } = cache.probe(addr) {
                let (frame, evicted2) = cache.fill(addr);
                prop_assert_eq!(frame, victim_frame);
                prop_assert_eq!(evicted2, evicted);
            }
        }
    }
}

proptest! {
    /// probe/fill/invalidate agree with the reference model under a mixed
    /// op stream: invalidated lines miss on re-access, and the cache never
    /// resurrects a line the model dropped.
    #[test]
    fn cache_matches_reference_with_invalidate(
        ops in vec((0u64..512, any::<bool>()), 1..400),
        assoc_log in 0u32..3,
    ) {
        let geom = CacheGeometry::new(1024, 1 << assoc_log, 32).unwrap();
        let mut cache = SetAssocCache::new(geom);
        let mut reference = RefCache::new(geom);
        for &(raw, is_invalidate) in &ops {
            let addr = Addr::new(raw * 32);
            if is_invalidate {
                let set = &mut reference.sets[geom.index_of(addr) as usize];
                let tag = geom.tag_of(addr);
                let expected = set.iter().position(|&t| t == tag).map(|i| {
                    set.remove(i);
                });
                match cache.peek(addr) {
                    Some(frame) => {
                        prop_assert!(expected.is_some(), "cache holds a line the model dropped");
                        prop_assert_eq!(cache.invalidate(frame), Some(geom.line_of(addr)));
                    }
                    None => prop_assert!(expected.is_none(), "model holds a line the cache lost"),
                }
            } else {
                let expected_hit = reference.access(addr);
                match cache.probe(addr) {
                    ProbeResult::Hit(_) => prop_assert!(expected_hit),
                    ProbeResult::Miss { .. } => {
                        prop_assert!(!expected_hit);
                        cache.fill(addr);
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------------- MSHRs

proptest! {
    /// Outstanding count tracks allocations minus expiries; merges find
    /// exactly the outstanding lines.
    #[test]
    fn mshr_bookkeeping(allocs in vec((0u64..64, 1u64..10_000), 1..64)) {
        let mut m = MshrFile::new(64);
        let mut expected: std::collections::HashMap<u64, u64> = Default::default();
        let mut t = 0u64;
        for (line, dur) in allocs {
            t += 1;
            let now = Cycle::new(t);
            expected.retain(|_, &mut ready| ready > t);
            m.expire(now);
            if let Some(ready) = m.lookup(LineAddr::new(line)) {
                prop_assert_eq!(Some(&ready.get()), expected.get(&line));
            } else if expected.len() < 64 {
                m.allocate(LineAddr::new(line), now + dur);
                expected.insert(line, t + dur);
            }
            prop_assert_eq!(m.outstanding(now), expected.len());
        }
    }
}

// --------------------------------------------------------------------- bus

proptest! {
    /// Bus grants are non-overlapping, in order, and never before the
    /// request time.
    #[test]
    fn bus_serializes_without_overlap(
        occupancy in 1u64..16,
        reqs in vec(0u64..10_000, 1..100),
    ) {
        let mut sorted = reqs.clone();
        sorted.sort_unstable();
        let mut bus = Bus::new(occupancy);
        let mut last_end = 0u64;
        for &r in &sorted {
            let start = bus.schedule(Cycle::new(r));
            prop_assert!(start.get() >= r, "grant before request");
            prop_assert!(start.get() >= last_end, "overlapping transfers");
            last_end = start.get() + occupancy;
        }
        prop_assert_eq!(bus.transfers(), sorted.len() as u64);
        prop_assert_eq!(bus.busy_cycles(), occupancy * sorted.len() as u64);
    }
}

// ---------------------------------------------------------- whole system

/// A small deterministic workload over a parameterized footprint.
struct ParamStream {
    pos: u64,
    stride: u64,
    footprint: u64,
}

impl Workload for ParamStream {
    fn next_instr(&mut self) -> Instr {
        self.pos = (self.pos + self.stride) % self.footprint;
        Instr::Load(MemRef::new(Addr::new(0x1000_0000 + self.pos), Pc::new(4)))
    }
    fn name(&self) -> &str {
        "param-stream"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// System-level conservation: hits + misses = accesses; classified
    /// misses = L1 misses; L2 demand accesses = L1 misses (no victim
    /// cache, no prefetch); memory accesses <= L2 accesses; cycles > 0 and
    /// IPC <= issue width.
    #[test]
    fn system_conservation_laws(
        stride_log in 3u32..8,
        footprint_log in 12u32..22,
    ) {
        let mut w = ParamStream {
            pos: 0,
            stride: 1 << stride_log,
            footprint: 1 << footprint_log,
        };
        let r = run_workload(&mut w, SystemConfig::base(), 30_000);
        let h = r.hierarchy;
        prop_assert_eq!(h.l1_accesses, 30_000);
        prop_assert!(h.l1_hits <= h.l1_accesses);
        prop_assert_eq!(r.breakdown.total(), h.l1_misses());
        prop_assert_eq!(h.l2_accesses, h.l1_misses());
        prop_assert!(h.mem_accesses <= h.l2_accesses);
        prop_assert!(r.core.cycles > 0);
        prop_assert!(r.ipc() <= 8.0 + 1e-9);
    }
}

// ------------------------------------------------- core-model monotonicity

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// A wider issue width never slows the machine down (same workload,
    /// same hierarchy).
    #[test]
    fn ipc_monotone_in_issue_width(stride_log in 3u32..7, footprint_log in 14u32..20) {
        let run = |width: u32| {
            let mut cfg = SystemConfig::base();
            cfg.machine.issue_width = width;
            cfg.machine.commit_width = width;
            let mut w = ParamStream {
                pos: 0,
                stride: 1 << stride_log,
                footprint: 1 << footprint_log,
            };
            run_workload(&mut w, cfg, 20_000).ipc()
        };
        let (one, four, eight) = (run(1), run(4), run(8));
        prop_assert!(four >= one - 1e-9, "4-wide {four} < 1-wide {one}");
        prop_assert!(eight >= four - 1e-9, "8-wide {eight} < 4-wide {four}");
    }

}

// ------------------------------------------------- snapshot round-trip

use timekeeping::snapshot::{Json, Snapshot};
use tk_sim::{PrefetchMode, RunResult, VictimMode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// A complete `RunResult` — core, hierarchy, breakdown, metrics and
    /// any victim/prefetch extras — serializes to JSON and back
    /// bit-exactly, for runs on machines that populate the optional
    /// sections as well as the base machine.
    #[test]
    fn run_result_snapshot_roundtrips(
        stride_log in 3u32..8,
        footprint_log in 13u32..20,
        machine in 0usize..3,
    ) {
        let cfg = match machine {
            0 => SystemConfig::base(),
            1 => SystemConfig::with_victim(VictimMode::Collins),
            _ => SystemConfig::with_prefetch(PrefetchMode::Stride(
                timekeeping::StrideConfig::default(),
            )),
        };
        let mut w = ParamStream {
            pos: 0,
            stride: 1 << stride_log,
            footprint: 1 << footprint_log,
        };
        let r = run_workload(&mut w, cfg, 20_000);
        let doc = r.to_json().render();
        let parsed = Json::parse(&doc).expect("rendered snapshots parse back");
        prop_assert_eq!(parsed.render(), &doc, "render→parse→render changed the text");
        let back = RunResult::from_json(&parsed).expect("snapshot shape matches");
        prop_assert_eq!(&back, &r, "from_json(to_json(r)) != r");
        prop_assert_eq!(back.to_json().render(), doc);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// A larger instruction window never slows the machine down.
    #[test]
    fn ipc_monotone_in_window(stride_log in 3u32..7, footprint_log in 14u32..20) {
        let run = |window: u32| {
            let mut cfg = SystemConfig::base();
            cfg.machine.window_size = window;
            let mut w = ParamStream {
                pos: 0,
                stride: 1 << stride_log,
                footprint: 1 << footprint_log,
            };
            run_workload(&mut w, cfg, 20_000).ipc()
        };
        let (small, large) = (run(32), run(256));
        prop_assert!(large >= small - 1e-9, "256-entry {large} < 32-entry {small}");
    }
}

// --------------------------------------------------- event-driven advance

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Advancing the memory system cycle-by-cycle from a to b is
    /// indistinguishable from a single jump `advance(b)`: the event-driven
    /// advance replays every intermediate wake-up (global tick, prefetch
    /// arrival, issue-gate opening) at its true timestamp, so access
    /// outcomes and every hierarchy statistic stay bit-equal under an
    /// arbitrary access schedule with arbitrary idle gaps.
    #[test]
    fn advance_jump_equals_stepping(
        schedule in vec((1u64..1_500, 0u64..512, any::<bool>()), 1..80),
    ) {
        let cfg = SystemConfig::with_prefetch(tk_sim::PrefetchMode::Timekeeping(
            timekeeping::CorrelationConfig::PAPER_8KB,
        ));
        let mut jump = tk_sim::MemorySystem::new(cfg);
        let mut step = tk_sim::MemorySystem::new(cfg);
        let mut now = 0u64;
        for (gap, line, is_store) in schedule {
            let prev = now;
            now += gap;
            for c in prev + 1..=now {
                step.advance(Cycle::new(c));
            }
            jump.advance(Cycle::new(now));
            // Reuse a small set of lines so prefetches actually train/fire.
            let mref = MemRef::new(Addr::new(0x4_0000 + line * 32), Pc::new(0x10));
            let a = jump.access(&mref, is_store, Cycle::new(now));
            let b = step.access(&mref, is_store, Cycle::new(now));
            prop_assert_eq!(a, b, "outcome diverged at cycle {}", now);
        }
        jump.finish(Cycle::new(now));
        step.finish(Cycle::new(now));
        prop_assert_eq!(jump.stats(), step.stats());
        prop_assert_eq!(jump.miss_breakdown(), step.miss_breakdown());
        prop_assert_eq!(jump.pf_queue_discards(), step.pf_queue_discards());
    }
}
