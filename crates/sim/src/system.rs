//! One-call experiment runner: workload × configuration → statistics.

use timekeeping::snapshot::{Json, Snapshot, SnapshotError};
use timekeeping::{MetricsCollector, MissBreakdown, TimelinessStats, VictimStats};

use crate::config::SystemConfig;
use crate::core::{CoreStats, OooCore};
use crate::hierarchy::{HierarchyStats, MemorySystem};
use crate::trace::Workload;

/// Everything a single simulation run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Core statistics (IPC, instruction mix).
    pub core: CoreStats,
    /// Hierarchy counters.
    pub hierarchy: HierarchyStats,
    /// Ground-truth miss breakdown.
    pub breakdown: MissBreakdown,
    /// Timekeeping metric distributions and predictor scores.
    pub metrics: MetricsCollector,
    /// Victim-cache statistics, if configured.
    pub victim: Option<VictimStats>,
    /// Victim-cache swap-path fills, if configured.
    pub victim_swap_fills: Option<u64>,
    /// Prefetch timeliness, if a prefetcher ran.
    pub timeliness: TimelinessStats,
    /// Correlation-table stats (timekeeping prefetcher only).
    pub correlation: Option<timekeeping::CorrelationStats>,
    /// DBCP stats (DBCP prefetcher only).
    pub dbcp: Option<timekeeping::DbcpStats>,
    /// Prefetch-queue overflow discards.
    pub pf_queue_discards: u64,
    /// Banked-DRAM statistics (`None` under the fixed-latency default).
    pub dram: Option<crate::dram::DramStats>,
    /// Statistical-sampling summary (`None` for full runs, including
    /// configurations where sampling was requested but fell back to full
    /// simulation — the absence of this tag is the fallback signal).
    pub sampled: Option<crate::sample::SampleStats>,
    /// Coherence-plane counters (`Some` exactly when `cores > 1`).
    pub coherence: Option<crate::multicore::CoherenceStats>,
}

impl RunResult {
    /// Instructions per cycle of the run.
    pub fn ipc(&self) -> f64 {
        self.core.ipc()
    }

    /// Relative IPC improvement of this run over a baseline run.
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        if base.ipc() == 0.0 {
            0.0
        } else {
            self.ipc() / base.ipc() - 1.0
        }
    }
}

impl Snapshot for RunResult {
    fn to_json(&self) -> Json {
        let mut obj = Json::obj([
            ("workload", Json::Str(self.workload.clone())),
            ("core", self.core.to_json()),
            ("hierarchy", self.hierarchy.to_json()),
            ("breakdown", self.breakdown.to_json()),
            ("metrics", self.metrics.to_json()),
            ("victim", Json::option(&self.victim)),
            (
                "victim_swap_fills",
                match self.victim_swap_fills {
                    Some(n) => Json::U64(n),
                    None => Json::Null,
                },
            ),
            ("timeliness", self.timeliness.to_json()),
            ("correlation", Json::option(&self.correlation)),
            ("dbcp", Json::option(&self.dbcp)),
            ("pf_queue_discards", Json::U64(self.pf_queue_discards)),
        ]);
        // Emitted only when present: the fixed-latency default keeps the
        // exact pre-backend document shape, so golden digests and old
        // cached results stay byte-identical.
        if let Some(d) = &self.dram {
            if let Json::Obj(map) = &mut obj {
                map.insert("dram".to_owned(), d.to_json());
            }
        }
        if let Some(s) = &self.sampled {
            if let Json::Obj(map) = &mut obj {
                map.insert("sampled".to_owned(), s.to_json());
            }
        }
        if let Some(c) = &self.coherence {
            if let Json::Obj(map) = &mut obj {
                map.insert("coherence".to_owned(), c.to_json());
            }
        }
        obj
    }

    fn from_json(v: &Json) -> Result<Self, SnapshotError> {
        Ok(RunResult {
            workload: v.get("workload")?.as_str()?.to_owned(),
            core: v.snapshot_field("core")?,
            hierarchy: v.snapshot_field("hierarchy")?,
            breakdown: v.snapshot_field("breakdown")?,
            metrics: v.snapshot_field("metrics")?,
            victim: v.option_field("victim")?,
            victim_swap_fills: match v.get("victim_swap_fills")? {
                Json::Null => None,
                other => Some(other.as_u64()?),
            },
            timeliness: v.snapshot_field("timeliness")?,
            correlation: v.option_field("correlation")?,
            dbcp: v.option_field("dbcp")?,
            pf_queue_discards: v.u64_field("pf_queue_discards")?,
            // Tolerant of the field's absence (documents written before
            // the backend plane, and every fixed-latency run since).
            dram: match v.get("dram") {
                Err(_) | Ok(Json::Null) => None,
                Ok(other) => Some(crate::dram::DramStats::from_json(other)?),
            },
            sampled: match v.get("sampled") {
                Err(_) | Ok(Json::Null) => None,
                Ok(other) => Some(crate::sample::SampleStats::from_json(other)?),
            },
            coherence: match v.get("coherence") {
                Err(_) | Ok(Json::Null) => None,
                Ok(other) => Some(crate::multicore::CoherenceStats::from_json(other)?),
            },
        })
    }
}

/// Simulates `instructions` instructions of `workload` on a machine
/// configured by `cfg`.
///
/// # Examples
///
/// ```
/// use tk_sim::{run_workload, SystemConfig};
/// use tk_sim::trace::{Instr, Workload};
///
/// struct Ops;
/// impl Workload for Ops {
///     fn next_instr(&mut self) -> Instr { Instr::Op }
///     fn name(&self) -> &str { "ops" }
/// }
///
/// let result = run_workload(&mut Ops, SystemConfig::base(), 1_000);
/// assert_eq!(result.core.instructions, 1_000);
/// assert!(result.ipc() > 1.0);
/// ```
pub fn run_workload<W: Workload + ?Sized>(
    workload: &mut W,
    cfg: SystemConfig,
    instructions: u64,
) -> RunResult {
    let checked = crate::oracle::lockstep_check_enabled();
    if cfg.cores > 1 {
        // Multi-core configurations run the MESI-coherent hierarchy.
        // Statistical sampling is ignored there; the missing `sampled`
        // tag is the standard fallback signal.
        return crate::multicore::run_multicore(workload, cfg, instructions, checked);
    }
    if let Some(sc) = cfg.sample {
        if crate::oracle::FunctionalOracle::supports(&cfg) {
            if let Some(r) = crate::sample::run_sampled(workload, cfg, sc, instructions, checked) {
                return r;
            }
        }
        // Unsupported configuration or unforkable workload: fall through
        // to an ordinary full run. The result carries no `sampled` tag,
        // which is how callers detect the fallback.
    }
    let mut sys = if checked {
        SimSystem::checked(cfg)
    } else {
        SimSystem::new(cfg)
    };
    sys.run(workload, instructions)
}

/// Like [`run_workload`], but with the functional-oracle lockstep checker
/// installed (when the configuration supports it): every access is
/// replayed into a timing-free reference model and any divergence panics
/// with a diagnostic report. See [`crate::oracle`].
pub fn run_workload_checked<W: Workload + ?Sized>(
    workload: &mut W,
    cfg: SystemConfig,
    instructions: u64,
) -> RunResult {
    if cfg.cores > 1 {
        return crate::multicore::run_multicore(workload, cfg, instructions, true);
    }
    if let Some(sc) = cfg.sample {
        if crate::oracle::FunctionalOracle::supports(&cfg) {
            if let Some(r) = crate::sample::run_sampled(workload, cfg, sc, instructions, true) {
                return r;
            }
        }
    }
    SimSystem::checked(cfg).run(workload, instructions)
}

/// A constructed simulation — core plus memory system — with an explicit
/// check mode.
///
/// [`run_workload`] covers the common one-shot case; `SimSystem` is for
/// callers that need to decide up front whether the run is self-verifying
/// ([`SimSystem::checked`]) or inspect the memory system afterwards.
#[derive(Debug)]
pub struct SimSystem {
    core: OooCore,
    mem: MemorySystem,
}

impl SimSystem {
    /// Builds an unchecked simulation of `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let core = OooCore::new(&cfg);
        let mem = MemorySystem::new(cfg);
        SimSystem { core, mem }
    }

    /// Builds a simulation with the lockstep checker installed.
    ///
    /// Configurations the oracle cannot mirror (the cold-miss-only L1
    /// study mode) run unchecked; [`SimSystem::is_checked`] reports what
    /// happened.
    pub fn checked(cfg: SystemConfig) -> Self {
        let mut sys = Self::new(cfg);
        sys.mem.enable_lockstep_check();
        sys
    }

    /// Whether the lockstep checker is active.
    pub fn is_checked(&self) -> bool {
        self.mem.lockstep_check_active()
    }

    /// The memory system (for post-run inspection).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Runs `instructions` instructions of `workload` and collects the
    /// results. Draining the metrics means a `SimSystem` runs once.
    pub fn run<W: Workload + ?Sized>(&mut self, workload: &mut W, instructions: u64) -> RunResult {
        let core_stats = self.core.run(workload, &mut self.mem, instructions);
        let mem = &mut self.mem;
        RunResult {
            workload: workload.name().to_owned(),
            core: core_stats,
            hierarchy: mem.stats(),
            breakdown: mem.miss_breakdown(),
            victim: mem.victim_stats(),
            victim_swap_fills: mem.victim_swap_fills(),
            timeliness: *mem.timeliness(),
            correlation: mem.correlation_stats(),
            dbcp: mem.dbcp_stats(),
            pf_queue_discards: mem.pf_queue_discards(),
            dram: mem.dram_stats(),
            sampled: None,
            coherence: None,
            metrics: std::mem::take(mem.metrics_mut()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VictimMode;
    use crate::trace::{Instr, MemRef};
    use timekeeping::{Addr, Pc};

    /// A dependent (pointer-chase-style) ping-pong between two conflicting
    /// lines: every load's address depends on the previous one, so each
    /// conflict miss pays its full refill latency — exactly the pattern a
    /// victim cache rescues.
    struct ConflictPingPong(u64);
    impl Workload for ConflictPingPong {
        fn next_instr(&mut self) -> Instr {
            self.0 += 1;
            let a = (self.0 % 2) * 32 * 1024;
            Instr::ChainedLoad(MemRef::new(Addr::new(0x40 + a), Pc::new(8)))
        }
        fn name(&self) -> &str {
            "ping-pong"
        }
    }

    #[test]
    fn run_result_accessors() {
        let base = run_workload(&mut ConflictPingPong(0), SystemConfig::base(), 5_000);
        assert_eq!(base.workload, "ping-pong");
        assert!(base.breakdown.conflict > 0, "ping-pong generates conflicts");
        let vc = run_workload(
            &mut ConflictPingPong(0),
            SystemConfig::with_victim(VictimMode::Unfiltered),
            5_000,
        );
        assert!(
            vc.speedup_over(&base) > 0.1,
            "a victim cache must speed up a conflict ping-pong: {:.3} vs {:.3}",
            vc.ipc(),
            base.ipc()
        );
    }
}
