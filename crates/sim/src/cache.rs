//! Generic set-associative LRU cache tag array.
//!
//! Holds tags only (the simulator is timing-directed; data values are
//! irrelevant). Frames are numbered set-major: `frame = set * assoc + way`,
//! so for a direct-mapped cache the frame number equals the set index —
//! the identification the paper's per-frame timekeeping hardware relies on.

use timekeeping::{Addr, CacheGeometry, LineAddr};

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// Hit in the given frame.
    Hit(usize),
    /// Miss; the victim frame that a fill would use, and the line it
    /// currently holds (if any).
    Miss {
        /// Frame a fill would allocate into.
        victim_frame: usize,
        /// Line currently resident there, if valid.
        evicted: Option<LineAddr>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// A set-associative cache tag array with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use tk_sim::cache::{ProbeResult, SetAssocCache};
/// use timekeeping::{Addr, CacheGeometry};
///
/// let geom = CacheGeometry::new(1024, 2, 32)?;
/// let mut c = SetAssocCache::new(geom);
/// let a = Addr::new(0x40);
/// assert!(matches!(c.probe(a), ProbeResult::Miss { .. }));
/// c.fill(a);
/// assert!(matches!(c.probe(a), ProbeResult::Hit(_)));
/// # Ok::<(), timekeeping::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    ways: Vec<Way>,
    stamp: u64,
    accesses: u64,
    hits: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        SetAssocCache {
            geom,
            ways: vec![
                Way {
                    valid: false,
                    dirty: false,
                    tag: 0,
                    lru: 0
                };
                geom.num_frames() as usize
            ],
            stamp: 0,
            accesses: 0,
            hits: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Total accesses probed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Probe hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probe misses.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    #[inline]
    fn set_range(&self, addr: Addr) -> (usize, usize) {
        let set = self.geom.index_of(addr) as usize;
        let assoc = self.geom.assoc() as usize;
        (set * assoc, assoc)
    }

    /// Probes for `addr`, updating LRU state on a hit and counting the
    /// access. On a miss, reports the frame a fill would use (invalid way
    /// first, else LRU) without modifying anything.
    pub fn probe(&mut self, addr: Addr) -> ProbeResult {
        self.accesses += 1;
        self.stamp += 1;
        let tag = self.geom.tag_of(addr);
        let (base, assoc) = self.set_range(addr);
        for w in 0..assoc {
            let way = &mut self.ways[base + w];
            if way.valid && way.tag == tag {
                way.lru = self.stamp;
                self.hits += 1;
                self.debug_invariants(base, assoc);
                return ProbeResult::Hit(base + w);
            }
        }
        let victim = self.choose_victim(base, assoc);
        self.debug_invariants(base, assoc);
        ProbeResult::Miss {
            victim_frame: victim,
            evicted: self.line_in_frame(victim),
        }
    }

    /// Probes without updating LRU or counters.
    pub fn peek(&self, addr: Addr) -> Option<usize> {
        let tag = self.geom.tag_of(addr);
        let (base, assoc) = self.set_range(addr);
        (0..assoc)
            .map(|w| base + w)
            .find(|&f| self.ways[f].valid && self.ways[f].tag == tag)
    }

    fn choose_victim(&self, base: usize, assoc: usize) -> usize {
        let mut best = base;
        let mut best_key = (true, u64::MAX);
        for w in 0..assoc {
            let f = base + w;
            let key = (self.ways[f].valid, self.ways[f].lru);
            if key < best_key {
                best_key = key;
                best = f;
            }
        }
        best
    }

    /// The frame a fill of `addr` would allocate into and the line it
    /// currently holds, without modifying any state or counters.
    pub fn peek_victim(&self, addr: Addr) -> (usize, Option<LineAddr>) {
        let (base, assoc) = self.set_range(addr);
        let victim = self.choose_victim(base, assoc);
        (victim, self.line_in_frame(victim))
    }

    /// Fills `addr` into its set's victim frame (invalid way first, else
    /// LRU), marking it most-recently used. Returns
    /// `(frame, evicted_line)`.
    pub fn fill(&mut self, addr: Addr) -> (usize, Option<LineAddr>) {
        let (base, assoc) = self.set_range(addr);
        let victim = self.choose_victim(base, assoc);
        let evicted = self.line_in_frame(victim);
        self.stamp += 1;
        self.ways[victim] = Way {
            valid: true,
            dirty: false,
            tag: self.geom.tag_of(addr),
            lru: self.stamp,
        };
        self.debug_invariants(base, assoc);
        (victim, evicted)
    }

    /// Fills `addr` into a specific frame (used when a victim-cache swap
    /// restores a block into its original set). The frame must belong to
    /// `addr`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not in `addr`'s set.
    pub fn fill_frame(&mut self, frame: usize, addr: Addr) -> Option<LineAddr> {
        let (base, assoc) = self.set_range(addr);
        assert!(
            frame >= base && frame < base + assoc,
            "frame {frame} is not in the set of {addr}"
        );
        let evicted = self.line_in_frame(frame);
        self.stamp += 1;
        self.ways[frame] = Way {
            valid: true,
            dirty: false,
            tag: self.geom.tag_of(addr),
            lru: self.stamp,
        };
        self.debug_invariants(base, assoc);
        evicted
    }

    /// Marks the line in `frame` dirty (modified by a store). Fills clear
    /// the flag.
    pub fn mark_dirty(&mut self, frame: usize) {
        if self.ways[frame].valid {
            self.ways[frame].dirty = true;
        }
    }

    /// Clears the dirty bit of the (valid) line in `frame` without
    /// touching its replacement recency — the coherence snoop-flush
    /// path: a remote read cleans the owner's copy, but a snoop is not
    /// a use by the owning core, so the line's LRU position must not
    /// move.
    pub fn clean_frame(&mut self, frame: usize) {
        if self.ways[frame].valid {
            self.ways[frame].dirty = false;
        }
    }

    /// Whether the (valid) line in `frame` is dirty.
    pub fn frame_dirty(&self, frame: usize) -> bool {
        self.ways[frame].valid && self.ways[frame].dirty
    }

    /// The line currently resident in `frame`, if valid.
    pub fn line_in_frame(&self, frame: usize) -> Option<LineAddr> {
        let way = &self.ways[frame];
        way.valid.then(|| {
            let set = frame as u64 / self.geom.assoc() as u64;
            self.geom.line_from_parts(way.tag, set)
        })
    }

    /// The set index that `frame` belongs to.
    pub fn set_of_frame(&self, frame: usize) -> u64 {
        frame as u64 / self.geom.assoc() as u64
    }

    /// The valid lines of set `set` with their LRU stamps, in way order
    /// (diagnostic accessor for the lockstep divergence report).
    pub fn set_lines(&self, set: u64) -> Vec<(LineAddr, u64)> {
        let assoc = self.geom.assoc() as usize;
        let base = set as usize * assoc;
        (base..base + assoc)
            .filter_map(|f| self.line_in_frame(f).map(|l| (l, self.ways[f].lru)))
            .collect()
    }

    /// Invalidates `frame`, returning the line that was resident.
    pub fn invalidate(&mut self, frame: usize) -> Option<LineAddr> {
        let line = self.line_in_frame(frame);
        self.ways[frame].valid = false;
        line
    }

    /// Number of valid frames.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Structural invariants of one set, asserted after every mutation
    /// when the `check-invariants` feature is on: no duplicate valid tags
    /// within the set, and no LRU stamp from the future.
    #[cfg(feature = "check-invariants")]
    fn debug_invariants(&self, base: usize, assoc: usize) {
        for i in 0..assoc {
            let a = &self.ways[base + i];
            if !a.valid {
                continue;
            }
            assert!(
                a.lru <= self.stamp,
                "LRU stamp {} in frame {} is ahead of the clock {}",
                a.lru,
                base + i,
                self.stamp
            );
            for j in i + 1..assoc {
                let b = &self.ways[base + j];
                assert!(
                    !(b.valid && b.tag == a.tag),
                    "duplicate tag {:#x} in set {} (ways {i} and {j})",
                    a.tag,
                    base / assoc
                );
            }
        }
    }

    #[cfg(not(feature = "check-invariants"))]
    #[inline(always)]
    fn debug_invariants(&self, _base: usize, _assoc: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm_cache() -> SetAssocCache {
        // 4 sets, direct-mapped, 32 B blocks.
        SetAssocCache::new(CacheGeometry::new(128, 1, 32).expect("valid test geometry"))
    }

    fn assoc_cache() -> SetAssocCache {
        // 2 sets, 2-way, 32 B blocks.
        SetAssocCache::new(CacheGeometry::new(128, 2, 32).expect("valid test geometry"))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = dm_cache();
        let a = Addr::new(0x20);
        assert!(matches!(
            c.probe(a),
            ProbeResult::Miss { evicted: None, .. }
        ));
        c.fill(a);
        assert!(matches!(c.probe(a), ProbeResult::Hit(_)));
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = dm_cache();
        let a = Addr::new(0x20);
        let b = Addr::new(0x20 + 128); // same set, different tag
        c.fill(a);
        let (frame, evicted) = c.fill(b);
        assert_eq!(evicted, Some(c.geometry().line_of(a)));
        assert_eq!(c.line_in_frame(frame), Some(c.geometry().line_of(b)));
        assert!(c.peek(a).is_none());
    }

    #[test]
    fn two_way_lru_replacement() {
        let mut c = assoc_cache();
        let mk = |i: u64| Addr::new(i * 64); // all map to set 0 (64 B per set stride)
        c.fill(mk(0));
        c.fill(mk(1));
        // Touch 0 so 1 becomes LRU.
        assert!(matches!(c.probe(mk(0)), ProbeResult::Hit(_)));
        let (_, evicted) = c.fill(mk(2));
        assert_eq!(evicted, Some(c.geometry().line_of(mk(1))));
        assert!(c.peek(mk(0)).is_some());
        assert!(c.peek(mk(2)).is_some());
    }

    #[test]
    fn probe_miss_reports_victim_without_mutation() {
        let mut c = dm_cache();
        let a = Addr::new(0x20);
        c.fill(a);
        let b = Addr::new(0x20 + 128);
        match c.probe(b) {
            ProbeResult::Miss {
                victim_frame,
                evicted,
            } => {
                assert_eq!(evicted, Some(c.geometry().line_of(a)));
                assert_eq!(c.line_in_frame(victim_frame), Some(c.geometry().line_of(a)));
            }
            _ => panic!("expected miss"),
        }
        // a is still resident — probe did not fill.
        assert!(c.peek(a).is_some());
    }

    #[test]
    fn frame_set_mapping_direct_mapped() {
        let c = dm_cache();
        // Direct-mapped: frame == set.
        for f in 0..4 {
            assert_eq!(c.set_of_frame(f), f as u64);
        }
    }

    #[test]
    fn fill_frame_swaps_into_specific_way() {
        let mut c = assoc_cache();
        let a = Addr::new(0);
        let (frame, _) = c.fill(a);
        let b = Addr::new(64); // same set
        let evicted = c.fill_frame(frame, b);
        assert_eq!(evicted, Some(c.geometry().line_of(a)));
        assert_eq!(c.peek(b), Some(frame));
    }

    #[test]
    #[should_panic(expected = "not in the set")]
    fn fill_frame_rejects_wrong_set() {
        let mut c = dm_cache();
        // Frame 0 is set 0; addr 0x20 is set 1.
        c.fill_frame(0, Addr::new(0x20));
    }

    #[test]
    fn invalidate_clears() {
        let mut c = dm_cache();
        let a = Addr::new(0);
        let (f, _) = c.fill(a);
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.invalidate(f), Some(c.geometry().line_of(a)));
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.invalidate(f), None);
    }

    #[test]
    fn invalid_way_preferred_over_lru() {
        let mut c = assoc_cache();
        let a = Addr::new(0);
        c.fill(a);
        // Set 0 has one valid and one invalid way: fill must take the
        // invalid way, not evict `a`.
        let (_, evicted) = c.fill(Addr::new(64));
        assert_eq!(evicted, None);
        assert!(c.peek(a).is_some());
    }
}
