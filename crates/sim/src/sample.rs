//! Statistical sampling with functional-warmup checkpoints.
//!
//! Simulating every instruction under the full timing model is the cost
//! that caps how many configurations the figures can sweep. This module
//! implements SimPoint-style interval sampling on top of the
//! deterministic workload generators:
//!
//! 1. **Profile** — a timing-free pass over the instruction stream
//!    splits it into fixed-length intervals and summarizes each as a
//!    basic-block-vector analog: a 64-dimension signature of hashed PC
//!    and line-address reference counts.
//! 2. **Cluster** — seeded, deterministic k-means (k-means++
//!    initialization, Lloyd refinement, strict-`<` tie-breaks) groups
//!    the intervals; each cluster elects the member closest to its
//!    centroid as the *representative* and carries its population as the
//!    *weight*.
//! 3. **Warm + time** — a second pass fast-forwards architectural cache
//!    state through skipped intervals with the [`FunctionalOracle`]'s
//!    timing-free tag model (functional warmup), and runs only the
//!    representative intervals under the full timing model, each on a
//!    fresh machine seeded with the warmed L1/L2 tags, dirty bits,
//!    generation plane and miss-classification shadow.
//! 4. **Reconstruct** — representative statistics scale by their
//!    cluster weights (plus the sub-interval tail at weight one) into a
//!    [`RunResult`] tagged with [`SampleStats`], so sampled documents
//!    are self-describing and can never masquerade as full runs (the
//!    config cache key also gains a `sample={...}` fragment).
//!
//! ## Warmup fidelity
//!
//! For the base machine (and the unfiltered victim cache) the L1/L2 tag
//! state is timing-independent — every mutation happens at access time
//! in program order — so functional warmup reproduces it *exactly*, and
//! a representative's hit/miss outcomes match the full run's outcomes
//! for the same interval (see `tests/sampling.rs`). Timing-dependent
//! state is approximated: filtered victim caches warm with an admit-all
//! policy and start representatives empty, decay switch-offs are
//! invisible to warmup, and prefetcher state (predictor tables,
//! prefetched lines in flight) starts cold at each representative.
//! L2 dirty bits are not tracked, so sampled `l2_writebacks`
//! undercounts slightly. These are accuracy trade-offs of the sampled
//! *estimate*, bounded by `sample_calibrate`; they never leak into
//! full runs.

use std::sync::Mutex;

use timekeeping::snapshot::{Json, Snapshot, SnapshotError};
use timekeeping::{
    CacheGeometry, CorrelationStats, Cycle, FullyAssocShadow, LineAddr, MetricsCollector,
    MissBreakdown, TimelinessStats, VictimStats,
};

use crate::config::{SampleConfig, SystemConfig};
use crate::core::{CoreStats, OooCore};
use crate::dram::DramStats;
use crate::hierarchy::{HierarchyStats, MemorySystem};
use crate::obs::TraceKind;
use crate::oracle::{FunctionalOracle, LockstepChecker};
use crate::system::{RunResult, SimSystem};
use crate::trace::{Instr, Workload};

// ---------------------------------------------------------------------------
// Process-wide default (the `--sample` flag)
// ---------------------------------------------------------------------------

static DEFAULT_SAMPLE: Mutex<Option<SampleConfig>> = Mutex::new(None);

/// Sets the process-wide default sampling mode. `None` (the initial
/// state) means full simulation. [`SystemConfig::builder`] reads this,
/// so every figure binary's configurations pick up a `--sample` flag
/// without per-callsite plumbing — the same pattern as the `--dram`
/// backend flag.
pub fn set_default_sample(sample: Option<SampleConfig>) {
    *DEFAULT_SAMPLE.lock().expect("sample default lock") = sample;
}

/// The process-wide default sampling mode.
pub fn default_sample() -> Option<SampleConfig> {
    *DEFAULT_SAMPLE.lock().expect("sample default lock")
}

/// Parses the value of a `--sample[=interval,k]` flag: empty selects
/// [`SampleConfig::DEFAULT`], otherwise `interval,k` (e.g.
/// `--sample=100000,10`).
///
/// # Errors
///
/// Returns a message describing the malformed value.
pub fn parse_sample_arg(arg: &str) -> Result<SampleConfig, String> {
    let arg = arg.trim();
    if arg.is_empty() {
        return Ok(SampleConfig::DEFAULT);
    }
    let (interval, k) = arg
        .split_once(',')
        .ok_or_else(|| format!("--sample expects `interval,k`, got `{arg}`"))?;
    let interval: u64 = interval
        .trim()
        .parse()
        .map_err(|_| format!("invalid sampling interval `{}`", interval.trim()))?;
    let k: u32 = k
        .trim()
        .parse()
        .map_err(|_| format!("invalid sampling cluster count `{}`", k.trim()))?;
    if interval == 0 {
        return Err("sampling interval must be nonzero".to_owned());
    }
    if k == 0 {
        return Err("sampling cluster count (k) must be nonzero".to_owned());
    }
    Ok(SampleConfig { interval, k })
}

// ---------------------------------------------------------------------------
// Result tag
// ---------------------------------------------------------------------------

/// What a sampled run actually did, recorded in
/// [`RunResult::sampled`](crate::RunResult::sampled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleStats {
    /// Interval length in instructions.
    pub interval: u64,
    /// Requested cluster count.
    pub k: u32,
    /// Number of whole intervals the budget divided into.
    pub intervals: u64,
    /// Representative intervals run under the timing model. Equals
    /// `intervals` when the parameters degenerate to a full (but still
    /// tagged) run; at most `k` otherwise.
    pub representatives: u32,
    /// Instructions simulated under the timing model (weight-one count,
    /// including the sub-interval tail).
    pub timed_instructions: u64,
}

impl Snapshot for SampleStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("interval", Json::U64(self.interval)),
            ("k", Json::U64(u64::from(self.k))),
            ("intervals", Json::U64(self.intervals)),
            (
                "representatives",
                Json::U64(u64::from(self.representatives)),
            ),
            ("timed_instructions", Json::U64(self.timed_instructions)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, SnapshotError> {
        Ok(SampleStats {
            interval: v.u64_field("interval")?,
            k: v.u64_field("k")? as u32,
            intervals: v.u64_field("intervals")?,
            representatives: v.u64_field("representatives")? as u32,
            timed_instructions: v.u64_field("timed_instructions")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Interval signatures (profiling pass)
// ---------------------------------------------------------------------------

/// Hash buckets for referenced PCs (the BBV analog: the generators have
/// no basic blocks, but their synthetic PCs partition the reference
/// stream by originating pattern).
const SIG_PC: usize = 32;
/// Hash buckets for referenced line addresses (working-set shape).
const SIG_LINE: usize = 32;
/// Signature dimensionality.
const SIG_DIMS: usize = SIG_PC + SIG_LINE;

fn fnv1a64(v: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cheap signature bucket hash: a Fibonacci multiply whose top five bits
/// index one of 32 buckets. The profiling pass runs this twice per
/// memory reference, so it must cost one multiply, not an FNV loop.
#[inline]
fn sig_bucket(v: u64) -> usize {
    (v.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 59) as usize
}

/// One buffered *memory access* (see [`BUFFER_CAP_INSTRS`]): the kind
/// discriminant, the flattened reference, and the run of compute ops
/// immediately preceding it — compute instructions never touch the
/// memory system, so storing them as a packed gap count shrinks the
/// buffer (and the warm replay loop) by the op fraction of the stream,
/// typically 3–4×. PCs are stored in 32 bits and gaps in 16; a
/// generator overflowing either disables buffering for that run (the
/// streaming fallback is bit-identical, just slower).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BufInstr {
    pub(crate) addr: u64,
    pub(crate) pc: u32,
    /// 1 = Load, 2 = ChainedLoad, 3 = Store, 4 = SwPrefetch.
    pub(crate) kind: u8,
    /// Number of `Op` instructions directly before this access.
    pub(crate) op_gap: u16,
}

/// Start of an interval inside the buffered stream: the first entry at
/// or after the boundary, plus how many of that entry's gap ops the
/// previous interval already consumed (boundaries can fall mid-gap).
#[derive(Debug, Clone, Copy)]
struct BufPos {
    entry: u32,
    ops_done: u32,
}

fn decode(b: BufInstr) -> Instr {
    use timekeeping::{Addr, Pc};
    let m = crate::trace::MemRef::new(Addr::new(b.addr), Pc::new(u64::from(b.pc)));
    match b.kind {
        1 => Instr::Load(m),
        2 => Instr::ChainedLoad(m),
        3 => Instr::Store(m),
        _ => Instr::SwPrefetch(m),
    }
}

/// Replays a buffered stream suffix as a [`Workload`], so timed
/// representatives can run without re-generating the stream: each
/// entry's gap ops are re-emitted before its access, and once the
/// entries run out the replay emits `Op` forever (the instructions past
/// the last buffered access are compute by construction; the engine's
/// budget bounds how many are consumed).
struct BufReplay<'a> {
    buf: &'a [BufInstr],
    at: usize,
    /// Ops still to emit before `buf[at]`.
    ops: u32,
    name: &'a str,
}

impl<'a> BufReplay<'a> {
    fn new(buf: &'a [BufInstr], start: BufPos, name: &'a str) -> Self {
        BufReplay {
            buf: &buf[start.entry as usize..],
            at: 0,
            ops: buf
                .get(start.entry as usize)
                .map_or(0, |b| u32::from(b.op_gap))
                .saturating_sub(start.ops_done),
            name,
        }
    }
}

impl Workload for BufReplay<'_> {
    fn next_instr(&mut self) -> Instr {
        if self.ops > 0 {
            self.ops -= 1;
            return Instr::Op;
        }
        match self.buf.get(self.at) {
            Some(&b) => {
                self.at += 1;
                self.ops = self.buf.get(self.at).map_or(0, |n| u32::from(n.op_gap));
                decode(b)
            }
            None => Instr::Op, // trailing compute past the last access
        }
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// Streams `n * interval + tail` instructions; reduces each whole
/// interval to a normalized reference-frequency signature and, when
/// `buffer` is given, records the memory accesses (tail included, with
/// compute runs packed into per-access gap counts) so the warm/timed
/// pass can replay the stream instead of re-generating it. On success
/// the returned boundaries hold `n + 1` entries — one per interval
/// start plus the tail start. A generator overflowing the compact
/// encoding clears both, and the caller falls back to streaming.
fn profile_signatures(
    mut wl: Box<dyn Workload>,
    cfg: &SystemConfig,
    interval: u64,
    n: u64,
    tail: u64,
    mut buffer: Option<&mut Vec<BufInstr>>,
) -> (Vec<Vec<f64>>, Vec<BufPos>) {
    let geom = cfg.machine.l1d;
    let mut sigs = Vec::with_capacity(n as usize);
    let mut bounds: Vec<BufPos> = Vec::with_capacity(n as usize + 1);
    // Ops seen since the last buffered access (the next entry's gap).
    let mut pending: u64 = 0;
    for _ in 0..n {
        if let Some(buf) = buffer.as_deref_mut() {
            bounds.push(BufPos {
                entry: buf.len() as u32,
                ops_done: pending as u32,
            });
        }
        let mut counts = [0u32; SIG_DIMS];
        for _ in 0..interval {
            let instr = wl.next_instr();
            let (kind, m) = match instr {
                Instr::Op => {
                    pending += 1;
                    continue;
                }
                Instr::Load(m) => (1u8, m),
                Instr::ChainedLoad(m) => (2, m),
                Instr::Store(m) => (3, m),
                Instr::SwPrefetch(m) => (4, m),
            };
            if let Some(buf) = buffer.as_deref_mut() {
                match (u32::try_from(m.pc.get()), u16::try_from(pending)) {
                    (Ok(pc), Ok(op_gap)) => buf.push(BufInstr {
                        addr: m.addr.get(),
                        pc,
                        kind,
                        op_gap,
                    }),
                    _ => {
                        buf.clear();
                        bounds.clear();
                        buffer = None;
                    }
                }
            }
            pending = 0;
            if kind == 4 && cfg.ignore_sw_prefetch {
                continue;
            }
            counts[sig_bucket(m.pc.get())] += 1;
            counts[SIG_PC + sig_bucket(geom.line_of(m.addr).get())] += 1;
        }
        let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        let norm = if total == 0 { 1.0 } else { total as f64 };
        sigs.push(counts.iter().map(|&c| f64::from(c) / norm).collect());
    }
    if let Some(buf) = buffer {
        bounds.push(BufPos {
            entry: buf.len() as u32,
            ops_done: pending as u32,
        });
        for _ in 0..tail {
            let (kind, m) = match wl.next_instr() {
                Instr::Op => {
                    pending += 1;
                    continue;
                }
                Instr::Load(m) => (1u8, m),
                Instr::ChainedLoad(m) => (2, m),
                Instr::Store(m) => (3, m),
                Instr::SwPrefetch(m) => (4, m),
            };
            match (u32::try_from(m.pc.get()), u16::try_from(pending)) {
                (Ok(pc), Ok(op_gap)) => buf.push(BufInstr {
                    addr: m.addr.get(),
                    pc,
                    kind,
                    op_gap,
                }),
                _ => {
                    buf.clear();
                    bounds.clear();
                    break;
                }
            }
            pending = 0;
        }
    }
    (sigs, bounds)
}

// ---------------------------------------------------------------------------
// Deterministic k-means
// ---------------------------------------------------------------------------

/// splitmix64: a tiny, seedable, platform-independent generator. The
/// clustering must not depend on process-level entropy — sampled runs
/// are required to be bit-identical across invocations and `--jobs`
/// levels.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn kmeans_seed(workload: &str, sc: SampleConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in workload.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ fnv1a64(sc.interval) ^ fnv1a64(u64::from(sc.k)).rotate_left(17)
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// A cluster's elected representative interval and its population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cluster {
    /// Interval index of the member closest to the centroid.
    rep: u64,
    /// Cluster population (the representative's stat weight).
    weight: u64,
}

/// Seeded k-means++ plus Lloyd refinement (at most 50 rounds). Every
/// tie breaks toward the lowest index via strict `<` comparisons, so
/// the outcome is a pure function of `(sigs, k, seed)`.
fn cluster_intervals(sigs: &[Vec<f64>], k: u32, seed: u64) -> Vec<Cluster> {
    let n = sigs.len();
    let k = (k as usize).min(n);
    assert!(k > 0 && n > 0, "cluster_intervals requires work");
    let mut rng = SplitMix(seed);

    // k-means++ initialization: spread the seeds proportionally to
    // squared distance from the chosen set.
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(sigs[(rng.next() % n as u64) as usize].clone());
    let mut d2 = vec![0f64; n];
    while centers.len() < k {
        let mut total = 0.0;
        for (i, s) in sigs.iter().enumerate() {
            d2[i] = centers
                .iter()
                .map(|c| dist2(c, s))
                .fold(f64::INFINITY, f64::min);
            total += d2[i];
        }
        let pick = if total > 0.0 {
            let r = rng.next_f64() * total;
            let mut acc = 0.0;
            let mut pick = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                acc += d;
                if acc >= r {
                    pick = i;
                    break;
                }
            }
            pick
        } else {
            // All remaining intervals coincide with a center; any choice
            // yields an empty extra cluster, harmlessly.
            (rng.next() % n as u64) as usize
        };
        centers.push(sigs[pick].clone());
    }

    // Lloyd refinement.
    let mut assign = vec![usize::MAX; n];
    for _ in 0..50 {
        let mut changed = false;
        for (i, s) in sigs.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d = dist2(center, s);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        for (c, center) in centers.iter_mut().enumerate() {
            let mut count = 0u64;
            let mut sum = vec![0f64; SIG_DIMS];
            for (i, s) in sigs.iter().enumerate() {
                if assign[i] == c {
                    count += 1;
                    for (acc, x) in sum.iter_mut().zip(s) {
                        *acc += x;
                    }
                }
            }
            if count > 0 {
                for v in sum.iter_mut() {
                    *v /= count as f64;
                }
                *center = sum;
            }
            // Empty clusters keep their center; their population stays
            // zero and they elect no representative.
        }
    }

    // Representative election: the member closest to the centroid.
    let mut out = Vec::new();
    for (c, center) in centers.iter().enumerate() {
        let mut rep: Option<u64> = None;
        let mut best_d = f64::INFINITY;
        let mut weight = 0u64;
        for (i, s) in sigs.iter().enumerate() {
            if assign[i] != c {
                continue;
            }
            weight += 1;
            let d = dist2(center, s);
            if rep.is_none() || d < best_d {
                best_d = d;
                rep = Some(i as u64);
            }
        }
        if let Some(rep) = rep {
            out.push(Cluster { rep, weight });
        }
    }
    out.sort_by_key(|c| c.rep);
    out
}

// ---------------------------------------------------------------------------
// Functional warmup
// ---------------------------------------------------------------------------

/// Table-value flag: the line is dirty in the (set-associative) L1.
/// Orthogonal to shadow residency — a line the fully-associative stack
/// pushed out can still sit dirty in the L1, and vice versa.
const DIRTY_BIT: u32 = 1 << 31;
/// Largest last-touch stamp before a [`WarmShadow::rebase`].
const STAMP_MAX: u32 = DIRTY_BIT - 1;

/// Deterministic open-addressing line table — the warm loop's single
/// hash structure. Keys are line addresses stored `+1` (zero marks an
/// empty slot); values pack a last-touch stamp with the L1
/// [`DIRTY_BIT`]. Keys are never removed — the key set *is* the "seen"
/// set — so linear probing needs no tombstones.
/// One open-addressing slot: key and value on the same cache line, so
/// a probe touches exactly one memory location.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct TableSlot {
    /// Line address `+1`; zero marks an empty slot.
    key: u64,
    /// Last-touch stamp | [`DIRTY_BIT`].
    val: u32,
    /// Index of the profiling interval that first touched this line
    /// (the [`WarmShadow`] epoch at insertion). Keys are never removed,
    /// so this is immutable once written — it is the per-line record
    /// behind the checkpoint plane's shared first-touch map, and it
    /// rides in what was padding, so tracking it is free.
    first: u32,
}

#[derive(Debug, Clone)]
struct FlatLineTable {
    slots: Vec<TableSlot>,
    len: usize,
}

impl FlatLineTable {
    fn new() -> Self {
        FlatLineTable {
            slots: vec![TableSlot::default(); 1024],
            len: 0,
        }
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & (self.slots.len() - 1)
    }

    /// Slot of `line`: either its current slot or the empty slot where
    /// it would insert.
    #[inline]
    fn slot(&self, line: u64) -> usize {
        let key = line.wrapping_add(1);
        debug_assert!(key != 0, "line address u64::MAX is unsupported");
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            let k = self.slots[i].key;
            if k == 0 || k == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Writes `val` for `line` at a previously-probed empty `slot`,
    /// growing (and re-probing) when the table passes half full.
    fn insert_at(&mut self, slot: usize, line: u64, val: u32, first: u32) {
        self.slots[slot] = TableSlot {
            key: line.wrapping_add(1),
            val,
            first,
        };
        self.len += 1;
        if self.len * 2 >= self.slots.len() {
            let grown = self.slots.len() * 2;
            let old = std::mem::replace(&mut self.slots, vec![TableSlot::default(); grown]);
            for s in old {
                if s.key != 0 {
                    let i = self.slot(s.key - 1);
                    self.slots[i] = s;
                }
            }
        }
    }
}

/// A fast equivalent of [`FullyAssocShadow`] for the warmup hot loop:
/// one flat-table probe and a stamp write per access — no linked list,
/// no eager eviction — with the L1 dirty bits riding in the same table,
/// so stores cost no extra lookup. Converted back to a real
/// `FullyAssocShadow` at checkpoint injection.
///
/// The trick is that a fully-associative LRU stack of capacity `C`
/// resides exactly the `C` most-recently-touched distinct lines, in
/// last-touch order. So the warm loop only records each line's
/// last-touch stamp, and [`to_fully_assoc`](Self::to_fully_assoc)
/// reconstructs the resident stack lazily by selecting the top-`C`
/// stamps — an `O(footprint)` pass per representative instead of a
/// pointer splice per access. Stamps are unique, so the reconstruction
/// is deterministic. Miss classification is not tracked during warmup:
/// representative stats subtract the injected shadow's baseline, so
/// warm-era counts cancel out of every sampled document.
#[derive(Debug, Clone)]
struct WarmShadow {
    capacity: usize,
    table: FlatLineTable,
    /// Last issued stamp; rebased before reaching [`DIRTY_BIT`].
    stamp: u32,
    /// Mirror of the table's key set in [`FullyAssocShadow`]'s own seen
    /// format, grown once per new line. Checkpoint conversion shares it
    /// as a frozen snapshot (`Arc` clone, O(1)); the warm loop is the
    /// only holder by the time it mutates again, so `make_mut` never
    /// copies.
    seen: std::sync::Arc<std::collections::HashSet<u64>>,
    /// Current profiling-interval index, stamped into
    /// [`TableSlot::first`] on insertion. The checkpoint builder bumps
    /// it at each interval boundary; single-checkpoint callers leave it
    /// at zero (the value is then unused).
    epoch: u32,
}

impl WarmShadow {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shadow capacity must be nonzero");
        WarmShadow {
            capacity,
            table: FlatLineTable::new(),
            stamp: 0,
            // Reserved ahead: large-footprint workloads would otherwise
            // pay a cascade of rehashes in the middle of the warm loop.
            seen: std::sync::Arc::new(std::collections::HashSet::with_capacity(1 << 16)),
            epoch: 0,
        }
    }

    /// Advances the first-touch epoch (see [`TableSlot::first`]).
    fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// One warmed reference: records `line`'s new last-touch stamp
    /// (inserting on first sight) and ORs in the L1 dirty bit for
    /// stores, all off a single table probe.
    #[inline]
    fn access(&mut self, line: u64, store: bool) {
        if self.stamp == STAMP_MAX {
            self.rebase();
        }
        self.stamp += 1;
        let dirty = if store { DIRTY_BIT } else { 0 };
        let slot = self.table.slot(line);
        let s = self.table.slots[slot];
        if s.key == 0 {
            std::sync::Arc::make_mut(&mut self.seen).insert(line);
            self.table
                .insert_at(slot, line, self.stamp | dirty, self.epoch);
        } else {
            self.table.slots[slot].val = self.stamp | (s.val & DIRTY_BIT) | dirty;
        }
    }

    /// Compresses stamps to their rank order so the counter can keep
    /// counting — reached once per two billion warm accesses. Relative
    /// order (all that matters) is preserved.
    #[cold]
    fn rebase(&mut self) {
        let mut order: Vec<(u32, usize)> = self
            .table
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.key != 0)
            .map(|(i, s)| (s.val & !DIRTY_BIT, i))
            .collect();
        order.sort_unstable();
        for (rank, &(_, i)) in order.iter().enumerate() {
            let dirty = self.table.slots[i].val & DIRTY_BIT;
            self.table.slots[i].val = (rank as u32 + 1) | dirty;
        }
        self.stamp = order.len() as u32;
    }

    /// Clears `line`'s L1 dirty bit (called when the L1 evicts it: the
    /// writeback happens then, and a returning line starts clean).
    fn clear_dirty(&mut self, line: u64) {
        let slot = self.table.slot(line);
        if self.table.slots[slot].key != 0 {
            self.table.slots[slot].val &= !DIRTY_BIT;
        }
    }

    /// Whether `line` is dirty in the warmed L1.
    fn is_dirty(&self, line: u64) -> bool {
        let slot = self.table.slot(line);
        let s = self.table.slots[slot];
        s.key != 0 && s.val & DIRTY_BIT != 0
    }

    /// The `capacity` highest-stamped lines — the fully-associative
    /// resident stack — in stamp order (LRU → MRU).
    fn resident_stack(&self) -> Vec<u64> {
        // Bounded top-C selection: one scan of the table with a size-C
        // min-heap. Stamps are unique, so the surviving set — and its
        // sorted (LRU → MRU) order — is deterministic.
        let mut top: std::collections::BinaryHeap<std::cmp::Reverse<(u32, u64)>> =
            std::collections::BinaryHeap::with_capacity(self.capacity + 1);
        for s in &self.table.slots {
            if s.key == 0 {
                continue;
            }
            let e = (s.val & !DIRTY_BIT, s.key - 1);
            if top.len() < self.capacity {
                top.push(std::cmp::Reverse(e));
            } else if e > top.peek().expect("heap at capacity > 0").0 {
                *top.peek_mut().expect("heap at capacity > 0") = std::cmp::Reverse(e);
            }
        }
        let mut all: Vec<(u32, u64)> = top.into_iter().map(|r| r.0).collect();
        all.sort_unstable();
        all.into_iter().map(|(_, line)| line).collect()
    }

    /// Converts to the real shadow model for injection into a
    /// [`MemorySystem`]: the `capacity` highest-stamped lines are the
    /// resident stack, in stamp order (LRU → MRU).
    fn to_fully_assoc(&self) -> FullyAssocShadow {
        FullyAssocShadow::from_parts(
            self.capacity,
            self.resident_stack(),
            std::sync::Arc::clone(&self.seen),
            MissBreakdown::default(),
        )
    }

    /// Every line ever touched, with the epoch (interval index) of its
    /// first touch — the single shared map that replaces per-shard seen
    /// snapshots in a [`SampleCheckpoint`].
    fn first_touch_map(&self) -> std::collections::HashMap<u64, u32> {
        self.table
            .slots
            .iter()
            .filter(|s| s.key != 0)
            .map(|s| (s.key - 1, s.first))
            .collect()
    }
}

/// The complete timing-free machine state carried across skipped
/// intervals: oracle tag arrays (L1, victim, L2) plus the
/// miss-classification shadow, which also carries the L1 dirty bits.
#[derive(Debug, Clone)]
struct WarmState {
    oracle: FunctionalOracle,
    shadow: WarmShadow,
    geom: CacheGeometry,
    ignore_swpf: bool,
    /// The line the previous reference touched (`u64::MAX` = none).
    /// After any access that line is resident and MRU at every level,
    /// so an immediate repeat load is a pure no-op — spatial locality
    /// makes this the warm loop's most common case by far.
    last_line: u64,
}

impl WarmState {
    fn new(cfg: &SystemConfig) -> Self {
        WarmState {
            oracle: FunctionalOracle::new(cfg),
            shadow: WarmShadow::new(cfg.machine.l1d.num_frames() as usize),
            geom: cfg.machine.l1d,
            ignore_swpf: cfg.ignore_sw_prefetch,
            last_line: u64::MAX,
        }
    }

    /// Replays one instruction into the functional tag model and the
    /// shadow, at zero simulated time.
    #[inline]
    fn step(&mut self, instr: Instr) {
        let (m, store) = match instr {
            Instr::Op => return,
            Instr::SwPrefetch(_) if self.ignore_swpf => return,
            Instr::Load(m) | Instr::ChainedLoad(m) | Instr::SwPrefetch(m) => (m, false),
            Instr::Store(m) => (m, true),
        };
        self.access_line(m.addr, store);
    }

    #[inline]
    fn access_line(&mut self, addr: timekeeping::Addr, store: bool) {
        let line = self.geom.line_of(addr);
        if line.get() == self.last_line && !store {
            // Repeat hit: no tag movement, no recency change worth
            // recording — the line already holds the newest stamp at
            // every level. (Stores fall through for the dirty bit.)
            return;
        }
        self.last_line = line.get();
        let evicted = self.oracle.warm_access(addr);
        self.shadow.access(line.get(), store);
        if let Some(ev) = evicted {
            // A line leaving the L1 is written back (if dirty) at that
            // point; if it ever returns it starts clean. (The evicted
            // line is never the accessed line, so the order with the
            // store's dirty-set above cannot matter.)
            self.shadow.clear_dirty(ev.get());
        }
    }

    /// Fast-forwards through `n` generated instructions of `wl`.
    fn advance<W: Workload + ?Sized>(&mut self, wl: &mut W, n: u64) {
        for _ in 0..n {
            self.step(wl.next_instr());
        }
    }

    /// Fast-forwards through a buffered stream slice. Compute gaps are
    /// never materialized — the loop touches memory accesses only.
    fn advance_buf(&mut self, buf: &[BufInstr]) {
        for &b in buf {
            if b.kind == 4 && self.ignore_swpf {
                continue;
            }
            self.access_line(timekeeping::Addr::new(b.addr), b.kind == 3);
        }
    }
}

/// Seeds a fresh [`MemorySystem`] with warmed state: L1 and L2 tags
/// filled LRU→MRU (so replacement order carries over), dirty bits,
/// generation-plane residency, and the classification shadow. Returns
/// the shadow's pre-existing breakdown, which the representative's
/// stats subtract off. When `checked`, a lockstep checker seeded with
/// the same warmed oracle is installed, so `--sample --check` verifies
/// the timed representatives end to end.
fn inject(mem: &mut MemorySystem, warm: &WarmState, checked: bool) -> MissBreakdown {
    let mut oracle = warm.oracle.clone();
    // The timed machine's victim cache starts empty; the checker's
    // oracle must agree with the machine it checks.
    oracle.clear_vc();
    let g1 = *oracle.l1_geometry();
    for line in oracle.l1_lines() {
        let (frame, evicted) = mem.l1d.fill(g1.addr_of_line(line));
        debug_assert!(evicted.is_none(), "injection into an empty cache");
        mem.obs.gens.plane.fill(frame, line, Cycle::ZERO);
        if warm.shadow.is_dirty(line.get()) {
            mem.l1d.mark_dirty(frame);
        }
    }
    let g2 = *oracle.l2_geometry();
    for line in oracle.l2_lines() {
        mem.l2.fill(g2.addr_of_line(line));
    }
    mem.shadow = warm.shadow.to_fully_assoc();
    let baseline = mem.shadow.breakdown();
    if checked {
        mem.checker = Some(Box::new(LockstepChecker::from_oracle(oracle)));
    }
    baseline
}

/// Runs `n` instructions of `wl` under the full timing model on a fresh
/// machine seeded with `warm`, and collects per-interval statistics.
fn run_rep<W: Workload + ?Sized>(
    wl: &mut W,
    warm: &WarmState,
    cfg: SystemConfig,
    n: u64,
    rep_index: u64,
    weight: u64,
    checked: bool,
) -> RunResult {
    let mut mem = MemorySystem::new(cfg);
    let baseline = inject(&mut mem, warm, checked);
    time_interval(wl, mem, baseline, &cfg, n, rep_index, weight)
}

/// The timed half of a representative: runs `n` instructions of `wl` on
/// an already-injected machine and collects per-interval statistics,
/// subtracting the injected shadow's baseline breakdown. Shared between
/// the inline warm-and-time loop ([`run_rep`]) and checkpoint shards
/// ([`run_shard`]).
fn time_interval<W: Workload + ?Sized>(
    wl: &mut W,
    mut mem: MemorySystem,
    baseline: MissBreakdown,
    cfg: &SystemConfig,
    n: u64,
    rep_index: u64,
    weight: u64,
) -> RunResult {
    if let Some(t) = mem.obs.trace.as_deref_mut() {
        t.push(
            TraceKind::SampleRep,
            Cycle::ZERO,
            LineAddr::new(rep_index),
            weight,
        );
    }
    let mut core = OooCore::new(cfg);
    let core_stats = core.run(wl, &mut mem, n);
    let full = mem.miss_breakdown();
    let breakdown = MissBreakdown {
        cold: full.cold - baseline.cold,
        conflict: full.conflict - baseline.conflict,
        capacity: full.capacity - baseline.capacity,
    };
    RunResult {
        workload: wl.name().to_owned(),
        core: core_stats,
        hierarchy: mem.stats(),
        breakdown,
        victim: mem.victim_stats(),
        victim_swap_fills: mem.victim_swap_fills(),
        timeliness: *mem.timeliness(),
        correlation: mem.correlation_stats(),
        dbcp: mem.dbcp_stats(),
        pf_queue_discards: mem.pf_queue_discards(),
        dram: mem.dram_stats(),
        sampled: None,
        coherence: None,
        metrics: std::mem::take(mem.metrics_mut()),
    }
}

// ---------------------------------------------------------------------------
// Weighted reconstruction
// ---------------------------------------------------------------------------

/// Accumulates weighted per-interval results into whole-run statistics.
struct Aggregate {
    core: CoreStats,
    hierarchy: HierarchyStats,
    breakdown: MissBreakdown,
    metrics: MetricsCollector,
    victim: Option<VictimStats>,
    victim_swap_fills: Option<u64>,
    timeliness: TimelinessStats,
    correlation: Option<CorrelationStats>,
    dbcp: Option<timekeeping::DbcpStats>,
    pf_queue_discards: u64,
    dram: Option<DramStats>,
}

impl Aggregate {
    fn new() -> Self {
        Aggregate {
            core: CoreStats::default(),
            hierarchy: HierarchyStats::default(),
            breakdown: MissBreakdown::default(),
            metrics: MetricsCollector::new(),
            victim: None,
            victim_swap_fills: None,
            timeliness: TimelinessStats::default(),
            correlation: None,
            dbcp: None,
            pf_queue_discards: 0,
            dram: None,
        }
    }

    fn add(&mut self, r: &RunResult, w: u64) {
        let c = &r.core;
        let d = &mut self.core;
        d.instructions += c.instructions * w;
        d.cycles += c.cycles * w;
        d.loads += c.loads * w;
        d.stores += c.stores * w;
        d.sw_prefetches += c.sw_prefetches * w;
        d.window_full_cycles += c.window_full_cycles * w;

        let h = &r.hierarchy;
        let t = &mut self.hierarchy;
        t.l1_accesses += h.l1_accesses * w;
        t.l1_hits += h.l1_hits * w;
        t.vc_hits += h.vc_hits * w;
        t.l2_accesses += h.l2_accesses * w;
        t.l2_hits += h.l2_hits * w;
        t.mem_accesses += h.mem_accesses * w;
        t.pf_enqueued += h.pf_enqueued * w;
        t.pf_issued += h.pf_issued * w;
        t.pf_fills += h.pf_fills * w;
        t.pf_redundant += h.pf_redundant * w;
        t.pf_dropped_live += h.pf_dropped_live * w;
        t.addr_predictions += h.addr_predictions * w;
        t.addr_correct += h.addr_correct * w;
        t.l1_writebacks += h.l1_writebacks * w;
        t.l2_writebacks += h.l2_writebacks * w;
        t.decay_misses += h.decay_misses * w;
        t.decay_off_cycles += h.decay_off_cycles * w;

        self.breakdown.cold += r.breakdown.cold * w;
        self.breakdown.conflict += r.breakdown.conflict * w;
        self.breakdown.capacity += r.breakdown.capacity * w;

        // Distribution-shaped stats only expose merging; applying the
        // weight as repeated merges keeps every histogram's counts
        // consistent with the scaled counters. Weights are interval
        // counts (budget / interval), so this stays small.
        for _ in 0..w {
            self.metrics.merge(&r.metrics);
            self.timeliness.merge(&r.timeliness);
        }

        if let Some(v) = r.victim {
            let d = self.victim.get_or_insert_with(VictimStats::default);
            d.offered += v.offered * w;
            d.admitted += v.admitted * w;
            d.probes += v.probes * w;
            d.hits += v.hits * w;
        }
        if let Some(v) = r.victim_swap_fills {
            *self.victim_swap_fills.get_or_insert(0) += v * w;
        }
        if let Some(v) = r.correlation {
            let d = self
                .correlation
                .get_or_insert_with(CorrelationStats::default);
            d.lookups += v.lookups * w;
            d.hits += v.hits * w;
            d.updates += v.updates * w;
            d.allocations += v.allocations * w;
        }
        if let Some(v) = r.dbcp {
            let d = self
                .dbcp
                .get_or_insert_with(timekeeping::DbcpStats::default);
            d.lookups += v.lookups * w;
            d.predictions += v.predictions * w;
            d.prefetches += v.prefetches * w;
            d.updates += v.updates * w;
        }
        self.pf_queue_discards += r.pf_queue_discards * w;
        if let Some(v) = r.dram {
            let d = self.dram.get_or_insert_with(DramStats::default);
            d.reads += v.reads * w;
            d.writes += v.writes * w;
            d.row_hits += v.row_hits * w;
            d.row_closed += v.row_closed * w;
            d.row_conflicts += v.row_conflicts * w;
            d.bank_wait_cycles += v.bank_wait_cycles * w;
            d.bus_wait_cycles += v.bus_wait_cycles * w;
            d.read_latency_cycles += v.read_latency_cycles * w;
        }
    }

    fn into_result(self, workload: &str, stats: SampleStats) -> RunResult {
        RunResult {
            workload: workload.to_owned(),
            core: self.core,
            hierarchy: self.hierarchy,
            breakdown: self.breakdown,
            metrics: self.metrics,
            victim: self.victim,
            victim_swap_fills: self.victim_swap_fills,
            timeliness: self.timeliness,
            correlation: self.correlation,
            dbcp: self.dbcp,
            pf_queue_discards: self.pf_queue_discards,
            dram: self.dram,
            sampled: Some(stats),
            coherence: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Sample checkpoints (the sweep-level reuse plane, see `crate::ckpt`)
// ---------------------------------------------------------------------------

/// Everything a sampled run computes *before* timing: the clustering
/// election plus, per elected shard, the warmed functional state at its
/// boundary and the exact stream slice it replays. A checkpoint is a
/// pure function of the functional fingerprint (workload stream,
/// geometry, budget, interval, k — see [`crate::ckpt`]), so every
/// timing-only configuration variant of one stream shares it, and a
/// timed run reconstructed from a checkpoint is bit-identical to the
/// inline warm-and-time loop it replaces.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleCheckpoint {
    pub(crate) fingerprint: String,
    pub(crate) workload: String,
    pub(crate) interval: u64,
    pub(crate) k: u32,
    /// Number of whole intervals the budget divided into.
    pub(crate) intervals: u64,
    pub(crate) budget: u64,
    /// Shards that are cluster representatives (the trailing
    /// sub-interval tail shard, when present, is not one).
    pub(crate) reps: u32,
    /// Line → index of the interval that first touched it, shared by
    /// every shard's classification shadow (a shard at interval `i`
    /// treats a line as seen iff its first touch came before `i`).
    pub(crate) first_touch: std::sync::Arc<std::collections::HashMap<u64, u32>>,
    pub(crate) shards: Vec<RepShard>,
}

/// One independently runnable timing shard: a representative interval
/// (or the tail) with the warmed state at its boundary and its stream
/// slice.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RepShard {
    /// Interval index of this representative.
    pub(crate) rep_index: u64,
    /// Cluster population (stat weight; 1 for the tail).
    pub(crate) weight: u64,
    /// Instructions to run (the interval length, or the tail length).
    pub(crate) length: u64,
    /// Gap ops of `stream[0]` already consumed by the previous interval
    /// (boundaries can fall mid-gap).
    pub(crate) start_ops_done: u32,
    /// The buffered accesses of this interval, plus one extra entry so
    /// the replay knows the trailing gap. The core fetches at most
    /// `length` instructions, which this slice covers exactly.
    pub(crate) stream: Vec<BufInstr>,
    /// Warmed L1 residents (set-major, LRU→MRU within each set — the
    /// refill order) and their dirty bits.
    pub(crate) l1_lines: Vec<u64>,
    pub(crate) l1_dirty: Vec<bool>,
    /// Warmed L2 residents, same order contract.
    pub(crate) l2_lines: Vec<u64>,
    /// Fully-associative classification-shadow residents, LRU→MRU.
    pub(crate) shadow_stack: Vec<u64>,
}

impl SampleCheckpoint {
    /// Number of independently schedulable timing shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The functional fingerprint this checkpoint was keyed under.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Rough heap footprint, for the store's byte budget.
    pub(crate) fn approx_bytes(&self) -> usize {
        let shards: usize = self
            .shards
            .iter()
            .map(|s| {
                s.stream.len() * std::mem::size_of::<BufInstr>()
                    + (s.l1_lines.len() + s.l2_lines.len() + s.shadow_stack.len()) * 8
                    + s.l1_dirty.len()
                    + 128
            })
            .sum();
        // Hash-map overhead per first-touch entry: key + value + bucket
        // slack, call it 24 bytes.
        shards + self.first_touch.len() * 24 + 256
    }
}

/// Whether a sampled run of `sc` at `budget` takes the buffered
/// checkpoint path (as opposed to the degenerate-full or streaming
/// fallbacks). The single eligibility predicate shared by
/// [`run_sampled`] and the engine's sweep planner, so the two can never
/// disagree about which jobs shard.
pub(crate) fn checkpointable(sc: SampleConfig, budget: u64) -> bool {
    let n = budget / sc.interval;
    n > 0 && u64::from(sc.k) < n && budget <= BUFFER_CAP_INSTRS
}

/// Hands a stream buffer back to the thread-local pool.
fn return_buf(mut buf: Vec<BufInstr>) {
    BUF_POOL.with(|p| {
        let pool = &mut *p.borrow_mut();
        if pool.capacity() < buf.capacity() {
            *pool = std::mem::take(&mut buf);
        }
    });
}

/// Snapshots the warm state at interval `rep_index`'s boundary into an
/// independently runnable shard. `end_entry` is the first buffered entry
/// past the interval (or `buf.len()` for the tail).
fn make_shard(
    warm: &WarmState,
    buf: &[BufInstr],
    start: BufPos,
    end_entry: usize,
    rep_index: u64,
    length: u64,
    weight: u64,
) -> RepShard {
    // One entry past the boundary: the replay needs its `op_gap` to emit
    // the interval's trailing compute run. (The access itself belongs to
    // the next interval and is never fetched — the core stops at
    // `length` instructions.)
    let slice_end = (end_entry + 1).min(buf.len());
    let l1_lines: Vec<u64> = warm.oracle.l1_lines().iter().map(|l| l.get()).collect();
    let l1_dirty = l1_lines.iter().map(|&l| warm.shadow.is_dirty(l)).collect();
    RepShard {
        rep_index,
        weight,
        length,
        start_ops_done: start.ops_done,
        stream: buf[start.entry as usize..slice_end].to_vec(),
        l1_lines,
        l1_dirty,
        l2_lines: warm.oracle.l2_lines().iter().map(|l| l.get()).collect(),
        shadow_stack: warm.shadow.resident_stack(),
    }
}

/// Profiles, clusters, and functionally warms `workload` once, emitting
/// the complete checkpoint. Returns `None` when the generator overflows
/// the compact stream encoding (the caller then streams instead —
/// bit-identical, just not checkpointable). The caller must have
/// checked [`checkpointable`].
pub(crate) fn build_checkpoint<W: Workload + ?Sized>(
    workload: &W,
    cfg: &SystemConfig,
    sc: SampleConfig,
    budget: u64,
    fingerprint: String,
) -> Option<SampleCheckpoint> {
    let prof = workload.fork()?;
    let num_intervals = budget / sc.interval;
    let tail = budget % sc.interval;
    debug_assert!(
        checkpointable(sc, budget),
        "caller gates on checkpointable()"
    );
    let mut buf = BUF_POOL.with(|p| std::mem::take(&mut *p.borrow_mut()));
    buf.clear();
    // Worst case every instruction is a memory access; reserving the
    // budget up front guarantees pushes never reallocate mid-pass.
    buf.reserve(budget as usize);
    let (sigs, bounds) =
        profile_signatures(prof, cfg, sc.interval, num_intervals, tail, Some(&mut buf));
    if bounds.len() != num_intervals as usize + 1 {
        return_buf(buf);
        return None;
    }
    let clusters = cluster_intervals(&sigs, sc.k, kmeans_seed(workload.name(), sc));

    // Warm pass: identical stream walk to the inline loop, but at each
    // representative boundary the warm state is snapshotted into a shard
    // instead of being timed in place.
    let mut warm = WarmState::new(cfg);
    let mut shards = Vec::with_capacity(clusters.len() + usize::from(tail > 0));
    let mut next = 0usize;
    for i in 0..num_intervals {
        warm.shadow.set_epoch(i as u32);
        let start = bounds[i as usize];
        let end = bounds[i as usize + 1].entry as usize;
        if next < clusters.len() && clusters[next].rep == i {
            shards.push(make_shard(
                &warm,
                &buf,
                start,
                end,
                i,
                sc.interval,
                clusters[next].weight,
            ));
            next += 1;
        }
        if next == clusters.len() && tail == 0 {
            break; // nothing downstream needs further warmup
        }
        warm.advance_buf(&buf[start.entry as usize..end]);
    }
    if tail > 0 {
        shards.push(make_shard(
            &warm,
            &buf,
            bounds[num_intervals as usize],
            buf.len(),
            num_intervals,
            tail,
            1,
        ));
    }
    let first_touch = std::sync::Arc::new(warm.shadow.first_touch_map());
    return_buf(buf);
    Some(SampleCheckpoint {
        fingerprint,
        workload: workload.name().to_owned(),
        interval: sc.interval,
        k: sc.k,
        intervals: num_intervals,
        budget,
        reps: clusters.len() as u32,
        first_touch,
        shards,
    })
}

/// Seeds a fresh machine from a shard's snapshot — the checkpoint-plane
/// equivalent of [`inject`], reproducing the same L1/L2 tags, dirty
/// bits, generation plane, classification shadow (via the shared
/// first-touch map cut at this shard's interval) and, when `checked`,
/// a lockstep checker whose oracle is rebuilt from the line lists.
fn inject_shard(
    mem: &mut MemorySystem,
    ckpt: &SampleCheckpoint,
    shard: &RepShard,
    cfg: &SystemConfig,
    checked: bool,
) -> MissBreakdown {
    let g1 = cfg.machine.l1d;
    for (&line, &dirty) in shard.l1_lines.iter().zip(&shard.l1_dirty) {
        let line = LineAddr::new(line);
        let (frame, evicted) = mem.l1d.fill(g1.addr_of_line(line));
        debug_assert!(evicted.is_none(), "injection into an empty cache");
        mem.obs.gens.plane.fill(frame, line, Cycle::ZERO);
        if dirty {
            mem.l1d.mark_dirty(frame);
        }
    }
    let g2 = cfg.machine.l2;
    for &line in &shard.l2_lines {
        mem.l2.fill(g2.addr_of_line(LineAddr::new(line)));
    }
    mem.shadow = FullyAssocShadow::from_parts_epoch(
        g1.num_frames() as usize,
        shard.shadow_stack.iter().copied(),
        std::sync::Arc::clone(&ckpt.first_touch),
        shard.rep_index as u32,
        MissBreakdown::default(),
    );
    let baseline = mem.shadow.breakdown();
    if checked {
        let oracle = FunctionalOracle::from_lines(cfg, &shard.l1_lines, &shard.l2_lines);
        mem.checker = Some(Box::new(LockstepChecker::from_oracle(oracle)));
    }
    baseline
}

/// Runs one shard of a checkpoint under the full timing model of `cfg`
/// (which must share the checkpoint's functional fingerprint — timing
/// knobs are free, geometry is not). Shards are independent: the engine
/// schedules them on separate workers and merges with
/// [`assemble_shards`].
pub fn run_shard(
    ckpt: &SampleCheckpoint,
    cfg: SystemConfig,
    index: usize,
    checked: bool,
) -> RunResult {
    let shard = &ckpt.shards[index];
    debug_assert!(
        cfg.sample
            .is_none_or(|sc| (sc.interval, sc.k) == (ckpt.interval, ckpt.k)),
        "config and checkpoint disagree on sampling parameters"
    );
    let mut mem = MemorySystem::new(cfg);
    let baseline = inject_shard(&mut mem, ckpt, shard, &cfg, checked);
    let mut wl = BufReplay::new(
        &shard.stream,
        BufPos {
            entry: 0,
            ops_done: shard.start_ops_done,
        },
        &ckpt.workload,
    );
    time_interval(
        &mut wl,
        mem,
        baseline,
        &cfg,
        shard.length,
        shard.rep_index,
        shard.weight,
    )
}

/// Merges per-shard results — in the checkpoint's fixed shard order —
/// into the whole-run weighted reconstruction. `shard_results[i]` must
/// be [`run_shard`]`(ckpt, cfg, i, _)`.
///
/// # Panics
///
/// Panics when the result count does not match the shard count.
pub fn assemble_shards(ckpt: &SampleCheckpoint, shard_results: &[RunResult]) -> RunResult {
    assert_eq!(
        shard_results.len(),
        ckpt.shards.len(),
        "one result per shard"
    );
    let mut agg = Aggregate::new();
    let mut timed = 0u64;
    for (shard, r) in ckpt.shards.iter().zip(shard_results) {
        agg.add(r, shard.weight);
        timed += shard.length;
    }
    agg.into_result(
        &ckpt.workload,
        SampleStats {
            interval: ckpt.interval,
            k: ckpt.k,
            intervals: ckpt.intervals,
            representatives: ckpt.reps,
            timed_instructions: timed,
        },
    )
}

/// Runs every shard sequentially and assembles — the single-job path
/// through the checkpoint plane.
pub(crate) fn run_from_checkpoint(
    ckpt: &SampleCheckpoint,
    cfg: SystemConfig,
    checked: bool,
) -> RunResult {
    let results: Vec<RunResult> = (0..ckpt.shards.len())
        .map(|i| run_shard(ckpt, cfg, i, checked))
        .collect();
    assemble_shards(ckpt, &results)
}

// ---------------------------------------------------------------------------
// The sampled run
// ---------------------------------------------------------------------------

/// Runs `budget` instructions of `workload` under `cfg` by statistical
/// sampling, or returns `None` when the workload cannot be forked (the
/// caller then falls back to full simulation, untagged).
///
/// Degenerate parameters — a budget smaller than one interval, or
/// `k >= intervals` so clustering could skip nothing — run the full
/// timing model but still tag the result, because the configuration
/// (and its cache key) asked for sampling.
/// Budgets at or below this many instructions buffer the profiled
/// stream in memory (16 bytes per *memory access* — compute runs pack
/// into gap counts, so the buffer holds roughly a third to half of the
/// budget) and replay it in pass 2, halving generator cost. The cap
/// covers the figure default (8M: at most 128 MiB per engine thread,
/// and the recycled thread-local buffer keeps that a one-time cost);
/// larger budgets stream the generators twice instead of buffering.
const BUFFER_CAP_INSTRS: u64 = 8_000_000;

thread_local! {
    /// Recycled stream buffer: faulting in ~32 MiB of fresh pages per
    /// sampled run costs more than the warm pass it feeds, so each
    /// thread keeps its one buffer alive across runs.
    static BUF_POOL: std::cell::RefCell<Vec<BufInstr>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

pub(crate) fn run_sampled<W: Workload + ?Sized>(
    workload: &mut W,
    cfg: SystemConfig,
    sc: SampleConfig,
    budget: u64,
    checked: bool,
) -> Option<RunResult> {
    let prof = workload.fork()?;
    let num_intervals = budget / sc.interval;
    let tail = budget % sc.interval;
    if num_intervals == 0 || u64::from(sc.k) >= num_intervals {
        drop(prof);
        let mut sys = if checked {
            SimSystem::checked(cfg)
        } else {
            SimSystem::new(cfg)
        };
        let mut r = sys.run(workload, budget);
        r.sampled = Some(SampleStats {
            interval: sc.interval,
            k: sc.k,
            intervals: num_intervals,
            representatives: num_intervals as u32,
            timed_instructions: budget,
        });
        return Some(r);
    }

    drop(prof);

    // Buffered path: runs through the checkpoint plane. The checkpoint
    // (profile, clustering, warm shard states, recorded stream slices)
    // is obtained from the store — or built transiently when the store
    // is disabled or cold — and the timed shards replay from it. A
    // stored checkpoint is the complete input to the timed half, so
    // reuse is bit-identical to a cold build by construction.
    if budget <= BUFFER_CAP_INSTRS {
        if let Some(ckpt) = crate::ckpt::obtain(workload, &cfg, sc, budget) {
            return Some(run_from_checkpoint(&ckpt, cfg, checked));
        }
        // The generator overflowed the compact stream encoding; the
        // streaming pass below handles it (bit-identical, just slower).
    }

    // Streaming fallback: profile without recording, then re-generate,
    // forking at representative boundaries.
    let prof = workload.fork().expect("fork succeeded above");
    let (sigs, _) = profile_signatures(prof, &cfg, sc.interval, num_intervals, tail, None);
    let clusters = cluster_intervals(&sigs, sc.k, kmeans_seed(workload.name(), sc));

    let mut warm = WarmState::new(&cfg);
    let mut agg = Aggregate::new();
    let mut next = 0usize;
    let mut timed = 0u64;
    let mut stream = workload.fork().expect("fork succeeded above");
    for i in 0..num_intervals {
        if next < clusters.len() && clusters[next].rep == i {
            let cl = clusters[next];
            let mut rep_wl = stream.fork().expect("forkable workload stays forkable");
            let r = run_rep(&mut *rep_wl, &warm, cfg, sc.interval, i, cl.weight, checked);
            agg.add(&r, cl.weight);
            timed += sc.interval;
            next += 1;
        }
        if next == clusters.len() && tail == 0 {
            break; // nothing downstream needs further warmup
        }
        warm.advance(&mut stream, sc.interval);
    }
    if tail > 0 {
        let r = run_rep(&mut stream, &warm, cfg, tail, num_intervals, 1, checked);
        agg.add(&r, 1);
        timed += tail;
    }

    Some(agg.into_result(
        workload.name(),
        SampleStats {
            interval: sc.interval,
            k: sc.k,
            intervals: num_intervals,
            representatives: clusters.len() as u32,
            timed_instructions: timed,
        },
    ))
}

/// Test hook for the oracle-warmup soundness property: fast-forwards
/// through `prefix` instructions functionally, then runs `suffix`
/// instructions under the timing model from the warmed state. The
/// returned L1-level outcomes (`l1_accesses`, `l1_hits`, `vc_hits`,
/// `breakdown`) must equal the corresponding deltas between full timing
/// runs of `prefix + suffix` and `prefix` instructions, for every
/// configuration whose tag state is timing-independent.
#[doc(hidden)]
pub fn warm_prefix_then_time<W: Workload + ?Sized>(
    workload: &mut W,
    cfg: SystemConfig,
    prefix: u64,
    suffix: u64,
) -> RunResult {
    let mut warm = WarmState::new(&cfg);
    warm.advance(workload, prefix);
    run_rep(
        workload,
        &warm,
        cfg,
        suffix,
        0,
        1,
        crate::oracle::lockstep_check_enabled(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekeeping::{Addr, Pc};

    #[test]
    fn parse_sample_arg_accepts_defaults_and_pairs() {
        assert_eq!(parse_sample_arg("").unwrap(), SampleConfig::DEFAULT);
        assert_eq!(
            parse_sample_arg("50000,8").unwrap(),
            SampleConfig {
                interval: 50_000,
                k: 8
            }
        );
        assert_eq!(
            parse_sample_arg(" 1000 , 2 ").unwrap(),
            SampleConfig {
                interval: 1000,
                k: 2
            }
        );
        assert!(parse_sample_arg("1000").is_err());
        assert!(parse_sample_arg("0,4").is_err());
        assert!(parse_sample_arg("1000,0").is_err());
        assert!(parse_sample_arg("x,y").is_err());
    }

    #[test]
    fn sample_stats_snapshot_round_trips() {
        let s = SampleStats {
            interval: 100_000,
            k: 10,
            intervals: 80,
            representatives: 9,
            timed_instructions: 950_000,
        };
        assert_eq!(SampleStats::from_json(&s.to_json()).unwrap(), s);
    }

    /// The lazily-reconstructed warm shadow must hand
    /// `to_fully_assoc` exactly the state a reference
    /// `FullyAssocShadow` would have reached: same residency, same
    /// recency order, same seen set — at any point in the stream.
    #[test]
    fn warm_shadow_matches_reference_shadow() {
        let mut fast = WarmShadow::new(8);
        let mut reference = FullyAssocShadow::new(8);
        let mut rng = SplitMix(42);
        for step in 1..=10_000u32 {
            let line = rng.next() % 24; // 3× capacity: plenty of eviction
            fast.access(line, false);
            reference.classify_miss(LineAddr::new(line));
            if step % 2_500 == 0 {
                // Converted copies must continue classifying exactly
                // like the reference — residency, recency order and
                // the seen set all reconstruct from the stamps.
                let mut converted = fast.to_fully_assoc();
                let mut expect = reference.clone();
                assert_eq!(converted.len(), expect.len(), "step {step}");
                let mut probe = SplitMix(u64::from(step));
                for _ in 0..1000 {
                    let line = LineAddr::new(probe.next() % 24);
                    assert_eq!(
                        converted.classify_miss(line),
                        expect.classify_miss(line),
                        "step {step}"
                    );
                }
            }
        }
    }

    /// Stamp rebasing (the two-billion-access overflow path) must
    /// preserve relative recency and dirty bits exactly.
    #[test]
    fn warm_shadow_rebase_preserves_order_and_dirt() {
        let mut s = WarmShadow::new(4);
        for line in 0..6u64 {
            s.access(line, line == 3); // line 3 dirty
        }
        s.stamp = STAMP_MAX; // force the next access to rebase
        s.access(6, false);
        s.access(1, false); // re-touch: 1 becomes MRU again
        assert!(s.is_dirty(3));
        assert!(!s.is_dirty(2));
        let mut sh = s.to_fully_assoc();
        assert_eq!(sh.len(), 4);
        // Resident: the 4 most recent = {4, 5, 6, 1}; 0, 2, 3 pushed out.
        use timekeeping::MissKind;
        for line in [4u64, 5, 6, 1] {
            assert_eq!(sh.classify_miss(LineAddr::new(line)), MissKind::Conflict);
        }
        assert_eq!(sh.classify_miss(LineAddr::new(0)), MissKind::Capacity);
    }

    /// Dirty bits live in the same table but are L1 state, orthogonal
    /// to shadow residency: shadow eviction preserves them, explicit
    /// clears (L1 writeback) remove them.
    #[test]
    fn warm_shadow_tracks_dirty_bits_across_shadow_eviction() {
        let mut s = WarmShadow::new(4);
        s.access(1, true); // store: dirty
        s.access(2, false); // load: clean
        assert!(s.is_dirty(1));
        assert!(!s.is_dirty(2));
        for l in 10..14 {
            s.access(l, false); // push line 1 out of the stack
        }
        assert!(s.is_dirty(1), "shadow eviction keeps the L1 dirty bit");
        s.clear_dirty(1); // the L1 evicted it: written back
        assert!(!s.is_dirty(1));
        s.access(1, false);
        assert!(!s.is_dirty(1), "a returning line starts clean");
        let mut sh = s.to_fully_assoc();
        assert_eq!(sh.len(), 4, "stack is bounded by capacity");
        assert_eq!(
            sh.classify_miss(LineAddr::new(2)),
            timekeeping::MissKind::Capacity,
            "2 was pushed out of the stack but stays seen"
        );
    }

    #[test]
    fn kmeans_is_deterministic_and_partitions_weights() {
        let mut rng = SplitMix(7);
        let sigs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                (0..SIG_DIMS)
                    .map(|d| {
                        let base = if i < 20 { 0.0 } else { 1.0 };
                        base + (rng.next_f64() - 0.5) * 0.01 + d as f64 * 0.0
                    })
                    .collect()
            })
            .collect();
        let a = cluster_intervals(&sigs, 4, 99);
        let b = cluster_intervals(&sigs, 4, 99);
        assert_eq!(a, b, "same inputs, same clustering");
        let total: u64 = a.iter().map(|c| c.weight).sum();
        assert_eq!(total, 40, "weights partition the intervals");
        for w in a.windows(2) {
            assert!(w[0].rep < w[1].rep, "representatives sorted and distinct");
        }
    }

    /// A synthetic forkable workload for the engine-level tests.
    #[derive(Clone)]
    struct Strided {
        at: u64,
        lines: u64,
    }
    impl Workload for Strided {
        fn next_instr(&mut self) -> Instr {
            self.at += 1;
            if self.at.is_multiple_of(4) {
                return Instr::Op;
            }
            let addr = (self.at * 97 % self.lines) * 32;
            let m = MemRef::new(Addr::new(addr), Pc::new(0x400 + (self.at % 7) * 4));
            if self.at.is_multiple_of(5) {
                Instr::Store(m)
            } else {
                Instr::Load(m)
            }
        }
        fn name(&self) -> &str {
            "strided"
        }
        fn fork(&self) -> Option<Box<dyn Workload>> {
            Some(Box::new(self.clone()))
        }
    }
    use crate::trace::MemRef;

    #[test]
    fn degenerate_budget_runs_fully_but_tagged() {
        let cfg = SystemConfig::base();
        let sc = SampleConfig {
            interval: 1_000_000,
            k: 10,
        };
        let mut wl = Strided { at: 0, lines: 4096 };
        let sampled = run_sampled(&mut wl.clone(), cfg, sc, 50_000, false).unwrap();
        let full = crate::run_workload(&mut wl, cfg, 50_000);
        let tag = sampled.sampled.expect("degenerate runs stay tagged");
        assert_eq!(tag.intervals, 0);
        assert_eq!(tag.timed_instructions, 50_000);
        assert_eq!(sampled.core, full.core, "degenerate sampling is a full run");
        assert_eq!(sampled.hierarchy, full.hierarchy);
    }

    #[test]
    fn sampled_run_reconstructs_the_full_budget() {
        let cfg = SystemConfig::base();
        let sc = SampleConfig {
            interval: 10_000,
            k: 3,
        };
        let budget = 205_000; // 20 whole intervals + 5k tail
        let mut wl = Strided { at: 0, lines: 8192 };
        let r = run_sampled(&mut wl, cfg, sc, budget, false).unwrap();
        let tag = r.sampled.expect("sampled tag present");
        assert_eq!(tag.intervals, 20);
        assert!(tag.representatives <= 3);
        assert_eq!(
            tag.timed_instructions,
            u64::from(tag.representatives) * sc.interval + 5_000
        );
        assert_eq!(
            r.core.instructions, budget,
            "weighted instructions reconstruct the budget exactly"
        );
        assert!(r.core.cycles > 0 && r.hierarchy.l1_accesses > 0);
        assert_eq!(
            r.hierarchy.l1_accesses,
            r.hierarchy.l1_hits + r.breakdown.total(),
            "accesses = hits + classified misses under weighting"
        );
    }

    #[test]
    fn sampled_runs_are_deterministic() {
        let cfg = SystemConfig::base();
        let sc = SampleConfig {
            interval: 5_000,
            k: 4,
        };
        let mut a = Strided { at: 0, lines: 8192 };
        let mut b = Strided { at: 0, lines: 8192 };
        let ra = run_sampled(&mut a, cfg, sc, 80_000, false).unwrap();
        let rb = run_sampled(&mut b, cfg, sc, 80_000, false).unwrap();
        assert_eq!(ra, rb);
    }
}
