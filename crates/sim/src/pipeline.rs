//! The staged access pipeline and its observer plane.
//!
//! Every L1 data reference walks an explicit pipeline of short stages:
//!
//! ```text
//! Lookup ──hit──▶ Hit ──decayed──▶ DecayRefetch
//!    │
//!   miss─▶ MissClassify ─▶ VictimProbe ──vc hit──▶ swap fill
//!                              │
//!                             miss ─▶ MissIssue ─▶ Fill / Evict
//! ```
//!
//! Each stage moves data between the caches, MSHRs and buses (the
//! *timing* model), and announces what happened by emitting a typed
//! event — [`LookupEvent`], [`HitEvent`], [`MissEvent`], [`FillEvent`],
//! [`EvictEvent`]. Everything that is bookkeeping rather than timing —
//! generation tracking, metric collection, predictor training,
//! victim-cache admission, and the lockstep-oracle tap — lives in
//! observers implementing [`MemObserver`] that react to those events.
//!
//! Observers run in a fixed order for every event: generation plane →
//! metrics → predictors → victim admission → oracle tap. Data flows
//! between them through a per-event [`Reactions`] scratchpad: the
//! generation plane publishes the closed
//! [`GenerationRecord`], the victim
//! filter reads it to make its admission call, and the oracle tap
//! records the decision for the lockstep checker. The order is part of
//! the behavioral contract — reordering observers changes which state a
//! later observer sees and breaks bit-exactness with the golden runs.
//!
//! The prefetch machinery (queue, issue, in-flight heap, arrival fills)
//! also lives here: a prefetch arrival is just another Fill/Evict event
//! pair, emitted from [`MemorySystem::advance`] instead of a demand
//! access.

use std::cmp::Reverse;

use timekeeping::{
    CacheGeometry, Cycle, Dbcp, EvictCause, EvictionInfo, GenerationRecord, LineAddr, LineMeta,
    LinePlane, MissKind, PrefetchRequest, TimekeepingPrefetcher, Timeliness, VictimCache,
    VictimFilter,
};
use timekeeping::{Histogram, L2IntervalMonitor, MetricsCollector, Pc};

use crate::cache::ProbeResult;
use crate::config::{L1Mode, MachineConfig};
use crate::hierarchy::{AccessOutcome, MemorySystem};
use crate::obs::{ProfStage, TraceKind, TraceObserver};
use crate::oracle::SimLevel;
use crate::trace::MemRef;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Emitted at the top of every access, before the L1 probe. Predictors
/// that train on the full reference stream (the stride table) react
/// here.
#[derive(Debug, Clone, Copy)]
pub struct LookupEvent {
    /// The referenced address.
    pub addr: timekeeping::Addr,
    /// The referencing instruction.
    pub pc: Pc,
    /// Access cycle.
    pub now: Cycle,
}

/// An L1 hit.
#[derive(Debug, Clone, Copy)]
pub struct HitEvent {
    /// The referenced line.
    pub line: LineAddr,
    /// The frame that hit.
    pub frame: usize,
    /// The referencing instruction.
    pub pc: Pc,
    /// Access cycle.
    pub now: Cycle,
}

/// An L1 miss, after ground-truth classification and before service.
#[derive(Debug, Clone, Copy)]
pub struct MissEvent {
    /// The missing line.
    pub line: LineAddr,
    /// The referenced address.
    pub addr: timekeeping::Addr,
    /// Ground-truth classification from the fully-associative shadow.
    pub kind: MissKind,
    /// Access cycle.
    pub now: Cycle,
}

/// A line entering an L1 frame — a generation start.
#[derive(Debug, Clone, Copy)]
pub struct FillEvent {
    /// The filled line.
    pub line: LineAddr,
    /// Destination frame.
    pub frame: usize,
    /// L1 set index of the line.
    pub set: u64,
    /// L1 tag of the line.
    pub tag: u64,
    /// Referencing instruction, for demand fills; prefetch fills carry
    /// no PC.
    pub pc: Option<Pc>,
    /// Whether this is a demand fill (false = prefetch arrival).
    pub demand: bool,
    /// The line this fill displaced, if any.
    pub evicted: Option<LineAddr>,
    /// Fill cycle.
    pub now: Cycle,
}

/// A line leaving an L1 frame — a generation end. Emitted *before* the
/// corresponding [`FillEvent`] of the displacing line.
#[derive(Debug, Clone, Copy)]
pub struct EvictEvent {
    /// The evicted line.
    pub line: LineAddr,
    /// The frame it leaves.
    pub frame: usize,
    /// Why the generation ended.
    pub cause: EvictCause,
    /// L1 tag of the replacing line (None for prefetch fills, where
    /// Collins conflict detection does not apply).
    pub incoming_tag: Option<u64>,
    /// L1 set index of the evicted line.
    pub set_index: u64,
    /// L1 tag of the evicted line.
    pub tag: u64,
    /// When the generation ended (for decay this is the switch-off
    /// point, which precedes the access that discovers it).
    pub at: Cycle,
}

/// The bus transaction class a snoop carries (multi-core runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceKind {
    /// A read miss requesting a shared copy.
    BusRd,
    /// A write miss requesting an exclusive copy (invalidates sharers).
    BusRdX,
    /// A write hit on a shared copy claiming ownership without a data
    /// transfer (invalidates the other sharers).
    Upgrade,
}

impl CoherenceKind {
    /// A stable numeric code for trace records (0 BusRd, 1 BusRdX,
    /// 2 upgrade).
    pub fn code(self) -> u64 {
        match self {
            CoherenceKind::BusRd => 0,
            CoherenceKind::BusRdX => 1,
            CoherenceKind::Upgrade => 2,
        }
    }
}

/// A coherence bus transaction observed by every core (multi-core runs).
#[derive(Debug, Clone, Copy)]
pub struct SnoopEvent {
    /// The line the transaction names.
    pub line: LineAddr,
    /// The requesting core.
    pub requester: u32,
    /// The transaction class.
    pub kind: CoherenceKind,
    /// The cycle the bus granted the transaction.
    pub at: Cycle,
}

/// A line copy killed by coherence (a [`SnoopEvent`] claiming exclusive
/// ownership, or an inclusive-L2 back-invalidation).
#[derive(Debug, Clone, Copy)]
pub struct InvalidateEvent {
    /// The invalidated line.
    pub line: LineAddr,
    /// The core that lost its copy.
    pub owner: u32,
    /// The L1 frame the copy occupied (`None` when the copy lived in the
    /// victim cache).
    pub frame: Option<usize>,
    /// When the copy died.
    pub at: Cycle,
}

/// A cache-to-cache transfer: a modified line supplied directly by its
/// owning core instead of the L2/memory (multi-core runs).
#[derive(Debug, Clone, Copy)]
pub struct C2cEvent {
    /// The transferred line.
    pub line: LineAddr,
    /// The core supplying its modified copy.
    pub from: u32,
    /// The requesting core.
    pub to: u32,
    /// The cycle the bus granted the transfer.
    pub at: Cycle,
}

/// Per-event scratchpad through which observers hand results to each
/// other and back to the emitting stage.
#[derive(Debug, Default)]
pub struct Reactions {
    /// Access interval of a hit, published by the generation plane.
    pub access_interval: Option<u64>,
    /// L2 access interval of a miss (time since the line's previous L1
    /// miss), published by the generation plane.
    pub l2_interval: Option<u64>,
    /// The missing line's last-generation metadata at miss time.
    pub line_meta: Option<LineMeta>,
    /// Reload interval at miss time (now minus last generation start).
    pub reload_interval: Option<u64>,
    /// The generation record closed by an evict event.
    pub generation: Option<GenerationRecord>,
    /// Victim-filter admission decision, if an eviction was offered.
    pub vc_admitted: Option<bool>,
    /// Address-prediction outcome scored at a fill (was the predicted
    /// tag correct?).
    pub addr_scored: Option<bool>,
    /// Prefetch requests produced by predictors; the emitting stage
    /// enqueues them in order.
    pub prefetches: Vec<PrefetchRequest>,
}

/// A consumer of pipeline events.
///
/// All non-timing bookkeeping in the memory system flows through this
/// trait: the generation plane, the metrics collector, the prefetch
/// predictors, victim-cache admission and the lockstep-oracle tap each
/// implement it and are dispatched in that fixed order for every event.
pub trait MemObserver {
    /// A reference is about to probe the L1.
    fn on_lookup(&mut self, _ev: &LookupEvent, _rx: &mut Reactions) {}
    /// The reference hit.
    fn on_hit(&mut self, _ev: &HitEvent, _rx: &mut Reactions) {}
    /// The reference missed.
    fn on_miss(&mut self, _ev: &MissEvent, _rx: &mut Reactions) {}
    /// A line entered a frame.
    fn on_fill(&mut self, _ev: &FillEvent, _rx: &mut Reactions) {}
    /// A line left a frame.
    fn on_evict(&mut self, _ev: &EvictEvent, _rx: &mut Reactions) {}
    /// The hierarchy level that serviced an L1 miss was determined.
    fn on_service(&mut self, _level: SimLevel) {}
    /// A coherence bus transaction was granted (multi-core runs only;
    /// single-core pipelines never emit this).
    fn on_snoop(&mut self, _ev: &SnoopEvent, _rx: &mut Reactions) {}
    /// A line copy was killed by coherence (multi-core runs only).
    fn on_invalidate(&mut self, _ev: &InvalidateEvent, _rx: &mut Reactions) {}
    /// A modified line was supplied cache-to-cache (multi-core runs
    /// only).
    fn on_c2c(&mut self, _ev: &C2cEvent, _rx: &mut Reactions) {}
}

/// One entry in the optional pipeline event log (see
/// [`MemorySystem::record_events`]). The log is the stage-ordering
/// contract made testable: fills always follow the evict that made
/// room, decay refetches close at the switch-off point, and prefetch
/// arrivals are non-demand fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineEvent {
    /// An L1 hit in `frame`.
    Hit {
        /// The referenced line.
        line: LineAddr,
        /// The frame that hit.
        frame: usize,
    },
    /// An L1 miss classified as `kind`.
    Miss {
        /// The missing line.
        line: LineAddr,
        /// Ground-truth classification.
        kind: MissKind,
    },
    /// A line filled into `frame`.
    Fill {
        /// The filled line.
        line: LineAddr,
        /// Destination frame.
        frame: usize,
        /// Demand fill (false = prefetch arrival).
        demand: bool,
    },
    /// A generation closed: `line` left `frame`.
    Evict {
        /// The evicted line.
        line: LineAddr,
        /// The frame it left.
        frame: usize,
        /// Why the generation ended.
        cause: EvictCause,
    },
}

// ---------------------------------------------------------------------------
// Observer implementations
// ---------------------------------------------------------------------------

/// The unified per-line/per-frame timekeeping plane (generation
/// tracking + line metadata), as an observer.
#[derive(Debug)]
pub(crate) struct GenObserver {
    pub(crate) plane: LinePlane,
    /// Mirrors `SystemConfig::collect_metrics`: line metadata snapshots
    /// are only taken when someone will consume them.
    pub(crate) collect: bool,
}

impl MemObserver for GenObserver {
    fn on_hit(&mut self, ev: &HitEvent, rx: &mut Reactions) {
        rx.access_interval = Some(self.plane.hit(ev.frame, ev.now));
    }

    fn on_miss(&mut self, ev: &MissEvent, rx: &mut Reactions) {
        if self.collect {
            // §3: each L1 miss is an L2 access for the line; the interval
            // between successive ones is the L2 access interval.
            rx.l2_interval = self.plane.record_l2_access(ev.line, ev.now);
            let meta = self.plane.line_meta(ev.line).copied();
            rx.reload_interval = meta.map(|h| ev.now.since(h.last_start));
            rx.line_meta = meta;
        }
    }

    fn on_fill(&mut self, ev: &FillEvent, _rx: &mut Reactions) {
        self.plane.fill(ev.frame, ev.line, ev.now);
    }

    fn on_evict(&mut self, ev: &EvictEvent, rx: &mut Reactions) {
        rx.generation = self.plane.evict(ev.frame, ev.at, ev.cause);
    }
}

/// Metric distributions, the L2 access-interval histogram and the
/// hardware L2 interval monitor, as an observer.
#[derive(Debug)]
pub(crate) struct MetricsObserver {
    pub(crate) collector: MetricsCollector,
    pub(crate) l2_access_interval: Histogram,
    pub(crate) l2_monitor: L2IntervalMonitor,
    pub(crate) collect: bool,
}

impl MemObserver for MetricsObserver {
    fn on_hit(&mut self, _ev: &HitEvent, rx: &mut Reactions) {
        if self.collect {
            if let Some(interval) = rx.access_interval {
                self.collector.on_access_interval(interval);
            }
        }
    }

    fn on_miss(&mut self, ev: &MissEvent, rx: &mut Reactions) {
        // The hardware monitor sees this L1 miss as an L2 access and
        // makes its own (tick-quantized) conflict call.
        if let Some((_, predicted)) = self.l2_monitor.on_access(ev.addr, ev.now) {
            self.l2_monitor.observe(predicted, ev.kind);
        }
        if self.collect {
            if let Some(interval) = rx.l2_interval {
                self.l2_access_interval.record(interval);
            }
            self.collector
                .on_miss(ev.kind, rx.line_meta.as_ref(), rx.reload_interval);
        }
    }

    fn on_evict(&mut self, _ev: &EvictEvent, rx: &mut Reactions) {
        if self.collect {
            if let Some(rec) = &rx.generation {
                self.collector.on_generation(rec);
            }
        }
    }
}

/// The configured prefetcher / address predictor.
#[derive(Debug)]
pub(crate) enum PrefetcherImpl {
    None,
    Tk(TimekeepingPrefetcher),
    Dbcp(Dbcp),
    Markov(timekeeping::Markov),
    Stride(timekeeping::StridePrefetcher),
}

/// Predictor training and address-prediction scoring, as an observer.
/// Prefetch targets surface through [`Reactions::prefetches`]; the
/// emitting stage enqueues them.
#[derive(Debug)]
pub(crate) struct PredictorObserver {
    pub(crate) prefetcher: PrefetcherImpl,
    /// Per-frame predicted next tag, scored against the next fill
    /// (Figure 20).
    pub(crate) addr_pred: Vec<Option<u64>>,
    pub(crate) geom: CacheGeometry,
}

impl PredictorObserver {
    fn request(&self, line: LineAddr) -> PrefetchRequest {
        PrefetchRequest {
            line,
            frame: (self.geom.index_of_line(line) * self.geom.assoc() as u64) as usize,
            need_in_ticks: None,
        }
    }
}

impl MemObserver for PredictorObserver {
    fn on_lookup(&mut self, ev: &LookupEvent, rx: &mut Reactions) {
        // The stride table trains on every reference, hit or miss.
        if let PrefetcherImpl::Stride(sp) = &mut self.prefetcher {
            let targets = sp.on_access(ev.addr, ev.pc);
            for t in targets {
                rx.prefetches.push(self.request(t));
            }
        }
    }

    fn on_hit(&mut self, ev: &HitEvent, rx: &mut Reactions) {
        let target = match &mut self.prefetcher {
            PrefetcherImpl::Tk(p) => {
                p.on_hit(ev.frame);
                None
            }
            PrefetcherImpl::Dbcp(d) => d.on_access(ev.frame, ev.pc),
            PrefetcherImpl::None | PrefetcherImpl::Markov(_) | PrefetcherImpl::Stride(_) => None,
        };
        if let Some(t) = target {
            rx.prefetches.push(self.request(t));
        }
    }

    fn on_miss(&mut self, ev: &MissEvent, rx: &mut Reactions) {
        // The Markov predictor correlates the global miss stream.
        if let PrefetcherImpl::Markov(mk) = &mut self.prefetcher {
            let targets = mk.on_miss(ev.line);
            for t in targets {
                rx.prefetches.push(self.request(t));
            }
        }
    }

    fn on_fill(&mut self, ev: &FillEvent, rx: &mut Reactions) {
        // Score the previous address prediction for this frame.
        if let Some(pred) = self.addr_pred[ev.frame].take() {
            rx.addr_scored = Some(pred == ev.tag);
        }
        let target = match &mut self.prefetcher {
            PrefetcherImpl::Tk(p) => {
                if ev.demand {
                    p.on_fill(ev.frame, ev.set, ev.tag);
                } else {
                    p.on_prefetch_fill(ev.frame, ev.set, ev.tag);
                }
                self.addr_pred[ev.frame] = p.predicted_next(ev.frame);
                None
            }
            PrefetcherImpl::Dbcp(d) => {
                d.on_replace(ev.frame, ev.line);
                match ev.pc {
                    Some(pc) => d.on_access(ev.frame, pc),
                    None => None,
                }
            }
            PrefetcherImpl::None | PrefetcherImpl::Markov(_) | PrefetcherImpl::Stride(_) => None,
        };
        if let Some(t) = target {
            rx.prefetches.push(self.request(t));
        }
    }
}

/// The victim cache and its admission filter.
#[derive(Debug)]
pub(crate) struct VictimUnit {
    pub(crate) cache: VictimCache,
    pub(crate) filter: Box<dyn VictimFilter>,
    /// Blocks entered by L1↔VC swaps (not counted as filtered fill
    /// traffic; see DESIGN.md).
    pub(crate) swap_fills: u64,
}

/// Victim-cache admission, as an observer: offers every closed
/// generation to the filter and publishes the decision.
#[derive(Debug)]
pub(crate) struct VictimObserver {
    pub(crate) unit: Option<VictimUnit>,
}

impl MemObserver for VictimObserver {
    fn on_evict(&mut self, ev: &EvictEvent, rx: &mut Reactions) {
        let Some(rec) = &rx.generation else { return };
        if let Some(v) = self.unit.as_mut() {
            let info = EvictionInfo {
                line: ev.line,
                set_index: ev.set_index,
                tag: ev.tag,
                dead_time: rec.dead_time,
                live_time: rec.live_time,
                cause: ev.cause,
                reload_interval: rec.reload_interval,
                incoming_tag: ev.incoming_tag.unwrap_or(u64::MAX),
            };
            let admitted = v.cache.offer(v.filter.as_mut(), &info);
            rx.vc_admitted = Some(admitted);
        }
    }
}

/// Per-access scratch recorded for the lockstep checker (see
/// [`crate::oracle`]). Reset before each checked access; the writes are
/// unconditional because they are cheaper than branching on whether a
/// checker is installed.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct TapEvent {
    /// Level that serviced an L1 miss (`None` until the miss path runs).
    pub(crate) level: Option<SimLevel>,
    /// Line evicted from the L1 by this event, if any.
    pub(crate) evicted: Option<LineAddr>,
    /// Whether a generation-boundary event (plane evict) fired.
    pub(crate) closed: bool,
    /// Whether this was a decay refetch.
    pub(crate) decay: bool,
    /// Victim-filter admission decision, if an eviction was offered.
    pub(crate) vc_admitted: Option<bool>,
}

/// The lockstep-oracle tap, as an observer: mirrors event outcomes into
/// the [`TapEvent`] scratch the checker compares against.
#[derive(Debug, Default)]
pub(crate) struct OracleTap {
    pub(crate) evt: TapEvent,
}

impl MemObserver for OracleTap {
    fn on_fill(&mut self, ev: &FillEvent, _rx: &mut Reactions) {
        if ev.demand {
            self.evt.evicted = ev.evicted;
        }
    }

    fn on_evict(&mut self, ev: &EvictEvent, rx: &mut Reactions) {
        if rx.generation.is_some() {
            self.evt.closed = true;
            // During an access, a Flush-cause close only happens on a
            // decay refetch.
            if ev.cause == EvictCause::Flush {
                self.evt.decay = true;
            }
            if let Some(admitted) = rx.vc_admitted {
                self.evt.vc_admitted = Some(admitted);
            }
        }
    }

    fn on_service(&mut self, level: SimLevel) {
        self.evt.level = Some(level);
    }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Dispatches one event to every observer, in the canonical order. The
/// trace observer, when installed, runs *last*: it sees the fully
/// populated [`Reactions`] (e.g. the closed generation record) and
/// writes nothing back, so its presence cannot change simulation
/// results.
macro_rules! dispatch_all {
    ($obs:expr, $method:ident, $ev:expr, $rx:expr) => {{
        MemObserver::$method(&mut $obs.gens, $ev, $rx);
        MemObserver::$method(&mut $obs.metrics, $ev, $rx);
        MemObserver::$method(&mut $obs.predictors, $ev, $rx);
        MemObserver::$method(&mut $obs.victim, $ev, $rx);
        MemObserver::$method(&mut $obs.oracle, $ev, $rx);
        if let Some(t) = $obs.trace.as_deref_mut() {
            MemObserver::$method(t, $ev, $rx);
        }
    }};
}

/// The fixed set of observers, dispatched in declaration order.
#[derive(Debug)]
pub(crate) struct Observers {
    pub(crate) gens: GenObserver,
    pub(crate) metrics: MetricsObserver,
    pub(crate) predictors: PredictorObserver,
    pub(crate) victim: VictimObserver,
    pub(crate) oracle: OracleTap,
    /// The optional sixth observer: event tracing (`--trace`). Boxed so
    /// the disabled path carries one pointer-sized `None`.
    pub(crate) trace: Option<Box<TraceObserver>>,
}

impl Observers {
    fn lookup(&mut self, ev: &LookupEvent, rx: &mut Reactions) {
        dispatch_all!(self, on_lookup, ev, rx)
    }
    fn hit(&mut self, ev: &HitEvent, rx: &mut Reactions) {
        dispatch_all!(self, on_hit, ev, rx)
    }
    fn miss(&mut self, ev: &MissEvent, rx: &mut Reactions) {
        dispatch_all!(self, on_miss, ev, rx)
    }
    fn fill(&mut self, ev: &FillEvent, rx: &mut Reactions) {
        dispatch_all!(self, on_fill, ev, rx)
    }
    fn evict(&mut self, ev: &EvictEvent, rx: &mut Reactions) {
        dispatch_all!(self, on_evict, ev, rx)
    }
    fn service(&mut self, level: SimLevel) {
        self.gens.on_service(level);
        self.metrics.on_service(level);
        self.predictors.on_service(level);
        self.victim.on_service(level);
        self.oracle.on_service(level);
        if let Some(t) = self.trace.as_deref_mut() {
            t.on_service(level);
        }
    }
}

// ---------------------------------------------------------------------------
// Prefetch lifecycle state
// ---------------------------------------------------------------------------

/// Per-set pending-prefetch lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PfState {
    /// Waiting in the prefetch request queue.
    Queued,
    /// Dropped from the queue by overflow; kept for classification.
    Discarded,
    /// Issued to the lower hierarchy; data arrives at the given cycle.
    Issued(Cycle),
    /// Arrived in the L1; remembers which line it displaced and whether
    /// that line has since been demand-missed (the "early" signature).
    Arrived {
        displaced: Option<LineAddr>,
        displaced_missed: bool,
    },
}

/// The pending prefetch for one L1 set (at most one at a time).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingPf {
    pub(crate) line: LineAddr,
    pub(crate) state: PfState,
    /// Predicted cycle by which the line will be demanded (for slack
    /// scheduling), when the predictor supplied one.
    pub(crate) deadline: Option<Cycle>,
}

/// Backlog allowances and the slack-urgency window governing prefetch
/// issue, derived from the machine latencies. Shared between the issue
/// gates themselves and the event computation that predicts when they
/// open ([`MemorySystem::next_event`]) — one source of truth, so the two
/// cannot drift.
#[allow(deprecated)] // nominal gate limits stay backend-independent by design
fn pf_gate_limits(m: &MachineConfig) -> (u64, u64, u64) {
    (
        // L1/L2 bus: one L2 round-trip of backlog is tolerated.
        m.l2_latency + 2 * m.l1l2_bus_occupancy,
        // L2/memory bus: a few transfers of backlog.
        4 * m.l2mem_bus_occupancy,
        // A prefetch is "urgent" once its predicted need time is within a
        // worst-case fetch latency of now.
        m.l2_latency + m.mem_latency + 2 * m.l2mem_bus_occupancy,
    )
}

/// Looks up the pending deadline recorded for a queued request.
fn geom_deadline(
    pending: &[Option<PendingPf>],
    geom: CacheGeometry,
    req: &PrefetchRequest,
) -> Option<Cycle> {
    pending[geom.index_of_line(req.line) as usize].and_then(|p| p.deadline)
}

// ---------------------------------------------------------------------------
// The pipeline stages
// ---------------------------------------------------------------------------

impl MemorySystem {
    // -- event emission -----------------------------------------------------

    fn emit_lookup(&mut self, ev: &LookupEvent) -> Reactions {
        let mut rx = Reactions::default();
        let t0 = self.prof_t0();
        self.obs.lookup(ev, &mut rx);
        self.prof_rec(ProfStage::ObsLookup, t0);
        rx
    }

    fn emit_hit(&mut self, ev: &HitEvent) -> Reactions {
        let mut rx = Reactions::default();
        let t0 = self.prof_t0();
        self.obs.hit(ev, &mut rx);
        self.prof_rec(ProfStage::ObsHit, t0);
        if let Some(log) = &mut self.event_log {
            log.push(PipelineEvent::Hit {
                line: ev.line,
                frame: ev.frame,
            });
        }
        rx
    }

    fn emit_miss(&mut self, ev: &MissEvent) -> Reactions {
        let mut rx = Reactions::default();
        let t0 = self.prof_t0();
        self.obs.miss(ev, &mut rx);
        self.prof_rec(ProfStage::ObsMiss, t0);
        if let Some(log) = &mut self.event_log {
            log.push(PipelineEvent::Miss {
                line: ev.line,
                kind: ev.kind,
            });
        }
        rx
    }

    fn emit_fill(&mut self, ev: &FillEvent) -> Reactions {
        let mut rx = Reactions::default();
        let t0 = self.prof_t0();
        self.obs.fill(ev, &mut rx);
        self.prof_rec(ProfStage::ObsFill, t0);
        if let Some(log) = &mut self.event_log {
            log.push(PipelineEvent::Fill {
                line: ev.line,
                frame: ev.frame,
                demand: ev.demand,
            });
        }
        rx
    }

    fn emit_evict(&mut self, ev: &EvictEvent) -> Reactions {
        let mut rx = Reactions::default();
        let t0 = self.prof_t0();
        self.obs.evict(ev, &mut rx);
        self.prof_rec(ProfStage::ObsEvict, t0);
        if rx.generation.is_some() {
            if let Some(log) = &mut self.event_log {
                log.push(PipelineEvent::Evict {
                    line: ev.line,
                    frame: ev.frame,
                    cause: ev.cause,
                });
            }
        }
        rx
    }

    fn emit_service(&mut self, level: SimLevel) {
        self.obs.service(level);
    }

    /// Records one prefetch-lifecycle trace record (fire / arrival /
    /// discard) when tracing is installed; free otherwise.
    #[inline]
    fn trace_pf(&mut self, kind: TraceKind, line: LineAddr, at: Cycle, aux: u64) {
        if let Some(t) = self.obs.trace.as_deref_mut() {
            t.push(kind, at, line, aux);
        }
    }

    /// Records one DRAM access record when tracing is installed AND the
    /// backend models row buffers (`row` is `Some`); the fixed-latency
    /// default therefore emits nothing and existing trace goldens are
    /// unchanged. The aux payload is the [`RowOutcome`] code.
    #[inline]
    fn trace_dram(
        &mut self,
        kind: TraceKind,
        addr: timekeeping::Addr,
        at: Cycle,
        row: Option<crate::dram::RowOutcome>,
    ) {
        if let Some(row) = row {
            let line = self.l1d.geometry().line_of(addr);
            self.trace_pf(kind, line, at, row.code());
        }
    }

    /// Enqueues the prefetch targets the observers produced, in order.
    fn drain_prefetches(&mut self, rx: Reactions, now: Cycle) {
        for req in rx.prefetches {
            self.enqueue_prefetch(req, now);
        }
    }

    /// Emits the Fill event for `line` entering `frame` and applies the
    /// reactions (address-prediction scoring, chained prefetch targets).
    fn fill_event(
        &mut self,
        frame: usize,
        line: LineAddr,
        pc: Option<Pc>,
        demand: bool,
        evicted: Option<LineAddr>,
        now: Cycle,
    ) {
        let geom = self.l1d.geometry();
        let set = geom.index_of_line(line);
        let tag = geom.tag_of_line(line);
        let ev = FillEvent {
            line,
            frame,
            set,
            tag,
            pc,
            demand,
            evicted,
            now,
        };
        let rx = self.emit_fill(&ev);
        if let Some(correct) = rx.addr_scored {
            self.stats.addr_predictions += 1;
            if correct {
                self.stats.addr_correct += 1;
            }
        }
        self.drain_prefetches(rx, now);
    }

    /// Emits the Evict event closing the generation in `frame` (which
    /// holds `ev_line`). Observers record metrics, offer the victim to
    /// the victim cache, and inform the oracle tap.
    fn evict_event(
        &mut self,
        frame: usize,
        ev_line: LineAddr,
        at: Cycle,
        cause: EvictCause,
        incoming_tag: Option<u64>,
    ) {
        let geom = *self.l1d.geometry();
        let ev = EvictEvent {
            line: ev_line,
            frame,
            cause,
            incoming_tag,
            set_index: geom.index_of_line(ev_line),
            tag: geom.tag_of_line(ev_line),
            at,
        };
        let _ = self.emit_evict(&ev);
    }

    // -- stages -------------------------------------------------------------

    /// Stage 1 — Lookup: train stream predictors, probe the L1, and
    /// route to the hit or miss stages.
    pub(crate) fn stage_lookup(
        &mut self,
        mref: &MemRef,
        is_store: bool,
        now: Cycle,
    ) -> AccessOutcome {
        self.stats.l1_accesses += 1;
        // Capture the raw reference stream (`--trace=ref`) ahead of the
        // ColdOnly early-return so every demand reference is recorded —
        // exactly one Access record per l1_access.
        if let Some(t) = self.obs.trace.as_deref_mut() {
            let line = self.l1d.geometry().line_of(mref.addr);
            t.ref_event(now, line, mref.pc.get(), is_store);
        }
        if self.cfg.l1_mode == L1Mode::ColdOnly {
            return self.access_cold_only(mref, now);
        }
        let addr = mref.addr;
        let line = self.l1d.geometry().line_of(addr);
        let rx = self.emit_lookup(&LookupEvent {
            addr,
            pc: mref.pc,
            now,
        });
        self.drain_prefetches(rx, now);
        match self.l1d.probe(addr) {
            ProbeResult::Hit(frame) => self.stage_hit(mref, line, frame, is_store, now),
            ProbeResult::Miss {
                victim_frame,
                evicted,
            } => {
                let out = self.stage_miss(mref, line, victim_frame, evicted, now);
                if is_store {
                    if let Some(f) = self.l1d.peek(addr) {
                        self.l1d.mark_dirty(f);
                    }
                }
                out
            }
        }
    }

    /// Hit stage: decay check, hit bookkeeping via the observers,
    /// prefetch-timeliness resolution, and hit-under-miss timing.
    fn stage_hit(
        &mut self,
        mref: &MemRef,
        line: LineAddr,
        frame: usize,
        is_store: bool,
        now: Cycle,
    ) -> AccessOutcome {
        if is_store {
            self.l1d.mark_dirty(frame);
        }
        // Cache decay: a line idle past the decay interval was switched
        // off; its data must be refetched from the L2.
        if let Some(interval) = self.cfg.decay_interval {
            if let Some(last_use) = self.obs.gens.plane.last_use(frame) {
                if now.since(last_use) >= interval {
                    return self.stage_decay_refetch(mref, line, frame, last_use, interval, now);
                }
            }
        }
        self.stats.l1_hits += 1;
        self.shadow.on_access(line);
        let rx = self.emit_hit(&HitEvent {
            line,
            frame,
            pc: mref.pc,
            now,
        });
        self.drain_prefetches(rx, now);
        // A hit on a prefetched block resolves its timeliness.
        let set = self.l1d.geometry().index_of_line(line) as usize;
        if let Some(p) = self.pending_pf[set] {
            if p.line == line {
                if let PfState::Arrived {
                    displaced_missed, ..
                } = p.state
                {
                    self.pending_pf[set] = None;
                    let class = if displaced_missed {
                        Timeliness::Early
                    } else {
                        Timeliness::Timely
                    };
                    self.timeliness.record(true, class);
                }
            }
        }
        // Hit under miss: data may still be in flight.
        let mut ready = now + self.cfg.machine.l1_hit_latency;
        if let Some(r) = self.demand_mshrs.ready_time(line) {
            ready = ready.max(r);
        }
        if let Some(r) = self.prefetch_mshrs.ready_time(line) {
            ready = ready.max(r);
        }
        AccessOutcome {
            ready_at: ready,
            l1_hit: true,
            vc_hit: false,
        }
    }

    /// Miss macro-stage: classification, victim-cache probe, then issue.
    fn stage_miss(
        &mut self,
        mref: &MemRef,
        line: LineAddr,
        victim_frame: usize,
        evicted: Option<LineAddr>,
        now: Cycle,
    ) -> AccessOutcome {
        let set = self.l1d.geometry().index_of_line(line);
        self.stage_miss_classify(mref, line, now);
        // Resolve / annotate pending prefetch state for this set.
        self.resolve_pending_on_miss(set, line, now);
        if let Some(out) = self.stage_victim_probe(mref, line, victim_frame, evicted, now) {
            return out;
        }
        self.stage_miss_issue(mref, line, now)
    }

    /// Miss-classify stage: ground-truth classification and the Miss
    /// event (metrics, L2 monitor, Markov training).
    fn stage_miss_classify(&mut self, mref: &MemRef, line: LineAddr, now: Cycle) {
        let kind = self.shadow.classify_miss(line);
        let rx = self.emit_miss(&MissEvent {
            line,
            addr: mref.addr,
            kind,
            now,
        });
        self.drain_prefetches(rx, now);
    }

    /// VictimProbe stage: if the victim cache holds the line, swap it
    /// with the displaced resident and finish in one extra cycle.
    fn stage_victim_probe(
        &mut self,
        mref: &MemRef,
        line: LineAddr,
        victim_frame: usize,
        evicted: Option<LineAddr>,
        now: Cycle,
    ) -> Option<AccessOutcome> {
        let unit = self.obs.victim.unit.as_mut()?;
        if !unit.cache.take(line) {
            return None;
        }
        self.stats.vc_hits += 1;
        // Swap: close the displaced generation and move the block into
        // the victim cache unfiltered (it is an exchange, not eviction
        // traffic).
        if let Some(ev) = evicted {
            self.evict_event(victim_frame, ev, now, EvictCause::Demand, None);
            self.writeback_if_dirty(victim_frame, now);
            let v = self.obs.victim.unit.as_mut().expect("checked above");
            v.cache.insert(ev);
            v.swap_fills += 1;
        }
        self.l1d.fill_frame(victim_frame, mref.addr);
        self.fill_event(victim_frame, line, Some(mref.pc), true, evicted, now);
        Some(AccessOutcome {
            ready_at: now + self.cfg.machine.l1_hit_latency + 1,
            l1_hit: false,
            vc_hit: true,
        })
    }

    /// MissIssue stage: merge with outstanding fetches (demand MSHRs,
    /// in-flight prefetches) or issue a fresh fetch, then fill.
    fn stage_miss_issue(&mut self, mref: &MemRef, line: LineAddr, now: Cycle) -> AccessOutcome {
        // Merge with an outstanding demand miss for the same line.
        if let Some(ready) = self.demand_mshrs.lookup(line) {
            self.emit_service(SimLevel::InFlight);
            // The tag was filled by the first miss unless it was evicted
            // in between; refill if needed.
            if self.l1d.peek(mref.addr).is_none() {
                self.stage_fill(mref, line, now);
            }
            return AccessOutcome {
                ready_at: ready,
                l1_hit: false,
                vc_hit: false,
            };
        }
        // A prefetch already in flight for this line: the demand takes
        // ownership of it.
        if let Some(pf_ready) = self.prefetch_mshrs.remove(line) {
            self.emit_service(SimLevel::InFlight);
            self.pf_queue.cancel_line(line);
            self.stage_fill(mref, line, now);
            let ready = pf_ready.max(now + 1);
            self.alloc_demand(line, ready, now);
            return AccessOutcome {
                ready_at: ready,
                l1_hit: false,
                vc_hit: false,
            };
        }
        // Still queued (never issued): fetch normally.
        self.pf_queue.cancel_line(line);
        let ready = self.fetch_from_l2(mref.addr, now, true);
        self.alloc_demand(line, ready, now);
        self.stage_fill(mref, line, now);
        AccessOutcome {
            ready_at: ready,
            l1_hit: false,
            vc_hit: false,
        }
    }

    /// Fill/Evict stage (demand): write back the displaced resident,
    /// fill the frame, and emit the Evict + Fill event pair.
    fn stage_fill(&mut self, mref: &MemRef, line: LineAddr, now: Cycle) {
        let geom = *self.l1d.geometry();
        {
            let (victim_frame, resident) = self.l1d.peek_victim(mref.addr);
            if resident.is_some() {
                if self.cfg.decay_interval.is_some() {
                    self.bank_decay_off_time(victim_frame, now);
                }
                self.writeback_if_dirty(victim_frame, now);
            }
        }
        let (frame, evicted) = self.l1d.fill(mref.addr);
        if let Some(ev) = evicted {
            self.evict_event(
                frame,
                ev,
                now,
                EvictCause::Demand,
                Some(geom.tag_of_line(line)),
            );
        }
        self.fill_event(frame, line, Some(mref.pc), true, evicted, now);
    }

    /// DecayRefetch stage: a reference to a decayed (switched-off) line
    /// ends the generation at the decay point, refetches the block from
    /// the L2 and starts a fresh generation. The interval between
    /// switch-off and this access is banked as leakage saving.
    fn stage_decay_refetch(
        &mut self,
        mref: &MemRef,
        line: LineAddr,
        frame: usize,
        last_use: Cycle,
        interval: u64,
        now: Cycle,
    ) -> AccessOutcome {
        self.stats.decay_misses += 1;
        let off_at = last_use + interval;
        self.stats.decay_off_cycles += now.since(off_at);
        // The decayed generation ended when the line switched off.
        self.evict_event(frame, line, off_at, EvictCause::Flush, None);
        // Refetch: the shadow still sees a reference (decay is invisible
        // to the fully-associative model — these are not program misses).
        self.shadow.on_access(line);
        let ready = self.fetch_from_l2(mref.addr, now, true);
        self.alloc_demand(line, ready, now);
        self.l1d.fill_frame(frame, mref.addr);
        self.fill_event(frame, line, Some(mref.pc), true, None, now);
        AccessOutcome {
            ready_at: ready,
            l1_hit: false,
            vc_hit: false,
        }
    }

    /// The cold-miss-only study L1 (§6 sizing bound): every line hits
    /// forever after its first reference.
    fn access_cold_only(&mut self, mref: &MemRef, now: Cycle) -> AccessOutcome {
        let line = self.l1d.geometry().line_of(mref.addr);
        if self.cold_seen.contains(&line.get()) {
            self.stats.l1_hits += 1;
            return AccessOutcome {
                ready_at: now + self.cfg.machine.l1_hit_latency,
                l1_hit: true,
                vc_hit: false,
            };
        }
        self.cold_seen.insert(line.get());
        if let Some(ready) = self.demand_mshrs.lookup(line) {
            return AccessOutcome {
                ready_at: ready,
                l1_hit: false,
                vc_hit: false,
            };
        }
        let ready = self.fetch_from_l2(mref.addr, now, true);
        self.alloc_demand(line, ready, now);
        AccessOutcome {
            ready_at: ready,
            l1_hit: false,
            vc_hit: false,
        }
    }

    // -- timing helpers -----------------------------------------------------

    /// Allocates a demand MSHR, modeling queueing delay when full.
    pub(crate) fn alloc_demand(&mut self, line: LineAddr, ready: Cycle, now: Cycle) {
        // `fetch_from_l2` already folded MSHR queuing into `ready` via
        // `demand_base`; here we only record occupancy.
        if self.demand_mshrs.next_free(now).is_none() {
            self.demand_mshrs.allocate(line, ready);
        }
        // When full the request queued behind the earliest entry; that
        // entry's register is reused, so no separate allocation is needed.
    }

    /// Start time for a new demand request, accounting for MSHR
    /// availability.
    fn demand_base(&mut self, now: Cycle) -> Cycle {
        match self.demand_mshrs.next_free(now) {
            None => now,
            Some(free_at) => free_at,
        }
    }

    /// Computes the completion time of a block fetch entering at the L2,
    /// updating L2 state, buses and counters. `demand` selects demand
    /// (priority) or prefetch scheduling.
    pub(crate) fn fetch_from_l2(
        &mut self,
        addr: timekeeping::Addr,
        now: Cycle,
        demand: bool,
    ) -> Cycle {
        let m = self.cfg.machine;
        let base = if demand { self.demand_base(now) } else { now };
        if demand {
            self.stats.l2_accesses += 1;
        }
        // Bus occupancy is charged at request time (the response slot is
        // reserved when the request enters): latency pipelines around the
        // occupancy, so the backlog reflects genuine congestion rather
        // than in-flight latency.
        match self.l2.probe(addr) {
            ProbeResult::Hit(_) => {
                if demand {
                    self.stats.l2_hits += 1;
                    self.emit_service(SimLevel::L2);
                } else {
                    self.notify_prefetch_l2(addr, true);
                }
                let start = self.l1l2_bus.schedule(base);
                self.l1l2_bus.done_at(start) + m.l2_latency
            }
            ProbeResult::Miss { .. } => {
                if demand {
                    self.stats.mem_accesses += 1;
                    self.emit_service(SimLevel::Mem);
                } else {
                    self.notify_prefetch_l2(addr, false);
                }
                let start1 = self.l1l2_bus.schedule(base);
                let at_l2 = self.l1l2_bus.done_at(start1) + m.l2_latency;
                let start2 = self.l2mem_bus.schedule(at_l2);
                // The read reaches the memory device once it has crossed
                // the L2/memory bus; the backend owns everything after
                // that (a constant under FixedLatency, bank/row/channel
                // timing under BankedDram).
                let at_mem = self.l2mem_bus.done_at(start2);
                let reply = self.backend.issue(addr, at_mem);
                self.trace_dram(TraceKind::DramRead, addr, at_mem, reply.row);
                // An L2 fill may evict a dirty L2 line: write it to memory.
                let (l2_victim, l2_resident) = self.l2.peek_victim(addr);
                if l2_resident.is_some() && self.l2.frame_dirty(l2_victim) {
                    self.stats.l2_writebacks += 1;
                    let wb_addr = self.l2.geometry().addr_of_line(
                        self.l2
                            .line_in_frame(l2_victim)
                            .expect("dirty frame is valid"),
                    );
                    let wb_start = self.l2mem_bus.schedule(at_l2);
                    let wb_at_mem = self.l2mem_bus.done_at(wb_start);
                    let wb_row = self.backend.write(wb_addr, wb_at_mem);
                    self.trace_dram(TraceKind::DramWrite, wb_addr, wb_at_mem, wb_row);
                }
                self.l2.fill(addr);
                reply.done
            }
        }
    }

    /// Writes a dirty evicted L1 line back toward the L2: the transfer
    /// occupies the L1/L2 bus (write-backs contend with demand fills). If
    /// the line is no longer L2-resident (the hierarchy is not inclusive),
    /// the write continues to memory over the L2/memory bus.
    fn writeback_if_dirty(&mut self, frame: usize, now: Cycle) {
        if !self.l1d.frame_dirty(frame) {
            return;
        }
        self.stats.l1_writebacks += 1;
        self.l1l2_bus.schedule(now);
        let line = self.l1d.line_in_frame(frame).expect("dirty frame is valid");
        let addr = self.l1d.geometry().addr_of_line(line);
        match self.l2.peek(addr) {
            Some(l2_frame) => self.l2.mark_dirty(l2_frame),
            None => {
                // Not L2-resident: the write-back continues to memory.
                self.stats.l2_writebacks += 1;
                let start = self.l2mem_bus.schedule(now);
                let at_mem = self.l2mem_bus.done_at(start);
                let row = self.backend.write(addr, at_mem);
                self.trace_dram(TraceKind::DramWrite, addr, at_mem, row);
            }
        }
    }

    /// Banks leakage savings for a frame being evicted while decayed.
    pub(crate) fn bank_decay_off_time(&mut self, frame: usize, now: Cycle) {
        if let Some(interval) = self.cfg.decay_interval {
            if let Some(last_use) = self.obs.gens.plane.last_use(frame) {
                let off_at = last_use + interval;
                self.stats.decay_off_cycles += now.since(off_at);
            }
        }
    }

    /// Forwards a prefetch's L2 probe outcome to the lockstep checker.
    fn notify_prefetch_l2(&mut self, addr: timekeeping::Addr, hit: bool) {
        if let Some(mut chk) = self.checker.take() {
            chk.check_prefetch_l2(addr, hit);
            self.checker = Some(chk);
        }
    }

    // -- prefetch lifecycle -------------------------------------------------

    /// Advances background machinery to `now`: global ticks (prefetch
    /// counters), prefetch issue, and prefetch arrivals.
    ///
    /// Correct under arbitrary forward jumps: every intermediate event
    /// between the previous call and `now` — tick boundary, prefetch
    /// arrival, issue-gate opening — is replayed at its true timestamp
    /// (via [`next_event`](Self::next_event)), so one jump is
    /// bit-identical to calling `advance` every cycle.
    pub fn advance(&mut self, now: Cycle) {
        let t0 = self.prof_t0();
        if now <= self.last_advance {
            // Re-advancing within the present: the per-cycle body is
            // idempotent at a fixed timestamp.
            self.advance_cycle(now);
            self.prof_rec(ProfStage::Advance, t0);
            return;
        }
        if let Some(p) = self.prof.as_deref_mut() {
            p.record_hop(now.since(self.last_advance));
        }
        while let Some(e) = self.next_event(self.last_advance) {
            if e >= now {
                break;
            }
            self.advance_cycle(e);
        }
        self.advance_cycle(now);
        self.prof_rec(ProfStage::Advance, t0);
    }

    /// Runs one cycle's worth of background machinery at timestamp `now`:
    /// tick catch-up (with enqueue deadlines anchored at `now`), then
    /// arrivals, then issue — the same order the per-cycle loop used.
    fn advance_cycle(&mut self, now: Cycle) {
        let cur_tick = self.ticker.tick_of(now);
        if self.last_tick < cur_tick {
            let mut fired = std::mem::take(&mut self.tick_scratch);
            while self.last_tick < cur_tick {
                self.last_tick += 1;
                fired.clear();
                if let PrefetcherImpl::Tk(p) = &mut self.obs.predictors.prefetcher {
                    // When the prefetcher is active, every tick boundary is
                    // an event (next_event reports it), so this loop runs
                    // exactly once per boundary and `now` is the boundary
                    // cycle itself — deadlines come out exact.
                    p.tick_into(&mut fired);
                }
                for req in fired.iter().copied() {
                    self.enqueue_prefetch(req, now);
                }
            }
            fired.clear();
            self.tick_scratch = fired;
        }
        self.stage_prefetch_arrival(now);
        self.issue_prefetches(now);
        self.last_advance = self.last_advance.max(now);
    }

    /// The earliest cycle strictly after `now` at which the memory system
    /// can change state *on its own* (without a new demand access):
    ///
    /// - the next global tick boundary, when the timekeeping prefetcher's
    ///   per-frame counters are clocked by it (for other configurations a
    ///   tick mutates nothing and is not an event);
    /// - the earliest in-flight prefetch arrival (which also covers
    ///   prefetch-MSHR registers freeing up — they drain at arrivals);
    /// - the first cycle the prefetch-issue gates (bus backlog, slack
    ///   urgency/idleness, MSHR availability) can open for the queued
    ///   head.
    ///
    /// Returns `None` when the system is quiescent: nothing will change
    /// until the next access. Every gate is monotone in time against
    /// otherwise-static state, so the returned cycle is exact — advancing
    /// to any earlier cycle is a no-op, which is what makes clock hopping
    /// bit-identical to per-cycle stepping.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut consider = |c: Cycle| {
            if c > now && next.is_none_or(|n| c < n) {
                next = Some(c);
            }
        };
        if matches!(self.obs.predictors.prefetcher, PrefetcherImpl::Tk(_)) {
            consider(self.ticker.cycle_of_tick(self.last_tick + 1));
        }
        if let Some(&Reverse((arrive, _, _))) = self.inflight_pf.peek() {
            consider(Cycle::new(arrive));
        }
        if let Some(c) = self.next_issue_opportunity(now) {
            consider(c);
        }
        // The memory backend's self-scheduled releases (bank / channel-bus
        // frees under BankedDram; none under FixedLatency). These unblock
        // no pipeline gate directly — backend state only evolves at
        // issue()/write() calls — so the extra wake-ups are harmless by
        // the idempotence of `advance_cycle`, and conservative reporting
        // keeps the hop target exact for any future gate that reads them.
        if let Some(c) = self.backend.next_event(now) {
            consider(c);
        }
        next
    }

    /// The first cycle strictly after `now` at which
    /// [`issue_prefetches`](Self::issue_prefetches) could make progress,
    /// given that no other event intervenes. Mirrors the issue gates
    /// exactly: each gate condition is monotone in the probe cycle (bus
    /// backlogs only drain, deadlines only get nearer), so solving each
    /// threshold inequality for the probe cycle gives the precise opening
    /// time.
    fn next_issue_opportunity(&self, now: Cycle) -> Option<Cycle> {
        if self.pf_queue.is_empty() {
            return None;
        }
        // A full file drains only at an arrival, which is already an
        // event; no separate wake-up needed.
        if !self.prefetch_mshrs.has_free_at(now) {
            return None;
        }
        let (max_backlog, max_mem_backlog, urgency_window) = pf_gate_limits(&self.cfg.machine);
        let nf1 = self.l1l2_bus.next_free().get();
        let nf2 = self.l2mem_bus.next_free().get();
        // backlog(c) = next_free - c <= max  ⇔  c >= next_free - max.
        let mut open = nf1
            .saturating_sub(max_backlog)
            .max(nf2.saturating_sub(max_mem_backlog));
        if self.cfg.slack_prefetch {
            let geom = *self.l1d.geometry();
            let head_deadline = self
                .pf_queue
                .peek()
                .and_then(|r| geom_deadline(&self.pending_pf, geom, r));
            // urgent(c) ⇔ deadline - c <= window ⇔ c >= deadline - window;
            // an unknown deadline is always urgent.
            let urgent_at = head_deadline.map_or(0, |d| d.get().saturating_sub(urgency_window));
            // idle(c) ⇔ both backlogs are zero ⇔ c >= max(next_free).
            let idle_at = nf1.max(nf2);
            // The slack gate passes once the head is urgent OR the buses
            // are fully idle, whichever comes first.
            open = open.max(urgent_at.min(idle_at));
        }
        Some(Cycle::new(open).max(now + 1))
    }

    /// Resolves or annotates the pending prefetch for `set` when a demand
    /// miss to `miss_line` occurs there.
    fn resolve_pending_on_miss(&mut self, set: u64, miss_line: LineAddr, now: Cycle) {
        let Some(p) = self.pending_pf[set as usize] else {
            return;
        };
        let correct = p.line == miss_line;
        let class = match p.state {
            PfState::Queued => {
                self.pf_queue.cancel_line(p.line);
                Timeliness::NotStarted
            }
            PfState::Discarded => Timeliness::Discarded,
            PfState::Issued(arrive) => {
                if arrive > now {
                    Timeliness::StartedNotTimely
                } else {
                    // Arrival pending processing this very cycle; treat as
                    // arrived-in-time.
                    Timeliness::Timely
                }
            }
            PfState::Arrived {
                displaced,
                displaced_missed,
            } => {
                if displaced == Some(miss_line) || displaced_missed {
                    Timeliness::Early
                } else {
                    Timeliness::Timely
                }
            }
        };
        self.pending_pf[set as usize] = None;
        self.timeliness.record(correct, class);
    }

    /// Accepts a prefetch request from a predictor.
    fn enqueue_prefetch(&mut self, req: PrefetchRequest, now: Cycle) {
        if self.cfg.predict_only {
            return;
        }
        let geom = *self.l1d.geometry();
        let addr = geom.addr_of_line(req.line);
        // Drop if already cached or already being fetched.
        if self.l1d.peek(addr).is_some()
            || self.demand_mshrs.contains(req.line)
            || self.prefetch_mshrs.contains(req.line)
        {
            self.stats.pf_redundant += 1;
            return;
        }
        let set = geom.index_of_line(req.line) as usize;
        // One pending prefetch per set: keep the older one.
        if self.pending_pf[set].is_some() {
            self.stats.pf_redundant += 1;
            return;
        }
        self.stats.pf_enqueued += 1;
        let deadline = req
            .need_in_ticks
            .map(|t| now + self.ticker.cycles(t as u64));
        self.pending_pf[set] = Some(PendingPf {
            line: req.line,
            state: PfState::Queued,
            deadline,
        });
        if let Some(dropped) = self.pf_queue.push(req) {
            let dset = geom.index_of_line(dropped.line) as usize;
            if let Some(dp) = self.pending_pf[dset].as_mut() {
                if dp.line == dropped.line && dp.state == PfState::Queued {
                    dp.state = PfState::Discarded;
                }
            }
            self.trace_pf(TraceKind::PfDiscard, dropped.line, now, 0);
        }
    }

    /// Issues queued prefetches while the L1/L2 bus backlog is low and
    /// prefetch MSHRs are available (demand priority). The backlog bound is
    /// one L2 round-trip: beyond that, demand traffic owns the bus.
    fn issue_prefetches(&mut self, now: Cycle) {
        let geom = *self.l1d.geometry();
        let (max_backlog, max_mem_backlog, urgency_window) = pf_gate_limits(&self.cfg.machine);
        loop {
            if self.pf_queue.is_empty() {
                return;
            }
            if self.l1l2_bus.backlog(now) > max_backlog
                || self.l2mem_bus.backlog(now) > max_mem_backlog
            {
                return;
            }
            // Slack scheduling (§5.2.2): while the bus is doing anything at
            // all, hold back prefetches whose deadline is still far out;
            // they will go out in a genuinely idle window instead of
            // queueing in front of near-future demand.
            if self.cfg.slack_prefetch {
                let head_deadline = self
                    .pf_queue
                    .peek()
                    .and_then(|r| geom_deadline(&self.pending_pf, geom, r));
                let urgent = match head_deadline {
                    Some(d) => d.since(now) <= urgency_window,
                    None => true, // unknown deadline: treat as urgent
                };
                if !urgent && (self.l1l2_bus.backlog(now) > 0 || self.l2mem_bus.backlog(now) > 0) {
                    return;
                }
            }
            if self.prefetch_mshrs.next_free(now).is_some() {
                return; // file full
            }
            let Some(req) = self.pf_queue.pop() else {
                return;
            };
            let set = geom.index_of_line(req.line);
            // Stale request (superseded or resolved)?
            let valid = self.pending_pf[set as usize]
                .map(|p| p.line == req.line && p.state == PfState::Queued)
                .unwrap_or(false);
            if !valid {
                continue;
            }
            let addr = geom.addr_of_line(req.line);
            let arrive = self.fetch_from_l2(addr, now, false);
            self.prefetch_mshrs.allocate(req.line, arrive);
            self.inflight_pf
                .push(Reverse((arrive.get(), req.line.get(), set)));
            let deadline = self.pending_pf[set as usize].and_then(|p| p.deadline);
            self.pending_pf[set as usize] = Some(PendingPf {
                line: req.line,
                state: PfState::Issued(arrive),
                deadline,
            });
            self.stats.pf_issued += 1;
            self.trace_pf(TraceKind::PfFire, req.line, now, arrive.get());
        }
    }

    /// Arrival stage: fills prefetches whose data has arrived by `now`.
    /// Each accepted arrival is an Evict/Fill event pair with
    /// `demand: false`; arrivals that would displace a likely-live
    /// resident (§5.1) are dropped instead.
    fn stage_prefetch_arrival(&mut self, now: Cycle) {
        let geom = *self.l1d.geometry();
        while let Some(&Reverse((arrive, line_raw, set))) = self.inflight_pf.peek() {
            if arrive > now.get() {
                break;
            }
            self.inflight_pf.pop();
            let line = LineAddr::new(line_raw);
            let at = Cycle::new(arrive);
            self.prefetch_mshrs.remove(line);
            // Superseded by a demand fetch (tag already present) or pending
            // state cleared: nothing to fill.
            let addr = geom.addr_of_line(line);
            if self.l1d.peek(addr).is_some() {
                continue;
            }
            // §5.1: "prefetches that arrive into the cache before the
            // resident block is dead will induce extra cache misses."
            // The arrival consults the paper's own live-time dead-block
            // prediction: the resident is presumed dead once its
            // generation age exceeds twice its previous live time; an
            // earlier arrival is dropped rather than displacing a
            // likely-live block. (Single-use blocks — previous live time
            // zero — are dead the moment they are filled.)
            let set0 = geom.index_of_line(line) as usize;
            // The frame the fill will actually use (LRU way for
            // associative L1s).
            let (target_frame, _) = self.l1d.peek_victim(addr);
            if let (Some(resident), Some(start)) = (
                self.obs.gens.plane.resident(target_frame),
                self.obs.gens.plane.generation_start(target_frame),
            ) {
                let prev_lt = self
                    .obs
                    .gens
                    .plane
                    .line_meta(resident)
                    .filter(|h| h.completed)
                    .map(|h| h.last_live_time)
                    .unwrap_or(0);
                let dead_point = 2 * prev_lt;
                if at.since(start) < dead_point {
                    self.stats.pf_dropped_live += 1;
                    self.trace_pf(TraceKind::PfDiscard, line, at, 1);
                    if self.pending_pf[set0]
                        .map(|p| p.line == line)
                        .unwrap_or(false)
                    {
                        self.pending_pf[set0] = None;
                    }
                    continue;
                }
            }
            let still_pending = self.pending_pf[set as usize]
                .map(|p| p.line == line && matches!(p.state, PfState::Issued(_)))
                .unwrap_or(false);
            {
                let (victim_frame, resident) = self.l1d.peek_victim(addr);
                if resident.is_some() {
                    self.writeback_if_dirty(victim_frame, at);
                }
            }
            if self.checker.is_some() {
                self.obs.oracle.evt = TapEvent::default();
            }
            let (frame, evicted) = self.l1d.fill(addr);
            if let Some(ev) = evicted {
                self.evict_event(frame, ev, at, EvictCause::Prefetch, None);
            }
            if self.checker.is_some() {
                let (closed, admitted) =
                    (self.obs.oracle.evt.closed, self.obs.oracle.evt.vc_admitted);
                let mut chk = self.checker.take().expect("checked above");
                chk.check_prefetch_fill(&self.l1d, line, evicted, closed, admitted);
                self.checker = Some(chk);
            }
            self.stats.pf_fills += 1;
            self.trace_pf(TraceKind::PfArrival, line, at, frame as u64);
            // A prefetch fill is a generation start, and trains the
            // prefetcher exactly like a demand fill (enabling chained
            // prefetches), but carries no referencing PC.
            self.fill_event(frame, line, None, false, evicted, at);
            if still_pending {
                let deadline = self.pending_pf[set as usize].and_then(|p| p.deadline);
                self.pending_pf[set as usize] = Some(PendingPf {
                    line,
                    deadline,
                    state: PfState::Arrived {
                        displaced: evicted,
                        displaced_missed: false,
                    },
                });
            }
        }
        // Early detection: a demand miss to a displaced line is recorded in
        // `resolve_pending_on_miss`; nothing to do here.
    }

    // -- event-log API ------------------------------------------------------

    /// Starts recording the pipeline event stream (for tests and
    /// debugging). Clears any previously recorded events.
    pub fn record_events(&mut self) {
        self.event_log = Some(Vec::new());
    }

    /// Takes the recorded event stream, leaving recording enabled.
    ///
    /// # Panics
    ///
    /// Panics if [`record_events`](Self::record_events) was never called.
    pub fn take_events(&mut self) -> Vec<PipelineEvent> {
        let log = self
            .event_log
            .as_mut()
            .expect("call record_events() before take_events()");
        std::mem::take(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetchMode, SystemConfig};
    use timekeeping::{Addr, StrideConfig};

    fn mref(addr: u64) -> MemRef {
        MemRef::new(Addr::new(addr), Pc::new(0x1000 + addr % 97))
    }

    fn line_of(sys: &MemorySystem, addr: u64) -> LineAddr {
        sys.config().machine.l1d.line_of(Addr::new(addr))
    }

    /// A demand miss to an empty set emits exactly Miss then Fill.
    #[test]
    fn cold_miss_emits_miss_then_demand_fill() {
        let mut sys = MemorySystem::new(SystemConfig::base());
        sys.record_events();
        sys.access(&mref(0x1000), false, Cycle::new(0));
        let a = line_of(&sys, 0x1000);
        let events = sys.take_events();
        assert_eq!(events.len(), 2, "unexpected stream: {events:?}");
        assert_eq!(
            events[0],
            PipelineEvent::Miss {
                line: a,
                kind: MissKind::Cold
            }
        );
        assert!(
            matches!(events[1], PipelineEvent::Fill { line, demand: true, .. } if line == a),
            "unexpected stream: {events:?}"
        );
    }

    /// A conflict miss closes the displaced generation *before* the new
    /// fill, and names the evicted line correctly.
    #[test]
    fn conflict_miss_emits_evict_before_fill_with_victim_identity() {
        let mut sys = MemorySystem::new(SystemConfig::base());
        sys.access(&mref(0x1000), false, Cycle::new(0));
        let a = line_of(&sys, 0x1000);
        // Same set, different tag: one L1 size (32 KB) away in a
        // direct-mapped cache.
        let conflicting = 0x1000 + 32 * 1024;
        sys.record_events();
        sys.access(&mref(conflicting), false, Cycle::new(100));
        let b = line_of(&sys, conflicting);
        let events = sys.take_events();
        assert_eq!(events.len(), 3, "unexpected stream: {events:?}");
        assert!(matches!(events[0], PipelineEvent::Miss { line, .. } if line == b));
        let PipelineEvent::Evict { line, frame, cause } = events[1] else {
            panic!("expected Evict second, got {events:?}");
        };
        assert_eq!(line, a, "evicted-line identity");
        assert_eq!(cause, EvictCause::Demand);
        let PipelineEvent::Fill {
            line: fline,
            frame: fframe,
            demand,
        } = events[2]
        else {
            panic!("expected Fill last, got {events:?}");
        };
        assert_eq!(fline, b);
        assert_eq!(fframe, frame, "fill lands in the vacated frame");
        assert!(demand);
    }

    /// A hit emits exactly one Hit event naming the resident frame.
    #[test]
    fn hit_emits_single_hit_event() {
        let mut sys = MemorySystem::new(SystemConfig::base());
        sys.access(&mref(0x1000), false, Cycle::new(0));
        sys.record_events();
        sys.access(&mref(0x1000), false, Cycle::new(50));
        let a = line_of(&sys, 0x1000);
        let events = sys.take_events();
        assert_eq!(events.len(), 1, "unexpected stream: {events:?}");
        assert!(matches!(events[0], PipelineEvent::Hit { line, .. } if line == a));
    }

    /// A decay refetch is a Flush-cause Evict (at the switch-off point)
    /// followed by a demand Fill of the same line — with no Miss event,
    /// because decay misses are invisible to the program-level model.
    #[test]
    fn decay_refetch_emits_flush_evict_then_refill() {
        let mut sys = MemorySystem::new(SystemConfig::with_decay(8_192));
        sys.access(&mref(0x1000), false, Cycle::new(0));
        let a = line_of(&sys, 0x1000);
        sys.record_events();
        sys.access(&mref(0x1000), false, Cycle::new(50_000));
        let events = sys.take_events();
        assert_eq!(events.len(), 2, "unexpected stream: {events:?}");
        assert!(
            matches!(events[0], PipelineEvent::Evict { line, cause: EvictCause::Flush, .. } if line == a),
            "decay must close the generation with Flush cause: {events:?}"
        );
        assert!(
            matches!(events[1], PipelineEvent::Fill { line, demand: true, .. } if line == a),
            "decay must refill the same line: {events:?}"
        );
        assert_eq!(sys.stats().decay_misses, 1);
    }

    /// A prefetch arrival appears in the stream as a non-demand Fill
    /// (with a Prefetch-cause Evict first when it displaces a line).
    #[test]
    fn prefetch_arrival_emits_non_demand_fill() {
        let mut sys = MemorySystem::new(SystemConfig::with_prefetch(PrefetchMode::Stride(
            StrideConfig::CLASSIC,
        )));
        sys.record_events();
        let mut now = 0u64;
        // A steady one-line stride from a single PC trains the table and
        // triggers prefetches; generous spacing lets them arrive.
        for i in 0..32u64 {
            sys.advance(Cycle::new(now));
            let r = MemRef::new(Addr::new(0x4_0000 + i * 32), Pc::new(0x42));
            sys.access(&r, false, Cycle::new(now));
            now += 400;
        }
        sys.advance(Cycle::new(now));
        assert!(sys.stats().pf_fills > 0, "stride prefetches never landed");
        let events = sys.take_events();
        let pf_fills: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, PipelineEvent::Fill { demand: false, .. }))
            .collect();
        assert_eq!(
            pf_fills.len() as u64,
            sys.stats().pf_fills,
            "every prefetch fill must be announced as a non-demand Fill"
        );
        // Prefetched lines are ahead of the demand stream: each
        // prefetch-filled line must not have been demand-missed before.
        for e in &events {
            if let PipelineEvent::Fill {
                line,
                demand: false,
                ..
            } = e
            {
                let demanded_before = events
                    .iter()
                    .take_while(|x| **x != *e)
                    .any(|x| matches!(x, PipelineEvent::Miss { line: m, .. } if m == line));
                assert!(!demanded_before, "prefetch fill for an already-missed line");
            }
        }
    }

    /// The observer scratchpad hands the closed generation to the
    /// victim filter: a swap-free eviction with a victim cache
    /// configured publishes an admission decision.
    #[test]
    fn evict_event_reaches_victim_admission() {
        let mut sys = MemorySystem::new(SystemConfig::with_victim(
            crate::config::VictimMode::Unfiltered,
        ));
        sys.access(&mref(0x1000), false, Cycle::new(0));
        sys.access(&mref(0x1000 + 32 * 1024), false, Cycle::new(100));
        let stats = sys.victim_stats().expect("victim configured");
        assert_eq!(stats.offered, 1, "eviction must be offered to the VC");
        assert_eq!(stats.admitted, 1, "unfiltered VC admits everything");
    }
}
