//! Multi-core MESI-coherent hierarchy: N timing cores with private L1s
//! and victim caches over a shared inclusive L2.
//!
//! This module generalizes the single-core machine of
//! [`crate::hierarchy`] to `--cores=N` (see [`SystemConfig::cores`]).
//! Each core keeps the full single-core timekeeping plane — per-frame
//! generation tracking, ground-truth miss classification, metric
//! distributions, optional victim cache and predict-only timekeeping
//! prefetcher scoring — while a snooping MESI protocol arbitrated by a
//! [`SnoopBus`] keeps the private L1s coherent:
//!
//! * **BusRd** (read miss): data comes from the owning core's modified
//!   copy (a cache-to-cache transfer that also flushes the dirty data to
//!   the L2), from the shared L2, or from memory. Remaining M/E copies
//!   degrade to S.
//! * **BusRdX** (write miss) and **upgrade** (write hit on a shared
//!   copy): every other copy — L1 *and* victim cache — is invalidated.
//! * **Inclusion**: an L2 eviction back-invalidates both L1-sized halves
//!   of the departing L2 block in every core.
//!
//! The timekeeping consequence is a second way for a generation to die:
//! [`EvictCause::Invalidate`] (coherence or inclusion kill) versus
//! [`EvictCause::Demand`] (replacement). [`CoherenceStats`] splits
//! live/dead time along that axis, which is what the `mesi_compare`
//! report plots.
//!
//! Determinism and clock hopping: cores are serviced in (cycle,
//! core-index) order by the driver loop in [`MultiCoreSystem::run`], so
//! the global bus-transaction order is a pure function of the workload.
//! The hierarchy schedules no background events (multi-core runs reject
//! issuing prefetchers and decay at `build()`, and predict-only ticks
//! are synchronized lazily at access time), so the event-driven clock
//! hop is provably equivalent to per-cycle stepping — the
//! `step_equivalence` suite checks bit-identity over multiprogrammed
//! mixes.
//!
//! Predict-only scoring note: at `cores > 1` only the timekeeping
//! prefetcher's predictor is scored; other predictor families
//! (`Dbcp`/`Markov`/`Stride`) pass validation with `predict_only` but
//! record no address predictions here.

use timekeeping::snapshot::{Json, Snapshot, SnapshotError};
use timekeeping::{
    AdaptiveDeadTimeFilter, Addr, CacheGeometry, CollinsFilter, Cycle, DeadTimeFilter, EvictCause,
    EvictionInfo, FullyAssocShadow, GenerationRecord, GenerationTracker, GlobalTicker, LineAddr,
    LineMap, LineSet, MetricsCollector, MissBreakdown, MissKind, NoFilter, PrefetchRequest,
    ReloadIntervalFilter, TimekeepingPrefetcher, VictimCache, VictimStats,
};

use crate::bus::{Bus, SnoopBus};
use crate::cache::{ProbeResult, SetAssocCache};
use crate::config::{PrefetchMode, SystemConfig, VictimMode};
use crate::core::CoreStats;
use crate::dram::MemBackend;
use crate::hierarchy::HierarchyStats;
use crate::obs::{self, TraceObserver};
use crate::pipeline::{
    C2cEvent, CoherenceKind, InvalidateEvent, MemObserver, Reactions, SnoopEvent, VictimUnit,
};
use crate::system::RunResult;
use crate::trace::{Instr, Workload};

// ------------------------------------------------------------------- MESI

/// Per-frame MESI coherence state of a private L1 line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mesi {
    /// No valid copy (the frame is empty or was invalidated).
    Invalid,
    /// A clean copy that other caches may also hold.
    Shared,
    /// The only cached copy, still clean — a store upgrades it to
    /// [`Mesi::Modified`] silently (no bus transaction).
    Exclusive,
    /// The only cached copy, dirty; supplied cache-to-cache on a remote
    /// miss.
    Modified,
}

// ------------------------------------------------------- coherence stats

/// Aggregate coherence-plane counters of a multi-core run.
///
/// The generation-death split (`evict_*` vs `inval_*`) is the module's
/// reason to exist: it separates replacement-death timekeeping (the
/// single-core paper's subject) from invalidation-death, where another
/// core's write ends a generation the local replacement policy never
/// chose to end. Flush-closed generations at end of run are counted in
/// neither bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// BusRd transactions granted (read misses).
    pub bus_reads: u64,
    /// BusRdX transactions granted (write misses).
    pub bus_read_exclusives: u64,
    /// Upgrade transactions granted (write hits on shared copies).
    pub bus_upgrades: u64,
    /// Misses supplied cache-to-cache from a modified remote copy.
    pub c2c_transfers: u64,
    /// L1/VC copies killed by BusRdX or upgrade transactions.
    pub coherence_invalidations: u64,
    /// L1/VC copies recalled by inclusive-L2 evictions.
    pub inclusion_invalidations: u64,
    /// Of all invalidations, the copies that lived in a victim cache.
    pub vc_invalidations: u64,
    /// Misses to lines this core previously lost to an invalidation —
    /// the coherence analogue of a conflict miss.
    pub inval_refetches: u64,
    /// Generations ended by replacement (demand eviction).
    pub evict_deaths: u64,
    /// Total live time of replacement-ended generations.
    pub evict_live_time: u64,
    /// Total dead time of replacement-ended generations.
    pub evict_dead_time: u64,
    /// Generations ended by invalidation.
    pub inval_deaths: u64,
    /// Total live time of invalidation-ended generations.
    pub inval_live_time: u64,
    /// Total dead time of invalidation-ended generations.
    pub inval_dead_time: u64,
}

impl CoherenceStats {
    /// All bus transactions granted.
    pub fn transactions(&self) -> u64 {
        self.bus_reads + self.bus_read_exclusives + self.bus_upgrades
    }

    /// Fraction of generation deaths caused by invalidation.
    pub fn invalidation_death_fraction(&self) -> Option<f64> {
        let total = self.evict_deaths + self.inval_deaths;
        (total > 0).then(|| self.inval_deaths as f64 / total as f64)
    }

    /// Mean dead time of replacement-ended generations.
    pub fn mean_evict_dead_time(&self) -> Option<f64> {
        (self.evict_deaths > 0).then(|| self.evict_dead_time as f64 / self.evict_deaths as f64)
    }

    /// Mean dead time of invalidation-ended generations.
    pub fn mean_inval_dead_time(&self) -> Option<f64> {
        (self.inval_deaths > 0).then(|| self.inval_dead_time as f64 / self.inval_deaths as f64)
    }

    /// Mean live time of invalidation-ended generations.
    pub fn mean_inval_live_time(&self) -> Option<f64> {
        (self.inval_deaths > 0).then(|| self.inval_live_time as f64 / self.inval_deaths as f64)
    }
}

impl Snapshot for CoherenceStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("bus_reads", Json::U64(self.bus_reads)),
            ("bus_read_exclusives", Json::U64(self.bus_read_exclusives)),
            ("bus_upgrades", Json::U64(self.bus_upgrades)),
            ("c2c_transfers", Json::U64(self.c2c_transfers)),
            (
                "coherence_invalidations",
                Json::U64(self.coherence_invalidations),
            ),
            (
                "inclusion_invalidations",
                Json::U64(self.inclusion_invalidations),
            ),
            ("vc_invalidations", Json::U64(self.vc_invalidations)),
            ("inval_refetches", Json::U64(self.inval_refetches)),
            ("evict_deaths", Json::U64(self.evict_deaths)),
            ("evict_live_time", Json::U64(self.evict_live_time)),
            ("evict_dead_time", Json::U64(self.evict_dead_time)),
            ("inval_deaths", Json::U64(self.inval_deaths)),
            ("inval_live_time", Json::U64(self.inval_live_time)),
            ("inval_dead_time", Json::U64(self.inval_dead_time)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, SnapshotError> {
        Ok(CoherenceStats {
            bus_reads: v.u64_field("bus_reads")?,
            bus_read_exclusives: v.u64_field("bus_read_exclusives")?,
            bus_upgrades: v.u64_field("bus_upgrades")?,
            c2c_transfers: v.u64_field("c2c_transfers")?,
            coherence_invalidations: v.u64_field("coherence_invalidations")?,
            inclusion_invalidations: v.u64_field("inclusion_invalidations")?,
            vc_invalidations: v.u64_field("vc_invalidations")?,
            inval_refetches: v.u64_field("inval_refetches")?,
            evict_deaths: v.u64_field("evict_deaths")?,
            evict_live_time: v.u64_field("evict_live_time")?,
            evict_dead_time: v.u64_field("evict_dead_time")?,
            inval_deaths: v.u64_field("inval_deaths")?,
            inval_live_time: v.u64_field("inval_live_time")?,
            inval_dead_time: v.u64_field("inval_dead_time")?,
        })
    }
}

// ---------------------------------------------------------- per-core plane

/// Predict-only timekeeping-prefetcher scoring state of one core.
#[derive(Debug)]
struct TkPlane {
    pred: TimekeepingPrefetcher,
    /// Outstanding address prediction per frame, scored at the next fill
    /// (mirrors the single-core `PredictorObserver`).
    addr_pred: Vec<Option<u64>>,
    /// Cycle up to which global ticks have been applied.
    last_sync: Cycle,
    /// Reusable buffer for tick-fired requests (discarded: predict-only).
    scratch: Vec<PrefetchRequest>,
}

/// One core's private slice of the hierarchy: L1 tags, MESI states,
/// generation tracking, classification shadow, metrics, optional victim
/// cache, optional predict-only prefetcher scoring.
#[derive(Debug)]
struct CorePlane {
    l1: SetAssocCache,
    /// MESI state per L1 frame (parallel to the tag array).
    mesi: Vec<Mesi>,
    gens: GenerationTracker,
    shadow: FullyAssocShadow,
    metrics: MetricsCollector,
    victim: Option<VictimUnit>,
    tk: Option<TkPlane>,
    /// In-flight demand fills: line → data-ready cycle. Tags allocate at
    /// miss time (as in the single-core model), so a subsequent access
    /// to an in-flight line hits in the tag array; this map supplies the
    /// true data-ready time for that hit-under-miss case.
    pending: LineMap<u64>,
    /// Lines this core lost to an invalidation and has not refetched yet.
    inval_lost: LineSet,
    stats: HierarchyStats,
}

/// What [`CorePlane::kill_copy`] found and did.
struct KillOutcome {
    /// The L1 frame that held the copy (`None` = victim-cache copy).
    frame: Option<usize>,
    /// Whether the killed L1 copy was modified (needs a flush).
    was_modified: bool,
    /// The generation the invalidation closed, if one was open.
    rec: Option<GenerationRecord>,
}

impl CorePlane {
    fn new(cfg: &SystemConfig, ticker: GlobalTicker) -> Self {
        let m = &cfg.machine;
        let num_frames = m.l1d.num_frames() as usize;
        let num_sets = m.l1d.num_sets() as usize;
        let victim = match cfg.victim {
            VictimMode::None => None,
            VictimMode::Unfiltered => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(NoFilter),
                swap_fills: 0,
            }),
            VictimMode::Collins => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(CollinsFilter::new(num_sets)),
                swap_fills: 0,
            }),
            VictimMode::DeadTime { threshold } => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(DeadTimeFilter::new(threshold, ticker)),
                swap_fills: 0,
            }),
            VictimMode::AdaptiveDeadTime => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(AdaptiveDeadTimeFilter::new(ticker, m.victim_entries)),
                swap_fills: 0,
            }),
            VictimMode::ReloadInterval { threshold } => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(ReloadIntervalFilter::new(threshold)),
                swap_fills: 0,
            }),
        };
        let tk = match cfg.prefetch {
            PrefetchMode::Timekeeping(tcfg) => Some(TkPlane {
                pred: TimekeepingPrefetcher::new(m.l1d, tcfg, ticker),
                addr_pred: vec![None; num_frames],
                last_sync: Cycle::ZERO,
                scratch: Vec::with_capacity(num_frames),
            }),
            _ => None,
        };
        CorePlane {
            l1: SetAssocCache::new(m.l1d),
            mesi: vec![Mesi::Invalid; num_frames],
            gens: GenerationTracker::new(num_frames),
            shadow: FullyAssocShadow::new(num_frames),
            metrics: MetricsCollector::new(),
            victim,
            tk,
            pending: LineMap::default(),
            inval_lost: LineSet::default(),
            stats: HierarchyStats::default(),
        }
    }

    /// Applies every global tick boundary crossed since the last access
    /// to the predict-only prefetcher (fired requests are discarded).
    /// Lazy, cycle-count-based synchronization keeps hop and per-cycle
    /// stepping bit-identical.
    fn sync_ticks(&mut self, now: Cycle, ticker: &GlobalTicker) {
        if let Some(tk) = &mut self.tk {
            let n = ticker.ticks_between(tk.last_sync, now);
            for _ in 0..n {
                tk.scratch.clear();
                tk.pred.tick_into(&mut tk.scratch);
            }
            tk.scratch.clear();
            tk.last_sync = now;
        }
    }

    /// Ends the generation in `frame` at `at`, feeding the metrics plane.
    fn close_generation(
        &mut self,
        frame: usize,
        at: Cycle,
        cause: EvictCause,
        collect: bool,
    ) -> Option<GenerationRecord> {
        let rec = self.gens.evict(frame, at, cause)?;
        if collect {
            self.metrics.on_generation(&rec);
        }
        Some(rec)
    }

    /// Starts a generation in `frame` and scores/updates the predict-only
    /// prefetcher exactly as the single-core `PredictorObserver` does.
    fn fill_bookkeeping(
        &mut self,
        frame: usize,
        line: LineAddr,
        now: Cycle,
        kind: MissKind,
        collect: bool,
        geom: &CacheGeometry,
    ) {
        let history = self.gens.line_meta(line).copied();
        let reload = self.gens.fill(frame, line, now);
        if collect {
            self.metrics.on_miss(kind, history.as_ref(), reload);
        }
        if let Some(tk) = &mut self.tk {
            let set = geom.index_of_line(line);
            let tag = geom.tag_of_line(line);
            if let Some(pred) = tk.addr_pred[frame].take() {
                self.stats.addr_predictions += 1;
                if pred == tag {
                    self.stats.addr_correct += 1;
                }
            }
            tk.pred.on_fill(frame, set, tag);
            tk.addr_pred[frame] = tk.pred.predicted_next(frame);
        }
    }

    /// Kills this core's copy of `line` (L1 frame or victim-cache entry),
    /// closing the open generation with [`EvictCause::Invalidate`].
    /// Returns `None` if the core holds no copy.
    fn kill_copy(
        &mut self,
        line: LineAddr,
        addr: Addr,
        at: Cycle,
        collect: bool,
    ) -> Option<KillOutcome> {
        if let Some(frame) = self.l1.peek(addr) {
            let was_modified = self.mesi[frame] == Mesi::Modified;
            self.l1.invalidate(frame);
            self.mesi[frame] = Mesi::Invalid;
            let rec = self.close_generation(frame, at, EvictCause::Invalidate, collect);
            self.inval_lost.insert(line.get());
            return Some(KillOutcome {
                frame: Some(frame),
                was_modified,
                rec,
            });
        }
        if let Some(v) = &mut self.victim {
            if v.cache.invalidate(line) {
                self.inval_lost.insert(line.get());
                return Some(KillOutcome {
                    frame: None,
                    was_modified: false,
                    rec: None,
                });
            }
        }
        None
    }
}

// --------------------------------------------------------------- checker

/// Hierarchy level that serviced a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServiceLevel {
    L1,
    VictimCache,
    CacheToCache,
    L2,
    Memory,
}

/// What the timing model reports to the functional mirror per access.
#[derive(Debug)]
struct AccessReport {
    core: usize,
    line: LineAddr,
    is_store: bool,
    level: ServiceLevel,
    /// L1 line displaced by the fill, with the victim-filter admission
    /// decision (policy input the mirror cannot recompute).
    l1_victim: Option<(LineAddr, bool)>,
    /// L2 line evicted by a memory fill.
    l2_victim: Option<LineAddr>,
    /// Copies killed by this access's coherence transaction.
    invalidated: Vec<(usize, LineAddr)>,
}

/// A timing-free functional mirror of the coherent hierarchy.
///
/// Maintains its own per-core L1 LRU lists with MESI states, victim
/// buffers, and shared-L2 LRU lists — structures deliberately distinct
/// from the simulator's stamp-based tag arrays — and replays every
/// access in the simulator's global order, asserting that service level,
/// replacement victims at both cache levels, and coherence-invalidation
/// sets all agree. Any divergence panics with a diagnostic report. The
/// only simulator fact it consumes without rederiving is the
/// victim-filter admission bit (a policy decision, not cache state).
#[derive(Debug)]
pub struct CoherentChecker {
    l1_geom: CacheGeometry,
    l2_geom: CacheGeometry,
    vc_entries: usize,
    has_vc: bool,
    /// `[core][set]`, front = MRU: (L1 line, state).
    l1: Vec<Vec<Vec<(u64, Mesi)>>>,
    /// `[core]`, front = MRU.
    vc: Vec<Vec<u64>>,
    /// `[set]`, front = MRU: L2 lines.
    l2: Vec<Vec<u64>>,
    accesses: u64,
}

impl CoherentChecker {
    fn new(cfg: &SystemConfig) -> Self {
        let m = &cfg.machine;
        let cores = cfg.cores as usize;
        CoherentChecker {
            l1_geom: m.l1d,
            l2_geom: m.l2,
            vc_entries: m.victim_entries,
            has_vc: cfg.victim != VictimMode::None,
            l1: vec![vec![Vec::new(); m.l1d.num_sets() as usize]; cores],
            vc: vec![Vec::new(); cores],
            l2: vec![Vec::new(); m.l2.num_sets() as usize],
            accesses: 0,
        }
    }

    /// Accesses verified so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    fn fail(&self, r: &AccessReport, what: &str, detail: String) -> ! {
        panic!(
            "coherent-oracle divergence at access #{}: {what}\n  core {} {} line {:#x}\n  {detail}",
            self.accesses,
            r.core,
            if r.is_store { "store" } else { "load" },
            r.line.get(),
            detail = detail
        );
    }

    /// Positions of `line` in a core's set list, if present.
    fn l1_pos(&self, core: usize, set: usize, line: u64) -> Option<usize> {
        self.l1[core][set].iter().position(|&(l, _)| l == line)
    }

    fn remove_copy_everywhere(&mut self, except: usize, set: usize, line: u64) -> Vec<usize> {
        let mut killed = Vec::new();
        for c in 0..self.l1.len() {
            if c == except {
                continue;
            }
            let mut hit = false;
            if let Some(p) = self.l1_pos(c, set, line) {
                self.l1[c][set].remove(p);
                hit = true;
            }
            if let Some(p) = self.vc[c].iter().position(|&l| l == line) {
                self.vc[c].remove(p);
                hit = true;
            }
            if hit {
                killed.push(c);
            }
        }
        killed
    }

    /// Inserts into a core's victim buffer with LRU drop at capacity.
    fn vc_insert(&mut self, core: usize, line: u64) {
        if let Some(p) = self.vc[core].iter().position(|&l| l == line) {
            self.vc[core].remove(p);
        } else if self.vc[core].len() == self.vc_entries {
            self.vc[core].pop();
        }
        self.vc[core].insert(0, line);
    }

    /// Replays one access against the mirror and asserts agreement.
    fn verify(&mut self, r: &AccessReport) {
        let line = r.line.get();
        let set = self.l1_geom.index_of_line(r.line) as usize;
        let addr = self.l1_geom.addr_of_line(r.line);
        let l2_line = self.l2_geom.line_of(addr).get();
        let l2_set = self.l2_geom.index_of_line(self.l2_geom.line_of(addr)) as usize;

        // 1. Independently determine the service level.
        let level = if self.l1_pos(r.core, set, line).is_some() {
            ServiceLevel::L1
        } else if self.has_vc && self.vc[r.core].contains(&line) {
            ServiceLevel::VictimCache
        } else if (0..self.l1.len()).any(|c| {
            c != r.core
                && self
                    .l1_pos(c, set, line)
                    .is_some_and(|p| self.l1[c][set][p].1 == Mesi::Modified)
        }) {
            ServiceLevel::CacheToCache
        } else if self.l2[l2_set].contains(&l2_line) {
            ServiceLevel::L2
        } else {
            ServiceLevel::Memory
        };
        if level != r.level {
            self.fail(
                r,
                "service level mismatch",
                format!(
                    "oracle expected {level:?}, timing model reported {:?}",
                    r.level
                ),
            );
        }

        // 2. Independently determine the coherence-invalidation set.
        let mut expected: Vec<(usize, u64)> = if r.is_store {
            (0..self.l1.len())
                .filter(|&c| {
                    c != r.core
                        && (self.l1_pos(c, set, line).is_some() || self.vc[c].contains(&line))
                })
                .map(|c| (c, line))
                .collect()
        } else {
            Vec::new()
        };
        expected.sort_unstable();
        let mut got: Vec<(usize, u64)> = r.invalidated.iter().map(|&(c, l)| (c, l.get())).collect();
        got.sort_unstable();
        if expected != got {
            self.fail(
                r,
                "invalidation set mismatch",
                format!("oracle expected {expected:?}, timing model reported {got:?}"),
            );
        }

        // 3. Apply the transition.
        let new_state = |mirror: &Self| {
            if r.is_store {
                Mesi::Modified
            } else if (0..mirror.l1.len()).any(|c| {
                c != r.core
                    && (mirror.l1_pos(c, set, line).is_some() || mirror.vc[c].contains(&line))
            }) {
                Mesi::Shared
            } else {
                Mesi::Exclusive
            }
        };
        match level {
            ServiceLevel::L1 => {
                let p = self.l1_pos(r.core, set, line).expect("level checked");
                let (l, mut st) = self.l1[r.core][set].remove(p);
                if r.is_store {
                    self.remove_copy_everywhere(r.core, set, line);
                    st = Mesi::Modified;
                }
                self.l1[r.core][set].insert(0, (l, st));
            }
            ServiceLevel::VictimCache => {
                let p = self.vc[r.core].iter().position(|&l| l == line).unwrap();
                self.vc[r.core].remove(p);
                self.check_l1_victim(r, set, true);
                if r.is_store {
                    self.remove_copy_everywhere(r.core, set, line);
                }
                let st = new_state(self);
                self.l1[r.core][set].insert(0, (line, st));
            }
            ServiceLevel::CacheToCache | ServiceLevel::L2 | ServiceLevel::Memory => {
                self.check_l1_victim(r, set, false);
                if r.is_store {
                    self.remove_copy_everywhere(r.core, set, line);
                } else {
                    // BusRd: remaining M/E copies degrade to Shared.
                    for c in 0..self.l1.len() {
                        if c == r.core {
                            continue;
                        }
                        if let Some(p) = self.l1_pos(c, set, line) {
                            self.l1[c][set][p].1 = Mesi::Shared;
                        }
                    }
                }
                if level == ServiceLevel::Memory {
                    let evicted = (self.l2[l2_set].len() == self.l2_geom.assoc() as usize)
                        .then(|| *self.l2[l2_set].last().expect("full set is nonempty"));
                    if evicted != r.l2_victim.map(|l| l.get()) {
                        self.fail(
                            r,
                            "L2 replacement victim mismatch",
                            format!(
                                "oracle expected {evicted:?}, timing model reported {:?}",
                                r.l2_victim.map(|l| l.get())
                            ),
                        );
                    }
                    if let Some(e2) = evicted {
                        self.l2[l2_set].pop();
                        self.back_invalidate(e2);
                    }
                    self.l2[l2_set].insert(0, l2_line);
                } else {
                    // The transaction touched the shared L2 (LRU bump).
                    if let Some(p) = self.l2[l2_set].iter().position(|&l| l == l2_line) {
                        let l = self.l2[l2_set].remove(p);
                        self.l2[l2_set].insert(0, l);
                    } else {
                        self.fail(
                            r,
                            "inclusion violation",
                            format!("L2 line {l2_line:#x} absent while L1 copies exist"),
                        );
                    }
                }
                let st = new_state(self);
                self.l1[r.core][set].insert(0, (line, st));
            }
        }
        self.accesses += 1;
    }

    /// Checks the reported L1 replacement victim against the mirror's own
    /// LRU choice and applies the eviction (with VC insertion when
    /// admitted). `swap` marks the victim-cache swap path, where the
    /// displaced block always enters the buffer.
    fn check_l1_victim(&mut self, r: &AccessReport, set: usize, swap: bool) {
        let full = self.l1[r.core][set].len() == self.l1_geom.assoc() as usize;
        let expected = full.then(|| self.l1[r.core][set].last().expect("full set").0);
        let reported = r.l1_victim.map(|(l, _)| l.get());
        if expected != reported {
            self.fail(
                r,
                "L1 replacement victim mismatch",
                format!("oracle expected {expected:?}, timing model reported {reported:?}"),
            );
        }
        if let Some(victim) = expected {
            self.l1[r.core][set].pop();
            let admitted = swap || r.l1_victim.map(|(_, a)| a).unwrap_or(false);
            if self.has_vc && admitted {
                self.vc_insert(r.core, victim);
            }
        }
    }

    /// Recalls both L1-sized halves of an evicted L2 line from every
    /// mirror cache (inclusion).
    fn back_invalidate(&mut self, l2_line: u64) {
        let base = self.l2_geom.addr_of_line(LineAddr::new(l2_line));
        let step = self.l1_geom.block_bytes() as u64;
        let mut off = 0;
        while off < self.l2_geom.block_bytes() as u64 {
            let half = self.l1_geom.line_of(base.offset(off));
            let set = self.l1_geom.index_of_line(half) as usize;
            for c in 0..self.l1.len() {
                if let Some(p) = self.l1_pos(c, set, half.get()) {
                    self.l1[c][set].remove(p);
                }
                if let Some(p) = self.vc[c].iter().position(|&l| l == half.get()) {
                    self.vc[c].remove(p);
                }
            }
            off += step;
        }
    }
}

// ---------------------------------------------------------------- system

/// The N-core MESI-coherent memory system.
///
/// Build with [`MultiCoreSystem::new`] from a validated multi-core
/// [`SystemConfig`], then drive with [`run`](MultiCoreSystem::run) over
/// per-core instruction streams. [`crate::run_workload`] routes here
/// automatically when `cfg.cores > 1`.
#[derive(Debug)]
pub struct MultiCoreSystem {
    cfg: SystemConfig,
    ticker: GlobalTicker,
    cores: Vec<CorePlane>,
    l2: SetAssocCache,
    snoop_bus: SnoopBus,
    l2mem_bus: Bus,
    backend: Box<dyn MemBackend>,
    coh: CoherenceStats,
    trace: Option<Box<TraceObserver>>,
    checker: Option<Box<CoherentChecker>>,
    collect: bool,
    finished: bool,
}

impl MultiCoreSystem {
    /// Builds the coherent hierarchy described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores < 2` — single-core configurations run the
    /// original bit-exact hierarchy in [`crate::hierarchy`].
    pub fn new(cfg: SystemConfig) -> Self {
        assert!(
            cfg.cores >= 2,
            "MultiCoreSystem requires cores >= 2 (cores=1 runs the single-core hierarchy)"
        );
        let m = cfg.machine;
        let ticker = GlobalTicker::new(m.tick_period);
        let cores = (0..cfg.cores)
            .map(|_| CorePlane::new(&cfg, ticker))
            .collect();
        MultiCoreSystem {
            ticker,
            cfg,
            cores,
            l2: SetAssocCache::new(m.l2),
            // The snoop bus doubles as the L1↔L2 data path, so coherence
            // transactions occupy it for one block transfer each.
            snoop_bus: SnoopBus::new(m.l1l2_bus_occupancy),
            l2mem_bus: Bus::new(m.l2mem_bus_occupancy),
            #[allow(deprecated)] // Fixed-latency alias feeds the default backend
            backend: crate::dram::build_backend(cfg.memory, m.mem_latency),
            coh: CoherenceStats::default(),
            trace: obs::trace_from_global(m.l1d),
            checker: None,
            collect: cfg.collect_metrics,
            finished: false,
        }
    }

    /// Installs the coherent functional mirror ([`CoherentChecker`]):
    /// every access is replayed into a timing-free reference model and
    /// any divergence panics with a diagnostic report.
    ///
    /// # Panics
    ///
    /// Panics if the system has already performed accesses.
    pub fn install_checker(&mut self) {
        assert!(
            self.cores.iter().all(|c| c.stats.l1_accesses == 0),
            "checker must be installed before any access"
        );
        self.checker = Some(Box::new(CoherentChecker::new(&self.cfg)));
    }

    /// Whether the coherent functional mirror is installed.
    pub fn checker_active(&self) -> bool {
        self.checker.is_some()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Coherence-plane counters.
    pub fn coherence(&self) -> &CoherenceStats {
        &self.coh
    }

    /// One core's hierarchy counters.
    pub fn core_stats(&self, core: usize) -> HierarchyStats {
        self.cores[core].stats
    }

    /// Hierarchy counters summed over all cores.
    pub fn stats(&self) -> HierarchyStats {
        let mut sum = HierarchyStats::default();
        for c in &self.cores {
            add_hierarchy(&mut sum, &c.stats);
        }
        sum
    }

    fn emit_snoop(&mut self, ev: SnoopEvent) {
        if let Some(t) = self.trace.as_deref_mut() {
            let mut rx = Reactions::default();
            t.on_snoop(&ev, &mut rx);
        }
    }

    fn emit_invalidate(&mut self, ev: InvalidateEvent) {
        if let Some(t) = self.trace.as_deref_mut() {
            let mut rx = Reactions::default();
            t.on_invalidate(&ev, &mut rx);
        }
    }

    fn emit_c2c(&mut self, ev: C2cEvent) {
        if let Some(t) = self.trace.as_deref_mut() {
            let mut rx = Reactions::default();
            t.on_c2c(&ev, &mut rx);
        }
    }

    /// The core (and its L1 frame) holding a modified copy of `addr`,
    /// excluding `except`. At most one M copy can exist.
    fn m_owner(&self, except: usize, addr: Addr) -> Option<(usize, usize)> {
        for (i, p) in self.cores.iter().enumerate() {
            if i == except {
                continue;
            }
            if let Some(f) = p.l1.peek(addr) {
                if p.mesi[f] == Mesi::Modified {
                    return Some((i, f));
                }
            }
        }
        None
    }

    /// Whether any other core holds a copy of `line` (L1 or victim
    /// cache). Sharer discovery scans the actual structures — there is
    /// no directory to go stale.
    fn other_copy_exists(&self, except: usize, addr: Addr, line: LineAddr) -> bool {
        self.cores.iter().enumerate().any(|(i, p)| {
            i != except
                && (p.l1.peek(addr).is_some()
                    || p.victim.as_ref().is_some_and(|v| v.cache.contains(line)))
        })
    }

    /// Records a closed generation's death in the coherence split.
    fn record_death(&mut self, rec: &GenerationRecord) {
        match rec.cause {
            EvictCause::Demand => {
                self.coh.evict_deaths += 1;
                self.coh.evict_live_time += rec.live_time;
                self.coh.evict_dead_time += rec.dead_time;
            }
            EvictCause::Invalidate => {
                self.coh.inval_deaths += 1;
                self.coh.inval_live_time += rec.live_time;
                self.coh.inval_dead_time += rec.dead_time;
            }
            _ => {}
        }
    }

    /// Flushes a modified remote copy's data into the shared L2 (the L2
    /// holds the line by inclusion; marking it dirty stands in for the
    /// data movement in this tags-only model).
    fn flush_to_l2(&mut self, addr: Addr) {
        if let Some(f2) = self.l2.peek(addr) {
            self.l2.mark_dirty(f2);
        }
    }

    /// Invalidates every other core's copy of `line`, returning the kill
    /// list for the checker report. `inclusion` selects which counter the
    /// kills land in.
    fn invalidate_others(
        &mut self,
        except: usize,
        line: LineAddr,
        addr: Addr,
        at: Cycle,
        inclusion: bool,
    ) -> Vec<(usize, LineAddr)> {
        let collect = self.collect;
        let mut killed = Vec::new();
        for c in 0..self.cores.len() {
            if c == except {
                continue;
            }
            let Some(k) = self.cores[c].kill_copy(line, addr, at, collect) else {
                continue;
            };
            if inclusion {
                self.coh.inclusion_invalidations += 1;
            } else {
                self.coh.coherence_invalidations += 1;
            }
            if k.frame.is_none() {
                self.coh.vc_invalidations += 1;
            }
            if k.was_modified {
                // The dying modified copy's data drains to the L2.
                self.cores[c].stats.l1_writebacks += 1;
                self.flush_to_l2(addr);
            }
            if let Some(rec) = &k.rec {
                self.record_death(rec);
            }
            self.emit_invalidate(InvalidateEvent {
                line,
                owner: c as u32,
                frame: k.frame,
                at,
            });
            killed.push((c, line));
        }
        killed
    }

    /// Recalls both L1-sized halves of an evicted L2 line from every
    /// core (strict inclusion over L1 ∪ victim cache).
    fn back_invalidate(&mut self, l2_line: LineAddr, at: Cycle) {
        let l1_geom = self.cfg.machine.l1d;
        let l2_geom = self.cfg.machine.l2;
        let base = l2_geom.addr_of_line(l2_line);
        let step = l1_geom.block_bytes() as u64;
        let collect = self.collect;
        let mut off = 0;
        while off < l2_geom.block_bytes() as u64 {
            let half_addr = base.offset(off);
            let half = l1_geom.line_of(half_addr);
            for c in 0..self.cores.len() {
                let Some(k) = self.cores[c].kill_copy(half, half_addr, at, collect) else {
                    continue;
                };
                self.coh.inclusion_invalidations += 1;
                if k.frame.is_none() {
                    self.coh.vc_invalidations += 1;
                }
                if k.was_modified {
                    // The L2 copy is leaving too: the recalled dirty data
                    // goes straight to memory.
                    self.cores[c].stats.l1_writebacks += 1;
                    self.backend.write(half_addr, at);
                }
                if let Some(rec) = &k.rec {
                    self.record_death(rec);
                }
                self.emit_invalidate(InvalidateEvent {
                    line: half,
                    owner: c as u32,
                    frame: k.frame,
                    at,
                });
            }
            off += step;
        }
    }

    /// One demand access by `core` at `now`. Returns the cycle at which
    /// the data is available to the core.
    pub fn access(
        &mut self,
        core: usize,
        mref: &crate::trace::MemRef,
        is_store: bool,
        now: Cycle,
    ) -> Cycle {
        let m = self.cfg.machine;
        let geom = m.l1d;
        let addr = mref.addr;
        let line = geom.line_of(addr);
        let collect = self.collect;
        let checking = self.checker.is_some();

        self.cores[core].sync_ticks(now, &self.ticker);
        self.cores[core].stats.l1_accesses += 1;

        let mut report = checking.then(|| AccessReport {
            core,
            line,
            is_store,
            level: ServiceLevel::L1,
            l1_victim: None,
            l2_victim: None,
            invalidated: Vec::new(),
        });

        let probe = self.cores[core].l1.probe(addr);
        let ready = match probe {
            ProbeResult::Hit(frame) => {
                let plane = &mut self.cores[core];
                plane.stats.l1_hits += 1;
                let interval = plane.gens.hit(frame, now);
                if collect {
                    plane.metrics.on_access_interval(interval);
                }
                plane.shadow.on_access(line);
                if let Some(tk) = &mut plane.tk {
                    tk.pred.on_hit(frame);
                }
                // Hit-under-miss: the tag allocated at miss time, but the
                // data may still be in flight.
                let data_ready = plane
                    .pending
                    .get(&line.get())
                    .copied()
                    .filter(|&r| r > now.get());
                if data_ready.is_none() {
                    plane.pending.remove(&line.get());
                }
                if is_store {
                    match self.cores[core].mesi[frame] {
                        Mesi::Modified => {}
                        Mesi::Exclusive => self.cores[core].mesi[frame] = Mesi::Modified,
                        Mesi::Shared | Mesi::Invalid => {
                            // Write hit on a shared copy: upgrade.
                            let grant = self.snoop_bus.grant_upgrade(now);
                            self.coh.bus_upgrades += 1;
                            self.emit_snoop(SnoopEvent {
                                line,
                                requester: core as u32,
                                kind: CoherenceKind::Upgrade,
                                at: grant,
                            });
                            let killed = self.invalidate_others(core, line, addr, grant, false);
                            if let Some(r) = report.as_mut() {
                                r.invalidated = killed;
                            }
                            self.cores[core].mesi[frame] = Mesi::Modified;
                        }
                    }
                    self.cores[core].l1.mark_dirty(frame);
                }
                let base = now + m.l1_hit_latency;
                data_ready.map_or(base, |r| Cycle::new(r).max(base))
            }
            ProbeResult::Miss {
                victim_frame,
                evicted,
            } => {
                let plane = &mut self.cores[core];
                let kind = plane.shadow.classify_miss(line);
                if plane.inval_lost.remove(&line.get()) {
                    self.coh.inval_refetches += 1;
                }

                // Victim-cache swap path: the buffered block returns to
                // the L1 and the displaced resident enters the buffer
                // unconditionally.
                let vc_hit = self.cores[core]
                    .victim
                    .as_mut()
                    .is_some_and(|v| v.cache.take(line));
                if vc_hit {
                    self.cores[core].stats.vc_hits += 1;
                    if let Some(displaced) = evicted {
                        let disp_addr = geom.addr_of_line(displaced);
                        let dirty = self.cores[core].l1.frame_dirty(victim_frame);
                        let rec = self.cores[core].close_generation(
                            victim_frame,
                            now,
                            EvictCause::Demand,
                            collect,
                        );
                        if let Some(rec) = &rec {
                            self.record_death(rec);
                        }
                        if dirty {
                            // The buffer holds clean data only: drain the
                            // dirty copy to the L2 before it enters.
                            self.cores[core].stats.l1_writebacks += 1;
                            self.flush_to_l2(disp_addr);
                        }
                        let v = self.cores[core].victim.as_mut().expect("vc hit");
                        v.cache.insert(displaced);
                        v.swap_fills += 1;
                        if let Some(r) = report.as_mut() {
                            r.l1_victim = Some((displaced, true));
                        }
                    }
                    self.cores[core].l1.fill_frame(victim_frame, addr);
                    let others = self.other_copy_exists(core, addr, line);
                    let state = if is_store {
                        if others {
                            let grant = self.snoop_bus.grant_upgrade(now);
                            self.coh.bus_upgrades += 1;
                            self.emit_snoop(SnoopEvent {
                                line,
                                requester: core as u32,
                                kind: CoherenceKind::Upgrade,
                                at: grant,
                            });
                            let killed = self.invalidate_others(core, line, addr, grant, false);
                            if let Some(r) = report.as_mut() {
                                r.invalidated = killed;
                            }
                        }
                        Mesi::Modified
                    } else if others {
                        Mesi::Shared
                    } else {
                        Mesi::Exclusive
                    };
                    self.cores[core].mesi[victim_frame] = state;
                    if is_store {
                        self.cores[core].l1.mark_dirty(victim_frame);
                    }
                    self.cores[core].fill_bookkeeping(
                        victim_frame,
                        line,
                        now,
                        kind,
                        collect,
                        &geom,
                    );
                    if let Some(r) = report.as_mut() {
                        r.level = ServiceLevel::VictimCache;
                    }
                    now + m.l1_hit_latency + 1
                } else {
                    // Full miss: a bus transaction services it.
                    self.cores[core].stats.l2_accesses += 1;

                    // Close and clear the victim frame first, so inclusion
                    // recalls during the transaction cannot race with it.
                    let mut victim_info = None;
                    if let Some(victim_line) = evicted {
                        let victim_addr = geom.addr_of_line(victim_line);
                        let dirty = self.cores[core].l1.frame_dirty(victim_frame);
                        self.cores[core].l1.invalidate(victim_frame);
                        self.cores[core].mesi[victim_frame] = Mesi::Invalid;
                        let rec = self.cores[core].close_generation(
                            victim_frame,
                            now,
                            EvictCause::Demand,
                            collect,
                        );
                        if let Some(rec) = &rec {
                            self.record_death(rec);
                        }
                        if dirty {
                            self.cores[core].stats.l1_writebacks += 1;
                            self.flush_to_l2(victim_addr);
                        }
                        let mut admitted = false;
                        if let (Some(rec), Some(v)) = (rec, self.cores[core].victim.as_mut()) {
                            let info = EvictionInfo {
                                line: rec.line,
                                set_index: geom.index_of_line(rec.line),
                                tag: geom.tag_of_line(rec.line),
                                dead_time: rec.dead_time,
                                live_time: rec.live_time,
                                cause: rec.cause,
                                reload_interval: rec.reload_interval,
                                incoming_tag: geom.tag_of(addr),
                            };
                            admitted = v.cache.offer(v.filter.as_mut(), &info);
                        }
                        victim_info = Some((victim_line, admitted));
                    }
                    if let Some(r) = report.as_mut() {
                        r.l1_victim = victim_info;
                    }

                    let (grant, tx_kind) = if is_store {
                        self.coh.bus_read_exclusives += 1;
                        (
                            self.snoop_bus.grant_read_exclusive(now),
                            CoherenceKind::BusRdX,
                        )
                    } else {
                        self.coh.bus_reads += 1;
                        (self.snoop_bus.grant_read(now), CoherenceKind::BusRd)
                    };
                    self.emit_snoop(SnoopEvent {
                        line,
                        requester: core as u32,
                        kind: tx_kind,
                        at: grant,
                    });

                    let m_owner = self.m_owner(core, addr);
                    let others = self.other_copy_exists(core, addr, line);
                    let l2_probe = self.l2.probe(addr);

                    let data_ready = if let Some((owner, owner_frame)) = m_owner {
                        // Cache-to-cache supply from the modified copy;
                        // the flush also refreshes the L2's data.
                        self.snoop_bus.note_c2c();
                        self.coh.c2c_transfers += 1;
                        self.emit_c2c(C2cEvent {
                            line,
                            from: owner as u32,
                            to: core as u32,
                            at: grant,
                        });
                        if let ProbeResult::Hit(f2) = l2_probe {
                            self.l2.mark_dirty(f2);
                        }
                        if !is_store {
                            // BusRd: the owner keeps a now-clean copy.
                            // The flush cleaned it (a Shared line must
                            // not write back again on eviction), but a
                            // snoop is not a use by the owner, so its
                            // LRU position stays put.
                            self.cores[owner].stats.l1_writebacks += 1;
                            self.cores[owner].mesi[owner_frame] = Mesi::Shared;
                            self.cores[owner].l1.clean_frame(owner_frame);
                        }
                        if let Some(r) = report.as_mut() {
                            r.level = ServiceLevel::CacheToCache;
                        }
                        grant + m.l1_hit_latency + 2 * m.l1l2_bus_occupancy
                    } else if let ProbeResult::Hit(_) = l2_probe {
                        self.cores[core].stats.l2_hits += 1;
                        if let Some(r) = report.as_mut() {
                            r.level = ServiceLevel::L2;
                        }
                        grant + m.l2_latency + m.l1l2_bus_occupancy
                    } else {
                        // True L2 miss (no cached copy anywhere, by
                        // inclusion): fetch from memory and fill the L2.
                        debug_assert!(!others, "inclusion: sharers imply an L2 copy");
                        self.cores[core].stats.mem_accesses += 1;
                        let reply = self.backend.issue(addr, grant + m.l2_latency);
                        let xfer = self.l2mem_bus.schedule(reply.done);
                        let l2_at = xfer + m.l2mem_bus_occupancy;
                        let (l2_victim_frame, l2_evicted) = self.l2.peek_victim(addr);
                        if let Some(l2_line) = l2_evicted {
                            if self.l2.frame_dirty(l2_victim_frame) {
                                self.cores[core].stats.l2_writebacks += 1;
                                let wb_addr = m.l2.addr_of_line(l2_line);
                                self.backend.write(wb_addr, grant);
                                self.l2mem_bus.schedule(grant);
                            }
                            self.back_invalidate(l2_line, grant);
                        }
                        self.l2.fill(addr);
                        if let Some(r) = report.as_mut() {
                            r.level = ServiceLevel::Memory;
                            r.l2_victim = l2_evicted;
                        }
                        l2_at + m.l1l2_bus_occupancy
                    };

                    // Remote-state adjustment for the remaining copies.
                    if is_store {
                        if others {
                            let killed = self.invalidate_others(core, line, addr, grant, false);
                            if let Some(r) = report.as_mut() {
                                r.invalidated = killed;
                            }
                        }
                    } else {
                        // BusRd: surviving Exclusive copies degrade to
                        // Shared (the Modified owner was handled above).
                        for c in 0..self.cores.len() {
                            if c == core {
                                continue;
                            }
                            if let Some(f) = self.cores[c].l1.peek(addr) {
                                if self.cores[c].mesi[f] == Mesi::Exclusive {
                                    self.cores[c].mesi[f] = Mesi::Shared;
                                }
                            }
                        }
                    }

                    // Install the tag now (as the single-core model does);
                    // the data-ready time covers the in-flight window.
                    self.cores[core].l1.fill_frame(victim_frame, addr);
                    let state = if is_store {
                        self.cores[core].l1.mark_dirty(victim_frame);
                        Mesi::Modified
                    } else if self.other_copy_exists(core, addr, line) {
                        Mesi::Shared
                    } else {
                        Mesi::Exclusive
                    };
                    self.cores[core].mesi[victim_frame] = state;
                    self.cores[core].fill_bookkeeping(
                        victim_frame,
                        line,
                        now,
                        kind,
                        collect,
                        &geom,
                    );
                    if data_ready > now {
                        self.cores[core]
                            .pending
                            .insert(line.get(), data_ready.get());
                    }
                    data_ready
                }
            }
        };

        if let (Some(checker), Some(r)) = (self.checker.as_mut(), report.as_ref()) {
            checker.verify(r);
        }
        ready
    }

    /// Closes every open generation and finalizes observers. Idempotent.
    pub fn finish(&mut self, now: Cycle) {
        if self.finished {
            return;
        }
        self.finished = true;
        let collect = self.collect;
        for p in &mut self.cores {
            let recs = p.gens.flush(now);
            if collect {
                for rec in &recs {
                    p.metrics.on_generation(rec);
                }
            }
        }
        if let Some(t) = self.trace.as_deref_mut() {
            t.finish();
        }
    }

    /// Runs `instructions` instructions on every core, one stream per
    /// core, and returns the aggregated core statistics (`cycles` is the
    /// last core's completion time; the rest are sums).
    ///
    /// The driver replicates the single-core out-of-order window model
    /// per core and services cores in index order within each cycle,
    /// which fixes the global coherence-transaction order. When every
    /// live core is blocked, the clock hops to the earliest per-core
    /// wake-up (window head or chained-load address) — there are no
    /// memory-system background events — so hopping is bit-identical to
    /// `step_every_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len() != cfg.cores`.
    pub fn run(&mut self, streams: &mut [Box<dyn Workload>], instructions: u64) -> CoreStats {
        assert_eq!(
            streams.len(),
            self.cores.len(),
            "one instruction stream per core"
        );
        let m = self.cfg.machine;
        let issue_width = m.issue_width as usize;
        let window_size = m.window_size as usize;
        let commit_width = m.commit_width as usize;
        let ignore_swpf = self.cfg.ignore_sw_prefetch;
        let step_every_cycle = self.cfg.step_every_cycle;

        struct Exec {
            window: std::collections::VecDeque<Cycle>,
            stalled: Option<Instr>,
            chain_ready: Cycle,
            fetched: u64,
            stats: CoreStats,
            done: bool,
        }
        let mut execs: Vec<Exec> = (0..self.cores.len())
            .map(|_| Exec {
                window: std::collections::VecDeque::with_capacity(window_size),
                stalled: None,
                chain_ready: Cycle::ZERO,
                fetched: 0,
                stats: CoreStats::default(),
                done: false,
            })
            .collect();

        let mut cycle = Cycle::ZERO;
        loop {
            let mut all_done = true;
            for c in 0..execs.len() {
                if execs[c].done {
                    continue;
                }
                // Retire in order.
                let mut retired = 0;
                while retired < commit_width {
                    match execs[c].window.front() {
                        Some(&ready) if ready <= cycle => {
                            execs[c].window.pop_front();
                            execs[c].stats.instructions += 1;
                            retired += 1;
                        }
                        _ => break,
                    }
                }
                if execs[c].stats.instructions >= instructions && execs[c].window.is_empty() {
                    execs[c].done = true;
                    execs[c].stats.cycles = cycle.get();
                    continue;
                }
                all_done = false;

                // Issue in order while the window has room.
                let mut issued = 0;
                let mut window_was_full = false;
                while issued < issue_width && execs[c].fetched < instructions {
                    if execs[c].window.len() >= window_size {
                        window_was_full = true;
                        break;
                    }
                    let instr = match execs[c].stalled.take() {
                        Some(i) => i,
                        None => streams[c].next_instr(),
                    };
                    if let Instr::ChainedLoad(_) = instr {
                        if execs[c].chain_ready > cycle {
                            execs[c].stalled = Some(instr);
                            break;
                        }
                    }
                    let ready = match instr {
                        Instr::Op => cycle + 1,
                        Instr::Load(mr) => {
                            execs[c].stats.loads += 1;
                            self.access(c, &mr, false, cycle)
                        }
                        Instr::ChainedLoad(mr) => {
                            execs[c].stats.loads += 1;
                            let ready = self.access(c, &mr, false, cycle);
                            execs[c].chain_ready = ready;
                            ready
                        }
                        Instr::Store(mr) => {
                            execs[c].stats.stores += 1;
                            self.access(c, &mr, true, cycle);
                            cycle + 1
                        }
                        Instr::SwPrefetch(mr) => {
                            if ignore_swpf {
                                cycle + 1
                            } else {
                                execs[c].stats.sw_prefetches += 1;
                                self.access(c, &mr, false, cycle);
                                cycle + 1
                            }
                        }
                    };
                    execs[c].window.push_back(ready);
                    execs[c].fetched += 1;
                    issued += 1;
                }
                if window_was_full {
                    execs[c].stats.window_full_cycles += 1;
                }
            }
            if all_done {
                break;
            }

            // Event-driven clock hopping: when every live core is blocked,
            // every cycle before the earliest wake-up is provably a no-op
            // (completion times are fixed at issue; nothing in the memory
            // system fires on its own).
            let mut next = cycle + 1;
            if !step_every_cycle {
                let mut all_blocked = true;
                let mut wake = Cycle::new(u64::MAX);
                for ex in execs.iter().filter(|e| !e.done) {
                    let blocked = ex.fetched >= instructions
                        || ex.window.len() >= window_size
                        || ex.stalled.is_some();
                    if !blocked {
                        all_blocked = false;
                        break;
                    }
                    if let Some(&front) = ex.window.front() {
                        if front < wake {
                            wake = front;
                        }
                    }
                    if ex.stalled.is_some() && ex.chain_ready < wake {
                        wake = ex.chain_ready;
                    }
                }
                if all_blocked && wake > next && wake < Cycle::new(u64::MAX) {
                    for ex in execs.iter_mut().filter(|e| !e.done) {
                        if ex.window.len() >= window_size && ex.fetched < instructions {
                            ex.stats.window_full_cycles += wake.get() - next.get();
                        }
                    }
                    next = wake;
                }
            }
            cycle = next;
            for ex in execs.iter_mut().filter(|e| !e.done) {
                ex.stats.cycles = cycle.get();
            }
        }
        self.finish(cycle);

        let mut agg = CoreStats::default();
        for ex in &execs {
            agg.instructions += ex.stats.instructions;
            agg.loads += ex.stats.loads;
            agg.stores += ex.stats.stores;
            agg.sw_prefetches += ex.stats.sw_prefetches;
            agg.window_full_cycles += ex.stats.window_full_cycles;
            agg.cycles = agg.cycles.max(ex.stats.cycles);
        }
        agg
    }

    /// Consumes the system into a [`RunResult`]: hierarchy counters,
    /// victim and correlation statistics summed over cores, metric
    /// distributions merged, plus the coherence plane.
    pub fn into_result(mut self, workload: &str, core: CoreStats) -> RunResult {
        self.finish(Cycle::new(core.cycles));
        let hierarchy = self.stats();
        let mut breakdown = MissBreakdown::default();
        for p in &self.cores {
            let b = p.shadow.breakdown();
            breakdown.cold += b.cold;
            breakdown.conflict += b.conflict;
            breakdown.capacity += b.capacity;
        }
        let mut metrics = MetricsCollector::new();
        for p in &self.cores {
            metrics.merge(&p.metrics);
        }
        let victim = (self.cfg.victim != VictimMode::None).then(|| {
            let mut sum = VictimStats::default();
            for p in &self.cores {
                if let Some(v) = &p.victim {
                    let s = v.cache.stats();
                    sum.offered += s.offered;
                    sum.admitted += s.admitted;
                    sum.probes += s.probes;
                    sum.hits += s.hits;
                }
            }
            sum
        });
        let victim_swap_fills = (self.cfg.victim != VictimMode::None).then(|| {
            self.cores
                .iter()
                .filter_map(|p| p.victim.as_ref())
                .map(|v| v.swap_fills)
                .sum()
        });
        let correlation = matches!(self.cfg.prefetch, PrefetchMode::Timekeeping(_)).then(|| {
            let mut sum = timekeeping::CorrelationStats::default();
            for p in &self.cores {
                if let Some(tk) = &p.tk {
                    let s = tk.pred.table_stats();
                    sum.lookups += s.lookups;
                    sum.hits += s.hits;
                    sum.updates += s.updates;
                    sum.allocations += s.allocations;
                }
            }
            sum
        });
        RunResult {
            workload: workload.to_owned(),
            core,
            hierarchy,
            breakdown,
            metrics,
            victim,
            victim_swap_fills,
            timeliness: timekeeping::TimelinessStats::new(),
            correlation,
            dbcp: None,
            pf_queue_discards: 0,
            dram: self.backend.snapshot(),
            sampled: None,
            coherence: Some(self.coh),
        }
    }
}

fn add_hierarchy(sum: &mut HierarchyStats, s: &HierarchyStats) {
    sum.l1_accesses += s.l1_accesses;
    sum.l1_hits += s.l1_hits;
    sum.vc_hits += s.vc_hits;
    sum.l2_accesses += s.l2_accesses;
    sum.l2_hits += s.l2_hits;
    sum.mem_accesses += s.mem_accesses;
    sum.pf_enqueued += s.pf_enqueued;
    sum.pf_issued += s.pf_issued;
    sum.pf_fills += s.pf_fills;
    sum.pf_redundant += s.pf_redundant;
    sum.pf_dropped_live += s.pf_dropped_live;
    sum.addr_predictions += s.addr_predictions;
    sum.addr_correct += s.addr_correct;
    sum.l1_writebacks += s.l1_writebacks;
    sum.l2_writebacks += s.l2_writebacks;
    sum.decay_misses += s.decay_misses;
    sum.decay_off_cycles += s.decay_off_cycles;
}

/// Runs `instructions` instructions per core of `workload`'s per-core
/// streams under a multi-core configuration. [`crate::run_workload`]
/// routes here when `cfg.cores > 1`; `checked` installs the
/// [`CoherentChecker`] functional mirror.
///
/// Statistical sampling is ignored at `cores > 1` (the result carries no
/// `sampled` tag, the same fallback signal single-core unsupported
/// configurations use).
///
/// # Panics
///
/// Panics if the workload cannot be split into per-core streams (see
/// [`Workload::per_core_streams`]), or on checker divergence.
pub fn run_multicore<W: Workload + ?Sized>(
    workload: &mut W,
    cfg: SystemConfig,
    instructions: u64,
    checked: bool,
) -> RunResult {
    let mut streams = workload.per_core_streams(cfg.cores).unwrap_or_else(|| {
        panic!(
            "workload '{}' cannot be split into {} per-core streams (no fork)",
            workload.name(),
            cfg.cores
        )
    });
    assert_eq!(
        streams.len(),
        cfg.cores as usize,
        "per_core_streams must yield exactly cfg.cores streams"
    );
    let mut sys = MultiCoreSystem::new(cfg);
    if checked {
        sys.install_checker();
    }
    let core = sys.run(&mut streams, instructions);
    sys.into_result(workload.name(), core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::trace::MemRef;
    use timekeeping::{Addr, Pc};

    /// Per-core strided load stream over a private region.
    #[derive(Clone)]
    struct Private {
        next: u64,
        base: u64,
    }
    impl Workload for Private {
        fn next_instr(&mut self) -> Instr {
            self.next += 1;
            Instr::Load(MemRef::new(
                Addr::new(self.base + (self.next % 512) * 32),
                Pc::new(4),
            ))
        }
        fn name(&self) -> &str {
            "private"
        }
        fn fork(&self) -> Option<Box<dyn Workload>> {
            Some(Box::new(self.clone()))
        }
    }

    /// Loads and stores ping-ponging over a small shared region: heavy
    /// coherence traffic when run on every core.
    #[derive(Clone)]
    struct SharedMix {
        next: u64,
        salt: u64,
    }
    impl Workload for SharedMix {
        fn next_instr(&mut self) -> Instr {
            self.next += 1;
            let addr = Addr::new(((self.next * 7 + self.salt) % 64) * 32);
            if (self.next + self.salt).is_multiple_of(3) {
                Instr::Store(MemRef::new(addr, Pc::new(8)))
            } else {
                Instr::Load(MemRef::new(addr, Pc::new(4)))
            }
        }
        fn name(&self) -> &str {
            "shared-mix"
        }
        fn fork(&self) -> Option<Box<dyn Workload>> {
            Some(Box::new(self.clone()))
        }
    }

    fn streams_of(n: u32, mk: impl Fn(u64) -> Box<dyn Workload>) -> Vec<Box<dyn Workload>> {
        (0..n as u64).map(mk).collect()
    }

    fn dual() -> SystemConfig {
        SystemConfig::builder().cores(2).build().unwrap()
    }

    #[test]
    fn private_streams_have_no_coherence_traffic() {
        let mut sys = MultiCoreSystem::new(dual());
        sys.install_checker();
        let mut s = streams_of(2, |i| {
            Box::new(Private {
                next: 0,
                base: i * 1024 * 1024,
            })
        });
        let agg = sys.run(&mut s, 5_000);
        assert_eq!(agg.instructions, 10_000);
        let coh = *sys.coherence();
        assert_eq!(coh.coherence_invalidations, 0);
        assert_eq!(coh.c2c_transfers, 0);
        assert_eq!(coh.bus_upgrades, 0);
        assert!(coh.bus_reads > 0);
    }

    #[test]
    fn store_sharing_invalidates_and_transfers() {
        let mut sys = MultiCoreSystem::new(dual());
        sys.install_checker();
        let mut s = streams_of(2, |i| Box::new(SharedMix { next: 0, salt: i }));
        let agg = sys.run(&mut s, 20_000);
        assert_eq!(agg.instructions, 40_000);
        let coh = *sys.coherence();
        assert!(coh.bus_read_exclusives > 0, "{coh:?}");
        assert!(coh.coherence_invalidations > 0, "{coh:?}");
        assert!(coh.c2c_transfers > 0, "{coh:?}");
        assert!(coh.inval_deaths > 0, "{coh:?}");
        assert!(coh.inval_refetches > 0, "{coh:?}");
        assert!(coh.invalidation_death_fraction().unwrap() > 0.0);
    }

    #[test]
    fn upgrades_fire_on_shared_write_hits() {
        // Both cores load the line (S everywhere), then one stores it.
        let mut sys = MultiCoreSystem::new(dual());
        sys.install_checker();
        let a = MemRef::new(Addr::new(0x40), Pc::new(4));
        sys.access(0, &a, false, Cycle::new(0));
        sys.access(1, &a, false, Cycle::new(200));
        let coh_before = *sys.coherence();
        assert_eq!(coh_before.bus_upgrades, 0);
        sys.access(0, &a, true, Cycle::new(400));
        let coh = *sys.coherence();
        assert_eq!(coh.bus_upgrades, 1);
        assert_eq!(coh.coherence_invalidations, 1);
        assert_eq!(coh.inval_deaths, 1);
    }

    #[test]
    fn modified_remote_copy_supplies_cache_to_cache() {
        let mut sys = MultiCoreSystem::new(dual());
        sys.install_checker();
        let a = MemRef::new(Addr::new(0x80), Pc::new(4));
        // Core 0 writes (M), core 1 then reads: c2c, and both end Shared.
        sys.access(0, &a, true, Cycle::new(0));
        let ready = sys.access(1, &a, false, Cycle::new(500));
        let coh = *sys.coherence();
        assert_eq!(coh.c2c_transfers, 1);
        // c2c latency beats an L2 round-trip.
        let m = SystemConfig::base().machine;
        assert_eq!(
            ready,
            Cycle::new(500) + m.l1_hit_latency + 2 * m.l1l2_bus_occupancy
        );
        // A later write by core 1 needs an upgrade (both copies Shared).
        sys.access(1, &a, true, Cycle::new(1_000));
        assert_eq!(sys.coherence().bus_upgrades, 1);
    }

    #[test]
    fn c2c_owner_lru_matches_checker_with_assoc_l1() {
        // A 2-way L1 regression: a cache-to-cache transfer must touch
        // the *owner's* LRU stack too, or the owner later evicts the
        // wrong way and diverges from the coherent checker's mirror.
        let mut machine = crate::config::MachineConfig::paper_default();
        machine.l1d = timekeeping::CacheGeometry::new(32 * 1024, 2, 32).unwrap();
        let cfg = SystemConfig::builder()
            .machine(machine)
            .cores(2)
            .build()
            .unwrap();
        let mut sys = MultiCoreSystem::new(cfg);
        sys.install_checker();

        let a = MemRef::new(Addr::new(0), Pc::new(4)); // set 0
        let x = MemRef::new(Addr::new(16 * 1024), Pc::new(4)); // same set, other way
        let y = MemRef::new(Addr::new(32 * 1024), Pc::new(4)); // same set, third line

        // Core 1: store A (M, MRU), then load X (X MRU, A LRU).
        sys.access(1, &a, true, Cycle::new(0));
        sys.access(1, &x, false, Cycle::new(200));
        // Core 0: load A -> c2c from core 1.
        sys.access(0, &a, false, Cycle::new(400));
        assert_eq!(sys.coherence().c2c_transfers, 1);
        // Core 1: load Y -> set full, must evict its LRU way; the
        // checker panics here if the model and mirror disagree on which
        // way that is.
        sys.access(1, &y, false, Cycle::new(600));
        assert_eq!(sys.coherence().c2c_transfers, 1);
    }

    #[test]
    fn hop_matches_per_cycle_stepping() {
        let run = |step: bool| {
            let cfg = {
                let b = SystemConfig::builder().cores(2);
                let b = if step { b.step_every_cycle() } else { b };
                b.build().unwrap()
            };
            let mut sys = MultiCoreSystem::new(cfg);
            let mut s = streams_of(2, |i| Box::new(SharedMix { next: 0, salt: i }));
            let agg = sys.run(&mut s, 8_000);
            (agg, sys.stats(), *sys.coherence())
        };
        assert_eq!(run(false), run(true));
    }

    /// Three shared lines that conflict in the direct-mapped L1, plus an
    /// occasional store: misses swap through the victim cache, and remote
    /// stores invalidate buffered copies.
    #[derive(Clone)]
    struct ConflictShare {
        next: u64,
        salt: u64,
    }
    impl Workload for ConflictShare {
        fn next_instr(&mut self) -> Instr {
            self.next += 1;
            let addr = Addr::new(((self.next + self.salt) % 3) * 32 * 1024);
            if self.next.is_multiple_of(7) {
                Instr::Store(MemRef::new(addr, Pc::new(8)))
            } else {
                Instr::Load(MemRef::new(addr, Pc::new(4)))
            }
        }
        fn name(&self) -> &str {
            "conflict-share"
        }
        fn fork(&self) -> Option<Box<dyn Workload>> {
            Some(Box::new(self.clone()))
        }
    }

    #[test]
    fn victim_cache_participates_in_coherence() {
        let cfg = SystemConfig::builder()
            .cores(2)
            .victim(VictimMode::Unfiltered)
            .build()
            .unwrap();
        let mut sys = MultiCoreSystem::new(cfg);
        sys.install_checker();
        let mut s = streams_of(2, |i| Box::new(ConflictShare { next: 0, salt: i }));
        sys.run(&mut s, 20_000);
        let stats = sys.stats();
        let coh = *sys.coherence();
        assert!(stats.vc_hits > 0, "{stats:?}");
        assert!(coh.vc_invalidations > 0, "{coh:?}");
    }

    #[test]
    fn inclusion_recalls_l1_copies_on_l2_eviction() {
        // Shrink the L2 to 8 KB so the 32 KB L1 working set forces L2
        // evictions whose halves are still L1-resident.
        let mut machine = crate::config::MachineConfig::paper_default();
        machine.l2 = CacheGeometry::new(8 * 1024, 4, 64).unwrap();
        let cfg = SystemConfig::builder()
            .machine(machine)
            .cores(2)
            .build()
            .unwrap();
        let mut sys = MultiCoreSystem::new(cfg);
        sys.install_checker();
        let mut s = streams_of(2, |i| {
            Box::new(Private {
                next: 0,
                base: i * 1024 * 1024,
            })
        });
        sys.run(&mut s, 20_000);
        assert!(sys.coherence().inclusion_invalidations > 0);
    }

    #[test]
    fn run_multicore_assembles_a_result() {
        let mut w = SharedMix { next: 0, salt: 0 };
        let r = run_multicore(&mut w, dual(), 5_000, true);
        assert_eq!(r.core.instructions, 10_000);
        assert_eq!(r.workload, "shared-mix");
        let coh = r.coherence.expect("multi-core result carries coherence");
        assert!(coh.transactions() > 0);
        assert!(r.hierarchy.l1_accesses > 0);
        assert!(r.breakdown.total() > 0);
        // Round-trips through JSON with the coherence block intact.
        let json = r.to_json();
        let back = RunResult::from_json(&json).unwrap();
        assert_eq!(back.coherence, r.coherence);
    }

    #[test]
    fn predict_only_tk_scores_addresses() {
        let cfg = SystemConfig::builder()
            .cores(2)
            .prefetch(PrefetchMode::Timekeeping(
                timekeeping::CorrelationConfig::PAPER_8KB,
            ))
            .predict_only()
            .build()
            .unwrap();
        let mut sys = MultiCoreSystem::new(cfg);
        let mut s = streams_of(2, |i| Box::new(SharedMix { next: 0, salt: i }));
        sys.run(&mut s, 30_000);
        let stats = sys.stats();
        assert!(stats.addr_predictions > 0, "{stats:?}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut w = SharedMix { next: 0, salt: 1 };
            run_multicore(&mut w, dual(), 6_000, false)
        };
        assert_eq!(run(), run());
    }
}
