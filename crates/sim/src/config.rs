//! Simulated-machine configuration (Table 1 of the paper).

use std::sync::atomic::{AtomicU32, Ordering};

use timekeeping::{CacheGeometry, CorrelationConfig, DbcpConfig, MarkovConfig, StrideConfig};

use crate::dram::{DramConfigError, MemBackendConfig};

/// Largest `--cores` value the coherent hierarchy supports (the sharer
/// set is a byte-wide bitmask).
pub const MAX_CORES: u32 = 8;

/// Process-wide default core count, seeded into every
/// [`SystemConfig::builder`] call — the same one-flag-to-every-config
/// pattern as `--dram` and `--sample`.
static DEFAULT_CORES: AtomicU32 = AtomicU32::new(1);

/// Sets the process-wide default core count (the `--cores` CLI flag).
/// Values outside `1..=MAX_CORES` still surface as a [`ConfigError`] at
/// the next `build()`, so a bad flag fails loudly rather than silently.
pub fn set_default_cores(n: u32) {
    DEFAULT_CORES.store(n, Ordering::SeqCst);
}

/// The process-wide default core count (1 unless `--cores` changed it).
pub fn default_cores() -> u32 {
    DEFAULT_CORES.load(Ordering::SeqCst)
}

/// Processor-core and memory-hierarchy parameters.
///
/// [`MachineConfig::paper_default`] reproduces Table 1: a 2 GHz 8-issue
/// out-of-order core with a 128-entry instruction window, a 32 KB
/// direct-mapped L1 data cache with 32 B blocks, a 1 MB 4-way L2 with 64 B
/// blocks and 12-cycle latency, a 32-byte 2 GHz L1/L2 bus, a 64-byte
/// 400 MHz L2/memory bus, and 70-cycle memory latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Instructions issued per cycle (8).
    pub issue_width: u32,
    /// Instruction-window (RUU) entries (128).
    pub window_size: u32,
    /// Instructions retired per cycle (8).
    pub commit_width: u32,
    /// L1 data-cache geometry (32 KB, direct-mapped, 32 B blocks).
    pub l1d: CacheGeometry,
    /// L2 unified-cache geometry (1 MB, 4-way, 64 B blocks).
    pub l2: CacheGeometry,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,
    /// L2 access latency in cycles (12).
    pub l2_latency: u64,
    /// Main-memory access latency in cycles (70).
    ///
    /// Deprecated alias: this constant is consumed only by the
    /// [`MemBackendConfig::Fixed`] backend (the default).
    /// Banked-DRAM runs derive latency from
    /// `SystemConfig::memory` instead and ignore this field (except in
    /// the nominal prefetch-gate limits, which stay backend-independent
    /// by design).
    #[deprecated(
        since = "0.6.0",
        note = "configure memory latency through `MemBackendConfig::Fixed` \
                (SystemConfig::builder().memory(..)); this field survives \
                only as the Fixed backend's latency source so existing \
                cache keys stay byte-identical"
    )]
    pub mem_latency: u64,
    /// L1/L2 bus occupancy per block transfer, in core cycles.
    /// 32-byte-wide at the 2 GHz core clock moving a 32 B L1 block: 1.
    pub l1l2_bus_occupancy: u64,
    /// L2/memory bus occupancy per block transfer, in core cycles.
    /// 64-byte-wide at 400 MHz (5 core cycles per bus cycle) moving a
    /// 64 B L2 block: 5.
    pub l2mem_bus_occupancy: u64,
    /// Demand MSHRs at the L1 (64).
    pub demand_mshrs: usize,
    /// Prefetch MSHRs (32).
    pub prefetch_mshrs: usize,
    /// Prefetch request-queue entries (128).
    pub prefetch_queue: usize,
    /// Global timekeeping tick period in cycles (512).
    pub tick_period: u64,
    /// Victim-cache entries when a victim cache is configured (32).
    pub victim_entries: usize,
}

impl MachineConfig {
    /// The Table 1 configuration.
    #[allow(deprecated)] // seeds the Fixed-backend latency alias
    pub fn paper_default() -> Self {
        MachineConfig {
            issue_width: 8,
            window_size: 128,
            commit_width: 8,
            l1d: CacheGeometry::new(32 * 1024, 1, 32).expect("valid L1 geometry"),
            l2: CacheGeometry::new(1024 * 1024, 4, 64).expect("valid L2 geometry"),
            l1_hit_latency: 1,
            l2_latency: 12,
            mem_latency: 70,
            l1l2_bus_occupancy: 1,
            l2mem_bus_occupancy: 5,
            demand_mshrs: 64,
            prefetch_mshrs: 32,
            prefetch_queue: 128,
            tick_period: 512,
            victim_entries: 32,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Victim-cache configuration (§4.2 / Figure 13 bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VictimMode {
    /// No victim cache (the base machine).
    #[default]
    None,
    /// Unfiltered 32-entry victim cache (Jouppi).
    Unfiltered,
    /// Collins-style conflict-filtered victim cache.
    Collins,
    /// The paper's timekeeping (dead-time) filter with the given threshold
    /// in cycles.
    DeadTime {
        /// Dead-time admission threshold in cycles (paper: 1024).
        threshold: u64,
    },
    /// The adaptive dead-time filter sketched as future work in §4.2: the
    /// threshold adjusts at run-time to keep the candidate count near the
    /// victim cache's capacity.
    AdaptiveDeadTime,
    /// A reload-interval filter (the §4.1 predictor the paper deems
    /// impractical for an L1 victim cache because reload intervals are
    /// counted at the L2 — included for the comparison's sake).
    ReloadInterval {
        /// Reload-interval admission threshold in cycles (Figure 8's
        /// breakpoint: 16 384).
        threshold: u64,
    },
}

impl VictimMode {
    /// The paper's dead-time filter at its 1 K-cycle operating point.
    pub fn paper_dead_time() -> Self {
        VictimMode::DeadTime { threshold: 1024 }
    }
}

/// Prefetcher configuration (§5 / Figure 19 bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetchMode {
    /// No hardware prefetching (the base machine).
    #[default]
    None,
    /// The timekeeping prefetcher with the given correlation-table
    /// geometry (paper: 8 KB).
    Timekeeping(CorrelationConfig),
    /// The DBCP baseline with the given table geometry (paper: 2 MB).
    Dbcp(DbcpConfig),
    /// A Joseph & Grunwald-style Markov miss-correlation prefetcher (the
    /// time-independent prior work of §1).
    Markov(MarkovConfig),
    /// A classic PC-stride reference-prediction table.
    Stride(StrideConfig),
}

/// L1 behavior selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum L1Mode {
    /// Normal cache behavior.
    #[default]
    Normal,
    /// Oracle for Figure 1: only cold misses occur (all conflict and
    /// capacity misses eliminated).
    ColdOnly,
}

/// Statistical-sampling parameters (SimPoint-style interval selection,
/// [`crate::sample`]).
///
/// A run with `Some(SampleConfig)` profiles the workload into
/// fixed-length instruction intervals, clusters their access-pattern
/// signatures, and timing-simulates only one representative interval per
/// cluster after functionally warming cache state through the skipped
/// prefix — reconstructing full-run statistics as a weighted sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleConfig {
    /// Interval length in instructions (profiling granularity and the
    /// length of each timed representative).
    pub interval: u64,
    /// Number of k-means clusters, i.e. the maximum number of
    /// representative intervals simulated under the timing model.
    pub k: u32,
}

impl SampleConfig {
    /// The `--sample` default: 100 K-instruction intervals, 10 clusters.
    /// At the figure binaries' 8 M-instruction budget that is 80
    /// intervals, of which at most 10 (plus the sub-interval tail) run
    /// under the timing model.
    pub const DEFAULT: SampleConfig = SampleConfig {
        interval: 100_000,
        k: 10,
    };
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Full system configuration: machine + mechanism selection.
///
/// Construct one through [`SystemConfig::builder`] (validated), or with
/// the convenience constructors ([`SystemConfig::base`],
/// [`SystemConfig::with_victim`], …) which are thin wrappers over the
/// builder for combinations known to be valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// Machine parameters.
    pub machine: MachineConfig,
    /// Victim-cache mode.
    pub victim: VictimMode,
    /// Prefetcher mode.
    pub prefetch: PrefetchMode,
    /// L1 mode (normal or the Figure 1 oracle).
    pub l1_mode: L1Mode,
    /// Collect the full timekeeping metric distributions (small overhead;
    /// required for Figures 2, 4–11, 14–16).
    pub collect_metrics: bool,
    /// Drop compiler software prefetches from the instruction stream
    /// (the §5.2.3 sensitivity experiment).
    pub ignore_sw_prefetch: bool,
    /// Run the configured prefetcher's predictor without issuing any
    /// prefetches — used to measure intrinsic address accuracy and
    /// coverage (Figure 20) free of prefetch side effects.
    pub predict_only: bool,
    /// Cache-decay leakage control (the mechanism of the paper's prior
    /// work, built on the same idle-time counters): L1 lines idle longer
    /// than this interval are switched off. A decayed line's next access
    /// refetches from the L2 (a decay-induced miss); the off time is the
    /// leakage saving.
    pub decay_interval: Option<u64>,
    /// §5.2.2's slack scheduling: non-urgent prefetches (predicted need
    /// far in the future) are issued only on a fully idle bus, smoothing
    /// bus contention; urgent ones use the normal demand-priority gate.
    pub slack_prefetch: bool,
    /// Statistical sampling: when set, [`crate::run_workload`] simulates
    /// only representative intervals under the timing model (functional
    /// warmup through the rest) and reconstructs weighted statistics.
    /// `None` (the default) simulates every instruction.
    pub sample: Option<SampleConfig>,
    /// Main-memory backend. The default, [`MemBackendConfig::Fixed`],
    /// reads the deprecated `machine.mem_latency` alias and reproduces
    /// the paper's constant-latency memory bit-exactly;
    /// [`MemBackendConfig::Banked`] swaps in the banked DRAM model.
    pub memory: MemBackendConfig,
    /// Reference mode: advance the core clock one cycle at a time instead
    /// of hopping over provably dead cycles. Results are bit-identical
    /// either way (the differential suite in `tests/step_equivalence.rs`
    /// proves it); this mode exists as the oracle for that proof and costs
    /// an order of magnitude of wall-clock time on memory-bound runs.
    pub step_every_cycle: bool,
    /// Number of timing cores (1..=[`MAX_CORES`]).
    ///
    /// `1` (the default) runs the original single-core hierarchy
    /// bit-exactly. `N > 1` instantiates N out-of-order cores with
    /// private L1s and victim caches over a MESI-coherent shared L2
    /// ([`crate::multicore`]): generations can then end by coherence
    /// invalidation ([`timekeeping::EvictCause::Invalidate`]) as well as
    /// by eviction. Multi-core runs support every victim-cache mode and
    /// `predict_only` prefetcher scoring; decay, slack scheduling, the
    /// cold-miss oracle, and *issuing* prefetchers are rejected at
    /// `build()` because their timing machinery is single-core.
    pub cores: u32,
}

/// A rejected [`SystemConfigBuilder`] combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `predict_only` was requested without configuring a prefetcher:
    /// there is no predictor to score.
    PredictOnlyWithoutPrefetcher,
    /// `slack_prefetch` was requested without configuring a prefetcher:
    /// there are no prefetches to schedule.
    SlackWithoutPrefetcher,
    /// The Figure 1 cold-miss oracle was combined with a victim cache,
    /// prefetcher, or cache decay. The oracle already eliminates every
    /// conflict and capacity miss, so a mechanism on top measures nothing.
    OracleWithMechanism,
    /// A victim-cache admission threshold of zero admits no victim and
    /// degenerates to no victim cache at all.
    ZeroVictimThreshold,
    /// A cache-decay interval of zero would switch every line off on the
    /// tick after its fill.
    ZeroDecayInterval,
    /// A sampling interval of zero instructions defines no intervals to
    /// profile or simulate.
    ZeroSampleInterval,
    /// Zero k-means clusters select no representative intervals, so no
    /// statistics would ever be reconstructed.
    ZeroSampleK,
    /// The banked-DRAM geometry or timing is structurally invalid (see
    /// [`DramConfigError`] for the exact rule violated).
    InvalidDram(DramConfigError),
    /// Zero timing cores simulate nothing.
    ZeroCores,
    /// More cores than [`MAX_CORES`]: the coherence directory tracks
    /// sharers in a byte-wide bitmask.
    TooManyCores,
    /// `cores > 1` was combined with cache decay, slack prefetch
    /// scheduling, or the cold-miss oracle L1 — mechanisms whose timing
    /// machinery (the decay tick, the prefetch issue gate, the oracle
    /// shadow) is single-core only.
    MultiCoreWithMechanism,
    /// `cores > 1` with a prefetcher that *issues* prefetches. Prefetch
    /// issue timing (queue, gate, MSHRs) is single-core machinery;
    /// multi-core runs must add `predict_only`, which still scores the
    /// predictor's intrinsic coverage/accuracy under coherence traffic.
    MultiCoreIssuingPrefetcher,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let ConfigError::InvalidDram(e) = self {
            return e.fmt(f);
        }
        let s = match self {
            ConfigError::PredictOnlyWithoutPrefetcher => {
                "predict_only requires a prefetcher (PrefetchMode::None has no predictor)"
            }
            ConfigError::SlackWithoutPrefetcher => {
                "slack_prefetch requires a prefetcher (PrefetchMode::None issues no prefetches)"
            }
            ConfigError::OracleWithMechanism => {
                "the cold-miss oracle (L1Mode::ColdOnly) cannot be combined with a victim \
                 cache, prefetcher, or decay"
            }
            ConfigError::ZeroVictimThreshold => "victim-cache admission threshold must be nonzero",
            ConfigError::ZeroDecayInterval => "decay interval must be nonzero",
            ConfigError::ZeroSampleInterval => "sampling interval must be nonzero",
            ConfigError::ZeroSampleK => "sampling cluster count (k) must be nonzero",
            ConfigError::ZeroCores => "core count must be nonzero",
            ConfigError::TooManyCores => "core count exceeds MAX_CORES (8)",
            ConfigError::MultiCoreWithMechanism => {
                "cores > 1 cannot be combined with cache decay, slack prefetch \
                 scheduling, or the cold-miss oracle (single-core timing machinery)"
            }
            ConfigError::MultiCoreIssuingPrefetcher => {
                "cores > 1 with a prefetcher requires predict_only (prefetch \
                 issue timing is single-core machinery)"
            }
            ConfigError::InvalidDram(_) => unreachable!("delegated to DramConfigError above"),
        };
        f.write_str(s)
    }
}

impl std::error::Error for ConfigError {}

/// Fluent, validated construction of a [`SystemConfig`].
///
/// # Examples
///
/// ```
/// use tk_sim::{SystemConfig, VictimMode};
///
/// let cfg = SystemConfig::builder()
///     .victim(VictimMode::paper_dead_time())
///     .decay(16_384)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.decay_interval, Some(16_384));
///
/// // Incompatible combinations are rejected instead of silently simulated:
/// assert!(SystemConfig::builder().predict_only().build().is_err());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Replaces the machine parameters (default: Table 1).
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.cfg.machine = machine;
        self
    }

    /// Selects a victim-cache mode.
    pub fn victim(mut self, victim: VictimMode) -> Self {
        self.cfg.victim = victim;
        self
    }

    /// Selects a prefetcher.
    pub fn prefetch(mut self, prefetch: PrefetchMode) -> Self {
        self.cfg.prefetch = prefetch;
        self
    }

    /// Selects the Figure 1 cold-miss oracle L1.
    pub fn oracle_l1(mut self) -> Self {
        self.cfg.l1_mode = L1Mode::ColdOnly;
        self
    }

    /// Enables cache decay at the given idle interval (cycles).
    pub fn decay(mut self, interval: u64) -> Self {
        self.cfg.decay_interval = Some(interval);
        self
    }

    /// Enables or disables metric collection (default: on).
    pub fn collect_metrics(mut self, on: bool) -> Self {
        self.cfg.collect_metrics = on;
        self
    }

    /// Drops compiler software prefetches (the §5.2.3 sensitivity run).
    pub fn ignore_sw_prefetch(mut self) -> Self {
        self.cfg.ignore_sw_prefetch = true;
        self
    }

    /// Runs the prefetcher's predictor without issuing prefetches
    /// (Figure 20's intrinsic accuracy/coverage measurement).
    pub fn predict_only(mut self) -> Self {
        self.cfg.predict_only = true;
        self
    }

    /// Issues non-urgent prefetches only on an idle bus (§5.2.2 slack
    /// scheduling).
    pub fn slack_prefetch(mut self) -> Self {
        self.cfg.slack_prefetch = true;
        self
    }

    /// Steps the core clock every cycle instead of event-driven hopping
    /// (the bit-identical but slow reference mode).
    pub fn step_every_cycle(mut self) -> Self {
        self.cfg.step_every_cycle = true;
        self
    }

    /// Selects the main-memory backend (default: the process-wide
    /// `--dram` choice, which itself defaults to
    /// [`MemBackendConfig::Fixed`]).
    pub fn memory(mut self, memory: MemBackendConfig) -> Self {
        self.cfg.memory = memory;
        self
    }

    /// Enables statistical sampling with the given interval length and
    /// cluster count (default: the process-wide `--sample` choice, which
    /// itself defaults to off).
    pub fn sample(mut self, sample: SampleConfig) -> Self {
        self.cfg.sample = Some(sample);
        self
    }

    /// Disables statistical sampling (overrides the process-wide
    /// `--sample` default for this one configuration — used by reference
    /// runs inside the calibration harness).
    pub fn no_sample(mut self) -> Self {
        self.cfg.sample = None;
        self
    }

    /// Sets the number of timing cores (default: the process-wide
    /// `--cores` choice, which itself defaults to 1). See
    /// [`SystemConfig::cores`] for the combinations `build()` accepts at
    /// `n > 1`.
    pub fn cores(mut self, n: u32) -> Self {
        self.cfg.cores = n;
        self
    }

    /// Validates the combination and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first incompatible combination
    /// found — see the variants for the rules.
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.predict_only && cfg.prefetch == PrefetchMode::None {
            return Err(ConfigError::PredictOnlyWithoutPrefetcher);
        }
        if cfg.slack_prefetch && cfg.prefetch == PrefetchMode::None {
            return Err(ConfigError::SlackWithoutPrefetcher);
        }
        if cfg.l1_mode == L1Mode::ColdOnly
            && (cfg.victim != VictimMode::None
                || cfg.prefetch != PrefetchMode::None
                || cfg.decay_interval.is_some())
        {
            return Err(ConfigError::OracleWithMechanism);
        }
        match cfg.victim {
            VictimMode::DeadTime { threshold: 0 } | VictimMode::ReloadInterval { threshold: 0 } => {
                return Err(ConfigError::ZeroVictimThreshold)
            }
            _ => {}
        }
        if cfg.decay_interval == Some(0) {
            return Err(ConfigError::ZeroDecayInterval);
        }
        if let Some(s) = cfg.sample {
            if s.interval == 0 {
                return Err(ConfigError::ZeroSampleInterval);
            }
            if s.k == 0 {
                return Err(ConfigError::ZeroSampleK);
            }
        }
        if let MemBackendConfig::Banked(b) = cfg.memory {
            crate::dram::validate(&b).map_err(ConfigError::InvalidDram)?;
        }
        if cfg.cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if cfg.cores > MAX_CORES {
            return Err(ConfigError::TooManyCores);
        }
        if cfg.cores > 1 {
            if cfg.decay_interval.is_some() || cfg.slack_prefetch || cfg.l1_mode == L1Mode::ColdOnly
            {
                return Err(ConfigError::MultiCoreWithMechanism);
            }
            if cfg.prefetch != PrefetchMode::None && !cfg.predict_only {
                return Err(ConfigError::MultiCoreIssuingPrefetcher);
            }
        }
        Ok(cfg)
    }
}

impl SystemConfig {
    /// Starts a validated builder from the base machine (no victim cache,
    /// no prefetcher, metrics on).
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig {
                machine: MachineConfig::paper_default(),
                victim: VictimMode::None,
                prefetch: PrefetchMode::None,
                l1_mode: L1Mode::Normal,
                collect_metrics: true,
                ignore_sw_prefetch: false,
                predict_only: false,
                decay_interval: None,
                slack_prefetch: false,
                step_every_cycle: false,
                // One orthogonal `--dram` flag flows to every config
                // construction site through this process-wide default.
                memory: crate::dram::default_mem_backend(),
                // Likewise for `--sample`: every figure binary's configs
                // pick up the process-wide sampling choice.
                sample: crate::sample::default_sample(),
                // And for `--cores`.
                cores: default_cores(),
            },
        }
    }

    /// The base machine: no victim cache, no prefetcher, metrics on.
    pub fn base() -> Self {
        Self::builder().build().expect("base config is valid")
    }

    /// Base machine with the given victim-cache mode.
    ///
    /// # Panics
    ///
    /// Panics on a zero admission threshold; use [`SystemConfig::builder`]
    /// to handle invalid modes as a `Result`.
    pub fn with_victim(victim: VictimMode) -> Self {
        Self::builder()
            .victim(victim)
            .build()
            .expect("victim config must be valid")
    }

    /// Base machine with the given prefetcher.
    pub fn with_prefetch(prefetch: PrefetchMode) -> Self {
        Self::builder()
            .prefetch(prefetch)
            .build()
            .expect("prefetch config is valid")
    }

    /// The Figure 1 oracle machine (cold misses only).
    pub fn ideal() -> Self {
        Self::builder()
            .oracle_l1()
            .build()
            .expect("oracle config is valid")
    }

    /// Base machine with cache decay at the given idle interval (cycles).
    ///
    /// # Panics
    ///
    /// Panics on a zero interval; use [`SystemConfig::builder`] to handle
    /// invalid intervals as a `Result`.
    pub fn with_decay(interval: u64) -> Self {
        Self::builder()
            .decay(interval)
            .build()
            .expect("decay config must be valid")
    }

    /// A canonical, human-readable, serde-free serialization of every
    /// field. Two configurations compare equal iff their keys are equal,
    /// which makes this the natural experiment-cache key; it is also
    /// stable across processes (unlike `std::hash::Hash`, whose output
    /// `HashMap` randomizes per process).
    #[allow(deprecated)] // the machine fragment pins the Fixed-latency alias
    pub fn cache_key(&self) -> String {
        let m = &self.machine;
        let mut key = format!(
            "machine{{issue={},window={},commit={},\
             l1d={}x{}x{},l2={}x{}x{},lat={}/{}/{},bus={}/{},\
             mshr={}/{},pfq={},tick={},vc={}}}",
            m.issue_width,
            m.window_size,
            m.commit_width,
            m.l1d.size_bytes(),
            m.l1d.assoc(),
            m.l1d.block_bytes(),
            m.l2.size_bytes(),
            m.l2.assoc(),
            m.l2.block_bytes(),
            m.l1_hit_latency,
            m.l2_latency,
            m.mem_latency,
            m.l1l2_bus_occupancy,
            m.l2mem_bus_occupancy,
            m.demand_mshrs,
            m.prefetch_mshrs,
            m.prefetch_queue,
            m.tick_period,
            m.victim_entries,
        );
        key.push_str(&match self.victim {
            VictimMode::None => " victim=none".to_owned(),
            VictimMode::Unfiltered => " victim=unfiltered".to_owned(),
            VictimMode::Collins => " victim=collins".to_owned(),
            VictimMode::DeadTime { threshold } => format!(" victim=dead<{threshold}"),
            VictimMode::AdaptiveDeadTime => " victim=adaptive-dead".to_owned(),
            VictimMode::ReloadInterval { threshold } => format!(" victim=reload<{threshold}"),
        });
        key.push_str(&match self.prefetch {
            PrefetchMode::None => " pf=none".to_owned(),
            PrefetchMode::Timekeeping(c) => {
                format!(" pf=tk(m={},n={},w={})", c.m_bits, c.n_bits, c.ways)
            }
            PrefetchMode::Dbcp(c) => format!(
                " pf=dbcp(sets={},w={},conf={})",
                c.set_bits, c.ways, c.confidence_threshold
            ),
            PrefetchMode::Markov(c) => format!(
                " pf=markov(sets={},w={},succ={},deg={})",
                c.set_bits, c.ways, c.successors, c.degree
            ),
            PrefetchMode::Stride(c) => {
                format!(" pf=stride(bits={},deg={})", c.entry_bits, c.degree)
            }
        });
        key.push_str(&format!(
            " l1={} metrics={} ignore_swpf={} predict_only={} decay={} slack={}",
            match self.l1_mode {
                L1Mode::Normal => "normal",
                L1Mode::ColdOnly => "cold-only",
            },
            self.collect_metrics,
            self.ignore_sw_prefetch,
            self.predict_only,
            self.decay_interval
                .map_or("none".to_owned(), |d| d.to_string()),
            self.slack_prefetch,
        ));
        // Single-core runs (the default) leave the key untouched so every
        // pre-existing memo/disk/golden key stays byte-identical;
        // multi-core results live under a distinct fragment and can never
        // alias a single-core entry.
        if self.cores > 1 {
            key.push_str(&format!(" cores={}", self.cores));
        }
        // Fixed-latency memory contributes nothing: `mem_latency` is
        // already in the machine fragment, and an empty suffix keeps every
        // pre-existing memo/disk/golden key byte-identical. Banked configs
        // get a full fingerprint so they can never alias a fixed entry.
        key.push_str(&self.memory.cache_key_suffix());
        // Sampled runs approximate full runs, so they must never alias a
        // full-run memo/disk/golden entry: the fragment fingerprints the
        // sampling parameters, and its absence keeps every pre-existing
        // (non-sampled) key byte-identical.
        if let Some(s) = self.sample {
            key.push_str(&format!(" sample={{interval={},k={}}}", s.interval, s.k));
        }
        // The hopping clock is bit-identical to per-cycle stepping, so the
        // default mode adds nothing to the key (cached results are valid
        // across the two); the reference mode is tagged only so its runs
        // are distinguishable in reports.
        if self.step_every_cycle {
            key.push_str(" step_every_cycle=true");
        }
        key
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(deprecated)] // pins the Fixed-latency alias field
    fn paper_defaults_match_table1() {
        let m = MachineConfig::paper_default();
        assert_eq!(m.issue_width, 8);
        assert_eq!(m.window_size, 128);
        assert_eq!(m.l1d.size_bytes(), 32 * 1024);
        assert_eq!(m.l1d.assoc(), 1);
        assert_eq!(m.l1d.block_bytes(), 32);
        assert_eq!(m.l1d.num_frames(), 1024);
        assert_eq!(m.l2.size_bytes(), 1024 * 1024);
        assert_eq!(m.l2.assoc(), 4);
        assert_eq!(m.l2.block_bytes(), 64);
        assert_eq!(m.l2_latency, 12);
        assert_eq!(m.mem_latency, 70);
        assert_eq!(m.demand_mshrs, 64);
        assert_eq!(m.prefetch_mshrs, 32);
        assert_eq!(m.prefetch_queue, 128);
        assert_eq!(m.victim_entries, 32);
    }

    #[test]
    fn step_reference_mode_tags_cache_key() {
        let hop = SystemConfig::base();
        let step = SystemConfig::builder().step_every_cycle().build().unwrap();
        assert!(!hop.step_every_cycle);
        assert!(step.step_every_cycle);
        // Hopping is the default and bit-identical, so it leaves the key
        // untouched; only the reference mode is tagged.
        assert!(!hop.cache_key().contains("step_every_cycle"));
        assert!(step.cache_key().ends_with(" step_every_cycle=true"));
    }

    #[test]
    fn default_memory_backend_leaves_cache_key_untouched() {
        let base = SystemConfig::base();
        assert_eq!(base.memory, MemBackendConfig::Fixed);
        assert!(!base.cache_key().contains("dram"));
    }

    #[test]
    fn banked_backend_fingerprints_the_cache_key() {
        let banked = SystemConfig::builder()
            .memory(MemBackendConfig::Banked(
                crate::dram::BankedDramConfig::DDR2,
            ))
            .build()
            .unwrap();
        let key = banked.cache_key();
        assert!(key.contains(" dram=banked{ch=1,ranks=2,banks=8,"), "{key}");
        // The banked tag slots in before the step-reference tag, which
        // stays the final suffix.
        let step = SystemConfig::builder()
            .memory(MemBackendConfig::Banked(
                crate::dram::BankedDramConfig::DDR2,
            ))
            .step_every_cycle()
            .build()
            .unwrap();
        assert!(step.cache_key().contains(" dram=banked{"));
        assert!(step.cache_key().ends_with(" step_every_cycle=true"));
    }

    #[test]
    fn invalid_dram_geometry_is_rejected_at_build() {
        let mut bad = crate::dram::BankedDramConfig::DDR2;
        bad.banks = 5;
        let err = SystemConfig::builder()
            .memory(MemBackendConfig::Banked(bad))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::InvalidDram(DramConfigError::NotPowerOfTwo("banks"))
        );
        assert!(err.to_string().contains("power of two"));
        let mut bad = crate::dram::BankedDramConfig::DDR4;
        bad.burst = 0;
        assert_eq!(
            SystemConfig::builder()
                .memory(MemBackendConfig::Banked(bad))
                .build()
                .unwrap_err(),
            ConfigError::InvalidDram(DramConfigError::ZeroTiming("burst"))
        );
    }

    #[test]
    fn sample_fragment_fingerprints_the_cache_key() {
        let full = SystemConfig::base();
        assert_eq!(full.sample, None);
        assert!(!full.cache_key().contains("sample"));
        let sampled = SystemConfig::builder()
            .sample(SampleConfig::DEFAULT)
            .build()
            .unwrap();
        assert!(sampled
            .cache_key()
            .ends_with(" sample={interval=100000,k=10}"));
        // The sample tag slots in after the memory suffix and before the
        // step-reference tag, which stays the final suffix.
        let step = SystemConfig::builder()
            .sample(SampleConfig {
                interval: 500,
                k: 3,
            })
            .step_every_cycle()
            .build()
            .unwrap();
        let key = step.cache_key();
        assert!(key.contains(" sample={interval=500,k=3}"), "{key}");
        assert!(key.ends_with(" step_every_cycle=true"));
    }

    #[test]
    fn degenerate_sampling_parameters_are_rejected_at_build() {
        assert_eq!(
            SystemConfig::builder()
                .sample(SampleConfig { interval: 0, k: 4 })
                .build()
                .unwrap_err(),
            ConfigError::ZeroSampleInterval
        );
        assert_eq!(
            SystemConfig::builder()
                .sample(SampleConfig {
                    interval: 1000,
                    k: 0
                })
                .build()
                .unwrap_err(),
            ConfigError::ZeroSampleK
        );
        assert!(SystemConfig::builder()
            .sample(SampleConfig {
                interval: 1000,
                k: 1
            })
            .build()
            .is_ok());
    }

    #[test]
    fn single_core_leaves_cache_key_untouched() {
        let base = SystemConfig::base();
        assert_eq!(base.cores, 1);
        assert!(!base.cache_key().contains("cores="));
    }

    #[test]
    fn cores_fragment_fingerprints_the_cache_key() {
        let mp = SystemConfig::builder().cores(4).build().unwrap();
        let key = mp.cache_key();
        // The cores fragment follows the mechanism block and precedes the
        // memory/sample/step suffixes.
        assert!(key.contains(" slack=false cores=4"), "{key}");
        let stacked = SystemConfig::builder()
            .cores(2)
            .memory(MemBackendConfig::Banked(
                crate::dram::BankedDramConfig::DDR4,
            ))
            .sample(SampleConfig {
                interval: 500,
                k: 3,
            })
            .step_every_cycle()
            .build()
            .unwrap();
        let key = stacked.cache_key();
        let cores = key.find(" cores=2").expect("cores fragment");
        let dram = key.find(" dram=banked").expect("dram fragment");
        let sample = key.find(" sample=").expect("sample fragment");
        assert!(cores < dram && dram < sample, "{key}");
        assert!(key.ends_with(" step_every_cycle=true"), "{key}");
    }

    #[test]
    fn multi_core_rejects_single_core_mechanisms() {
        assert_eq!(
            SystemConfig::builder().cores(0).build().unwrap_err(),
            ConfigError::ZeroCores
        );
        assert_eq!(
            SystemConfig::builder()
                .cores(MAX_CORES + 1)
                .build()
                .unwrap_err(),
            ConfigError::TooManyCores
        );
        assert_eq!(
            SystemConfig::builder()
                .cores(2)
                .decay(16_384)
                .build()
                .unwrap_err(),
            ConfigError::MultiCoreWithMechanism
        );
        assert_eq!(
            SystemConfig::builder()
                .cores(2)
                .oracle_l1()
                .build()
                .unwrap_err(),
            ConfigError::MultiCoreWithMechanism
        );
        // An issuing prefetcher is rejected; predict-only scoring passes.
        let tk = PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB);
        assert_eq!(
            SystemConfig::builder()
                .cores(2)
                .prefetch(tk)
                .build()
                .unwrap_err(),
            ConfigError::MultiCoreIssuingPrefetcher
        );
        assert!(SystemConfig::builder()
            .cores(2)
            .prefetch(tk)
            .predict_only()
            .build()
            .is_ok());
        // Every victim mode is supported at N cores.
        assert!(SystemConfig::builder()
            .cores(4)
            .victim(VictimMode::paper_dead_time())
            .build()
            .is_ok());
    }

    #[test]
    #[allow(deprecated)] // pins the alias-to-backend equivalence
    fn deprecated_mem_latency_alias_keeps_cache_keys_identical() {
        // The deprecated `MachineConfig::mem_latency` alias is still the
        // Fixed backend's latency source: the base key pins it in the
        // machine fragment, and writing through the alias is observable
        // in the key exactly as it was before the deprecation.
        let base = SystemConfig::base();
        assert!(
            base.cache_key().contains("lat=1/12/70,"),
            "{}",
            base.cache_key()
        );
        assert_eq!(
            base.cache_key(),
            SystemConfig::builder()
                .memory(MemBackendConfig::Fixed)
                .build()
                .unwrap()
                .cache_key(),
            "an explicit Fixed backend must alias the default exactly"
        );
        let mut slow = base;
        slow.machine.mem_latency = 140;
        assert!(slow.cache_key().contains("lat=1/12/140,"));
        assert_eq!(
            slow.cache_key().replace("lat=1/12/140,", "lat=1/12/70,"),
            base.cache_key()
        );
    }

    #[test]
    fn config_constructors() {
        assert_eq!(SystemConfig::base().victim, VictimMode::None);
        assert_eq!(
            SystemConfig::with_victim(VictimMode::paper_dead_time()).victim,
            VictimMode::DeadTime { threshold: 1024 }
        );
        assert_eq!(SystemConfig::ideal().l1_mode, L1Mode::ColdOnly);
        let pf =
            SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB));
        assert!(matches!(pf.prefetch, PrefetchMode::Timekeeping(_)));
    }
}
