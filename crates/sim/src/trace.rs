//! Instruction-stream types consumed by the core model.
//!
//! The simulator is trace-driven: a workload produces a deterministic
//! stream of [`Instr`]s. Memory references carry a synthetic program
//! counter so PC-based predictors (the DBCP baseline) can be exercised
//! faithfully.

use timekeeping::{Addr, Pc};

/// A memory reference: address plus the PC of the referencing instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Byte address referenced.
    pub addr: Addr,
    /// Program counter of the instruction.
    pub pc: Pc,
}

impl MemRef {
    /// Creates a memory reference.
    pub fn new(addr: Addr, pc: Pc) -> Self {
        MemRef { addr, pc }
    }
}

/// One instruction of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// A non-memory instruction (ALU/FPU/branch); completes in one cycle.
    Op,
    /// A load; completes when the data returns.
    Load(MemRef),
    /// A load whose *address* depends on the previous chained load's data
    /// (pointer chasing): it cannot start until that load completes, so
    /// chained-load latencies serialize instead of overlapping in the
    /// window. This is how latency-bound reference patterns (mcf's lists,
    /// twolf's graphs) are expressed.
    ChainedLoad(MemRef),
    /// A store; retires through the write buffer without stalling but
    /// still accesses (and allocates in) the data cache.
    Store(MemRef),
    /// A compiler-inserted software prefetch. Per §2.2 of the paper these
    /// are treated as normal memory references, but the simulator can also
    /// be configured to drop them (the §5.2.3 sensitivity experiment).
    SwPrefetch(MemRef),
}

impl Instr {
    /// The memory reference carried by this instruction, if any.
    pub fn mem_ref(&self) -> Option<&MemRef> {
        match self {
            Instr::Op => None,
            Instr::Load(m) | Instr::ChainedLoad(m) | Instr::Store(m) | Instr::SwPrefetch(m) => {
                Some(m)
            }
        }
    }

    /// True for loads, stores and software prefetches.
    pub fn is_mem(&self) -> bool {
        !matches!(self, Instr::Op)
    }
}

/// A deterministic instruction-stream source.
///
/// Implementations must be infinite (the runner decides how many
/// instructions to simulate) and deterministic for a given construction
/// seed, so every figure regenerates bit-for-bit.
pub trait Workload {
    /// Produces the next instruction.
    fn next_instr(&mut self) -> Instr;

    /// A short name for reports.
    fn name(&self) -> &str;

    /// An independent copy that will produce the identical future
    /// instruction stream, or `None` if this source cannot be duplicated
    /// mid-stream. Statistical sampling ([`crate::sample`]) needs a fork
    /// for its profiling pass; workloads without one fall back to full
    /// simulation.
    fn fork(&self) -> Option<Box<dyn Workload>> {
        None
    }

    /// Splits this workload into `cores` independent per-core instruction
    /// streams for a multi-core run ([`crate::multicore`]).
    ///
    /// The default is "rate mode": every core runs an identical
    /// [`fork`](Workload::fork) of this stream, which maximizes sharing
    /// and therefore coherence traffic. Heterogeneous mixes (one program
    /// per core) override this — see `ConcurrentMix` in `tk-workloads`.
    /// Returns `None` when the source cannot be duplicated.
    fn per_core_streams(&self, cores: u32) -> Option<Vec<Box<dyn Workload>>> {
        (0..cores).map(|_| self.fork()).collect()
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn next_instr(&mut self) -> Instr {
        (**self).next_instr()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn fork(&self) -> Option<Box<dyn Workload>> {
        (**self).fork()
    }

    fn per_core_streams(&self, cores: u32) -> Option<Vec<Box<dyn Workload>>> {
        (**self).per_core_streams(cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_ref_extraction() {
        let m = MemRef::new(Addr::new(64), Pc::new(4));
        assert_eq!(Instr::Load(m).mem_ref(), Some(&m));
        assert_eq!(Instr::Store(m).mem_ref(), Some(&m));
        assert_eq!(Instr::SwPrefetch(m).mem_ref(), Some(&m));
        assert_eq!(Instr::Op.mem_ref(), None);
        assert!(Instr::Load(m).is_mem());
        assert!(!Instr::Op.is_mem());
    }

    #[test]
    fn boxed_workload_delegates() {
        struct W(u64);
        impl Workload for W {
            fn next_instr(&mut self) -> Instr {
                self.0 += 1;
                Instr::Op
            }
            fn name(&self) -> &str {
                "w"
            }
        }
        let mut b: Box<dyn Workload> = Box::new(W(0));
        assert_eq!(b.next_instr(), Instr::Op);
        assert_eq!(b.name(), "w");
    }
}
