//! Trace-driven out-of-order core timing model.
//!
//! An 8-wide, 128-entry-window machine in the style of the paper's
//! SimpleScalar configuration: instructions enter the window in program
//! order (up to `issue_width` per cycle, blocking when the window is
//! full), execute with their individual latencies (memory operations ask
//! the [`MemorySystem`] for a completion
//! time, which embeds cache, bus and MSHR contention), and retire in
//! order (up to `commit_width` per cycle). Memory-level parallelism
//! emerges naturally: independent misses overlap until the window fills.

use timekeeping::snapshot::{Json, Snapshot, SnapshotError};
use timekeeping::Cycle;

use crate::config::SystemConfig;
use crate::hierarchy::MemorySystem;
use crate::trace::{Instr, Workload};

/// Execution statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Software prefetches executed (0 if dropped by config).
    pub sw_prefetches: u64,
    /// Cycles in which no instruction could enter the window
    /// (window-full stalls).
    pub window_full_cycles: u64,
}

impl CoreStats {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

impl Snapshot for CoreStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("instructions", Json::U64(self.instructions)),
            ("cycles", Json::U64(self.cycles)),
            ("loads", Json::U64(self.loads)),
            ("stores", Json::U64(self.stores)),
            ("sw_prefetches", Json::U64(self.sw_prefetches)),
            ("window_full_cycles", Json::U64(self.window_full_cycles)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, SnapshotError> {
        Ok(CoreStats {
            instructions: v.u64_field("instructions")?,
            cycles: v.u64_field("cycles")?,
            loads: v.u64_field("loads")?,
            stores: v.u64_field("stores")?,
            sw_prefetches: v.u64_field("sw_prefetches")?,
            window_full_cycles: v.u64_field("window_full_cycles")?,
        })
    }
}

/// The core model. Owns nothing but its window; drive it with
/// [`run`](OooCore::run).
#[derive(Debug)]
pub struct OooCore {
    issue_width: usize,
    window_size: usize,
    commit_width: usize,
    /// Completion cycles of in-flight instructions, in program order.
    window: std::collections::VecDeque<Cycle>,
    /// A fetched chained load waiting for its address to become available.
    stalled: Option<Instr>,
}

impl OooCore {
    /// Creates a core with the window parameters of `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        let m = &cfg.machine;
        OooCore {
            issue_width: m.issue_width as usize,
            window_size: m.window_size as usize,
            commit_width: m.commit_width as usize,
            window: std::collections::VecDeque::with_capacity(m.window_size as usize),
            stalled: None,
        }
    }

    /// Runs `max_instructions` instructions of `workload` against `mem`,
    /// returning the core statistics. Deterministic for a given workload
    /// state.
    pub fn run<W: Workload + ?Sized>(
        &mut self,
        workload: &mut W,
        mem: &mut MemorySystem,
        max_instructions: u64,
    ) -> CoreStats {
        let mut stats = CoreStats::default();
        let ignore_swpf = mem.config().ignore_sw_prefetch;
        let step_every_cycle = mem.config().step_every_cycle;
        let mut cycle = Cycle::ZERO;
        let mut fetched: u64 = 0;
        // Completion time of the most recent chained load: the next
        // chained load's address is not known before this.
        let mut chain_ready = Cycle::ZERO;
        loop {
            mem.advance(cycle);

            // Retire in order.
            let mut retired = 0;
            while retired < self.commit_width {
                match self.window.front() {
                    Some(&ready) if ready <= cycle => {
                        self.window.pop_front();
                        stats.instructions += 1;
                        retired += 1;
                    }
                    _ => break,
                }
            }
            if stats.instructions >= max_instructions && self.window.is_empty() {
                break;
            }

            // Issue in order while the window has room.
            let mut issued = 0;
            let mut window_was_full = false;
            while issued < self.issue_width && fetched < max_instructions {
                if self.window.len() >= self.window_size {
                    window_was_full = true;
                    break;
                }
                let instr = match self.stalled.take() {
                    Some(i) => i,
                    None => workload.next_instr(),
                };
                // A chained load cannot access the cache before the
                // previous chained load has produced its address; issue
                // stalls until then.
                if let Instr::ChainedLoad(_) = instr {
                    if chain_ready > cycle {
                        self.stalled = Some(instr);
                        break;
                    }
                }
                let ready = match instr {
                    Instr::Op => cycle + 1,
                    Instr::Load(m) => {
                        stats.loads += 1;
                        mem.access(&m, false, cycle).ready_at
                    }
                    Instr::ChainedLoad(m) => {
                        stats.loads += 1;
                        let ready = mem.access(&m, false, cycle).ready_at;
                        chain_ready = ready;
                        ready
                    }
                    Instr::Store(m) => {
                        stats.stores += 1;
                        // Stores retire through the write buffer: the cache
                        // is updated but the core does not wait for data.
                        mem.access(&m, true, cycle);
                        cycle + 1
                    }
                    Instr::SwPrefetch(m) => {
                        if ignore_swpf {
                            cycle + 1
                        } else {
                            stats.sw_prefetches += 1;
                            // Treated as a normal memory reference (§2.2)
                            // that does not block retirement.
                            mem.access(&m, false, cycle);
                            cycle + 1
                        }
                    }
                };
                self.window.push_back(ready);
                fetched += 1;
                issued += 1;
            }
            if window_was_full {
                stats.window_full_cycles += 1;
            }

            // Event-driven clock hopping: when the next cycle can neither
            // retire (window head not ready) nor issue (window full, no
            // more instructions to fetch, or a stalled chained load whose
            // address is not ready), every cycle up to the earliest wake-up
            // source is provably a no-op — the window's completion times
            // are fixed at issue, and the memory system replays its own
            // events inside `advance`. Hop straight there, bulk-accounting
            // the skipped span. `step_every_cycle` keeps the original
            // per-cycle reference loop for differential testing.
            let mut next = cycle + 1;
            if !step_every_cycle {
                let blocked = fetched >= max_instructions
                    || self.window.len() >= self.window_size
                    || self.stalled.is_some();
                if blocked {
                    // The earliest cycle at which anything can happen:
                    // in-order retirement of the window head, a stalled
                    // chained load's address becoming available, or the
                    // memory system's next self-scheduled event.
                    let mut wake = Cycle::new(u64::MAX);
                    if let Some(&front) = self.window.front() {
                        wake = front;
                    }
                    if self.stalled.is_some() && chain_ready < wake {
                        wake = chain_ready;
                    }
                    if let Some(e) = mem.next_event(cycle) {
                        if e < wake {
                            wake = e;
                        }
                    }
                    if wake > next {
                        // Every skipped cycle would have counted as a
                        // window-full stall iff the issue loop ran and hit
                        // a full window — exactly this condition.
                        if self.window.len() >= self.window_size && fetched < max_instructions {
                            stats.window_full_cycles += wake.get() - next.get();
                        }
                        next = wake;
                    }
                }
            }
            cycle = next;
            stats.cycles = cycle.get();
        }
        mem.finish(cycle);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemRef;
    use timekeeping::{Addr, Pc};

    /// All-ALU workload: IPC should approach the issue width.
    struct AllOps;
    impl Workload for AllOps {
        fn next_instr(&mut self) -> Instr {
            Instr::Op
        }
        fn name(&self) -> &str {
            "all-ops"
        }
    }

    /// Pointer-chase-like: every instruction is a load to a new line,
    /// serialized by nothing but bandwidth. Strides one 64 B L2 block per
    /// access, so every reference opens a new line at both cache levels.
    struct MissStream(u64);
    impl Workload for MissStream {
        fn next_instr(&mut self) -> Instr {
            self.0 += 1;
            Instr::Load(MemRef::new(Addr::new(self.0 * 64), Pc::new(4)))
        }
        fn name(&self) -> &str {
            "miss-stream"
        }
    }

    /// Loads that always hit one cached line.
    struct HitStream;
    impl Workload for HitStream {
        fn next_instr(&mut self) -> Instr {
            Instr::Load(MemRef::new(Addr::new(0x40), Pc::new(4)))
        }
        fn name(&self) -> &str {
            "hit-stream"
        }
    }

    #[test]
    fn alu_ipc_approaches_issue_width() {
        let cfg = SystemConfig::base();
        let mut core = OooCore::new(&cfg);
        let mut mem = MemorySystem::new(cfg);
        let stats = core.run(&mut AllOps, &mut mem, 10_000);
        assert_eq!(stats.instructions, 10_000);
        assert!(
            stats.ipc() > 7.0,
            "ALU-only IPC must be near 8, got {}",
            stats.ipc()
        );
    }

    #[test]
    fn hit_stream_is_fast() {
        let cfg = SystemConfig::base();
        let mut core = OooCore::new(&cfg);
        let mut mem = MemorySystem::new(cfg);
        let stats = core.run(&mut HitStream, &mut mem, 10_000);
        assert!(
            stats.ipc() > 6.0,
            "L1-hit IPC must be high, got {}",
            stats.ipc()
        );
        assert_eq!(stats.loads, 10_000);
    }

    #[test]
    fn miss_stream_strides_exactly_one_l2_block() {
        // Pin the intended stride: one 64 B L2 block (and therefore a new
        // 32 B L1 line) per access. A double-scaling bug here once made the
        // stride 4096 B, turning the "new line every load" workload into an
        // 8-set conflict sweep.
        let mut w = MissStream(0);
        let addr_of = |i: Instr| match i {
            Instr::Load(m) => m.addr.get(),
            other => panic!("MissStream must produce loads, got {other:?}"),
        };
        let mut prev = addr_of(w.next_instr());
        for _ in 0..16 {
            let cur = addr_of(w.next_instr());
            assert_eq!(cur - prev, 64, "stride must be one 64 B L2 block");
            prev = cur;
        }
    }

    #[test]
    fn miss_stream_is_memory_bound() {
        let cfg = SystemConfig::base();
        let mut core = OooCore::new(&cfg);
        let mut mem = MemorySystem::new(cfg);
        let stats = core.run(&mut MissStream(0), &mut mem, 5_000);
        // Every load misses to memory; the window and MSHRs bound MLP.
        assert!(
            stats.ipc() < 4.0,
            "all-miss IPC must be memory-bound, got {}",
            stats.ipc()
        );
        assert!(mem.stats().l1_misses() >= 4_999);
        assert!(
            stats.window_full_cycles > 0,
            "the window must fill under misses"
        );
    }

    #[test]
    fn misses_overlap_up_to_window() {
        // With a 128-entry window and 64 MSHRs, independent misses overlap:
        // total time must be far below misses x full-latency.
        let cfg = SystemConfig::base();
        let mut core = OooCore::new(&cfg);
        let mut mem = MemorySystem::new(cfg);
        let stats = core.run(&mut MissStream(10_000), &mut mem, 2_000);
        let serial_estimate = 2_000u64 * 88; // full cold-miss latency each
        assert!(
            stats.cycles < serial_estimate / 4,
            "MLP must overlap misses: {} cycles vs serial {}",
            stats.cycles,
            serial_estimate
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SystemConfig::base();
        let run = || {
            let mut core = OooCore::new(&cfg);
            let mut mem = MemorySystem::new(cfg);
            core.run(&mut MissStream(42), &mut mem, 3_000)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ignore_sw_prefetch_config() {
        struct PfStream;
        impl Workload for PfStream {
            fn next_instr(&mut self) -> Instr {
                Instr::SwPrefetch(MemRef::new(Addr::new(0x40), Pc::new(4)))
            }
            fn name(&self) -> &str {
                "pf-stream"
            }
        }
        let mut cfg = SystemConfig::base();
        cfg.ignore_sw_prefetch = true;
        let mut core = OooCore::new(&cfg);
        let mut mem = MemorySystem::new(cfg);
        let stats = core.run(&mut PfStream, &mut mem, 1_000);
        assert_eq!(stats.sw_prefetches, 0);
        assert_eq!(mem.stats().l1_accesses, 0);

        let cfg2 = SystemConfig::base();
        let mut core2 = OooCore::new(&cfg2);
        let mut mem2 = MemorySystem::new(cfg2);
        let stats2 = core2.run(&mut PfStream, &mut mem2, 1_000);
        assert_eq!(stats2.sw_prefetches, 1_000);
        assert_eq!(mem2.stats().l1_accesses, 1_000);
    }

    #[test]
    fn stores_do_not_block_retirement() {
        struct StoreMissStream(u64);
        impl Workload for StoreMissStream {
            fn next_instr(&mut self) -> Instr {
                self.0 += 1;
                Instr::Store(MemRef::new(Addr::new(self.0 * 64 * 1024), Pc::new(4)))
            }
            fn name(&self) -> &str {
                "store-miss"
            }
        }
        let cfg = SystemConfig::base();
        let mut core = OooCore::new(&cfg);
        let mut mem = MemorySystem::new(cfg);
        let stats = core.run(&mut StoreMissStream(0), &mut mem, 2_000);
        assert!(
            stats.ipc() > 4.0,
            "store misses retire through the write buffer, got {}",
            stats.ipc()
        );
        assert_eq!(stats.stores, 2_000);
    }
}
