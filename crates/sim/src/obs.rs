//! The observability plane: structured event tracing and self-profiling.
//!
//! The simulator's own behavior is observable through the same staged
//! pipeline that drives the model (see [`crate::pipeline`]): a
//! [`TraceObserver`] registered as the *sixth* [`MemObserver`] streams
//! every Lookup/Hit/Miss/Fill/Evict event — plus generation open/close
//! and prefetch fire/arrival/discard — as compact [`TraceRecord`]s
//! through a bounded ring buffer into a binary sink and a JSONL sink.
//! A [`Profiler`] wraps scoped monotonic timers around the access path,
//! each observer dispatch, the clock-hopping fast path and the final
//! flush, and reports the wall-time breakdown (plus a hop-length
//! histogram) through the serde-free [`Snapshot`] plane.
//!
//! # Zero-cost-when-off contract
//!
//! Observability is configured **process-globally** (like the lockstep
//! checker's [`set_lockstep_check`](crate::set_lockstep_check)), *not*
//! through [`SystemConfig`](crate::SystemConfig) — so enabling a trace
//! never perturbs memo keys, disk-cache keys or golden digests. When
//! disabled (the default), a [`MemorySystem`](crate::MemorySystem)
//! carries `None` for both the trace observer and the profiler: no
//! allocation happens at construction
//! ([`MemorySystem::obs_trace_capacity`](crate::MemorySystem::obs_trace_capacity)
//! returns 0, asserted by `core_bench` exactly like the PR-4
//! no-per-tick-allocation invariant) and the per-event cost is a single
//! `Option` branch. Traced and untraced runs are bit-identical: the
//! trace observer runs last and writes nothing into the
//! [`Reactions`] scratchpad.
//!
//! # Sampling semantics
//!
//! `--trace` optionally filters by category
//! ([`TraceCategories::parse`]) and samples **1-in-N L1 sets**
//! ([`set_trace_sample`]): a record is kept iff its line's L1 set index
//! is divisible by N. Sampling by set (not by record) keeps every
//! record of a sampled set, so per-line generation stories stay intact
//! — the property per-record sampling would destroy.

use std::fs::File;
use std::io::{BufRead, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use timekeeping::snapshot::{Json, Snapshot, SnapshotError};
use timekeeping::{CacheGeometry, Cycle, EvictCause, Histogram, LineAddr, MissKind};

use crate::pipeline::{
    C2cEvent, EvictEvent, FillEvent, HitEvent, InvalidateEvent, LookupEvent, MemObserver,
    MissEvent, Reactions, SnoopEvent,
};

// ---------------------------------------------------------------------------
// Categories
// ---------------------------------------------------------------------------

/// One filterable family of trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCategory {
    /// Every reference, before the L1 probe.
    Lookup,
    /// L1 hits.
    Hit,
    /// L1 misses (after ground-truth classification).
    Miss,
    /// Lines entering L1 frames (demand and prefetch fills).
    Fill,
    /// Lines leaving L1 frames.
    Evict,
    /// Generation open/close markers.
    Gen,
    /// Prefetch lifecycle: fire (issue), arrival, discard.
    Prefetch,
    /// DRAM device events (banked backend only): reads and writebacks
    /// reaching the memory device, with their row-buffer outcome.
    Dram,
    /// Statistical-sampling markers (sampled runs only): one record per
    /// representative interval entering timed simulation.
    Sample,
    /// Coherence traffic (multi-core runs only): bus snoops,
    /// invalidations, and cache-to-cache transfers.
    Coherence,
    /// The raw demand-reference stream (one record per load/store
    /// entering the L1, before any cache state is consulted) — the
    /// capture side of the capture→replay loop: `tk_trace_export`
    /// turns these records into a replayable trace file. **Opt-in
    /// only**: excluded from [`TraceCategories::all`] (and therefore
    /// from bare `--trace`) because one record per reference dwarfs
    /// every other category; select it explicitly with `--trace=ref`.
    Ref,
}

impl TraceCategory {
    /// Every category, in presentation order.
    pub const ALL: [TraceCategory; 11] = [
        TraceCategory::Lookup,
        TraceCategory::Hit,
        TraceCategory::Miss,
        TraceCategory::Fill,
        TraceCategory::Evict,
        TraceCategory::Gen,
        TraceCategory::Prefetch,
        TraceCategory::Dram,
        TraceCategory::Sample,
        TraceCategory::Coherence,
        TraceCategory::Ref,
    ];

    /// The canonical lowercase name (what `--trace=CATS` accepts).
    pub fn name(self) -> &'static str {
        match self {
            TraceCategory::Lookup => "lookup",
            TraceCategory::Hit => "hit",
            TraceCategory::Miss => "miss",
            TraceCategory::Fill => "fill",
            TraceCategory::Evict => "evict",
            TraceCategory::Gen => "gen",
            TraceCategory::Prefetch => "prefetch",
            TraceCategory::Dram => "dram",
            TraceCategory::Sample => "sample",
            TraceCategory::Coherence => "coh",
            TraceCategory::Ref => "ref",
        }
    }

    fn bit(self) -> u16 {
        match self {
            TraceCategory::Lookup => 1 << 0,
            TraceCategory::Hit => 1 << 1,
            TraceCategory::Miss => 1 << 2,
            TraceCategory::Fill => 1 << 3,
            TraceCategory::Evict => 1 << 4,
            TraceCategory::Gen => 1 << 5,
            TraceCategory::Prefetch => 1 << 6,
            TraceCategory::Dram => 1 << 7,
            TraceCategory::Sample => 1 << 8,
            TraceCategory::Coherence => 1 << 9,
            TraceCategory::Ref => 1 << 10,
        }
    }
}

/// A set of [`TraceCategory`]s, as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCategories(u16);

impl TraceCategories {
    /// The empty set.
    pub fn none() -> Self {
        TraceCategories(0)
    }

    /// Every category **except** [`TraceCategory::Ref`], which is
    /// opt-in only (`--trace=ref`): the per-reference capture stream
    /// would dwarf every other category, and excluding it keeps bare
    /// `--trace` output (and the golden obs summaries pinned against
    /// it) unchanged.
    pub fn all() -> Self {
        TraceCategory::ALL
            .iter()
            .filter(|&&c| c != TraceCategory::Ref)
            .fold(Self::none(), |s, &c| s.with(c))
    }

    /// This set plus `cat`.
    pub fn with(self, cat: TraceCategory) -> Self {
        TraceCategories(self.0 | cat.bit())
    }

    /// Whether `cat` is in the set.
    pub fn contains(self, cat: TraceCategory) -> bool {
        self.0 & cat.bit() != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Parses a comma-separated category list (`"miss,fill,evict"`).
    /// `"all"` selects everything except the opt-in `ref` capture
    /// category (combine as `"all,ref"` to add it); `"pf"` is an alias
    /// for `"prefetch"` and `"coherence"` for `"coh"`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown category.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut out = Self::none();
        for part in s.split(',') {
            let part = part.trim().to_ascii_lowercase();
            if part.is_empty() {
                continue;
            }
            if part == "all" {
                out = TraceCategories(out.0 | Self::all().0);
                continue;
            }
            let cat = TraceCategory::ALL.iter().copied().find(|c| {
                c.name() == part
                    || (part == "pf" && *c == TraceCategory::Prefetch)
                    || (part == "coherence" && *c == TraceCategory::Coherence)
            });
            match cat {
                Some(c) => out = out.with(c),
                None => {
                    return Err(format!(
                        "unknown trace category `{part}` (known: {}, all)",
                        TraceCategory::ALL.map(|c| c.name()).join(", ")
                    ))
                }
            }
        }
        if out.is_empty() {
            return Err("empty trace category list".to_owned());
        }
        Ok(out)
    }
}

impl std::fmt::Display for TraceCategories {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = TraceCategory::ALL
            .iter()
            .filter(|c| self.contains(**c))
            .map(|c| c.name())
            .collect();
        write!(f, "{}", names.join(","))
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// The kind of one trace record. Each kind belongs to one
/// [`TraceCategory`] (see [`TraceKind::category`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A reference probing the L1 (`aux` = PC).
    Lookup = 0,
    /// An L1 hit (`aux` = frame).
    Hit = 1,
    /// An L1 miss (`aux` = [`MissKind`] code: 0 cold, 1 conflict,
    /// 2 capacity).
    Miss = 2,
    /// A line entering a frame (`aux` = frame×2 + demand bit).
    Fill = 3,
    /// A line leaving a frame (`aux` = [`EvictCause`] code: 0 demand,
    /// 1 prefetch, 2 flush).
    Evict = 4,
    /// A generation opened in a frame (`aux` = frame).
    GenOpen = 5,
    /// A generation closed (`aux` = live time of the closed generation).
    GenClose = 6,
    /// A prefetch issued to the lower hierarchy (`aux` = arrival cycle).
    PfFire = 7,
    /// A prefetch fill landed in the L1 (`aux` = frame).
    PfArrival = 8,
    /// A prefetch was discarded (`aux`: 0 queue overflow,
    /// 1 displaced-resident-live drop).
    PfDiscard = 9,
    /// A read reached the DRAM device (banked backend only; `aux` =
    /// [`RowOutcome`](crate::dram::RowOutcome) code: 0 hit, 1 closed,
    /// 2 conflict).
    DramRead = 10,
    /// A writeback reached the DRAM device (banked backend only; `aux`
    /// as for [`TraceKind::DramRead`]).
    DramWrite = 11,
    /// A representative interval entered timed simulation (sampled runs
    /// only; `line` = interval index, `aux` = cluster weight in
    /// intervals).
    SampleRep = 12,
    /// A coherence bus transaction snooped by every core (multi-core
    /// only; `aux` = requester core + kind×256: 0 BusRd, 1 BusRdX,
    /// 2 upgrade).
    Snoop = 13,
    /// A line copy killed by coherence (multi-core only; `aux` = the
    /// owning core that lost the copy).
    Invalidate = 14,
    /// A cache-to-cache transfer: a modified line supplied by its owner
    /// (multi-core only; `aux` = from core + to core×256).
    C2c = 15,
    /// A demand reference entering the L1, recorded before any cache
    /// state is consulted (`--trace=ref` only; `line` = L1 line
    /// address, `aux` = PC×2 + store bit). `tk_trace_export` rebuilds a
    /// replayable trace file from these records.
    Access = 16,
}

impl TraceKind {
    /// Every kind, indexable by its `u8` value.
    pub const ALL: [TraceKind; 17] = [
        TraceKind::Lookup,
        TraceKind::Hit,
        TraceKind::Miss,
        TraceKind::Fill,
        TraceKind::Evict,
        TraceKind::GenOpen,
        TraceKind::GenClose,
        TraceKind::PfFire,
        TraceKind::PfArrival,
        TraceKind::PfDiscard,
        TraceKind::DramRead,
        TraceKind::DramWrite,
        TraceKind::SampleRep,
        TraceKind::Snoop,
        TraceKind::Invalidate,
        TraceKind::C2c,
        TraceKind::Access,
    ];

    /// The canonical name used in the JSONL encoding and summaries.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Lookup => "lookup",
            TraceKind::Hit => "hit",
            TraceKind::Miss => "miss",
            TraceKind::Fill => "fill",
            TraceKind::Evict => "evict",
            TraceKind::GenOpen => "gen_open",
            TraceKind::GenClose => "gen_close",
            TraceKind::PfFire => "pf_fire",
            TraceKind::PfArrival => "pf_arrival",
            TraceKind::PfDiscard => "pf_discard",
            TraceKind::DramRead => "dram_read",
            TraceKind::DramWrite => "dram_write",
            TraceKind::SampleRep => "sample_rep",
            TraceKind::Snoop => "snoop",
            TraceKind::Invalidate => "invalidate",
            TraceKind::C2c => "c2c",
            TraceKind::Access => "access",
        }
    }

    /// The filter category this kind belongs to.
    pub fn category(self) -> TraceCategory {
        match self {
            TraceKind::Lookup => TraceCategory::Lookup,
            TraceKind::Hit => TraceCategory::Hit,
            TraceKind::Miss => TraceCategory::Miss,
            TraceKind::Fill => TraceCategory::Fill,
            TraceKind::Evict => TraceCategory::Evict,
            TraceKind::GenOpen | TraceKind::GenClose => TraceCategory::Gen,
            TraceKind::PfFire | TraceKind::PfArrival | TraceKind::PfDiscard => {
                TraceCategory::Prefetch
            }
            TraceKind::DramRead | TraceKind::DramWrite => TraceCategory::Dram,
            TraceKind::SampleRep => TraceCategory::Sample,
            TraceKind::Snoop | TraceKind::Invalidate | TraceKind::C2c => TraceCategory::Coherence,
            TraceKind::Access => TraceCategory::Ref,
        }
    }

    /// Decodes a binary kind byte.
    pub fn from_u8(v: u8) -> Option<TraceKind> {
        Self::ALL.get(v as usize).copied()
    }

    /// Decodes a JSONL kind name.
    pub fn from_name(name: &str) -> Option<TraceKind> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// One flat trace record. The meaning of `aux` depends on the kind —
/// see the [`TraceKind`] variant docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// What happened.
    pub kind: TraceKind,
    /// When (core cycle; for decay-closed generations this is the
    /// switch-off point, which precedes the discovering access).
    pub cycle: u64,
    /// The line address involved.
    pub line: u64,
    /// Kind-specific payload.
    pub aux: u64,
}

/// Magic header opening every binary trace file.
pub const TRACE_MAGIC: &[u8; 8] = b"TKTRACE1";

/// Size of one binary-encoded record.
pub const RECORD_BYTES: usize = 25;

impl TraceRecord {
    /// Encodes the record into its 25-byte little-endian binary form.
    pub fn to_bytes(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[0] = self.kind as u8;
        out[1..9].copy_from_slice(&self.cycle.to_le_bytes());
        out[9..17].copy_from_slice(&self.line.to_le_bytes());
        out[17..25].copy_from_slice(&self.aux.to_le_bytes());
        out
    }

    /// Decodes one 25-byte binary record.
    ///
    /// # Errors
    ///
    /// Returns a message on an unknown kind byte.
    pub fn from_bytes(b: &[u8; RECORD_BYTES]) -> Result<Self, String> {
        let kind = TraceKind::from_u8(b[0]).ok_or_else(|| format!("unknown kind byte {}", b[0]))?;
        let word = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
        Ok(TraceRecord {
            kind,
            cycle: word(1),
            line: word(9),
            aux: word(17),
        })
    }

    /// One human-readable line for `tk_obs_dump --pretty`.
    pub fn pretty(&self) -> String {
        format!(
            "{:>12}  {:<10}  line {:#x}  aux {}",
            self.cycle,
            self.kind.name(),
            self.line,
            self.aux
        )
    }
}

impl Snapshot for TraceRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::Str(self.kind.name().to_owned())),
            ("cycle", Json::U64(self.cycle)),
            ("line", Json::U64(self.line)),
            ("aux", Json::U64(self.aux)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, SnapshotError> {
        let name = v.get("kind")?.as_str()?;
        let kind = TraceKind::from_name(name)
            .ok_or_else(|| SnapshotError::new(format!("unknown trace kind `{name}`")))?;
        Ok(TraceRecord {
            kind,
            cycle: v.u64_field("cycle")?,
            line: v.u64_field("line")?,
            aux: v.u64_field("aux")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Process-global configuration
// ---------------------------------------------------------------------------

/// The process-wide observability configuration, set by the shared
/// `--trace[=CATS]` / `--profile` / `--obs-out DIR` CLI flags and read
/// once per [`MemorySystem`](crate::MemorySystem) construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Categories to trace; `None` disables tracing entirely.
    pub trace: Option<TraceCategories>,
    /// 1-in-N set sampling divisor (1 = every set).
    pub sample: u64,
    /// Whether self-profiling is enabled.
    pub profile: bool,
    /// Directory receiving trace/profile files; `None` keeps traces in
    /// memory (tests) and profile reports on stderr.
    pub out_dir: Option<PathBuf>,
}

impl ObsConfig {
    /// The disabled default.
    pub fn disabled() -> Self {
        ObsConfig {
            trace: None,
            sample: 1,
            profile: false,
            out_dir: None,
        }
    }
}

static OBS_CONFIG: Mutex<Option<ObsConfig>> = Mutex::new(None);
static OBS_SEQ: AtomicU64 = AtomicU64::new(0);

fn with_config<R>(f: impl FnOnce(&mut ObsConfig) -> R) -> R {
    let mut guard = OBS_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(ObsConfig::disabled))
}

/// The current process-wide observability configuration.
pub fn obs_config() -> ObsConfig {
    with_config(|c| c.clone())
}

/// Replaces the whole process-wide observability configuration.
pub fn set_obs_config(cfg: ObsConfig) {
    with_config(|c| *c = cfg);
}

/// Enables (`Some(categories)`) or disables (`None`) event tracing for
/// subsequently constructed memory systems.
pub fn set_trace(cats: Option<TraceCategories>) {
    with_config(|c| c.trace = cats);
}

/// Whether event tracing is currently enabled.
pub fn trace_enabled() -> bool {
    with_config(|c| c.trace.is_some())
}

/// Sets the 1-in-N set-sampling divisor (panics on 0).
pub fn set_trace_sample(n: u64) {
    assert!(n > 0, "sample divisor must be nonzero");
    with_config(|c| c.sample = n);
}

/// Enables or disables self-profiling for subsequently constructed
/// memory systems.
pub fn set_profile(enabled: bool) {
    with_config(|c| c.profile = enabled);
}

/// Sets the output directory for trace and profile files.
pub fn set_out_dir(dir: Option<PathBuf>) {
    with_config(|c| c.out_dir = dir);
}

/// The configured output directory, if any.
pub fn out_dir() -> Option<PathBuf> {
    with_config(|c| c.out_dir.clone())
}

/// Allocates the next per-process observability sequence number (used
/// to name `trace-NNNN.*` / `profile-NNNN.json` files uniquely when
/// several simulations run in one process).
pub fn next_seq() -> u64 {
    OBS_SEQ.fetch_add(1, Ordering::Relaxed) + 1
}

/// Applies one of the shared observability CLI flags, so every binary
/// (the 18 figure binaries through `FigureOpts::parse`, plus
/// `core_bench`'s hand-rolled loop) accepts the identical syntax:
///
/// * `--trace[=CATS]` — enable tracing (all categories by default);
/// * `--trace-sample N` — keep 1-in-N L1 sets;
/// * `--profile` — enable self-profiling;
/// * `--obs-out DIR` — write trace/profile files into `DIR`.
///
/// `inline` is the `=value` part if the flag was written `--flag=value`;
/// `next` yields the following argument for space-separated values.
/// Returns `Ok(true)` when the flag was recognized and applied,
/// `Ok(false)` when it is not an observability flag.
///
/// # Errors
///
/// Returns a message for malformed values (unknown category, zero or
/// non-numeric sample, missing directory operand).
pub fn apply_cli_flag(
    flag: &str,
    inline: Option<&str>,
    next: &mut dyn FnMut() -> Option<String>,
) -> Result<bool, String> {
    match flag {
        "--trace" => {
            let cats = match inline {
                Some(s) => TraceCategories::parse(s)?,
                None => TraceCategories::all(),
            };
            set_trace(Some(cats));
            Ok(true)
        }
        "--trace-sample" => {
            let v = inline
                .map(str::to_owned)
                .or_else(next)
                .ok_or("--trace-sample needs a value")?;
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--trace-sample needs an unsigned integer, got `{v}`"))?;
            if n == 0 {
                return Err("--trace-sample must be at least 1".to_owned());
            }
            set_trace_sample(n);
            Ok(true)
        }
        "--profile" => {
            set_profile(true);
            Ok(true)
        }
        "--obs-out" => {
            let v = inline
                .map(str::to_owned)
                .or_else(next)
                .ok_or("--obs-out needs a directory")?;
            set_out_dir(Some(v.into()));
            Ok(true)
        }
        _ => Ok(false),
    }
}

// ---------------------------------------------------------------------------
// The trace observer
// ---------------------------------------------------------------------------

/// Capacity of the bounded in-flight ring buffer; a full ring flushes
/// wholesale to the sinks.
pub const RING_CAPACITY: usize = 4096;

/// Where flushed records go.
#[derive(Debug)]
enum TraceSink {
    /// Accumulate in memory (tests, the golden `tk_obs_dump` run).
    Memory(Vec<TraceRecord>),
    /// Stream to a binary file and a JSONL file.
    Files {
        bin: BufWriter<File>,
        jsonl: BufWriter<File>,
        bin_path: PathBuf,
        jsonl_path: PathBuf,
    },
}

/// The sixth [`MemObserver`]: streams typed pipeline events as
/// [`TraceRecord`]s through a bounded ring into the configured sinks.
///
/// Dispatched **last**, and writes nothing into [`Reactions`], so its
/// presence cannot change simulation results.
#[derive(Debug)]
pub struct TraceObserver {
    cats: TraceCategories,
    sample: u64,
    geom: CacheGeometry,
    ring: Vec<TraceRecord>,
    sink: TraceSink,
    emitted: u64,
}

impl TraceObserver {
    /// A trace observer accumulating records in memory.
    pub fn memory(cats: TraceCategories, sample: u64, geom: CacheGeometry) -> Self {
        assert!(sample > 0, "sample divisor must be nonzero");
        TraceObserver {
            cats,
            sample,
            geom,
            ring: Vec::with_capacity(RING_CAPACITY),
            sink: TraceSink::Memory(Vec::new()),
            emitted: 0,
        }
    }

    /// A trace observer streaming into `dir/trace-SEQ.bin` and
    /// `dir/trace-SEQ.jsonl`.
    ///
    /// # Errors
    ///
    /// Fails when the directory or files cannot be created.
    pub fn files(
        cats: TraceCategories,
        sample: u64,
        geom: CacheGeometry,
        dir: &std::path::Path,
        seq: u64,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let bin_path = dir.join(format!("trace-{seq:04}.bin"));
        let jsonl_path = dir.join(format!("trace-{seq:04}.jsonl"));
        let mut bin = BufWriter::new(File::create(&bin_path)?);
        bin.write_all(TRACE_MAGIC)?;
        let jsonl = BufWriter::new(File::create(&jsonl_path)?);
        Ok(TraceObserver {
            cats,
            sample,
            geom,
            ring: Vec::with_capacity(RING_CAPACITY),
            sink: TraceSink::Files {
                bin,
                jsonl,
                bin_path,
                jsonl_path,
            },
            emitted: 0,
        })
    }

    /// Records kept so far (post filtering and sampling).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Current ring-buffer capacity in records (the zero-alloc probe
    /// reads this: bounded, and never grows past [`RING_CAPACITY`]).
    pub fn ring_capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Whether this line's set survives 1-in-N sampling.
    #[inline]
    fn sampled(&self, line: LineAddr) -> bool {
        self.sample == 1 || self.geom.index_of_line(line).is_multiple_of(self.sample)
    }

    /// Filters, samples, and pushes one record; flushes a full ring.
    #[inline]
    pub(crate) fn push(&mut self, kind: TraceKind, cycle: Cycle, line: LineAddr, aux: u64) {
        if !self.cats.contains(kind.category()) || !self.sampled(line) {
            return;
        }
        self.ring.push(TraceRecord {
            kind,
            cycle: cycle.get(),
            line: line.get(),
            aux,
        });
        self.emitted += 1;
        if self.ring.len() >= RING_CAPACITY {
            self.flush();
        }
    }

    /// Drains the ring into the sink.
    fn flush(&mut self) {
        match &mut self.sink {
            TraceSink::Memory(store) => store.append(&mut self.ring),
            TraceSink::Files { bin, jsonl, .. } => {
                for rec in self.ring.drain(..) {
                    // Sink errors (disk full) are reported once at finish;
                    // dropping trace data must never kill a simulation.
                    let _ = bin.write_all(&rec.to_bytes());
                    let _ = writeln!(jsonl, "{}", rec.to_json().render());
                }
            }
        }
    }

    /// Flushes everything and syncs file sinks; returns the file paths
    /// when streaming to disk. Called from
    /// [`MemorySystem::finish`](crate::MemorySystem::finish).
    pub fn finish(&mut self) -> Option<(PathBuf, PathBuf)> {
        self.flush();
        match &mut self.sink {
            TraceSink::Memory(_) => None,
            TraceSink::Files {
                bin,
                jsonl,
                bin_path,
                jsonl_path,
            } => {
                if bin.flush().is_err() || jsonl.flush().is_err() {
                    eprintln!(
                        "warning: trace sink flush failed for {}",
                        bin_path.display()
                    );
                }
                Some((bin_path.clone(), jsonl_path.clone()))
            }
        }
    }

    /// Records one demand reference entering the L1 ([`TraceKind::Access`];
    /// `aux` packs the PC and the store bit). Called from the access
    /// pipeline before any cache state is consulted, so the captured
    /// stream is exactly the reference stream a replay must reproduce.
    #[inline]
    pub(crate) fn ref_event(&mut self, now: Cycle, line: LineAddr, pc: u64, is_store: bool) {
        let aux = pc.wrapping_mul(2).wrapping_add(u64::from(is_store));
        self.push(TraceKind::Access, now, line, aux);
    }

    /// The accumulated records of a memory-sink observer (flushed first).
    pub fn records(&mut self) -> &[TraceRecord] {
        self.flush();
        match &self.sink {
            TraceSink::Memory(store) => store,
            TraceSink::Files { .. } => &[],
        }
    }
}

/// Builds the trace observer described by the process-global
/// configuration, if tracing is enabled. A failure to create the file
/// sinks degrades to an in-memory trace with a warning rather than
/// killing the run.
pub(crate) fn trace_from_global(geom: CacheGeometry) -> Option<Box<TraceObserver>> {
    let cfg = obs_config();
    let cats = cfg.trace?;
    let obs = match &cfg.out_dir {
        Some(dir) => match TraceObserver::files(cats, cfg.sample, geom, dir, next_seq()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "warning: cannot create trace files in {}: {e}; tracing to memory",
                    dir.display()
                );
                TraceObserver::memory(cats, cfg.sample, geom)
            }
        },
        None => TraceObserver::memory(cats, cfg.sample, geom),
    };
    Some(Box::new(obs))
}

/// Builds a profiler when the process-global configuration asks for one.
pub(crate) fn profiler_from_global() -> Option<Box<Profiler>> {
    obs_config().profile.then(|| Box::new(Profiler::new()))
}

fn miss_kind_code(kind: MissKind) -> u64 {
    match kind {
        MissKind::Cold => 0,
        MissKind::Conflict => 1,
        MissKind::Capacity => 2,
    }
}

fn evict_cause_code(cause: EvictCause) -> u64 {
    match cause {
        EvictCause::Demand => 0,
        EvictCause::Prefetch => 1,
        EvictCause::Flush => 2,
        EvictCause::Invalidate => 3,
    }
}

impl MemObserver for TraceObserver {
    fn on_lookup(&mut self, ev: &LookupEvent, _rx: &mut Reactions) {
        let line = self.geom.line_of(ev.addr);
        self.push(TraceKind::Lookup, ev.now, line, ev.pc.get());
    }

    fn on_hit(&mut self, ev: &HitEvent, _rx: &mut Reactions) {
        self.push(TraceKind::Hit, ev.now, ev.line, ev.frame as u64);
    }

    fn on_miss(&mut self, ev: &MissEvent, _rx: &mut Reactions) {
        self.push(TraceKind::Miss, ev.now, ev.line, miss_kind_code(ev.kind));
    }

    fn on_fill(&mut self, ev: &FillEvent, _rx: &mut Reactions) {
        let aux = (ev.frame as u64) * 2 + u64::from(ev.demand);
        self.push(TraceKind::Fill, ev.now, ev.line, aux);
        // Every fill opens a generation.
        self.push(TraceKind::GenOpen, ev.now, ev.line, ev.frame as u64);
    }

    fn on_evict(&mut self, ev: &EvictEvent, rx: &mut Reactions) {
        self.push(TraceKind::Evict, ev.at, ev.line, evict_cause_code(ev.cause));
        // Dispatched last: the generation plane has already published
        // the closed record when one exists.
        if let Some(rec) = &rx.generation {
            self.push(TraceKind::GenClose, ev.at, ev.line, rec.live_time);
        }
    }

    fn on_snoop(&mut self, ev: &SnoopEvent, _rx: &mut Reactions) {
        let aux = u64::from(ev.requester) + ev.kind.code() * 256;
        self.push(TraceKind::Snoop, ev.at, ev.line, aux);
    }

    fn on_invalidate(&mut self, ev: &InvalidateEvent, _rx: &mut Reactions) {
        self.push(TraceKind::Invalidate, ev.at, ev.line, u64::from(ev.owner));
    }

    fn on_c2c(&mut self, ev: &C2cEvent, _rx: &mut Reactions) {
        let aux = u64::from(ev.from) + u64::from(ev.to) * 256;
        self.push(TraceKind::C2c, ev.at, ev.line, aux);
    }
}

// ---------------------------------------------------------------------------
// The profiler
// ---------------------------------------------------------------------------

/// A profiled section of the simulation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ProfStage {
    /// One whole demand access ([`MemorySystem::access`](crate::MemorySystem::access)).
    Access = 0,
    /// Observer dispatch of Lookup events.
    ObsLookup = 1,
    /// Observer dispatch of Hit events.
    ObsHit = 2,
    /// Observer dispatch of Miss events.
    ObsMiss = 3,
    /// Observer dispatch of Fill events.
    ObsFill = 4,
    /// Observer dispatch of Evict events.
    ObsEvict = 5,
    /// The clock-hopping fast path ([`MemorySystem::advance`](crate::MemorySystem::advance)).
    Advance = 6,
    /// End-of-run generation flush ([`MemorySystem::finish`](crate::MemorySystem::finish)).
    Finish = 7,
}

impl ProfStage {
    /// Number of stages.
    pub const COUNT: usize = 8;

    /// Every stage, indexable by its `usize` value.
    pub const ALL: [ProfStage; ProfStage::COUNT] = [
        ProfStage::Access,
        ProfStage::ObsLookup,
        ProfStage::ObsHit,
        ProfStage::ObsMiss,
        ProfStage::ObsFill,
        ProfStage::ObsEvict,
        ProfStage::Advance,
        ProfStage::Finish,
    ];

    /// The stage's report name.
    pub fn name(self) -> &'static str {
        match self {
            ProfStage::Access => "access",
            ProfStage::ObsLookup => "obs_lookup",
            ProfStage::ObsHit => "obs_hit",
            ProfStage::ObsMiss => "obs_miss",
            ProfStage::ObsFill => "obs_fill",
            ProfStage::ObsEvict => "obs_evict",
            ProfStage::Advance => "advance",
            ProfStage::Finish => "finish",
        }
    }

    /// Whether timings of this stage count as observer-event dispatches
    /// (the events/sec denominator).
    fn is_event(self) -> bool {
        matches!(
            self,
            ProfStage::ObsLookup
                | ProfStage::ObsHit
                | ProfStage::ObsMiss
                | ProfStage::ObsFill
                | ProfStage::ObsEvict
        )
    }
}

/// Scoped-monotonic-timer profiler for one
/// [`MemorySystem`](crate::MemorySystem). Created when [`set_profile`]
/// is on; absent (and free) otherwise.
#[derive(Debug)]
pub struct Profiler {
    stage_ns: [u64; ProfStage::COUNT],
    stage_calls: [u64; ProfStage::COUNT],
    /// Clock-hop lengths in cycles (bucket width 64, 64 buckets; longer
    /// hops land in the top bucket).
    hops: Histogram,
    events: u64,
    started: Instant,
    finished: bool,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// A fresh profiler; the wall clock starts now.
    pub fn new() -> Self {
        Profiler {
            stage_ns: [0; ProfStage::COUNT],
            stage_calls: [0; ProfStage::COUNT],
            hops: Histogram::new(64, 64),
            events: 0,
            started: Instant::now(),
            finished: false,
        }
    }

    /// Accounts one timed scope.
    #[inline]
    pub fn record(&mut self, stage: ProfStage, elapsed: Duration) {
        let i = stage as usize;
        self.stage_ns[i] += elapsed.as_nanos() as u64;
        self.stage_calls[i] += 1;
        if stage.is_event() {
            self.events += 1;
        }
    }

    /// Records one clock hop of `cycles`.
    #[inline]
    pub fn record_hop(&mut self, cycles: u64) {
        self.hops.record(cycles);
    }

    /// Marks the run finished (idempotent); returns whether this call
    /// was the first.
    pub(crate) fn mark_finished(&mut self) -> bool {
        !std::mem::replace(&mut self.finished, true)
    }

    /// The report for everything recorded so far.
    pub fn report(&self) -> ProfileReport {
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        ProfileReport {
            wall_ns,
            events: self.events,
            events_per_sec: if wall_ns == 0 {
                0
            } else {
                (self.events as u128 * 1_000_000_000 / wall_ns as u128) as u64
            },
            stages: ProfStage::ALL
                .iter()
                .map(|&s| StageStat {
                    name: s.name().to_owned(),
                    ns: self.stage_ns[s as usize],
                    calls: self.stage_calls[s as usize],
                })
                .collect(),
            hops: self.hops.clone(),
        }
    }
}

/// Wall time and call count of one profiled stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStat {
    /// Stage name (see [`ProfStage::name`]).
    pub name: String,
    /// Total nanoseconds spent in the stage.
    pub ns: u64,
    /// Times the stage ran.
    pub calls: u64,
}

/// A finished profiling report: wall-time breakdown per stage,
/// observer events/sec, and the clock-hop-length histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Wall nanoseconds from system construction to the report.
    pub wall_ns: u64,
    /// Observer events dispatched.
    pub events: u64,
    /// Observer events per wall-clock second.
    pub events_per_sec: u64,
    /// Per-stage totals, in [`ProfStage::ALL`] order.
    pub stages: Vec<StageStat>,
    /// Clock-hop lengths in cycles.
    pub hops: Histogram,
}

impl Snapshot for ProfileReport {
    fn to_json(&self) -> Json {
        // Stages as an ordered array: JSON objects here sort keys
        // alphabetically, which would scramble the pipeline order.
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::obj([
                    ("name", Json::Str(s.name.clone())),
                    ("ns", Json::U64(s.ns)),
                    ("calls", Json::U64(s.calls)),
                ])
            })
            .collect();
        Json::obj([
            ("wall_ns", Json::U64(self.wall_ns)),
            ("events", Json::U64(self.events)),
            ("events_per_sec", Json::U64(self.events_per_sec)),
            ("stages", Json::Arr(stages)),
            ("hop_cycles", self.hops.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, SnapshotError> {
        let mut stages = Vec::new();
        for s in v.get("stages")?.as_arr()? {
            stages.push(StageStat {
                name: s.get("name")?.as_str()?.to_owned(),
                ns: s.u64_field("ns")?,
                calls: s.u64_field("calls")?,
            });
        }
        Ok(ProfileReport {
            wall_ns: v.u64_field("wall_ns")?,
            events: v.u64_field("events")?,
            events_per_sec: v.u64_field("events_per_sec")?,
            stages,
            hops: v.snapshot_field("hop_cycles")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Trace read-back and summarization (shared by tk_obs_dump and tests)
// ---------------------------------------------------------------------------

/// Reads a binary trace stream (with its [`TRACE_MAGIC`] header).
///
/// # Errors
///
/// Returns a message on I/O failure, a bad header, a truncated record,
/// or an unknown kind byte.
pub fn read_binary<R: Read>(mut reader: R) -> Result<Vec<TraceRecord>, String> {
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|e| format!("cannot read trace header: {e}"))?;
    if &magic != TRACE_MAGIC {
        return Err("not a tk binary trace (bad magic)".to_owned());
    }
    let mut out = Vec::new();
    let mut buf = [0u8; RECORD_BYTES];
    loop {
        // Fill one record by hand: `read_exact` cannot distinguish a
        // clean end-of-stream from a truncated final record.
        let mut filled = 0;
        while filled < RECORD_BYTES {
            match reader.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("read error after {} records: {e}", out.len())),
            }
        }
        match filled {
            0 => break,
            RECORD_BYTES => out.push(TraceRecord::from_bytes(&buf)?),
            _ => {
                return Err(format!(
                    "truncated record after {} records ({filled} of {RECORD_BYTES} bytes)",
                    out.len()
                ))
            }
        }
    }
    Ok(out)
}

/// Reads a JSONL trace stream (one record object per line).
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn read_jsonl<R: BufRead>(reader: R) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(&line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(TraceRecord::from_json(&json).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Summarizes `records`, keeping only categories in `filter`: per-kind
/// counts, cycle span, and distinct-line count. This is the exact JSON
/// `tk_obs_dump --summary` prints (and what the golden obs test pins).
pub fn summarize(records: &[TraceRecord], filter: TraceCategories) -> Json {
    let kept: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| filter.contains(r.kind.category()))
        .collect();
    let mut by_kind = std::collections::BTreeMap::new();
    for kind in TraceKind::ALL {
        let n = kept.iter().filter(|r| r.kind == kind).count() as u64;
        if n > 0 {
            by_kind.insert(kind.name().to_owned(), Json::U64(n));
        }
    }
    let mut lines: Vec<u64> = kept.iter().map(|r| r.line).collect();
    lines.sort_unstable();
    lines.dedup();
    Json::obj([
        ("total_records", Json::U64(records.len() as u64)),
        ("kept_records", Json::U64(kept.len() as u64)),
        ("filter", Json::Str(filter.to_string())),
        ("by_kind", Json::Obj(by_kind)),
        (
            "first_cycle",
            kept.iter()
                .map(|r| r.cycle)
                .min()
                .map_or(Json::Null, Json::U64),
        ),
        (
            "last_cycle",
            kept.iter()
                .map(|r| r.cycle)
                .max()
                .map_or(Json::Null, Json::U64),
        ),
        ("distinct_lines", Json::U64(lines.len() as u64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekeeping::Addr;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(32 * 1024, 1, 32).unwrap()
    }

    #[test]
    fn categories_parse_and_display() {
        assert_eq!(
            TraceCategories::parse("all").unwrap(),
            TraceCategories::all()
        );
        let c = TraceCategories::parse("miss, fill,pf").unwrap();
        assert!(c.contains(TraceCategory::Miss));
        assert!(c.contains(TraceCategory::Fill));
        assert!(c.contains(TraceCategory::Prefetch));
        assert!(!c.contains(TraceCategory::Hit));
        assert_eq!(c.to_string(), "miss,fill,prefetch");
        assert!(TraceCategories::parse("bogus")
            .unwrap_err()
            .contains("bogus"));
        assert!(TraceCategories::parse("").is_err());
    }

    #[test]
    fn record_codecs_round_trip() {
        for (i, kind) in TraceKind::ALL.into_iter().enumerate() {
            let rec = TraceRecord {
                kind,
                cycle: 1_000_003 * (i as u64 + 1),
                line: 0xdead_beef ^ i as u64,
                aux: u64::MAX - i as u64,
            };
            assert_eq!(TraceRecord::from_bytes(&rec.to_bytes()).unwrap(), rec);
            let js = rec.to_json().render();
            assert_eq!(
                TraceRecord::from_json(&Json::parse(&js).unwrap()).unwrap(),
                rec
            );
        }
        assert!(TraceRecord::from_bytes(&[0xFF; RECORD_BYTES]).is_err());
    }

    #[test]
    fn binary_stream_round_trips_and_rejects_garbage() {
        let recs: Vec<TraceRecord> = (0..100)
            .map(|i| TraceRecord {
                kind: TraceKind::ALL[i % TraceKind::ALL.len()],
                cycle: i as u64 * 7,
                line: i as u64,
                aux: i as u64 * 3,
            })
            .collect();
        let mut bytes = TRACE_MAGIC.to_vec();
        for r in &recs {
            bytes.extend_from_slice(&r.to_bytes());
        }
        assert_eq!(read_binary(&bytes[..]).unwrap(), recs);
        assert!(read_binary(&b"NOTATRACE"[..]).is_err());
        // Truncated final record.
        bytes.pop();
        assert!(read_binary(&bytes[..]).is_err());
    }

    #[test]
    fn jsonl_stream_round_trips() {
        let recs: Vec<TraceRecord> = TraceKind::ALL
            .into_iter()
            .map(|kind| TraceRecord {
                kind,
                cycle: 42,
                line: 7,
                aux: 9,
            })
            .collect();
        let text: String = recs
            .iter()
            .map(|r| format!("{}\n", r.to_json().render()))
            .collect();
        assert_eq!(read_jsonl(text.as_bytes()).unwrap(), recs);
        assert!(
            read_jsonl(&b"{\"kind\":\"nope\",\"cycle\":0,\"line\":0,\"aux\":0}\n"[..]).is_err()
        );
    }

    #[test]
    fn observer_filters_and_samples() {
        let g = geom();
        // Only misses, and only 1-in-2 sets.
        let mut t = TraceObserver::memory(TraceCategories::none().with(TraceCategory::Miss), 2, g);
        let mut rx = Reactions::default();
        for set in 0..4u64 {
            let line = g.line_of(Addr::new(set * 32));
            let ev = MissEvent {
                line,
                addr: Addr::new(set * 32),
                kind: MissKind::Cold,
                now: Cycle::new(set),
            };
            t.on_miss(&ev, &mut rx);
            let hit = HitEvent {
                line,
                frame: set as usize,
                pc: timekeeping::Pc::new(1),
                now: Cycle::new(set),
            };
            t.on_hit(&hit, &mut rx); // filtered out by category
        }
        let recs = t.records();
        assert_eq!(recs.len(), 2, "sets 0 and 2 survive 1-in-2 sampling");
        assert!(recs.iter().all(|r| r.kind == TraceKind::Miss));
    }

    #[test]
    fn summarize_counts_and_span() {
        let recs = vec![
            TraceRecord {
                kind: TraceKind::Miss,
                cycle: 10,
                line: 1,
                aux: 0,
            },
            TraceRecord {
                kind: TraceKind::Fill,
                cycle: 12,
                line: 1,
                aux: 2,
            },
            TraceRecord {
                kind: TraceKind::Hit,
                cycle: 20,
                line: 2,
                aux: 0,
            },
        ];
        let filter = TraceCategories::none()
            .with(TraceCategory::Miss)
            .with(TraceCategory::Fill);
        let s = summarize(&recs, filter);
        assert_eq!(s.u64_field("total_records").unwrap(), 3);
        assert_eq!(s.u64_field("kept_records").unwrap(), 2);
        assert_eq!(s.get("by_kind").unwrap().u64_field("miss").unwrap(), 1);
        assert_eq!(s.u64_field("first_cycle").unwrap(), 10);
        assert_eq!(s.u64_field("last_cycle").unwrap(), 12);
        assert_eq!(s.u64_field("distinct_lines").unwrap(), 1);
    }

    #[test]
    fn profiler_report_round_trips() {
        let mut p = Profiler::new();
        p.record(ProfStage::Access, Duration::from_nanos(500));
        p.record(ProfStage::ObsHit, Duration::from_nanos(200));
        p.record_hop(100);
        p.record_hop(5000);
        let rep = p.report();
        assert_eq!(rep.events, 1, "only observer stages count as events");
        assert_eq!(rep.stages.len(), ProfStage::COUNT);
        assert_eq!(rep.hops.total(), 2);
        let js = rep.to_json().render();
        let back = ProfileReport::from_json(&Json::parse(&js).unwrap()).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn cli_flags_shared_syntax() {
        // Pure-parse failures never touch the global config.
        let mut none = || None;
        assert!(apply_cli_flag("--trace", Some("bogus"), &mut none).is_err());
        assert!(apply_cli_flag("--trace-sample", Some("0"), &mut none).is_err());
        assert!(apply_cli_flag("--obs-out", None, &mut none).is_err());
        assert!(!apply_cli_flag("--unrelated", None, &mut none).unwrap());

        // Applying flags updates the global config; restore the default
        // so concurrently constructed systems stay untraced.
        let prev = obs_config();
        assert!(apply_cli_flag("--trace", Some("miss,evict"), &mut none).unwrap());
        let mut next = || Some("8".to_owned());
        assert!(apply_cli_flag("--trace-sample", None, &mut next).unwrap());
        assert!(apply_cli_flag("--profile", None, &mut none).unwrap());
        let mut dir = || Some("/tmp/tk-obs-test".to_owned());
        assert!(apply_cli_flag("--obs-out", None, &mut dir).unwrap());
        let cfg = obs_config();
        assert_eq!(
            cfg.trace,
            Some(TraceCategories::parse("miss,evict").unwrap())
        );
        assert_eq!(cfg.sample, 8);
        assert!(cfg.profile);
        assert_eq!(cfg.out_dir, Some(PathBuf::from("/tmp/tk-obs-test")));
        set_obs_config(prev);
    }

    #[test]
    fn file_sinks_round_trip_through_readers() {
        let dir = std::env::temp_dir().join(format!("tk_obs_sink_{}", std::process::id()));
        let g = geom();
        let mut t = TraceObserver::files(TraceCategories::all(), 1, g, &dir, 9999).unwrap();
        let mut rx = Reactions::default();
        for i in 0..10u64 {
            let ev = MissEvent {
                line: g.line_of(Addr::new(i * 32)),
                addr: Addr::new(i * 32),
                kind: MissKind::Cold,
                now: Cycle::new(i),
            };
            t.on_miss(&ev, &mut rx);
        }
        let (bin_path, jsonl_path) = t.finish().expect("file sink returns paths");
        let bin = read_binary(File::open(&bin_path).unwrap()).unwrap();
        let jsonl = read_jsonl(std::io::BufReader::new(File::open(&jsonl_path).unwrap())).unwrap();
        assert_eq!(bin.len(), 10);
        assert_eq!(bin, jsonl, "both sinks carry the identical stream");
        std::fs::remove_dir_all(&dir).ok();
    }
}
