//! # tk-sim — the simulation substrate for the timekeeping reproduction
//!
//! A deterministic, trace-driven, cycle-stepped model of the machine in
//! Table 1 of *Timekeeping in the Memory System* (ISCA 2002): an 8-issue
//! out-of-order core with a 128-entry instruction window, a 32 KB
//! direct-mapped L1 data cache, an optional 32-entry victim cache, a 1 MB
//! 4-way L2, contended L1/L2 and L2/memory buses with demand-over-prefetch
//! priority, 64 demand + 32 prefetch MSHRs and a 128-entry prefetch queue.
//!
//! The hierarchy embeds the `timekeeping` crate's machinery: per-frame
//! generation tracking, ground-truth miss classification, the filtered
//! victim cache, and both prefetchers (timekeeping and DBCP).
//!
//! Entry point: [`run_workload`] simulates N instructions of a
//! [`trace::Workload`] under a [`SystemConfig`] and returns a
//! [`RunResult`] with IPC, miss breakdowns, metric distributions,
//! predictor scores and prefetch timeliness.
//!
//! ```
//! use tk_sim::{run_workload, SystemConfig};
//! use tk_sim::trace::{Instr, MemRef, Workload};
//! use timekeeping::{Addr, Pc};
//!
//! /// A tiny streaming workload.
//! struct Stream(u64);
//! impl Workload for Stream {
//!     fn next_instr(&mut self) -> Instr {
//!         self.0 += 4;
//!         Instr::Load(MemRef::new(Addr::new(self.0), Pc::new(0x100)))
//!     }
//!     fn name(&self) -> &str { "stream" }
//! }
//!
//! let result = run_workload(&mut Stream(0), SystemConfig::base(), 10_000);
//! assert!(result.ipc() > 0.0);
//! assert!(result.hierarchy.l1_accesses >= 10_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod cache;
pub mod ckpt;
pub mod config;
pub mod core;
pub mod dram;
pub mod hierarchy;
pub mod mshr;
pub mod multicore;
pub mod obs;
pub mod oracle;
pub mod pipeline;
pub mod sample;
pub mod system;
pub mod trace;

pub use bus::SnoopBus;
pub use ckpt::{
    checkpoint_dir, checkpoint_stats, checkpoints_enabled, job_fingerprint, obtain_keyed,
    record_checkpoints, reset_checkpoint_store, set_checkpoint_dir, set_checkpoints_enabled,
    stream_probe, take_recorded_checkpoints, CkptStats,
};
pub use config::{
    default_cores, set_default_cores, ConfigError, L1Mode, MachineConfig, PrefetchMode,
    SampleConfig, SystemConfig, SystemConfigBuilder, VictimMode, MAX_CORES,
};
pub use core::{CoreStats, OooCore};
pub use dram::{
    default_mem_backend, parse_backend_arg, set_default_mem_backend, BankedDram, BankedDramConfig,
    DramConfigError, DramStats, FixedLatency, MemBackend, MemBackendConfig, MemReply, RowOutcome,
};
pub use hierarchy::{AccessOutcome, HierarchyStats, MemorySystem};
pub use multicore::{run_multicore, CoherenceStats, CoherentChecker, Mesi, MultiCoreSystem};
pub use obs::{
    obs_config, set_obs_config, set_out_dir, set_profile, set_trace, set_trace_sample,
    trace_enabled, ObsConfig, ProfileReport, TraceCategories, TraceCategory, TraceKind,
    TraceRecord,
};
pub use oracle::{lockstep_check_enabled, set_lockstep_check, FunctionalOracle, LockstepChecker};
pub use sample::{
    assemble_shards, default_sample, parse_sample_arg, run_shard, set_default_sample,
    SampleCheckpoint, SampleStats,
};
pub use system::{run_workload, run_workload_checked, RunResult, SimSystem};
pub use trace::{Instr, MemRef, Workload};

/// The crate version, for run manifests.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
