//! Pluggable main-memory backends.
//!
//! The simulator's memory hierarchy is synchronous: a miss computes its
//! completion cycle at request time by walking the levels (§`pipeline`).
//! Main memory used to be a single constant (`MachineConfig::mem_latency`)
//! added at the end of that walk. This module turns the "+ mem_latency"
//! term into a seam — the [`MemBackend`] trait — with two implementations:
//!
//! * [`FixedLatency`]: the bit-exact default. `issue(addr, t)` returns
//!   `t + mem_latency`, no internal state, no wake-ups, no snapshot. Every
//!   existing golden digest and cache key is preserved byte-for-byte.
//! * [`BankedDram`]: channels × ranks × banks with an open-row policy.
//!   A request's latency depends on the row buffer (hit / closed-row /
//!   conflict), on the target bank's busy window, and on the channel data
//!   bus, so miss latency becomes *variable* — the question ROADMAP item 4
//!   asks of the paper's timekeeping predictors.
//!
//! Both backends are deterministic pure functions of the (request,
//! timestamp) sequence they observe. The pipeline issues requests in
//! program order at timestamps that are identical under clock hopping and
//! per-cycle stepping (proved by `tests/step_equivalence.rs`), so backend
//! state — and therefore every completion time and statistic — is
//! identical under both clocks by construction. The backend additionally
//! reports its earliest future state change via
//! [`MemBackend::next_event`], which `MemorySystem::next_event` folds into
//! the hop target; `advance_cycle` is idempotent at a fixed timestamp, so
//! extra wake-ups are harmless and the contract is only that reported
//! events lie strictly in the future.
//!
//! On FR-FCFS: arrivals at the backend are already serialized by the
//! shared L2↔memory bus, so the per-channel queue never holds more than
//! the requests whose bank is still busy; "first-ready" is captured by
//! letting a request to an idle bank overlap row activation with an
//! earlier request's data burst (bank timing and channel-bus timing are
//! decoupled below), and "FCFS" is the arrival order itself. See
//! DESIGN.md §2e.

use std::fmt::Debug;
use std::sync::Mutex;

use timekeeping::snapshot::{Json, Snapshot, SnapshotError};
use timekeeping::{Addr, Cycle};

/// Memory-bus transfer granularity: one L2 block.
const BLOCK_BYTES: u64 = 64;

/// Which memory model backs `MemorySystem`, and its parameters.
///
/// `Fixed` keeps reading the deprecated `MachineConfig::mem_latency`
/// alias, so existing callers (and golden digests) are untouched;
/// `Banked` carries a full [`BankedDramConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemBackendConfig {
    /// Constant-latency memory (the paper's 70-cycle model); the latency
    /// itself still lives in `MachineConfig::mem_latency`.
    #[default]
    Fixed,
    /// Banked DRAM with open-row policy and per-channel data buses.
    Banked(BankedDramConfig),
}

impl MemBackendConfig {
    /// Human-readable description for run manifests and reports.
    pub fn describe(&self) -> String {
        match self {
            MemBackendConfig::Fixed => "fixed".to_owned(),
            MemBackendConfig::Banked(b) => format!("banked{}", b.key_fragment()),
        }
    }

    /// Cache-key suffix. Empty for `Fixed` so every pre-existing memo,
    /// disk-cache and golden key stays byte-identical; banked configs get
    /// a full fingerprint so a banked run can never hit a fixed entry.
    pub fn cache_key_suffix(&self) -> String {
        match self {
            MemBackendConfig::Fixed => String::new(),
            MemBackendConfig::Banked(b) => format!(" dram=banked{}", b.key_fragment()),
        }
    }
}

/// Geometry and timing of the banked DRAM model. All timings are in core
/// cycles (memory-clock ratios folded in, as with bus occupancies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankedDramConfig {
    /// Independent channels, each with its own data bus. Power of two.
    pub channels: u32,
    /// Ranks per channel. Power of two.
    pub ranks: u32,
    /// Banks per rank. Power of two.
    pub banks: u32,
    /// Row-buffer (page) size in bytes. Power of two, ≥ one block.
    pub row_bytes: u64,
    /// Activate: row-closed → row-open (tRCD), core cycles.
    pub t_rcd: u64,
    /// Precharge: close an open row (tRP), core cycles.
    pub t_rp: u64,
    /// Column access on an open row (tCAS/CL), core cycles.
    pub t_cas: u64,
    /// Data-burst occupancy of the channel bus per block, core cycles.
    pub burst: u64,
}

impl BankedDramConfig {
    /// DDR2-533-class part @ ~2 GHz core: one channel, 2 ranks × 8 banks,
    /// 2 KB rows. Row hit 24+20 = 44, closed row 68, conflict 92 core
    /// cycles — bracketing the paper's constant 70.
    pub const DDR2: BankedDramConfig = BankedDramConfig {
        channels: 1,
        ranks: 2,
        banks: 8,
        row_bytes: 2048,
        t_rcd: 24,
        t_rp: 24,
        t_cas: 24,
        burst: 20,
    };

    /// DDR4-2400-class part @ ~2 GHz core: two channels, 2 ranks × 16
    /// banks, 8 KB rows, much faster bursts. Row hit 34, closed row 62,
    /// conflict 90 core cycles.
    pub const DDR4: BankedDramConfig = BankedDramConfig {
        channels: 2,
        ranks: 2,
        banks: 16,
        row_bytes: 8192,
        t_rcd: 28,
        t_rp: 28,
        t_cas: 28,
        burst: 6,
    };

    /// Total banks across all channels and ranks.
    pub fn total_banks(&self) -> u64 {
        self.channels as u64 * self.ranks as u64 * self.banks as u64
    }

    fn key_fragment(&self) -> String {
        format!(
            "{{ch={},ranks={},banks={},row={},rcd={},rp={},cas={},burst={}}}",
            self.channels,
            self.ranks,
            self.banks,
            self.row_bytes,
            self.t_rcd,
            self.t_rp,
            self.t_cas,
            self.burst
        )
    }
}

/// Parses the shared `--dram=<fixed|banked[:preset]>` CLI value.
///
/// `banked` alone selects the DDR2 preset; `banked:ddr2` / `banked:ddr4`
/// name a generation explicitly.
pub fn parse_backend_arg(s: &str) -> Result<MemBackendConfig, String> {
    match s {
        "fixed" => Ok(MemBackendConfig::Fixed),
        "banked" | "banked:ddr2" => Ok(MemBackendConfig::Banked(BankedDramConfig::DDR2)),
        "banked:ddr4" => Ok(MemBackendConfig::Banked(BankedDramConfig::DDR4)),
        other => Err(format!(
            "unknown --dram value `{other}` (expected fixed | banked | banked:ddr2 | banked:ddr4)"
        )),
    }
}

/// Process-global default backend, set once by CLI parsing (the same
/// side-effect idiom as `set_lockstep_check` and `obs::apply_cli_flag`).
/// `SystemConfig::builder()` seeds its `memory` field from this, so one
/// orthogonal `--dram` flag reaches every figure binary without touching
/// each config-construction site.
static DEFAULT_BACKEND: Mutex<MemBackendConfig> = Mutex::new(MemBackendConfig::Fixed);

/// Sets the process-wide default [`MemBackendConfig`] picked up by
/// `SystemConfig::builder()`.
pub fn set_default_mem_backend(cfg: MemBackendConfig) {
    *DEFAULT_BACKEND.lock().expect("default backend lock") = cfg;
}

/// The process-wide default [`MemBackendConfig`].
pub fn default_mem_backend() -> MemBackendConfig {
    *DEFAULT_BACKEND.lock().expect("default backend lock")
}

/// How a banked-DRAM access met the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Target row already open: column access only.
    Hit,
    /// Bank idle with no open row: activate + column access.
    Closed,
    /// Different row open: precharge + activate + column access.
    Conflict,
}

impl RowOutcome {
    /// Stable small integer for trace-record aux payloads.
    pub fn code(self) -> u64 {
        match self {
            RowOutcome::Hit => 0,
            RowOutcome::Closed => 1,
            RowOutcome::Conflict => 2,
        }
    }
}

/// A completed memory request: when the block is across the memory bus,
/// plus (for backends that model one) the row-buffer outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReply {
    /// Completion cycle: the requested block has left the memory device.
    pub done: Cycle,
    /// Row-buffer outcome; `None` for backends without row buffers.
    pub row: Option<RowOutcome>,
}

/// A main-memory model owned by `MemorySystem`.
///
/// The pipeline calls [`issue`](MemBackend::issue) at the cycle the
/// request has crossed the L2↔memory bus and expects the completion cycle
/// back — the synchronous-timing contract every other hierarchy level
/// follows. Implementations must be deterministic functions of their call
/// sequence (no wall clocks, no randomness): step-equivalence between the
/// hopping and per-cycle clocks rests on it.
pub trait MemBackend: Debug {
    /// Issues a read for the block containing `addr`, arriving at `now`;
    /// returns its completion cycle (and row outcome, if modeled).
    fn issue(&mut self, addr: Addr, now: Cycle) -> MemReply;

    /// Posts a writeback arriving at `now`. Writes complete in the
    /// background (nothing waits on them), but they occupy banks and may
    /// close rows, so they shape subsequent read latencies.
    fn write(&mut self, addr: Addr, now: Cycle) -> Option<RowOutcome>;

    /// Earliest cycle strictly after `now` at which backend state changes
    /// on its own (a bank or channel bus frees). `None` when idle or when
    /// the backend has no self-scheduled events. Extra or early wake-ups
    /// are harmless (the caller's `advance_cycle` is idempotent); missed
    /// ones are not, so report conservatively.
    fn next_event(&self, now: Cycle) -> Option<Cycle>;

    /// End-of-run statistics; `None` for backends with nothing to report
    /// (keeps `RunResult` snapshots byte-identical for the default).
    fn snapshot(&self) -> Option<DramStats>;
}

/// The paper's constant-latency memory. Stateless: completion is always
/// `now + latency`, writebacks are free, there are no wake-ups.
#[derive(Debug, Clone, Copy)]
pub struct FixedLatency {
    latency: u64,
}

impl FixedLatency {
    /// A fixed-latency backend answering every read in `latency` cycles.
    pub fn new(latency: u64) -> Self {
        FixedLatency { latency }
    }
}

impl MemBackend for FixedLatency {
    fn issue(&mut self, _addr: Addr, now: Cycle) -> MemReply {
        MemReply {
            done: now + self.latency,
            row: None,
        }
    }

    fn write(&mut self, _addr: Addr, _now: Cycle) -> Option<RowOutcome> {
        None
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn snapshot(&self) -> Option<DramStats> {
        None
    }
}

/// Aggregate banked-DRAM statistics for `RunResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramStats {
    /// Read requests issued (demand + prefetch fills from memory).
    pub reads: u64,
    /// Writeback requests posted.
    pub writes: u64,
    /// Accesses that found their row open.
    pub row_hits: u64,
    /// Accesses to a bank with no open row.
    pub row_closed: u64,
    /// Accesses that had to close another row first.
    pub row_conflicts: u64,
    /// Cycles reads spent queued behind a busy bank (arrival → bank free).
    pub bank_wait_cycles: u64,
    /// Cycles read data waited for the channel bus (ready → burst start).
    pub bus_wait_cycles: u64,
    /// Total read latency in cycles (arrival → burst done), for averages.
    pub read_latency_cycles: u64,
}

impl DramStats {
    /// Row-buffer hit rate over all accesses (reads + writes).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_closed + self.row_conflicts;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }

    /// Mean read latency (arrival at the device → data burst complete).
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.read_latency_cycles as f64 / self.reads as f64
    }
}

impl Snapshot for DramStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("reads", Json::U64(self.reads)),
            ("writes", Json::U64(self.writes)),
            ("row_hits", Json::U64(self.row_hits)),
            ("row_closed", Json::U64(self.row_closed)),
            ("row_conflicts", Json::U64(self.row_conflicts)),
            ("bank_wait_cycles", Json::U64(self.bank_wait_cycles)),
            ("bus_wait_cycles", Json::U64(self.bus_wait_cycles)),
            ("read_latency_cycles", Json::U64(self.read_latency_cycles)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, SnapshotError> {
        Ok(DramStats {
            reads: v.u64_field("reads")?,
            writes: v.u64_field("writes")?,
            row_hits: v.u64_field("row_hits")?,
            row_closed: v.u64_field("row_closed")?,
            row_conflicts: v.u64_field("row_conflicts")?,
            bank_wait_cycles: v.u64_field("bank_wait_cycles")?,
            bus_wait_cycles: v.u64_field("bus_wait_cycles")?,
            read_latency_cycles: v.u64_field("read_latency_cycles")?,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    busy_until: Cycle,
}

/// Banked DRAM with an open-row (open-page) policy.
///
/// Address interleaving spreads consecutive blocks across channels first,
/// then across the columns of one row, then across banks, so sequential
/// streams are row-hit-friendly while strided and pointer-chasing access
/// patterns generate conflicts — the behavior `dram_bench` measures.
///
/// Timing of a request arriving at `now`:
///
/// ```text
/// start       = max(now, bank.busy_until)           // bank-level queue
/// access      = tCAS                                // row hit
///             | tRCD + tCAS                         // closed row
///             | tRP + tRCD + tCAS                   // row conflict
/// data_ready  = start + access
/// burst_start = max(data_ready, channel.bus_free)   // channel data bus
/// done        = burst_start + burst
/// ```
///
/// The bank and the channel bus are then both reserved until `done`; the
/// row stays open.
#[derive(Debug)]
pub struct BankedDram {
    cfg: BankedDramConfig,
    /// `channels × ranks × banks` bank states, channel-major.
    banks: Vec<BankState>,
    /// Per-channel data-bus free time.
    bus_free: Vec<Cycle>,
    stats: DramStats,
}

impl BankedDram {
    /// Builds an idle device from a validated config.
    ///
    /// # Panics
    ///
    /// Panics on geometry the config validator would reject (zero or
    /// non-power-of-two counts, rows smaller than a block, zero timings);
    /// `SystemConfig::build()` reports these as errors first.
    pub fn new(cfg: BankedDramConfig) -> Self {
        assert!(
            validate(&cfg).is_ok(),
            "BankedDramConfig must be validated: {:?}",
            validate(&cfg).unwrap_err()
        );
        let total = cfg.total_banks() as usize;
        BankedDram {
            cfg,
            banks: vec![
                BankState {
                    open_row: None,
                    busy_until: Cycle::ZERO,
                };
                total
            ],
            bus_free: vec![Cycle::ZERO; cfg.channels as usize],
            stats: DramStats::default(),
        }
    }

    /// (channel, global bank index, row) for the block containing `addr`.
    fn map(&self, addr: Addr) -> (usize, usize, u64) {
        let blk = addr.get() / BLOCK_BYTES;
        let channel = (blk % self.cfg.channels as u64) as usize;
        let in_channel = blk / self.cfg.channels as u64;
        let cols_per_row = self.cfg.row_bytes / BLOCK_BYTES;
        let banks_per_channel = self.cfg.ranks as u64 * self.cfg.banks as u64;
        let bank = (in_channel / cols_per_row) % banks_per_channel;
        let row = in_channel / cols_per_row / banks_per_channel;
        (
            channel,
            channel * banks_per_channel as usize + bank as usize,
            row,
        )
    }

    /// The shared bank/row/bus walk; returns `(done, outcome, start)`.
    fn access(&mut self, addr: Addr, now: Cycle) -> (Cycle, RowOutcome, Cycle) {
        let (channel, bank_idx, row) = self.map(addr);
        let bank = &mut self.banks[bank_idx];
        let start = now.max(bank.busy_until);
        let (outcome, access) = match bank.open_row {
            Some(open) if open == row => (RowOutcome::Hit, self.cfg.t_cas),
            Some(_) => (
                RowOutcome::Conflict,
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas,
            ),
            None => (RowOutcome::Closed, self.cfg.t_rcd + self.cfg.t_cas),
        };
        let data_ready = start + access;
        let burst_start = data_ready.max(self.bus_free[channel]);
        let done = burst_start + self.cfg.burst;
        bank.open_row = Some(row);
        bank.busy_until = done;
        self.bus_free[channel] = done;
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Closed => self.stats.row_closed += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        self.stats.bank_wait_cycles += start.since(now);
        self.stats.bus_wait_cycles += burst_start.since(data_ready);
        (done, outcome, start)
    }

    /// Read-only view of the running statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }
}

impl MemBackend for BankedDram {
    fn issue(&mut self, addr: Addr, now: Cycle) -> MemReply {
        let (done, outcome, _start) = self.access(addr, now);
        self.stats.reads += 1;
        self.stats.read_latency_cycles += done.since(now);
        MemReply {
            done,
            row: Some(outcome),
        }
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> Option<RowOutcome> {
        let (_done, outcome, _start) = self.access(addr, now);
        self.stats.writes += 1;
        Some(outcome)
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut earliest: Option<Cycle> = None;
        let mut consider = |c: Cycle| {
            if c > now && earliest.is_none_or(|e| c < e) {
                earliest = Some(c);
            }
        };
        for bank in &self.banks {
            consider(bank.busy_until);
        }
        for &free in &self.bus_free {
            consider(free);
        }
        earliest
    }

    fn snapshot(&self) -> Option<DramStats> {
        Some(self.stats)
    }
}

/// Builds the backend a validated `SystemConfig` asks for.
/// `mem_latency` is the deprecated fixed-latency alias from
/// `MachineConfig`.
pub fn build_backend(cfg: MemBackendConfig, mem_latency: u64) -> Box<dyn MemBackend> {
    match cfg {
        MemBackendConfig::Fixed => Box::new(FixedLatency::new(mem_latency)),
        MemBackendConfig::Banked(b) => Box::new(BankedDram::new(b)),
    }
}

/// A rejected [`BankedDramConfig`] (carried by
/// `ConfigError::InvalidDram`). The `&'static str` names the offending
/// field so the error stays `Copy` like the rest of `ConfigError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramConfigError {
    /// A geometry count (`channels`/`ranks`/`banks`/`row_bytes`) is zero
    /// or not a power of two; the interleaved address mapping needs both.
    NotPowerOfTwo(&'static str),
    /// The row buffer is smaller than one transfer block.
    RowSmallerThanBlock,
    /// A timing parameter (`t_rcd`/`t_rp`/`t_cas`/`burst`) is zero.
    ZeroTiming(&'static str),
}

impl std::fmt::Display for DramConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramConfigError::NotPowerOfTwo(field) => {
                write!(f, "dram {field} must be a nonzero power of two")
            }
            DramConfigError::RowSmallerThanBlock => {
                write!(
                    f,
                    "dram row_bytes must be at least one {BLOCK_BYTES}-byte block"
                )
            }
            DramConfigError::ZeroTiming(field) => write!(f, "dram {field} must be nonzero"),
        }
    }
}

impl std::error::Error for DramConfigError {}

/// Structural validation shared by `SystemConfig::build()` and
/// `BankedDram::new()`: every count a power of two (the address mapping
/// uses modular interleaving), rows at least one block, timings nonzero.
pub fn validate(cfg: &BankedDramConfig) -> Result<(), DramConfigError> {
    let pow2 = |n: u64| n != 0 && n.is_power_of_two();
    for (name, v) in [
        ("channels", cfg.channels as u64),
        ("ranks", cfg.ranks as u64),
        ("banks", cfg.banks as u64),
        ("row_bytes", cfg.row_bytes),
    ] {
        if !pow2(v) {
            return Err(DramConfigError::NotPowerOfTwo(name));
        }
    }
    if cfg.row_bytes < BLOCK_BYTES {
        return Err(DramConfigError::RowSmallerThanBlock);
    }
    for (name, v) in [
        ("t_rcd", cfg.t_rcd),
        ("t_rp", cfg.t_rp),
        ("t_cas", cfg.t_cas),
        ("burst", cfg.burst),
    ] {
        if v == 0 {
            return Err(DramConfigError::ZeroTiming(name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small hand-checkable geometry: 1 channel, 1 rank, 2 banks, 128 B
    /// rows (2 blocks per row), tRCD=20 tRP=10 tCAS=15 burst=5.
    fn tiny() -> BankedDramConfig {
        BankedDramConfig {
            channels: 1,
            ranks: 1,
            banks: 2,
            row_bytes: 128,
            t_rcd: 20,
            t_rp: 10,
            t_cas: 15,
            burst: 5,
        }
    }

    /// Block `n` of bank 0 row `r` in the tiny geometry: rows hold 2
    /// blocks and banks interleave above the row, so bank 0 owns blocks
    /// {0,1}, {4,5}, {8,9}, ... (row 0, 1, 2, ...).
    fn tiny_addr(row: u64, col: u64, bank: u64) -> Addr {
        Addr::new(((row * 2 + bank) * 2 + col) * BLOCK_BYTES)
    }

    #[test]
    fn timing_table_closed_hit_conflict() {
        let mut d = BankedDram::new(tiny());
        // Cold access: closed row = tRCD + tCAS + burst = 20+15+5 = 40.
        let r = d.issue(tiny_addr(0, 0, 0), Cycle::new(0));
        assert_eq!(r.done, Cycle::new(40));
        assert_eq!(r.row, Some(RowOutcome::Closed));
        // Same row, after the bank frees: hit = tCAS + burst = 20.
        let r = d.issue(tiny_addr(0, 1, 0), Cycle::new(100));
        assert_eq!(r.done, Cycle::new(120));
        assert_eq!(r.row, Some(RowOutcome::Hit));
        // Different row, same bank: conflict = tRP+tRCD+tCAS+burst = 50.
        let r = d.issue(tiny_addr(1, 0, 0), Cycle::new(200));
        assert_eq!(r.done, Cycle::new(250));
        assert_eq!(r.row, Some(RowOutcome::Conflict));
    }

    #[test]
    fn preset_latency_tables() {
        // DDR2: hit 44, closed 68, conflict 92 (brackets the fixed 70).
        let mut d = BankedDram::new(BankedDramConfig::DDR2);
        let cols = BankedDramConfig::DDR2.row_bytes / BLOCK_BYTES; // 32 blocks/row
        let a_row0 = Addr::new(0);
        let b_row0 = Addr::new(BLOCK_BYTES); // same row, next column
        let a_row1 = Addr::new(cols * 16 * BLOCK_BYTES * 1_000); // same bank pattern? use explicit far row
        assert_eq!(
            d.issue(a_row0, Cycle::new(0)).done,
            Cycle::new(68),
            "DDR2 closed-row"
        );
        assert_eq!(
            d.issue(b_row0, Cycle::new(100)).done,
            Cycle::new(144),
            "DDR2 row-hit"
        );
        // Row conflict: same (channel, bank), different row. With 1
        // channel, 16 banks/channel and 32 cols/row, row stride on one
        // bank is 32*16 blocks.
        let conflict = Addr::new(32 * 16 * BLOCK_BYTES);
        assert_eq!(d.map(conflict).1, d.map(a_row0).1, "same bank");
        assert_ne!(d.map(conflict).2, d.map(a_row0).2, "different row");
        assert_eq!(
            d.issue(conflict, Cycle::new(200)).done,
            Cycle::new(292),
            "DDR2 row-conflict"
        );
        let _ = a_row1;

        // DDR4: hit 34, closed 62, conflict 90.
        let mut d = BankedDram::new(BankedDramConfig::DDR4);
        assert_eq!(
            d.issue(Addr::new(0), Cycle::new(0)).done,
            Cycle::new(62),
            "DDR4 closed-row"
        );
        // Next block on the same channel is blk 2 (channel-interleaved).
        assert_eq!(
            d.issue(Addr::new(2 * BLOCK_BYTES), Cycle::new(100)).done,
            Cycle::new(134),
            "DDR4 row-hit"
        );
        // Same bank, different row: stride = cols_per_row * banks *
        // channels blocks = 128 * 32 * 2.
        let conflict = Addr::new(128 * 32 * 2 * BLOCK_BYTES);
        assert_eq!(
            d.issue(conflict, Cycle::new(200)).done,
            Cycle::new(290),
            "DDR4 row-conflict"
        );
    }

    #[test]
    fn bank_busy_serializes_requests() {
        let mut d = BankedDram::new(tiny());
        // Two same-row requests at t=0: the first closes at 40, the
        // second starts when the bank frees (40), hits the open row
        // (tCAS 15) and bursts after: 40+15+5 = 60.
        assert_eq!(
            d.issue(tiny_addr(0, 0, 0), Cycle::new(0)).done,
            Cycle::new(40)
        );
        let r = d.issue(tiny_addr(0, 1, 0), Cycle::new(0));
        assert_eq!(r.done, Cycle::new(60));
        assert_eq!(r.row, Some(RowOutcome::Hit));
        assert_eq!(d.stats().bank_wait_cycles, 40);
    }

    #[test]
    fn channel_bus_serializes_bursts_across_banks() {
        let mut d = BankedDram::new(tiny());
        // Bank 0 and bank 1 activate in parallel (both data_ready at 35),
        // but share the one channel bus: bursts at 35..40 and 40..45.
        assert_eq!(
            d.issue(tiny_addr(0, 0, 0), Cycle::new(0)).done,
            Cycle::new(40)
        );
        let r = d.issue(tiny_addr(0, 0, 1), Cycle::new(0));
        assert_eq!(r.done, Cycle::new(45));
        assert_eq!(r.row, Some(RowOutcome::Closed));
        assert_eq!(d.stats().bank_wait_cycles, 0, "banks overlapped");
        assert_eq!(d.stats().bus_wait_cycles, 5, "burst waited for the bus");
    }

    #[test]
    fn writes_occupy_banks_and_close_rows_for_reads() {
        let mut d = BankedDram::new(tiny());
        // A writeback opens row 1 on bank 0...
        assert_eq!(
            d.write(tiny_addr(1, 0, 0), Cycle::new(0)),
            Some(RowOutcome::Closed)
        );
        // ...so a read of row 0 on that bank conflicts AND queues behind
        // the write (bank busy until 40): start 40, +45 access +5 burst.
        let r = d.issue(tiny_addr(0, 0, 0), Cycle::new(10));
        assert_eq!(r.row, Some(RowOutcome::Conflict));
        assert_eq!(r.done, Cycle::new(90));
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn next_event_reports_earliest_future_release() {
        let mut d = BankedDram::new(tiny());
        assert_eq!(d.next_event(Cycle::ZERO), None, "idle device");
        d.issue(tiny_addr(0, 0, 0), Cycle::new(0)); // bank 0 + bus until 40
        d.issue(tiny_addr(0, 0, 1), Cycle::new(0)); // bank 1 until 45
        assert_eq!(d.next_event(Cycle::new(10)), Some(Cycle::new(40)));
        assert_eq!(d.next_event(Cycle::new(40)), Some(Cycle::new(45)));
        assert_eq!(d.next_event(Cycle::new(45)), None);
    }

    #[test]
    fn fixed_latency_is_the_identity_plus_constant() {
        let mut f = FixedLatency::new(70);
        let r = f.issue(Addr::new(0x00de_adc0), Cycle::new(123));
        assert_eq!(r.done, Cycle::new(193));
        assert_eq!(r.row, None);
        assert_eq!(f.write(Addr::new(0), Cycle::new(5)), None);
        assert_eq!(f.next_event(Cycle::new(0)), None);
        assert_eq!(f.snapshot(), None);
    }

    #[test]
    fn sequential_blocks_share_rows() {
        let d = BankedDram::new(BankedDramConfig::DDR2);
        // DDR2 has one channel and 32 blocks per row: blocks 0..32 map to
        // one (bank, row); block 32 starts the next bank.
        let (c0, b0, r0) = d.map(Addr::new(0));
        let (c1, b1, r1) = d.map(Addr::new(31 * BLOCK_BYTES));
        let (_, b2, _) = d.map(Addr::new(32 * BLOCK_BYTES));
        assert_eq!((c0, b0, r0), (c1, b1, r1));
        assert_ne!(b0, b2);
    }

    #[test]
    fn validation_rejects_bad_geometry_and_timing() {
        let mut c = tiny();
        c.banks = 3;
        assert_eq!(validate(&c), Err(DramConfigError::NotPowerOfTwo("banks")));
        let mut c = tiny();
        c.row_bytes = 32;
        assert_eq!(validate(&c), Err(DramConfigError::RowSmallerThanBlock));
        let mut c = tiny();
        c.t_cas = 0;
        assert_eq!(validate(&c), Err(DramConfigError::ZeroTiming("t_cas")));
        assert!(validate(&c)
            .unwrap_err()
            .to_string()
            .contains("t_cas must be nonzero"));
        assert!(validate(&tiny()).is_ok());
        assert!(validate(&BankedDramConfig::DDR2).is_ok());
        assert!(validate(&BankedDramConfig::DDR4).is_ok());
    }

    #[test]
    fn parse_backend_arg_accepts_presets() {
        assert_eq!(parse_backend_arg("fixed"), Ok(MemBackendConfig::Fixed));
        assert_eq!(
            parse_backend_arg("banked"),
            Ok(MemBackendConfig::Banked(BankedDramConfig::DDR2))
        );
        assert_eq!(
            parse_backend_arg("banked:ddr4"),
            Ok(MemBackendConfig::Banked(BankedDramConfig::DDR4))
        );
        assert!(parse_backend_arg("banked:ddr5").is_err());
        assert!(parse_backend_arg("").is_err());
    }

    #[test]
    fn cache_key_suffix_is_empty_only_for_fixed() {
        assert_eq!(MemBackendConfig::Fixed.cache_key_suffix(), "");
        let banked = MemBackendConfig::Banked(BankedDramConfig::DDR2);
        let suffix = banked.cache_key_suffix();
        assert!(suffix.starts_with(" dram=banked{"));
        assert!(suffix.contains("rcd=24"));
        // Distinct configs fingerprint differently.
        assert_ne!(
            MemBackendConfig::Banked(BankedDramConfig::DDR4).cache_key_suffix(),
            suffix
        );
    }

    #[test]
    fn dram_stats_snapshot_round_trips() {
        let s = DramStats {
            reads: 10,
            writes: 3,
            row_hits: 6,
            row_closed: 4,
            row_conflicts: 3,
            bank_wait_cycles: 17,
            bus_wait_cycles: 5,
            read_latency_cycles: 423,
        };
        let j = s.to_json();
        assert_eq!(DramStats::from_json(&j).unwrap(), s);
        assert!(s.row_hit_rate() > 0.45 && s.row_hit_rate() < 0.47);
        assert!((s.avg_read_latency() - 42.3).abs() < 1e-9);
    }
}
