//! Miss Status Holding Registers.
//!
//! An MSHR entry tracks one outstanding miss from allocation until its data
//! returns. Later misses to the same line *merge*: they observe the
//! existing entry's completion time instead of issuing a second request.
//! When the file is full, new misses queue behind the earliest-completing
//! entry (modeled as a delayed start, not a pipeline flush).
//!
//! A real MSHR file is a handful of CAM registers, so the model stores the
//! entries in a small flat vector and searches it linearly — for the 8–64
//! registers a hierarchy configures this beats hashing every lookup, and
//! it keeps iteration order deterministic by construction.

use timekeeping::{Cycle, LineAddr};

/// A file of MSHRs with line-merge and full-file queuing semantics.
///
/// # Examples
///
/// ```
/// use tk_sim::mshr::MshrFile;
/// use timekeeping::{Cycle, LineAddr};
///
/// let mut m = MshrFile::new(2);
/// let line = LineAddr::new(7);
/// assert!(m.lookup(line).is_none());
/// m.allocate(line, Cycle::new(100));
/// // A second miss to the same line merges.
/// assert_eq!(m.lookup(line), Some(Cycle::new(100)));
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// `(line, ready)` pairs; at most `capacity` long, unordered.
    entries: Vec<(u64, Cycle)>,
    merges: u64,
    allocations: u64,
    full_stalls: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            merges: 0,
            allocations: 0,
            full_stalls: 0,
        }
    }

    /// Capacity in registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Outstanding misses (after expiring entries older than `now`).
    pub fn outstanding(&mut self, now: Cycle) -> usize {
        self.expire(now);
        self.entries.len()
    }

    /// Total allocations performed.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Misses that merged into an existing entry.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Requests that found the file full and had to queue.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Removes entries whose data has returned by `now`.
    pub fn expire(&mut self, now: Cycle) {
        self.entries.retain(|&(_, ready)| ready > now);
    }

    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let key = line.get();
        self.entries.iter().position(|&(l, _)| l == key)
    }

    /// Whether `line` is currently outstanding (no merge counted).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Completion time of `line`'s outstanding miss, if any (no merge
    /// counted).
    pub fn ready_time(&self, line: LineAddr) -> Option<Cycle> {
        self.find(line).map(|i| self.entries[i].1)
    }

    /// If `line` is already outstanding, returns its completion time and
    /// counts a merge.
    pub fn lookup(&mut self, line: LineAddr) -> Option<Cycle> {
        let ready = self.ready_time(line);
        if ready.is_some() {
            self.merges += 1;
        }
        ready
    }

    /// Whether a register would be free at `now`, counting only entries
    /// whose data has not yet returned. A pure timing query: unlike
    /// [`next_free`](Self::next_free) it neither expires entries nor
    /// counts a full-file stall, so event-schedule computations can probe
    /// the file without perturbing its statistics.
    pub fn has_free_at(&self, now: Cycle) -> bool {
        self.entries
            .iter()
            .filter(|&&(_, ready)| ready > now)
            .count()
            < self.capacity
    }

    /// Earliest time at which a register will free up (`None` if one is
    /// free right now at `now`).
    pub fn next_free(&mut self, now: Cycle) -> Option<Cycle> {
        self.expire(now);
        if self.entries.len() < self.capacity {
            None
        } else {
            self.full_stalls += 1;
            self.entries.iter().map(|&(_, ready)| ready).min()
        }
    }

    /// Allocates an entry completing at `ready`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the file is over capacity — callers must
    /// consult [`next_free`](Self::next_free) first.
    pub fn allocate(&mut self, line: LineAddr, ready: Cycle) {
        self.allocations += 1;
        match self.find(line) {
            Some(i) => self.entries[i].1 = ready,
            None => self.entries.push((line.get(), ready)),
        }
        debug_assert!(
            self.entries.len() <= self.capacity,
            "MSHR overflow: callers must queue when full"
        );
        self.debug_invariants();
    }

    /// Removes the entry for `line` (e.g. a prefetch superseded by a
    /// demand fetch taking ownership). Returns its completion time.
    pub fn remove(&mut self, line: LineAddr) -> Option<Cycle> {
        let r = self.find(line).map(|i| self.entries.swap_remove(i).1);
        self.debug_invariants();
        r
    }

    /// File-wide invariants, asserted after every mutation when the
    /// `check-invariants` feature is on: occupancy within capacity, no
    /// duplicate lines, and every resident entry accounted for by an
    /// allocation.
    #[cfg(feature = "check-invariants")]
    fn debug_invariants(&self) {
        assert!(
            self.entries.len() <= self.capacity,
            "MSHR occupancy {} exceeds capacity {}",
            self.entries.len(),
            self.capacity
        );
        assert!(
            self.entries.len() as u64 <= self.allocations,
            "MSHR holds {} entries but only {} were ever allocated",
            self.entries.len(),
            self.allocations
        );
        for (i, &(line, _)) in self.entries.iter().enumerate() {
            assert!(
                !self.entries[i + 1..].iter().any(|&(l, _)| l == line),
                "duplicate MSHR entry for line {line:#x}"
            );
        }
    }

    #[cfg(not(feature = "check-invariants"))]
    #[inline(always)]
    fn debug_invariants(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn merge_returns_existing_completion() {
        let mut m = MshrFile::new(4);
        m.allocate(line(1), Cycle::new(500));
        assert_eq!(m.lookup(line(1)), Some(Cycle::new(500)));
        assert_eq!(m.merges(), 1);
        assert_eq!(m.lookup(line(2)), None);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn expiry_frees_registers() {
        let mut m = MshrFile::new(1);
        m.allocate(line(1), Cycle::new(100));
        assert_eq!(m.outstanding(Cycle::new(50)), 1);
        assert_eq!(m.outstanding(Cycle::new(100)), 0);
    }

    #[test]
    fn full_file_reports_next_free() {
        let mut m = MshrFile::new(2);
        m.allocate(line(1), Cycle::new(300));
        m.allocate(line(2), Cycle::new(200));
        assert_eq!(m.next_free(Cycle::new(10)), Some(Cycle::new(200)));
        assert_eq!(m.full_stalls(), 1);
        // After 200 the file has room again.
        assert_eq!(m.next_free(Cycle::new(200)), None);
    }

    #[test]
    fn has_free_at_is_pure() {
        let mut m = MshrFile::new(2);
        m.allocate(line(1), Cycle::new(300));
        m.allocate(line(2), Cycle::new(200));
        assert!(!m.has_free_at(Cycle::new(10)));
        // An entry stops occupying its register the cycle its data returns.
        assert!(m.has_free_at(Cycle::new(200)));
        // The query neither expired entries nor counted a stall.
        assert_eq!(m.full_stalls(), 0);
        assert_eq!(m.outstanding(Cycle::new(0)), 2);
    }

    #[test]
    fn remove_supersedes() {
        let mut m = MshrFile::new(2);
        m.allocate(line(1), Cycle::new(300));
        assert_eq!(m.remove(line(1)), Some(Cycle::new(300)));
        assert_eq!(m.remove(line(1)), None);
    }

    #[test]
    fn reallocation_overwrites_instead_of_duplicating() {
        let mut m = MshrFile::new(2);
        m.allocate(line(1), Cycle::new(300));
        m.allocate(line(1), Cycle::new(400));
        assert_eq!(m.outstanding(Cycle::new(0)), 1);
        assert_eq!(m.ready_time(line(1)), Some(Cycle::new(400)));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn allocation_counter() {
        let mut m = MshrFile::new(8);
        for i in 0..5 {
            m.allocate(line(i), Cycle::new(10 + i));
        }
        assert_eq!(m.allocations(), 5);
    }
}
