//! Differential functional oracle for the memory hierarchy.
//!
//! [`FunctionalOracle`] is a deliberately naive, timing-free reference
//! model of the L1 / victim-cache / L2 hierarchy: per-set recency lists
//! for the tag arrays (true LRU, invalid-way-first) and a recency list
//! for the fully-associative victim buffer. It knows nothing about
//! MSHRs, buses, or latencies — exactly the behavioral core whose
//! decisions every figure of the paper depends on.
//!
//! In lockstep check mode (see
//! [`MemorySystem::enable_lockstep_check`](crate::hierarchy::MemorySystem::enable_lockstep_check)
//! and [`SimSystem`](crate::system::SimSystem)), the cycle simulator
//! replays every demand access, prefetch fill, and prefetch L2 touch
//! into the oracle and asserts per-access agreement on:
//!
//! * **hit/miss classification** at the L1 and the victim cache,
//! * **level serviced** (L1, victim cache, L2, or memory),
//! * **evicted-line identity** (the true-LRU victim choice), and
//! * **generation-boundary events** (a generation closes iff a valid
//!   line leaves the cache or decays).
//!
//! On divergence the checker panics with a report naming the first
//! mismatching access: its index, address, line and set, both models'
//! verdicts, and both models' full set contents in LRU order.
//!
//! # What the oracle does *not* re-predict
//!
//! Two classes of events are consumed from the simulator rather than
//! re-derived, because they are functions of *time*, which the oracle
//! deliberately does not model:
//!
//! * **MSHR merges** ([`SimLevel::InFlight`]) — whether a second miss
//!   to a line finds the first still outstanding depends on latencies.
//!   The oracle still verifies the L1/VC classification and the
//!   eviction identity of such accesses, but does not touch its L2
//!   mirror (the simulator did not consult its L2 either).
//! * **Victim-cache admission** for timing-based filters (dead-time,
//!   reload-interval) — the admit bit is mirrored from the simulator
//!   so the buffer contents stay comparable; every *lookup* (the part
//!   with tag logic) is verified independently.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

use timekeeping::{Addr, CacheGeometry, LineAddr};

use crate::cache::SetAssocCache;
use crate::config::{L1Mode, SystemConfig, VictimMode};

/// Process-wide lockstep-check switch, set by the `--check` CLI flag of
/// the `tk-bench` binaries and consumed by
/// [`run_workload`](crate::run_workload).
static LOCKSTEP_CHECK: AtomicBool = AtomicBool::new(false);

/// Enables or disables oracle lockstep checking for every subsequent
/// [`run_workload`](crate::run_workload) call in this process.
///
/// Checking is a pure assertion layer: results are bit-identical with
/// and without it (a divergence panics instead of returning).
pub fn set_lockstep_check(enabled: bool) {
    LOCKSTEP_CHECK.store(enabled, Ordering::Relaxed);
}

/// Whether process-wide lockstep checking is enabled.
pub fn lockstep_check_enabled() -> bool {
    LOCKSTEP_CHECK.load(Ordering::Relaxed)
}

/// The hierarchy level that serviced a demand access, as observed by the
/// cycle simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimLevel {
    /// Hit in the L1 tag array.
    L1,
    /// L1 miss served by the victim cache (swap).
    Victim,
    /// L1 miss that hit in the L2.
    L2,
    /// L1 miss that missed the L2 and went to memory.
    Mem,
    /// L1 miss merged with an outstanding fetch (MSHR merge or demand
    /// takeover of an in-flight prefetch); no cache level was consulted.
    InFlight,
}

impl std::fmt::Display for SimLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimLevel::L1 => "L1",
            SimLevel::Victim => "victim cache",
            SimLevel::L2 => "L2",
            SimLevel::Mem => "memory",
            SimLevel::InFlight => "in-flight (MSHR merge)",
        })
    }
}

/// Everything the cycle simulator observed about one demand access, fed
/// to the oracle for comparison.
#[derive(Debug, Clone, Copy)]
pub struct SimObservation {
    /// The accessed address.
    pub addr: Addr,
    /// Level that serviced the access.
    pub level: SimLevel,
    /// Line evicted from the L1 by this access, if any.
    pub evicted: Option<LineAddr>,
    /// Whether a generation-boundary event (tracker evict) fired.
    pub closed_generation: bool,
    /// Whether this was a decay refetch (tag resident, data switched
    /// off): the oracle expects its own L1 to *hit* while the simulator
    /// reports a refetch from below.
    pub decay_refetch: bool,
    /// The victim-filter admission decision for the evicted line, if an
    /// eviction was offered (`None` when nothing was offered).
    pub vc_admitted: Option<bool>,
}

/// A naive per-set recency-list tag array: index 0 is LRU, the back is
/// MRU. A set holds fewer than `assoc` entries while invalid ways
/// remain, which models the invalid-way-first fill rule.
#[derive(Debug, Clone)]
struct ShadowTags {
    geom: CacheGeometry,
    /// `assoc` slots per set, one contiguous row each: tags stored `+1`
    /// (0 = invalid way), occupied slots packed at the front of the row
    /// in LRU→MRU order. The sampling warmup runs [`touch`](Self::touch)
    /// on every memory reference, so a row must be one flat cache-line
    /// scan, not a heap-allocated `Vec` per set.
    slots: Vec<u64>,
    assoc: usize,
}

impl ShadowTags {
    fn new(geom: CacheGeometry) -> Self {
        let assoc = geom.assoc() as usize;
        ShadowTags {
            geom,
            slots: vec![0; geom.num_sets() as usize * assoc],
            assoc,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        self.geom.index_of_line(line) as usize
    }

    #[inline]
    fn tag1_of(&self, line: LineAddr) -> u64 {
        let t = self.geom.tag_of_line(line).wrapping_add(1);
        debug_assert!(t != 0, "tag u64::MAX is unsupported");
        t
    }

    #[inline]
    fn row(&self, set_idx: usize) -> &[u64] {
        &self.slots[set_idx * self.assoc..(set_idx + 1) * self.assoc]
    }

    /// Whether `line` is resident; moves it to MRU if so.
    #[inline]
    fn touch(&mut self, line: LineAddr) -> bool {
        let tag1 = self.tag1_of(line);
        let set_idx = self.set_of(line);
        let assoc = self.assoc;
        if assoc == 1 {
            // Direct-mapped fast path (the paper's L1): one compare, no
            // recency to maintain. The warm loop calls this for every
            // reference, so the generic runtime-`assoc` loop below is
            // worth bypassing.
            return self.slots[set_idx] == tag1;
        }
        let row = &mut self.slots[set_idx * assoc..(set_idx + 1) * assoc];
        for i in 0..assoc {
            let t = row[i];
            if t == 0 {
                return false; // packed: the first empty way ends the row
            }
            if t == tag1 {
                // Move to MRU (the last occupied slot), shifting the
                // younger entries down.
                let mut j = i;
                while j + 1 < assoc && row[j + 1] != 0 {
                    row[j] = row[j + 1];
                    j += 1;
                }
                row[j] = tag1;
                return true;
            }
        }
        false
    }

    /// The line a fill into `line`'s set would evict (true LRU, invalid
    /// ways first), without modifying anything.
    fn peek_victim(&self, line: LineAddr) -> Option<LineAddr> {
        let set_idx = self.set_of(line);
        let row = self.row(set_idx);
        if row[self.assoc - 1] == 0 {
            None
        } else {
            Some(self.geom.line_from_parts(row[0] - 1, set_idx as u64))
        }
    }

    /// Fills `line` as MRU, returning the evicted line, if any. The
    /// line must not be resident.
    fn fill(&mut self, line: LineAddr) -> Option<LineAddr> {
        if self.assoc == 1 {
            let set_idx = self.set_of(line);
            let old = self.slots[set_idx];
            self.slots[set_idx] = self.tag1_of(line);
            return (old != 0).then(|| self.geom.line_from_parts(old - 1, set_idx as u64));
        }
        let evicted = self.peek_victim(line);
        let tag1 = self.tag1_of(line);
        let set_idx = self.set_of(line);
        let assoc = self.assoc;
        let row = &mut self.slots[set_idx * assoc..(set_idx + 1) * assoc];
        debug_assert!(!row.contains(&tag1), "fill of a resident line");
        if evicted.is_some() {
            // Row full: drop the LRU at slot 0, shift, insert at MRU.
            row.copy_within(1.., 0);
            row[assoc - 1] = tag1;
        } else {
            let free = row.iter().position(|&t| t == 0).expect("row not full");
            row[free] = tag1;
        }
        evicted
    }

    /// The set contents in LRU→MRU order, for divergence reports.
    fn set_lines(&self, set_idx: u64) -> Vec<LineAddr> {
        self.row(set_idx as usize)
            .iter()
            .take_while(|&&t| t != 0)
            .map(|&t| self.geom.line_from_parts(t - 1, set_idx))
            .collect()
    }

    /// Every resident line, set-major, LRU→MRU within each set — the
    /// order checkpoint injection replays fills in. One allocation for
    /// the whole array instead of one `Vec` per set.
    fn all_lines(&self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for set_idx in 0..self.geom.num_sets() as usize {
            for &t in self.row(set_idx).iter().take_while(|&&t| t != 0) {
                out.push(self.geom.line_from_parts(t - 1, set_idx as u64));
            }
        }
        out
    }
}

/// A naive fully-associative LRU victim buffer: index 0 is LRU.
#[derive(Debug, Clone)]
struct ShadowVictim {
    capacity: usize,
    entries: Vec<LineAddr>,
}

impl ShadowVictim {
    fn new(capacity: usize) -> Self {
        ShadowVictim {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Probe-and-remove (the L1↔VC swap semantics of a hit).
    fn take(&mut self, line: LineAddr) -> bool {
        match self.entries.iter().position(|&l| l == line) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, line: LineAddr) {
        if let Some(pos) = self.entries.iter().position(|&l| l == line) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(line);
    }
}

/// The timing-free reference model of the L1 / victim-cache / L2
/// hierarchy. See the [module docs](self) for the checked contract.
#[derive(Debug, Clone)]
pub struct FunctionalOracle {
    l1: ShadowTags,
    l2: ShadowTags,
    vc: Option<ShadowVictim>,
}

impl FunctionalOracle {
    /// Builds the oracle mirroring the hierarchy that `cfg` describes.
    pub fn new(cfg: &SystemConfig) -> Self {
        let vc = match cfg.victim {
            VictimMode::None => None,
            _ => Some(ShadowVictim::new(cfg.machine.victim_entries)),
        };
        FunctionalOracle {
            l1: ShadowTags::new(cfg.machine.l1d),
            l2: ShadowTags::new(cfg.machine.l2),
            vc,
        }
    }

    /// Whether `cfg` is checkable: the cold-miss-only L1 mode replaces
    /// the tag array with an infinite set and has no evictions to
    /// verify.
    pub fn supports(cfg: &SystemConfig) -> bool {
        cfg.l1_mode != L1Mode::ColdOnly
    }

    /// Replays one demand access and returns the oracle's verdict:
    /// level serviced and evicted line. Mutates the mirrors exactly as
    /// the simulator's decision procedure would, consuming only the
    /// timing-dependent facts (`InFlight`, decay, VC admission) from
    /// the observation.
    fn step_demand(&mut self, obs: &SimObservation) -> (SimLevel, Option<LineAddr>) {
        let line = self.l1.geom.line_of(obs.addr);
        if obs.decay_refetch {
            // The tag stayed resident; only the data was switched off.
            // The simulator refetched from below without evicting.
            if self.l1.touch(line) {
                return (self.l2_fetch(line), None);
            }
            // A decay refetch of a non-resident line is itself a
            // divergence: return the one level a refetch can never
            // report so the comparison fails loudly.
            return (SimLevel::L1, None);
        }
        if self.l1.touch(line) {
            return (SimLevel::L1, None);
        }
        // L1 miss: probe the victim cache (swap semantics).
        if let Some(vc) = self.vc.as_mut() {
            if vc.take(line) {
                let evicted = self.l1.fill(line);
                if let Some(ev) = evicted {
                    // The displaced block enters the buffer unfiltered
                    // (it is an exchange, not eviction traffic).
                    self.vc.as_mut().expect("checked").insert(ev);
                }
                return (SimLevel::Victim, evicted);
            }
        }
        // Below the L1. For in-flight merges the simulator consulted no
        // cache level; mirror the refill without touching the L2.
        let level = if obs.level == SimLevel::InFlight {
            SimLevel::InFlight
        } else {
            self.l2_fetch(line)
        };
        let evicted = self.l1.fill(line);
        self.apply_admission(evicted, obs.vc_admitted);
        (level, evicted)
    }

    /// Probes the L2 mirror; fills on a miss. Returns the level that
    /// serviced the fetch.
    fn l2_fetch(&mut self, l1_line: LineAddr) -> SimLevel {
        let addr = self.l1.geom.addr_of_line(l1_line);
        let l2_line = self.l2.geom.line_of(addr);
        if self.l2.touch(l2_line) {
            SimLevel::L2
        } else {
            self.l2.fill(l2_line);
            SimLevel::Mem
        }
    }

    /// Mirrors the victim-filter admission decision for an eviction.
    fn apply_admission(&mut self, evicted: Option<LineAddr>, admitted: Option<bool>) {
        if let (Some(ev), Some(true), Some(vc)) = (evicted, admitted, self.vc.as_mut()) {
            vc.insert(ev);
        }
    }

    /// Replays a prefetch fill into the L1 (announced by the simulator;
    /// *when* a prefetch lands is timing). Returns the oracle's evicted
    /// line for comparison.
    fn step_prefetch_fill(
        &mut self,
        line: LineAddr,
        vc_admitted: Option<bool>,
    ) -> Option<LineAddr> {
        let evicted = self.l1.fill(line);
        self.apply_admission(evicted, vc_admitted);
        evicted
    }

    /// Replays a prefetch's L2 touch (announced by the simulator) and
    /// returns whether the oracle's L2 hit.
    fn step_prefetch_l2(&mut self, addr: Addr) -> bool {
        let l2_line = self.l2.geom.line_of(addr);
        if self.l2.touch(l2_line) {
            true
        } else {
            self.l2.fill(l2_line);
            false
        }
    }

    // -- sampling warmup (see `crate::sample`) -------------------------

    /// One timing-free demand access, used by the statistical-sampling
    /// warmup to fast-forward cache-tag state through skipped intervals.
    /// Returns the line the L1 displaced, if the fill evicted one (the
    /// warm shadow clears its dirty bit: the writeback happens there).
    ///
    /// Walks the hierarchy exactly like [`step_demand`](Self::step_demand)
    /// but with no simulator observation to consume: there are no MSHRs
    /// (every repeat access to a resident tag is a hit, because tags
    /// allocate at miss time), no decay, and victim-cache admission
    /// admits every eviction (the timing-based filters cannot be
    /// evaluated without a clock — the sampled run clears the victim
    /// buffer at the representative boundary anyway, see
    /// `crate::sample`).
    pub(crate) fn warm_access(&mut self, addr: Addr) -> Option<LineAddr> {
        let line = self.l1.geom.line_of(addr);
        if self.l1.touch(line) {
            return None;
        }
        if let Some(vc) = self.vc.as_mut() {
            if vc.take(line) {
                let evicted = self.l1.fill(line);
                if let Some(ev) = evicted {
                    self.vc.as_mut().expect("checked").insert(ev);
                }
                return evicted;
            }
        }
        self.l2_fetch(line);
        let evicted = self.l1.fill(line);
        self.apply_admission(evicted, Some(true));
        evicted
    }

    /// The L1 geometry this oracle mirrors.
    pub(crate) fn l1_geometry(&self) -> &CacheGeometry {
        &self.l1.geom
    }

    /// The L2 geometry this oracle mirrors.
    pub(crate) fn l2_geometry(&self) -> &CacheGeometry {
        &self.l2.geom
    }

    /// Every resident L1 line (set-major, LRU→MRU within each set), for
    /// checkpoint injection.
    pub(crate) fn l1_lines(&self) -> Vec<LineAddr> {
        self.l1.all_lines()
    }

    /// Every resident L2 line (set-major, LRU→MRU within each set), for
    /// checkpoint injection.
    pub(crate) fn l2_lines(&self) -> Vec<LineAddr> {
        self.l2.all_lines()
    }

    /// Rebuilds a warm oracle from exported line lists (set-major,
    /// LRU→MRU within each set, as produced by
    /// [`l1_lines`](Self::l1_lines)/[`l2_lines`](Self::l2_lines)):
    /// refilling an empty mirror in that order reproduces the exact tag
    /// state, and the victim buffer starts empty — precisely the state a
    /// representative's lockstep checker expects, since the timed
    /// machine's victim cache also starts empty. Used by the checkpoint
    /// plane, which stores line lists instead of live oracles.
    pub(crate) fn from_lines(cfg: &SystemConfig, l1: &[u64], l2: &[u64]) -> Self {
        let mut o = Self::new(cfg);
        for &l in l1 {
            let evicted = o.l1.fill(LineAddr::new(l));
            debug_assert!(evicted.is_none(), "refill into an empty mirror");
        }
        for &l in l2 {
            let evicted = o.l2.fill(LineAddr::new(l));
            debug_assert!(evicted.is_none(), "refill into an empty mirror");
        }
        o
    }

    /// Empties the victim buffer. The sampled engine starts every
    /// representative interval with an empty victim cache (admission
    /// decisions are timing-based, so warm contents would be a guess);
    /// clearing the mirror keeps a lockstep checker cloned from the warm
    /// oracle in agreement with the freshly-built simulator.
    pub(crate) fn clear_vc(&mut self) {
        if let Some(vc) = self.vc.as_mut() {
            vc.entries.clear();
        }
    }
}

/// Lockstep state: the oracle plus the access counter for reports.
#[derive(Debug)]
pub struct LockstepChecker {
    oracle: FunctionalOracle,
    accesses: u64,
}

impl LockstepChecker {
    /// Creates a checker for a fresh (empty-cache) memory system.
    pub fn new(cfg: &SystemConfig) -> Self {
        LockstepChecker {
            oracle: FunctionalOracle::new(cfg),
            accesses: 0,
        }
    }

    /// Creates a checker around a pre-warmed oracle — used by the sampled
    /// engine, whose representative intervals start from injected
    /// (non-empty) cache state that the warm oracle mirrors exactly.
    pub(crate) fn from_oracle(oracle: FunctionalOracle) -> Self {
        LockstepChecker {
            oracle,
            accesses: 0,
        }
    }

    /// Checks one demand access against the oracle.
    ///
    /// # Panics
    ///
    /// Panics with a divergence report on any disagreement.
    pub fn check_demand(
        &mut self,
        l1d: &SetAssocCache,
        vc_lines: Option<&[LineAddr]>,
        obs: &SimObservation,
    ) {
        let index = self.accesses;
        self.accesses += 1;
        let (level, evicted) = self.oracle.step_demand(obs);
        let closed_expected = evicted.is_some() || obs.decay_refetch;
        if level == obs.level && evicted == obs.evicted && obs.closed_generation == closed_expected
        {
            return;
        }
        let mut msg = String::new();
        let _ = writeln!(msg, "oracle divergence at access #{index}");
        let geom = self.oracle.l1.geom;
        let line = geom.line_of(obs.addr);
        let set = geom.index_of_line(line);
        let _ = writeln!(
            msg,
            "  address {:#x} = {line} (L1 set {set})",
            obs.addr.get()
        );
        let _ = writeln!(msg, "  level serviced: sim={}, oracle={}", obs.level, level);
        let _ = writeln!(
            msg,
            "  evicted line:   sim={:?}, oracle={:?}",
            obs.evicted, evicted
        );
        let _ = writeln!(
            msg,
            "  generation closed: sim={}, oracle-expected={}",
            obs.closed_generation, closed_expected
        );
        let sim_set: Vec<String> = l1d
            .set_lines(set)
            .into_iter()
            .map(|(l, stamp)| format!("{l}@{stamp}"))
            .collect();
        let _ = writeln!(
            msg,
            "  sim L1 set {set} (line@lru-stamp): [{}]",
            sim_set.join(", ")
        );
        let oracle_set: Vec<String> = self
            .oracle
            .l1
            .set_lines(set)
            .into_iter()
            .map(|l| l.to_string())
            .collect();
        let _ = writeln!(
            msg,
            "  oracle L1 set {set} (LRU→MRU):      [{}]",
            oracle_set.join(", ")
        );
        if let (Some(sim_vc), Some(vc)) = (vc_lines, self.oracle.vc.as_ref()) {
            let fmt = |ls: &[LineAddr]| {
                ls.iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(msg, "  sim victim cache:    [{}]", fmt(sim_vc));
            let _ = writeln!(msg, "  oracle victim cache: [{}]", fmt(&vc.entries));
        }
        panic!("{msg}");
    }

    /// Checks a prefetch fill (the simulator decided to land `line`).
    ///
    /// # Panics
    ///
    /// Panics with a divergence report if the eviction identity or
    /// generation boundary disagrees.
    pub fn check_prefetch_fill(
        &mut self,
        l1d: &SetAssocCache,
        line: LineAddr,
        sim_evicted: Option<LineAddr>,
        closed_generation: bool,
        vc_admitted: Option<bool>,
    ) {
        let evicted = self.oracle.step_prefetch_fill(line, vc_admitted);
        if evicted == sim_evicted && closed_generation == evicted.is_some() {
            return;
        }
        let geom = self.oracle.l1.geom;
        let set = geom.index_of_line(line);
        let sim_set: Vec<String> = l1d
            .set_lines(set)
            .into_iter()
            .map(|(l, stamp)| format!("{l}@{stamp}"))
            .collect();
        let oracle_set: Vec<String> = self
            .oracle
            .l1
            .set_lines(set)
            .into_iter()
            .map(|l| l.to_string())
            .collect();
        panic!(
            "oracle divergence at prefetch fill after access #{}\n  \
             prefetched {line} (L1 set {set})\n  \
             evicted line: sim={sim_evicted:?}, oracle={evicted:?}\n  \
             generation closed: sim={closed_generation}, oracle-expected={}\n  \
             sim L1 set (line@lru-stamp): [{}]\n  \
             oracle L1 set (LRU→MRU):     [{}]",
            self.accesses,
            evicted.is_some(),
            sim_set.join(", "),
            oracle_set.join(", "),
        );
    }

    /// Checks a prefetch's L2 probe outcome.
    ///
    /// # Panics
    ///
    /// Panics if the oracle's L2 disagrees on hit/miss.
    pub fn check_prefetch_l2(&mut self, addr: Addr, sim_hit: bool) {
        let hit = self.oracle.step_prefetch_l2(addr);
        if hit != sim_hit {
            let line = self.oracle.l2.geom.line_of(addr);
            let set = self.oracle.l2.geom.index_of_line(line);
            panic!(
                "oracle divergence at prefetch L2 probe after access #{}: \
                 {line} (L2 set {set}) sim_hit={sim_hit}, oracle_hit={hit}",
                self.accesses,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Instr, MemRef, Workload};
    use timekeeping::Pc;

    /// A deterministic xorshift mix of strided and conflicting refs.
    struct Mixed {
        state: u64,
        n: u64,
    }

    impl Workload for Mixed {
        fn next_instr(&mut self) -> Instr {
            self.n += 1;
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            let addr = match self.n % 4 {
                0 => (self.n * 8) % (1 << 16),        // stream
                1 => (self.state % 64) * 32 * 1024,   // L1-set conflicts
                2 => (self.state % 4096) * 32,        // scattered lines
                _ => (self.n % 2) * 32 * 1024 + 0x40, // ping-pong
            };
            Instr::Load(MemRef::new(Addr::new(addr), Pc::new(0x100 + self.n % 31)))
        }

        fn name(&self) -> &str {
            "mixed"
        }
    }

    #[test]
    fn lockstep_passes_on_mixed_traffic_base() {
        let r = crate::system::run_workload_checked(
            &mut Mixed {
                state: 0x9e37,
                n: 0,
            },
            SystemConfig::base(),
            60_000,
        );
        assert!(r.hierarchy.l1_misses() > 0, "trace must exercise misses");
    }

    #[test]
    fn lockstep_passes_with_victim_cache() {
        for victim in [
            VictimMode::Unfiltered,
            VictimMode::Collins,
            VictimMode::paper_dead_time(),
        ] {
            let r = crate::system::run_workload_checked(
                &mut Mixed {
                    state: 0x51f1,
                    n: 0,
                },
                SystemConfig::with_victim(victim),
                60_000,
            );
            assert!(r.hierarchy.vc_hits > 0, "trace must exercise the VC");
        }
    }

    #[test]
    fn lockstep_passes_with_prefetcher() {
        let cfg = SystemConfig::with_prefetch(crate::config::PrefetchMode::Timekeeping(
            timekeeping::CorrelationConfig::PAPER_8KB,
        ));
        let r = crate::system::run_workload_checked(&mut Mixed { state: 0x2b, n: 0 }, cfg, 60_000);
        assert!(
            r.hierarchy.pf_issued > 0,
            "trace must exercise the prefetch path"
        );
    }

    #[test]
    fn global_flag_round_trips() {
        assert!(!lockstep_check_enabled());
        set_lockstep_check(true);
        assert!(lockstep_check_enabled());
        set_lockstep_check(false);
        assert!(!lockstep_check_enabled());
    }
}
