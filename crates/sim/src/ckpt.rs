//! The sweep-level checkpoint store.
//!
//! A sampled run factors into a *functional* half — profile pass,
//! interval signatures, k-means clustering, and per-representative
//! functional warm states — and a *timed* half that replays only the
//! elected representatives under the full timing model. The functional
//! half depends on the workload stream and the cache geometry, **not**
//! on the timing configuration being swept: DRAM backend and timings,
//! bus and memory latencies, MSHR counts, prefetch and victim-filter
//! policies, decay — none of them can move a tag in the warm pass. So a
//! figure sweeping nine timing variants of one stream recomputes the
//! expensive half nine times for one answer.
//!
//! This module deduplicates that work. The functional half is captured
//! once per distinct *functional fingerprint* into an immutable
//! [`SampleCheckpoint`] and shared through a two-tier store:
//!
//! * an **in-process tier** — `Arc`-shared across every job of a
//!   `run_jobs` sweep (and across sweeps in one process), LRU-evicted
//!   under a byte budget (`TK_CKPT_BYTES`, default 1.5 GiB);
//! * an optional **on-disk tier** (the `--ckpt[=DIR]` flag, default
//!   `reports/.ckpt`) holding versioned binary snapshots that survive
//!   invocations. Corruption, truncation, version or fingerprint
//!   mismatch are all detected (magic + trailing checksum + embedded
//!   key) and fall back to a silent recompute — a damaged cache can
//!   slow a run down but never change its output.
//!
//! ## The fingerprint
//!
//! The key is the subset of the job that can change functional
//! behavior: workload identity (name plus a hash probe of the stream's
//! first instructions), instruction budget, sampling interval and `k`,
//! L1 and L2 geometry, victim-buffer presence and capacity (warmup
//! models victim movement but not its timing-based admission filter),
//! and the software-prefetch-ignore flag. Everything else is timing-only
//! and deliberately excluded, so all timing variants of one stream share
//! one checkpoint. Checkpoints never alias across fingerprints, and the
//! engine's memo/disk cache keys are untouched — a checkpoint is an
//! implementation detail below the result cache.
//!
//! Reused checkpoints are **bit-identical** to cold builds by
//! construction: the checkpoint is the complete input of the timed
//! half, so where it came from cannot be observed in any result.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::config::{SampleConfig, SystemConfig, VictimMode};
use crate::oracle::FunctionalOracle;
use crate::sample::{build_checkpoint, checkpointable, BufInstr, RepShard, SampleCheckpoint};
use crate::trace::{Instr, Workload};

// ---------------------------------------------------------------------------
// Process-wide switches and counters
// ---------------------------------------------------------------------------

/// In-process tier enabled? On by default: sharing is invisible in
/// results and strictly saves work. `--no-ckpt` turns it off.
static ENABLED: AtomicBool = AtomicBool::new(true);
static MEM_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// Enables or disables the checkpoint store (the `--no-ckpt` flag).
/// When disabled, sampled runs build their checkpoint transiently —
/// same code path, nothing shared or counted — so results are identical
/// either way.
pub fn set_checkpoints_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the checkpoint store is enabled.
pub fn checkpoints_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Sets the on-disk checkpoint tier directory (the `--ckpt[=DIR]`
/// flag). `None` (the default) keeps checkpoints in-process only.
pub fn set_checkpoint_dir(dir: Option<PathBuf>) {
    *disk_dir().lock().expect("ckpt dir lock") = dir;
}

/// The on-disk checkpoint tier directory, if one is configured.
pub fn checkpoint_dir() -> Option<PathBuf> {
    disk_dir().lock().expect("ckpt dir lock").clone()
}

fn disk_dir() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

/// Checkpoint-store activity counters (monotonic since process start or
/// the last [`reset_checkpoint_store`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CkptStats {
    /// Checkpoints served from the in-process tier.
    pub mem_hits: u64,
    /// Checkpoints loaded from the on-disk tier.
    pub disk_hits: u64,
    /// Checkpoints built from scratch (stored for later reuse).
    pub builds: u64,
}

/// Current checkpoint-store counters.
pub fn checkpoint_stats() -> CkptStats {
    CkptStats {
        mem_hits: MEM_HITS.load(Ordering::SeqCst),
        disk_hits: DISK_HITS.load(Ordering::SeqCst),
        builds: BUILDS.load(Ordering::SeqCst),
    }
}

/// Empties the in-process tier and zeroes the counters (the on-disk
/// tier is untouched). Benchmarks use this to measure cold-store costs
/// honestly.
pub fn reset_checkpoint_store() {
    let mut s = store().lock().expect("ckpt store lock");
    s.map.clear();
    s.bytes = 0;
    MEM_HITS.store(0, Ordering::SeqCst);
    DISK_HITS.store(0, Ordering::SeqCst);
    BUILDS.store(0, Ordering::SeqCst);
    let _ = take_recorded_checkpoints();
}

// ---------------------------------------------------------------------------
// Fingerprint-use recording (manifest provenance)
// ---------------------------------------------------------------------------

fn recorder() -> &'static Mutex<Option<Vec<String>>> {
    static REC: OnceLock<Mutex<Option<Vec<String>>>> = OnceLock::new();
    REC.get_or_init(|| Mutex::new(None))
}

/// Arms (or disarms) fingerprint recording: while armed, every
/// checkpoint obtained — hit or build — logs its fingerprint for the
/// report manifest.
pub fn record_checkpoints(on: bool) {
    let mut r = recorder().lock().expect("ckpt recorder lock");
    *r = if on { Some(Vec::new()) } else { None };
}

/// Drains the recorded fingerprints (deduplicated, first-use order).
pub fn take_recorded_checkpoints() -> Vec<String> {
    let mut r = recorder().lock().expect("ckpt recorder lock");
    let mut out = Vec::new();
    if let Some(v) = r.as_mut() {
        let mut seen = std::collections::HashSet::new();
        for fp in v.drain(..) {
            if seen.insert(fp.clone()) {
                out.push(fp);
            }
        }
    }
    out
}

fn record_use(fp: &str) {
    let mut r = recorder().lock().expect("ckpt recorder lock");
    if let Some(v) = r.as_mut() {
        v.push(fp.to_owned());
    }
}

// ---------------------------------------------------------------------------
// The functional fingerprint
// ---------------------------------------------------------------------------

/// Instructions hashed by [`stream_probe`]. Identifies the stream
/// (generator, seed, phase) without a trait change: the deterministic
/// generators that can fork produce their whole stream from their
/// current state, so a prefix hash separates every distinct stream the
/// suite can build. 32 Ki instructions cost ~10 µs — noise against the
/// profile pass the fingerprint deduplicates.
const PROBE_INSTRS: u64 = 32 * 1024;

#[inline]
fn fnv_byte(h: &mut u64, b: u8) {
    *h ^= u64::from(b);
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// Hashes the first `PROBE_INSTRS` (32 Ki) instructions of `workload`'s
/// stream (via a fork; the workload itself is not advanced). `None`
/// when the workload cannot fork — such workloads cannot sample, so
/// they cannot checkpoint either.
pub fn stream_probe<W: Workload + ?Sized>(workload: &W) -> Option<u64> {
    let mut wl = workload.fork()?;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..PROBE_INSTRS {
        let (kind, m) = match wl.next_instr() {
            Instr::Op => {
                fnv_byte(&mut h, 0);
                continue;
            }
            Instr::Load(m) => (1u8, m),
            Instr::ChainedLoad(m) => (2, m),
            Instr::Store(m) => (3, m),
            Instr::SwPrefetch(m) => (4, m),
        };
        fnv_byte(&mut h, kind);
        for b in m.addr.get().to_le_bytes() {
            fnv_byte(&mut h, b);
        }
        for b in m.pc.get().to_le_bytes() {
            fnv_byte(&mut h, b);
        }
    }
    Some(h)
}

/// The functional fingerprint of a job, or `None` when the job would
/// not take the checkpointed path at all (no sampling configured,
/// multi-core, unsupported L1 mode, degenerate or over-cap budget).
/// This predicate is exactly the run-time gate in `run_sampled`, so the
/// engine's sweep planner and the simulator can never disagree about
/// which jobs shard.
///
/// Only knobs that can change *functional* behavior contribute:
/// timing-only configuration (latencies, buses, MSHRs, DRAM backend,
/// prefetch policy, victim admission filter, decay, metrics) is
/// excluded so that all timing variants of one stream share a
/// checkpoint.
pub fn job_fingerprint(
    probe: u64,
    workload_name: &str,
    cfg: &SystemConfig,
    budget: u64,
) -> Option<String> {
    fingerprint_with(probe, workload_name, cfg, cfg.sample?, budget)
}

/// [`job_fingerprint`] with the sampling parameters supplied
/// explicitly (`run_sampled` receives them out of band).
fn fingerprint_with(
    probe: u64,
    workload_name: &str,
    cfg: &SystemConfig,
    sc: SampleConfig,
    budget: u64,
) -> Option<String> {
    if cfg.cores > 1 || !FunctionalOracle::supports(cfg) || !checkpointable(sc, budget) {
        return None;
    }
    let m = &cfg.machine;
    // Victim-buffer *presence and capacity* are functional (warmup
    // moves lines through it); the admission filter is timing-based and
    // warmup always admits, so the mode beyond presence is not.
    let vc = match cfg.victim {
        VictimMode::None => "none".to_owned(),
        _ => m.victim_entries.to_string(),
    };
    Some(format!(
        "v1 wl={workload_name}/{probe:016x} budget={budget} interval={} k={} \
         l1={}x{}x{} l2={}x{}x{} vc={vc} swpf={}",
        sc.interval,
        sc.k,
        m.l1d.size_bytes(),
        m.l1d.assoc(),
        m.l1d.block_bytes(),
        m.l2.size_bytes(),
        m.l2.assoc(),
        m.l2.block_bytes(),
        u8::from(cfg.ignore_sw_prefetch),
    ))
}

// ---------------------------------------------------------------------------
// The in-process tier
// ---------------------------------------------------------------------------

/// Default in-process tier budget: 1.5 GiB of checkpoint payload
/// (override with `TK_CKPT_BYTES`). A paper-budget checkpoint is tens
/// of megabytes, so the whole 26-workload suite fits with room over.
const DEFAULT_CAP_BYTES: usize = 1536 * 1024 * 1024;

#[derive(Default)]
struct Store {
    map: HashMap<String, Entry>,
    bytes: usize,
    tick: u64,
}

struct Entry {
    ckpt: Arc<SampleCheckpoint>,
    bytes: usize,
    last_used: u64,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

fn cap_bytes() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("TK_CKPT_BYTES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_CAP_BYTES)
    })
}

impl Store {
    fn get(&mut self, fp: &str) -> Option<Arc<SampleCheckpoint>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(fp).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.ckpt)
        })
    }

    fn insert(&mut self, ckpt: Arc<SampleCheckpoint>) {
        let bytes = ckpt.approx_bytes();
        if bytes > cap_bytes() {
            return; // larger than the whole budget: usable, not storable
        }
        self.tick += 1;
        if let Some(old) = self.map.insert(
            ckpt.fingerprint().to_owned(),
            Entry {
                ckpt,
                bytes,
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        while self.bytes > cap_bytes() {
            // LRU eviction; the map stays small (one entry per distinct
            // stream), so a scan beats bookkeeping.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies entries");
            let e = self.map.remove(&victim).expect("just found");
            self.bytes -= e.bytes;
        }
    }
}

// ---------------------------------------------------------------------------
// Obtaining a checkpoint
// ---------------------------------------------------------------------------

/// The single entry point of the checkpoint plane: returns the
/// checkpoint for `(workload, cfg, budget)` — from the in-process tier,
/// the disk tier, or a fresh build, in that order. With the store
/// disabled the checkpoint is built transiently (nothing shared or
/// counted); in every case the returned object is bit-identical.
/// `None` when the job is not checkpointable or the generator overflows
/// the compact stream encoding.
pub(crate) fn obtain<W: Workload + ?Sized>(
    workload: &W,
    cfg: &SystemConfig,
    sc: SampleConfig,
    budget: u64,
) -> Option<Arc<SampleCheckpoint>> {
    let probe = stream_probe(workload)?;
    let fp = fingerprint_with(probe, workload.name(), cfg, sc, budget)?;
    obtain_inner(workload, cfg, sc, budget, &fp)
}

/// Fetches or builds the checkpoint for an already-computed
/// fingerprint. The engine uses this after planning a sweep's distinct
/// fingerprints so each is built exactly once.
pub fn obtain_keyed<W: Workload + ?Sized>(
    workload: &W,
    cfg: &SystemConfig,
    budget: u64,
    fingerprint: &str,
) -> Option<Arc<SampleCheckpoint>> {
    let sc = cfg.sample.expect("fingerprinted jobs sample");
    obtain_inner(workload, cfg, sc, budget, fingerprint)
}

fn obtain_inner<W: Workload + ?Sized>(
    workload: &W,
    cfg: &SystemConfig,
    sc: SampleConfig,
    budget: u64,
    fingerprint: &str,
) -> Option<Arc<SampleCheckpoint>> {
    if !checkpoints_enabled() {
        // Transient: same builder, nothing shared, nothing counted.
        return build_checkpoint(workload, cfg, sc, budget, fingerprint.to_owned()).map(Arc::new);
    }
    if let Some(hit) = store().lock().expect("ckpt store lock").get(fingerprint) {
        MEM_HITS.fetch_add(1, Ordering::SeqCst);
        record_use(fingerprint);
        return Some(hit);
    }
    let dir = checkpoint_dir();
    if let Some(dir) = dir.as_deref() {
        if let Some(loaded) = disk_load(dir, fingerprint) {
            let loaded = Arc::new(loaded);
            store()
                .lock()
                .expect("ckpt store lock")
                .insert(Arc::clone(&loaded));
            DISK_HITS.fetch_add(1, Ordering::SeqCst);
            record_use(fingerprint);
            return Some(loaded);
        }
    }
    let built = Arc::new(build_checkpoint(
        workload,
        cfg,
        sc,
        budget,
        fingerprint.to_owned(),
    )?);
    store()
        .lock()
        .expect("ckpt store lock")
        .insert(Arc::clone(&built));
    if let Some(dir) = dir.as_deref() {
        disk_store(dir, &built);
    }
    BUILDS.fetch_add(1, Ordering::SeqCst);
    record_use(fingerprint);
    Some(built)
}

// ---------------------------------------------------------------------------
// The on-disk tier (versioned binary, checksummed)
// ---------------------------------------------------------------------------

/// File magic; the version rides in it, so a format change is a
/// "stale version" miss, never a misparse.
const MAGIC: &[u8; 8] = b"TKCKPT01";

fn fnv1a64_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        fnv_byte(&mut h, b);
    }
    h
}

fn ckpt_path(dir: &std::path::Path, fingerprint: &str) -> PathBuf {
    dir.join(format!(
        "ck_{:016x}.bin",
        fnv1a64_bytes(fingerprint.as_bytes())
    ))
}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn lines(&mut self, v: &[u64]) {
        self.u32(v.len() as u32);
        for &l in v {
            self.u64(l);
        }
    }
}

fn encode(ckpt: &SampleCheckpoint) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(ckpt.approx_bytes() + 1024));
    w.0.extend_from_slice(MAGIC);
    w.str(&ckpt.fingerprint);
    w.str(&ckpt.workload);
    w.u64(ckpt.interval);
    w.u32(ckpt.k);
    w.u64(ckpt.intervals);
    w.u64(ckpt.budget);
    w.u32(ckpt.reps);
    // Deterministic order so identical checkpoints serialize to
    // identical files.
    let mut first: Vec<(u64, u32)> = ckpt.first_touch.iter().map(|(&l, &e)| (l, e)).collect();
    first.sort_unstable();
    w.u32(first.len() as u32);
    for (line, epoch) in first {
        w.u64(line);
        w.u32(epoch);
    }
    w.u32(ckpt.shards.len() as u32);
    for s in &ckpt.shards {
        w.u64(s.rep_index);
        w.u64(s.weight);
        w.u64(s.length);
        w.u32(s.start_ops_done);
        w.u32(s.stream.len() as u32);
        for b in &s.stream {
            w.u64(b.addr);
            w.u32(b.pc);
            w.u8(b.kind);
            w.u16(b.op_gap);
        }
        w.lines(&s.l1_lines);
        w.u32(s.l1_dirty.len() as u32);
        for &d in &s.l1_dirty {
            w.u8(u8::from(d));
        }
        w.lines(&s.l2_lines);
        w.lines(&s.shadow_stack);
    }
    let sum = fnv1a64_bytes(&w.0);
    w.u64(sum);
    w.0
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.at..self.at.checked_add(n)?)?;
        self.at += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
    fn lines(&mut self) -> Option<Vec<u64>> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.u64()).collect()
    }
}

fn decode(bytes: &[u8], want_fingerprint: &str) -> Option<SampleCheckpoint> {
    // Trailing-checksum gate: any truncation or bit rot fails here.
    if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let (payload, sum) = bytes.split_at(bytes.len() - 8);
    if fnv1a64_bytes(payload) != u64::from_le_bytes(sum.try_into().ok()?) {
        return None;
    }
    let mut r = Reader {
        buf: payload,
        at: MAGIC.len(),
    };
    let fingerprint = r.str()?;
    if fingerprint != want_fingerprint {
        return None; // hash-named file holding someone else's key
    }
    let workload = r.str()?;
    let interval = r.u64()?;
    let k = r.u32()?;
    let intervals = r.u64()?;
    let budget = r.u64()?;
    let reps = r.u32()?;
    let n_first = r.u32()? as usize;
    let mut first_touch = HashMap::with_capacity(n_first);
    for _ in 0..n_first {
        let line = r.u64()?;
        let epoch = r.u32()?;
        first_touch.insert(line, epoch);
    }
    let n_shards = r.u32()? as usize;
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let rep_index = r.u64()?;
        let weight = r.u64()?;
        let length = r.u64()?;
        let start_ops_done = r.u32()?;
        let n_stream = r.u32()? as usize;
        let mut stream = Vec::with_capacity(n_stream);
        for _ in 0..n_stream {
            stream.push(BufInstr {
                addr: r.u64()?,
                pc: r.u32()?,
                kind: r.u8()?,
                op_gap: r.u16()?,
            });
        }
        let l1_lines = r.lines()?;
        let n_dirty = r.u32()? as usize;
        let mut l1_dirty = Vec::with_capacity(n_dirty);
        for _ in 0..n_dirty {
            l1_dirty.push(r.u8()? != 0);
        }
        if l1_dirty.len() != l1_lines.len() {
            return None;
        }
        shards.push(RepShard {
            rep_index,
            weight,
            length,
            start_ops_done,
            stream,
            l1_lines,
            l1_dirty,
            l2_lines: r.lines()?,
            shadow_stack: r.lines()?,
        });
    }
    if r.at != payload.len() {
        return None; // trailing garbage under a valid checksum: reject
    }
    Some(SampleCheckpoint {
        fingerprint,
        workload,
        interval,
        k,
        intervals,
        budget,
        reps,
        first_touch: Arc::new(first_touch),
        shards,
    })
}

fn disk_load(dir: &std::path::Path, fingerprint: &str) -> Option<SampleCheckpoint> {
    let bytes = std::fs::read(ckpt_path(dir, fingerprint)).ok()?;
    decode(&bytes, fingerprint)
}

/// Best-effort write-through: a full disk or read-only directory slows
/// future runs down, it never fails this one. Written to a temp name
/// and renamed so a concurrent reader can't observe a torn file.
fn disk_store(dir: &std::path::Path, ckpt: &SampleCheckpoint) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = ckpt_path(dir, ckpt.fingerprint());
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if std::fs::write(&tmp, encode(ckpt)).is_ok() && std::fs::rename(&tmp, &path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_and_rejects_damage() {
        let ckpt = SampleCheckpoint {
            fingerprint: "v1 wl=test/0000000000000001 budget=10 interval=5 k=1 \
                          l1=1024x1x32 l2=4096x2x32 vc=none swpf=0"
                .to_owned(),
            workload: "test".to_owned(),
            interval: 5,
            k: 1,
            intervals: 2,
            budget: 10,
            reps: 1,
            first_touch: Arc::new([(3u64, 0u32), (9, 1)].into_iter().collect()),
            shards: vec![RepShard {
                rep_index: 1,
                weight: 2,
                length: 5,
                start_ops_done: 3,
                stream: vec![BufInstr {
                    addr: 0x1240,
                    pc: 0x400,
                    kind: 3,
                    op_gap: 7,
                }],
                l1_lines: vec![3, 9],
                l1_dirty: vec![true, false],
                l2_lines: vec![3],
                shadow_stack: vec![3, 9],
            }],
        };
        let bytes = encode(&ckpt);
        let back = decode(&bytes, ckpt.fingerprint()).expect("round trip");
        assert_eq!(back, ckpt);

        // Wrong fingerprint (a hash-named file holding another key).
        assert!(decode(&bytes, "something else").is_none());
        // Truncation.
        assert!(decode(&bytes[..bytes.len() - 1], ckpt.fingerprint()).is_none());
        // Single-bit corruption in the middle of the payload.
        let mut bad = bytes.clone();
        bad[bytes.len() / 2] ^= 1;
        assert!(decode(&bad, ckpt.fingerprint()).is_none());
        // Stale version magic.
        let mut stale = bytes;
        stale[7] = b'0';
        assert!(decode(&stale, ckpt.fingerprint()).is_none());
    }

    #[test]
    fn fingerprint_excludes_timing_knobs() {
        let mut cfg = SystemConfig::base();
        cfg.sample = Some(SampleConfig {
            interval: 1_000,
            k: 2,
        });
        let base = job_fingerprint(7, "wl", &cfg, 100_000).expect("eligible");

        // Timing-only knobs share the fingerprint (the deprecated
        // field is still the Fixed backend's latency source).
        let mut timing = cfg;
        #[allow(deprecated)]
        {
            timing.machine.mem_latency = 999;
        }
        timing.machine.l2_latency = 40;
        timing.machine.l1l2_bus_occupancy = 9;
        assert_eq!(
            job_fingerprint(7, "wl", &timing, 100_000).as_deref(),
            Some(base.as_str())
        );

        // Functional knobs do not.
        let mut swpf = cfg;
        swpf.ignore_sw_prefetch = !cfg.ignore_sw_prefetch;
        assert_ne!(
            job_fingerprint(7, "wl", &swpf, 100_000).as_deref(),
            Some(base.as_str())
        );
        assert_ne!(
            job_fingerprint(8, "wl", &cfg, 100_000).as_deref(),
            Some(base.as_str()),
            "stream probe is part of the key"
        );
        assert_ne!(
            job_fingerprint(7, "wl", &cfg, 200_000).as_deref(),
            Some(base.as_str()),
            "budget is part of the key"
        );

        // Ineligible shapes fingerprint to nothing.
        let mut unsampled = cfg;
        unsampled.sample = None;
        assert_eq!(job_fingerprint(7, "wl", &unsampled, 100_000), None);
        let mut degenerate = cfg;
        degenerate.sample = Some(SampleConfig {
            interval: 100_000,
            k: 2,
        });
        assert_eq!(
            job_fingerprint(7, "wl", &degenerate, 100_000),
            None,
            "k >= intervals degenerates to a tagged full run"
        );
    }
}
