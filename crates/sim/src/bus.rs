//! Occupancy-based bus contention model.
//!
//! Each block transfer occupies the bus for a fixed number of core cycles
//! (width and clock ratio folded into the occupancy constant). Transfers
//! serialize: a request issued while the bus is busy starts when it frees.
//! Demand traffic always schedules; prefetch traffic is only granted when
//! the bus is idle (the "busses always give processor memory requests
//! priority over hardware prefetch requests" rule of §2.1).

use timekeeping::Cycle;

/// A shared bus with fixed per-transfer occupancy.
///
/// # Examples
///
/// ```
/// use tk_sim::bus::Bus;
/// use timekeeping::Cycle;
///
/// let mut bus = Bus::new(5);
/// // Two back-to-back transfers serialize.
/// assert_eq!(bus.schedule(Cycle::new(100)), Cycle::new(100)); // done at 105
/// assert_eq!(bus.schedule(Cycle::new(100)), Cycle::new(105)); // done at 110
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Bus {
    occupancy: u64,
    next_free: Cycle,
    transfers: u64,
    busy_cycles: u64,
    /// End of the most recently scheduled busy interval, kept only to
    /// assert that intervals never overlap.
    #[cfg(feature = "check-invariants")]
    last_end: Cycle,
}

impl Bus {
    /// Creates a bus whose transfers occupy `occupancy` core cycles.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is zero.
    pub fn new(occupancy: u64) -> Self {
        assert!(occupancy > 0, "bus occupancy must be nonzero");
        Bus {
            occupancy,
            next_free: Cycle::ZERO,
            transfers: 0,
            busy_cycles: 0,
            #[cfg(feature = "check-invariants")]
            last_end: Cycle::ZERO,
        }
    }

    /// Per-transfer occupancy in cycles.
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// Completed or scheduled transfers.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total cycles of scheduled occupancy (utilization numerator).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// True if a transfer requested at `now` would start immediately.
    pub fn idle_at(&self, now: Cycle) -> bool {
        self.next_free <= now
    }

    /// Schedules a demand transfer requested at `now`; returns its start
    /// time (the data is across the bus at `start + occupancy`).
    pub fn schedule(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.next_free);
        #[cfg(feature = "check-invariants")]
        {
            assert!(
                start >= self.last_end,
                "bus busy intervals overlap: transfer at {start} starts \
                 before the previous one ends at {}",
                self.last_end
            );
            self.last_end = start + self.occupancy;
        }
        self.next_free = start + self.occupancy;
        self.transfers += 1;
        self.busy_cycles += self.occupancy;
        start
    }

    /// Current reservation backlog: how far beyond `now` the bus is booked.
    pub fn backlog(&self, now: Cycle) -> u64 {
        self.next_free.since(now)
    }

    /// The cycle at which every current reservation has drained. The bus
    /// state is static between transfers, so `backlog(c)` for any future
    /// `c` is fully determined by this value — which makes it the bus's
    /// contribution to event-driven wake-up computation.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Schedules a prefetch transfer requested at `now` only if the demand
    /// backlog is below `max_backlog` cycles; demand traffic has priority,
    /// so prefetches yield whenever the bus is meaningfully congested.
    /// (Demand reservations are booked at data-return time, so a small
    /// backlog is normal even on an uncongested bus — a strict idle check
    /// would starve prefetches entirely.)
    pub fn try_schedule_prefetch(&mut self, now: Cycle, max_backlog: u64) -> Option<Cycle> {
        if self.backlog(now) <= max_backlog {
            Some(self.schedule(now))
        } else {
            None
        }
    }

    /// Completion time of a transfer that starts at `start`.
    pub fn done_at(&self, start: Cycle) -> Cycle {
        start + self.occupancy
    }
}

/// The snoop-bus arbiter of the multi-core hierarchy
/// ([`crate::multicore`]): a [`Bus`] that owns the coherence broadcast
/// order and counts transactions by class.
///
/// Every coherence transaction — BusRd, BusRdX, upgrade — serializes
/// through this one bus, which is what makes the MESI protocol's global
/// transaction order deterministic: cores are serviced in (cycle,
/// core-index) order by the driver loop, and each granted transaction
/// reserves the bus for one block-transfer occupancy. Cache-to-cache
/// transfers ride the granting transaction's reservation (the owner
/// flushes onto the same bus slot), so they add a count but no second
/// reservation.
#[derive(Debug, Clone, Copy)]
pub struct SnoopBus {
    bus: Bus,
    reads: u64,
    read_exclusives: u64,
    upgrades: u64,
    c2c_transfers: u64,
}

impl SnoopBus {
    /// Creates an arbiter whose transactions occupy `occupancy` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is zero.
    pub fn new(occupancy: u64) -> Self {
        SnoopBus {
            bus: Bus::new(occupancy),
            reads: 0,
            read_exclusives: 0,
            upgrades: 0,
            c2c_transfers: 0,
        }
    }

    /// Grants a BusRd (read-miss) transaction requested at `now`;
    /// returns its bus-grant cycle.
    pub fn grant_read(&mut self, now: Cycle) -> Cycle {
        self.reads += 1;
        self.bus.schedule(now)
    }

    /// Grants a BusRdX (write-miss, invalidating) transaction.
    pub fn grant_read_exclusive(&mut self, now: Cycle) -> Cycle {
        self.read_exclusives += 1;
        self.bus.schedule(now)
    }

    /// Grants an upgrade (write hit on a shared copy) transaction.
    pub fn grant_upgrade(&mut self, now: Cycle) -> Cycle {
        self.upgrades += 1;
        self.bus.schedule(now)
    }

    /// Records a cache-to-cache supply riding an already-granted
    /// transaction's reservation.
    pub fn note_c2c(&mut self) {
        self.c2c_transfers += 1;
    }

    /// Granted BusRd transactions.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Granted BusRdX transactions.
    pub fn read_exclusives(&self) -> u64 {
        self.read_exclusives
    }

    /// Granted upgrade transactions.
    pub fn upgrades(&self) -> u64 {
        self.upgrades
    }

    /// Cache-to-cache transfers supplied on this bus.
    pub fn c2c_transfers(&self) -> u64 {
        self.c2c_transfers
    }

    /// All granted transactions.
    pub fn transactions(&self) -> u64 {
        self.bus.transfers()
    }

    /// Total cycles of scheduled occupancy.
    pub fn busy_cycles(&self) -> u64 {
        self.bus.busy_cycles()
    }

    /// The cycle at which every current reservation has drained (the
    /// arbiter's contribution to event-driven wake-up computation).
    pub fn next_free(&self) -> Cycle {
        self.bus.next_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snoop_bus_serializes_and_counts_by_class() {
        let mut sb = SnoopBus::new(1);
        assert_eq!(sb.grant_read(Cycle::new(0)), Cycle::new(0));
        assert_eq!(sb.grant_read_exclusive(Cycle::new(0)), Cycle::new(1));
        assert_eq!(sb.grant_upgrade(Cycle::new(0)), Cycle::new(2));
        sb.note_c2c();
        assert_eq!(sb.reads(), 1);
        assert_eq!(sb.read_exclusives(), 1);
        assert_eq!(sb.upgrades(), 1);
        assert_eq!(sb.c2c_transfers(), 1);
        assert_eq!(sb.transactions(), 3);
        // The c2c supply rode an existing reservation: 3 slots booked.
        assert_eq!(sb.busy_cycles(), 3);
        assert_eq!(sb.next_free(), Cycle::new(3));
    }

    #[test]
    fn transfers_serialize() {
        let mut b = Bus::new(5);
        let s1 = b.schedule(Cycle::new(0));
        let s2 = b.schedule(Cycle::new(0));
        let s3 = b.schedule(Cycle::new(0));
        assert_eq!(s1, Cycle::new(0));
        assert_eq!(s2, Cycle::new(5));
        assert_eq!(s3, Cycle::new(10));
        assert_eq!(b.transfers(), 3);
        assert_eq!(b.busy_cycles(), 15);
    }

    #[test]
    fn idle_gap_is_not_reserved() {
        let mut b = Bus::new(5);
        b.schedule(Cycle::new(0)); // busy 0..5
        let s = b.schedule(Cycle::new(100)); // long idle gap
        assert_eq!(s, Cycle::new(100));
    }

    #[test]
    fn prefetch_yields_to_backlog() {
        let mut b = Bus::new(5);
        b.schedule(Cycle::new(0)); // booked 0..5
        assert_eq!(b.backlog(Cycle::new(3)), 2);
        // Backlog 2 exceeds a zero allowance but fits a 2-cycle allowance.
        assert_eq!(b.try_schedule_prefetch(Cycle::new(3), 0), None);
        assert_eq!(
            b.try_schedule_prefetch(Cycle::new(3), 2),
            Some(Cycle::new(5))
        );
        // After that, the backlog has grown past the allowance again.
        assert_eq!(b.try_schedule_prefetch(Cycle::new(3), 2), None);
        assert_eq!(
            b.try_schedule_prefetch(Cycle::new(10), 2),
            Some(Cycle::new(10))
        );
    }

    #[test]
    fn done_at_adds_occupancy() {
        let b = Bus::new(7);
        assert_eq!(b.done_at(Cycle::new(10)), Cycle::new(17));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_occupancy_rejected() {
        let _ = Bus::new(0);
    }
}
