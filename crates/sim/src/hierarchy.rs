//! The full memory system: L1D (+ optional victim cache), L2, buses, DRAM,
//! MSHRs, miss classification, generational timekeeping, and the two
//! prefetchers.
//!
//! This is the substrate every experiment runs on. The timing model is
//! occupancy-based: every shared resource (buses, MSHRs) tracks when it is
//! next free, and a request's completion time is computed by walking its
//! path through the hierarchy. Tags are allocated at miss time; data
//! arrives at the computed completion time (hits under outstanding misses
//! observe the fill time through the MSHRs).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use timekeeping::snapshot::{Json, Snapshot, SnapshotError};
use timekeeping::{
    AdaptiveDeadTimeFilter, CollinsFilter, DeadTimeFilter, NoFilter, ReloadIntervalFilter,
};
use timekeeping::{
    Cycle, Dbcp, EvictCause, EvictionInfo, FullyAssocShadow, GenerationTracker, GlobalTicker,
    LineAddr, MetricsCollector, MissBreakdown, PrefetchQueue, PrefetchRequest,
    TimekeepingPrefetcher, Timeliness, TimelinessStats, VictimCache, VictimFilter,
};

use crate::bus::Bus;
use crate::cache::{ProbeResult, SetAssocCache};
use crate::config::{L1Mode, PrefetchMode, SystemConfig, VictimMode};
use crate::mshr::MshrFile;
use crate::oracle::{FunctionalOracle, LockstepChecker, SimLevel, SimObservation};
use crate::trace::MemRef;

/// Result of one data-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which the data is available to the core.
    pub ready_at: Cycle,
    /// Whether the access hit in the L1.
    pub l1_hit: bool,
    /// Whether an L1 miss was served by the victim cache.
    pub vc_hit: bool,
}

/// Aggregate hierarchy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 data-cache accesses.
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses served by the victim cache.
    pub vc_hits: u64,
    /// L2 accesses (demand).
    pub l2_accesses: u64,
    /// L2 hits (demand).
    pub l2_hits: u64,
    /// Main-memory accesses (demand).
    pub mem_accesses: u64,
    /// Prefetches enqueued.
    pub pf_enqueued: u64,
    /// Prefetches issued to the L2/memory.
    pub pf_issued: u64,
    /// Prefetch fills that landed in the L1.
    pub pf_fills: u64,
    /// Prefetches dropped because the line was already cached/outstanding
    /// or the target set already had a pending prefetch.
    pub pf_redundant: u64,
    /// Prefetch arrivals dropped because the resident block was recently
    /// used (likely live) — the §5.1 displacement guard.
    pub pf_dropped_live: u64,
    /// Address predictions checked against the next fill (Figure 20).
    pub addr_predictions: u64,
    /// Address predictions that matched.
    pub addr_correct: u64,
    /// Dirty L1 lines written back to the L2 at eviction.
    pub l1_writebacks: u64,
    /// Dirty L2 lines written back to memory at eviction.
    pub l2_writebacks: u64,
    /// Misses induced by cache decay (line was switched off while idle).
    pub decay_misses: u64,
    /// Frame-cycles spent switched off by cache decay (leakage saving).
    pub decay_off_cycles: u64,
}

impl HierarchyStats {
    /// L1 misses.
    pub fn l1_misses(&self) -> u64 {
        self.l1_accesses - self.l1_hits
    }

    /// L1 miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_misses() as f64 / self.l1_accesses as f64
        }
    }

    /// Address-prediction accuracy (Figure 20).
    pub fn addr_accuracy(&self) -> Option<f64> {
        (self.addr_predictions > 0).then(|| self.addr_correct as f64 / self.addr_predictions as f64)
    }
}

impl Snapshot for HierarchyStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("l1_accesses", Json::U64(self.l1_accesses)),
            ("l1_hits", Json::U64(self.l1_hits)),
            ("vc_hits", Json::U64(self.vc_hits)),
            ("l2_accesses", Json::U64(self.l2_accesses)),
            ("l2_hits", Json::U64(self.l2_hits)),
            ("mem_accesses", Json::U64(self.mem_accesses)),
            ("pf_enqueued", Json::U64(self.pf_enqueued)),
            ("pf_issued", Json::U64(self.pf_issued)),
            ("pf_fills", Json::U64(self.pf_fills)),
            ("pf_redundant", Json::U64(self.pf_redundant)),
            ("pf_dropped_live", Json::U64(self.pf_dropped_live)),
            ("addr_predictions", Json::U64(self.addr_predictions)),
            ("addr_correct", Json::U64(self.addr_correct)),
            ("l1_writebacks", Json::U64(self.l1_writebacks)),
            ("l2_writebacks", Json::U64(self.l2_writebacks)),
            ("decay_misses", Json::U64(self.decay_misses)),
            ("decay_off_cycles", Json::U64(self.decay_off_cycles)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, SnapshotError> {
        Ok(HierarchyStats {
            l1_accesses: v.u64_field("l1_accesses")?,
            l1_hits: v.u64_field("l1_hits")?,
            vc_hits: v.u64_field("vc_hits")?,
            l2_accesses: v.u64_field("l2_accesses")?,
            l2_hits: v.u64_field("l2_hits")?,
            mem_accesses: v.u64_field("mem_accesses")?,
            pf_enqueued: v.u64_field("pf_enqueued")?,
            pf_issued: v.u64_field("pf_issued")?,
            pf_fills: v.u64_field("pf_fills")?,
            pf_redundant: v.u64_field("pf_redundant")?,
            pf_dropped_live: v.u64_field("pf_dropped_live")?,
            addr_predictions: v.u64_field("addr_predictions")?,
            addr_correct: v.u64_field("addr_correct")?,
            l1_writebacks: v.u64_field("l1_writebacks")?,
            l2_writebacks: v.u64_field("l2_writebacks")?,
            decay_misses: v.u64_field("decay_misses")?,
            decay_off_cycles: v.u64_field("decay_off_cycles")?,
        })
    }
}

/// Looks up the pending deadline recorded for a queued request.
fn geom_deadline(
    pending: &HashMap<u64, PendingPf>,
    geom: timekeeping::CacheGeometry,
    req: &PrefetchRequest,
) -> Option<Cycle> {
    pending
        .get(&geom.index_of_line(req.line))
        .and_then(|p| p.deadline)
}

/// Per-set pending-prefetch lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PfState {
    /// Waiting in the prefetch request queue.
    Queued,
    /// Dropped from the queue by overflow; kept for classification.
    Discarded,
    /// Issued to the lower hierarchy; data arrives at the given cycle.
    Issued(Cycle),
    /// Arrived in the L1; remembers which line it displaced and whether
    /// that line has since been demand-missed (the "early" signature).
    Arrived {
        displaced: Option<LineAddr>,
        displaced_missed: bool,
    },
}

#[derive(Debug, Clone, Copy)]
struct PendingPf {
    line: LineAddr,
    state: PfState,
    /// Predicted cycle by which the line will be demanded (for slack
    /// scheduling), when the predictor supplied one.
    deadline: Option<Cycle>,
}

#[derive(Debug)]
enum PrefetcherImpl {
    None,
    Tk(TimekeepingPrefetcher),
    Dbcp(Dbcp),
    Markov(timekeeping::Markov),
    Stride(timekeeping::StridePrefetcher),
}

#[derive(Debug)]
struct VictimUnit {
    cache: VictimCache,
    filter: Box<dyn VictimFilter>,
    /// Blocks entered by L1↔VC swaps (not counted as filtered fill
    /// traffic; see DESIGN.md).
    swap_fills: u64,
}

/// Per-access scratch recorded by the demand/prefetch paths for the
/// lockstep checker (see [`crate::oracle`]). Reset before each checked
/// access; the writes are unconditional because they are cheaper than
/// branching on whether a checker is installed.
#[derive(Debug, Default, Clone, Copy)]
struct TapEvent {
    /// Level that serviced an L1 miss (`None` until the miss path runs).
    level: Option<SimLevel>,
    /// Line evicted from the L1 by this event, if any.
    evicted: Option<LineAddr>,
    /// Whether a generation-boundary event (tracker evict) fired.
    closed: bool,
    /// Whether this was a decay refetch.
    decay: bool,
    /// Victim-filter admission decision, if an eviction was offered.
    vc_admitted: Option<bool>,
}

/// The complete simulated memory system.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: SystemConfig,
    ticker: GlobalTicker,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    victim: Option<VictimUnit>,
    tracker: GenerationTracker,
    shadow: FullyAssocShadow,
    metrics: MetricsCollector,
    demand_mshrs: MshrFile,
    prefetch_mshrs: MshrFile,
    l1l2_bus: Bus,
    l2mem_bus: Bus,
    prefetcher: PrefetcherImpl,
    pf_queue: PrefetchQueue,
    inflight_pf: BinaryHeap<Reverse<(u64, u64, u64)>>,
    pending_pf: HashMap<u64, PendingPf>,
    timeliness: TimelinessStats,
    addr_pred: Vec<Option<u64>>,
    l2_last_access: HashMap<u64, Cycle>,
    l2_access_interval: timekeeping::Histogram,
    l2_monitor: timekeeping::L2IntervalMonitor,
    cold_seen: HashSet<u64>,
    last_tick: u64,
    stats: HierarchyStats,
    evt: TapEvent,
    checker: Option<Box<LockstepChecker>>,
}

impl MemorySystem {
    /// Builds the memory system described by `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let m = &cfg.machine;
        let num_frames = m.l1d.num_frames() as usize;
        let ticker = GlobalTicker::new(m.tick_period);
        let victim = match cfg.victim {
            VictimMode::None => None,
            VictimMode::Unfiltered => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(NoFilter),
                swap_fills: 0,
            }),
            VictimMode::Collins => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(CollinsFilter::new()),
                swap_fills: 0,
            }),
            VictimMode::DeadTime { threshold } => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(DeadTimeFilter::new(threshold, ticker)),
                swap_fills: 0,
            }),
            VictimMode::AdaptiveDeadTime => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(AdaptiveDeadTimeFilter::new(ticker, m.victim_entries)),
                swap_fills: 0,
            }),
            VictimMode::ReloadInterval { threshold } => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(ReloadIntervalFilter::new(threshold)),
                swap_fills: 0,
            }),
        };
        let prefetcher = match cfg.prefetch {
            PrefetchMode::None => PrefetcherImpl::None,
            PrefetchMode::Timekeeping(tcfg) => {
                PrefetcherImpl::Tk(TimekeepingPrefetcher::new(m.l1d, tcfg, ticker))
            }
            PrefetchMode::Dbcp(dcfg) => PrefetcherImpl::Dbcp(Dbcp::new(dcfg, num_frames)),
            PrefetchMode::Markov(mcfg) => PrefetcherImpl::Markov(timekeeping::Markov::new(mcfg)),
            PrefetchMode::Stride(scfg) => {
                PrefetcherImpl::Stride(timekeeping::StridePrefetcher::new(scfg, m.l1d))
            }
        };
        MemorySystem {
            cfg,
            ticker,
            l1d: SetAssocCache::new(m.l1d),
            l2: SetAssocCache::new(m.l2),
            victim,
            tracker: GenerationTracker::new(num_frames),
            shadow: FullyAssocShadow::new(m.l1d.num_frames() as usize),
            metrics: MetricsCollector::new(),
            demand_mshrs: MshrFile::new(m.demand_mshrs),
            prefetch_mshrs: MshrFile::new(m.prefetch_mshrs),
            l1l2_bus: Bus::new(m.l1l2_bus_occupancy),
            l2mem_bus: Bus::new(m.l2mem_bus_occupancy),
            prefetcher,
            pf_queue: PrefetchQueue::new(m.prefetch_queue),
            inflight_pf: BinaryHeap::new(),
            pending_pf: HashMap::new(),
            timeliness: TimelinessStats::new(),
            addr_pred: vec![None; num_frames],
            l2_last_access: HashMap::new(),
            l2_access_interval: timekeeping::Histogram::paper_x1000(),
            l2_monitor: timekeeping::L2IntervalMonitor::new(m.l2, ticker, 16_384),
            cold_seen: HashSet::new(),
            last_tick: 0,
            stats: HierarchyStats::default(),
            evt: TapEvent::default(),
            checker: None,
        }
    }

    /// Installs the functional-oracle lockstep checker (see
    /// [`crate::oracle`]): every subsequent demand access, prefetch fill
    /// and prefetch L2 touch is replayed into a timing-free reference
    /// model, and any disagreement on hit/miss classification, level
    /// serviced, evicted-line identity or generation boundaries panics
    /// with a divergence report.
    ///
    /// Returns whether the checker was installed; configurations the
    /// oracle cannot mirror (the cold-miss-only L1 study mode) are left
    /// unchecked.
    ///
    /// # Panics
    ///
    /// Panics if the system has already performed accesses — the oracle
    /// mirrors an empty hierarchy.
    pub fn enable_lockstep_check(&mut self) -> bool {
        assert_eq!(
            self.stats.l1_accesses, 0,
            "lockstep checker must be installed before any access"
        );
        if !FunctionalOracle::supports(&self.cfg) {
            return false;
        }
        self.checker = Some(Box::new(LockstepChecker::new(&self.cfg)));
        true
    }

    /// Whether the lockstep checker is installed.
    pub fn lockstep_check_active(&self) -> bool {
        self.checker.is_some()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Aggregate counters.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Timekeeping metric distributions and predictor scores.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.metrics
    }

    /// Access intervals observed at the L2 (one sample per repeat L1 miss
    /// of a line). Per §3, this distribution coincides with the L1 reload
    /// intervals — see `l2_access_interval_equals_l1_reload_interval`.
    pub fn l2_access_intervals(&self) -> &timekeeping::Histogram {
        &self.l2_access_interval
    }

    /// Prediction scores of the hardware L2 interval monitor (§4.1's
    /// L2-side conflict predictor, with real counter quantization).
    pub fn l2_monitor_score(&self) -> &timekeeping::AccuracyCoverage {
        self.l2_monitor.score()
    }

    /// Mutable access to the metrics, so a finished run can move them out
    /// without cloning the histograms.
    pub fn metrics_mut(&mut self) -> &mut MetricsCollector {
        &mut self.metrics
    }

    /// Ground-truth miss breakdown (Figure 2).
    pub fn miss_breakdown(&self) -> MissBreakdown {
        self.shadow.breakdown()
    }

    /// Victim-cache statistics, if a victim cache is configured.
    pub fn victim_stats(&self) -> Option<timekeeping::VictimStats> {
        self.victim.as_ref().map(|v| v.cache.stats())
    }

    /// Blocks entered into the victim cache by L1↔VC swaps.
    pub fn victim_swap_fills(&self) -> Option<u64> {
        self.victim.as_ref().map(|v| v.swap_fills)
    }

    /// Prefetch timeliness breakdown (Figure 21).
    pub fn timeliness(&self) -> &TimelinessStats {
        &self.timeliness
    }

    /// Prefetch queue drop count.
    pub fn pf_queue_discards(&self) -> u64 {
        self.pf_queue.discarded()
    }

    /// Correlation-table statistics of the timekeeping prefetcher, if
    /// configured (hit rate = Figure 20 coverage).
    pub fn correlation_stats(&self) -> Option<timekeeping::CorrelationStats> {
        match &self.prefetcher {
            PrefetcherImpl::Tk(p) => Some(p.table_stats()),
            _ => None,
        }
    }

    /// DBCP statistics, if configured.
    pub fn dbcp_stats(&self) -> Option<timekeeping::DbcpStats> {
        match &self.prefetcher {
            PrefetcherImpl::Dbcp(d) => Some(d.stats()),
            _ => None,
        }
    }

    /// Advances background machinery to `now`: global ticks (prefetch
    /// counters), prefetch issue, and prefetch arrivals. Call once per
    /// cycle, before the cycle's accesses.
    pub fn advance(&mut self, now: Cycle) {
        // Global ticks.
        let cur_tick = self.ticker.tick_of(now);
        while self.last_tick < cur_tick {
            self.last_tick += 1;
            let fired = match &mut self.prefetcher {
                PrefetcherImpl::Tk(p) => p.tick(),
                _ => Vec::new(),
            };
            for req in fired {
                self.enqueue_prefetch(req, now);
            }
        }
        self.process_arrivals(now);
        self.issue_prefetches(now);
    }

    /// Performs one data reference. Stores mark the line dirty
    /// (write-back, write-allocate); the caller decides whether to stall
    /// on the result.
    pub fn access(&mut self, mref: &MemRef, is_store: bool, now: Cycle) -> AccessOutcome {
        if self.checker.is_none() {
            return self.access_inner(mref, is_store, now);
        }
        self.evt = TapEvent::default();
        let out = self.access_inner(mref, is_store, now);
        let evt = self.evt;
        let level = if out.l1_hit {
            SimLevel::L1
        } else if out.vc_hit {
            SimLevel::Victim
        } else {
            evt.level.expect("miss path records the serving level")
        };
        let obs = SimObservation {
            addr: mref.addr,
            level,
            evicted: evt.evicted,
            closed_generation: evt.closed,
            decay_refetch: evt.decay,
            vc_admitted: evt.vc_admitted,
        };
        let vc_lines = self.victim.as_ref().map(|v| v.cache.lines());
        let mut chk = self.checker.take().expect("checked above");
        chk.check_demand(&self.l1d, vc_lines.as_deref(), &obs);
        self.checker = Some(chk);
        out
    }

    fn access_inner(&mut self, mref: &MemRef, is_store: bool, now: Cycle) -> AccessOutcome {
        self.stats.l1_accesses += 1;
        if self.cfg.l1_mode == L1Mode::ColdOnly {
            return self.access_cold_only(mref, now);
        }
        let geom = *self.l1d.geometry();
        let addr = mref.addr;
        let line = geom.line_of(addr);
        // The stride table trains on every reference, hit or miss.
        if let PrefetcherImpl::Stride(sp) = &mut self.prefetcher {
            let targets = sp.on_access(addr, mref.pc);
            for t in targets {
                self.enqueue_prefetch(
                    PrefetchRequest {
                        line: t,
                        frame: (geom.index_of_line(t) * geom.assoc() as u64) as usize,
                        need_in_ticks: None,
                    },
                    now,
                );
            }
        }
        match self.l1d.probe(addr) {
            ProbeResult::Hit(frame) => {
                if is_store {
                    self.l1d.mark_dirty(frame);
                }
                // Cache decay: a line idle past the decay interval was
                // switched off; its data must be refetched from the L2.
                if let Some(interval) = self.cfg.decay_interval {
                    if let Some(last_use) = self.tracker.last_use(frame) {
                        if now.since(last_use) >= interval {
                            return self.decay_refetch(mref, line, frame, last_use, interval, now);
                        }
                    }
                }
                self.stats.l1_hits += 1;
                self.shadow.on_access(line);
                let interval = self.tracker.hit(frame, now);
                if self.cfg.collect_metrics {
                    self.metrics.on_access_interval(interval);
                }
                let dbcp_target = match &mut self.prefetcher {
                    PrefetcherImpl::Tk(p) => {
                        p.on_hit(frame);
                        None
                    }
                    PrefetcherImpl::Dbcp(d) => d.on_access(frame, mref.pc),
                    PrefetcherImpl::None
                    | PrefetcherImpl::Markov(_)
                    | PrefetcherImpl::Stride(_) => None,
                };
                if let Some(target) = dbcp_target {
                    self.enqueue_prefetch(
                        PrefetchRequest {
                            line: target,
                            frame: (geom.index_of_line(target) * geom.assoc() as u64) as usize,
                            need_in_ticks: None,
                        },
                        now,
                    );
                }
                // A hit on a prefetched block resolves its timeliness.
                let set = geom.index_of_line(line);
                if let Some(p) = self.pending_pf.get(&set).copied() {
                    if p.line == line {
                        if let PfState::Arrived {
                            displaced_missed, ..
                        } = p.state
                        {
                            self.pending_pf.remove(&set);
                            let class = if displaced_missed {
                                Timeliness::Early
                            } else {
                                Timeliness::Timely
                            };
                            self.timeliness.record(true, class);
                        }
                    }
                }
                // Hit under miss: data may still be in flight.
                let mut ready = now + self.cfg.machine.l1_hit_latency;
                if let Some(r) = self.demand_mshrs.ready_time(line) {
                    ready = ready.max(r);
                }
                if let Some(r) = self.prefetch_mshrs.ready_time(line) {
                    ready = ready.max(r);
                }
                AccessOutcome {
                    ready_at: ready,
                    l1_hit: true,
                    vc_hit: false,
                }
            }
            ProbeResult::Miss {
                victim_frame,
                evicted,
            } => {
                let out = self.miss_path(mref, line, victim_frame, evicted, now);
                if is_store {
                    if let Some(f) = self.l1d.peek(addr) {
                        self.l1d.mark_dirty(f);
                    }
                }
                out
            }
        }
    }

    fn access_cold_only(&mut self, mref: &MemRef, now: Cycle) -> AccessOutcome {
        let geom = *self.l1d.geometry();
        let line = geom.line_of(mref.addr);
        if self.cold_seen.contains(&line.get()) {
            self.stats.l1_hits += 1;
            return AccessOutcome {
                ready_at: now + self.cfg.machine.l1_hit_latency,
                l1_hit: true,
                vc_hit: false,
            };
        }
        self.cold_seen.insert(line.get());
        if let Some(ready) = self.demand_mshrs.lookup(line) {
            return AccessOutcome {
                ready_at: ready,
                l1_hit: false,
                vc_hit: false,
            };
        }
        let ready = self.fetch_from_l2(mref.addr, now, true);
        self.alloc_demand(line, ready, now);
        AccessOutcome {
            ready_at: ready,
            l1_hit: false,
            vc_hit: false,
        }
    }

    fn miss_path(
        &mut self,
        mref: &MemRef,
        line: LineAddr,
        victim_frame: usize,
        evicted: Option<LineAddr>,
        now: Cycle,
    ) -> AccessOutcome {
        let geom = *self.l1d.geometry();
        let set = geom.index_of_line(line);

        // Ground-truth classification and last-generation metrics.
        let kind = self.shadow.classify_miss(line);
        // The hardware L2 interval monitor sees this L1 miss as an L2
        // access and makes its own (tick-quantized) conflict call.
        if let Some((_, predicted)) = self.l2_monitor.on_access(mref.addr, now) {
            self.l2_monitor.observe(predicted, kind);
        }
        if self.cfg.collect_metrics {
            // §3: "the reload interval in one level of the hierarchy (eg,
            // L1) is actually the access interval in the next lower level
            // (eg, L2)". Each L1 miss is an L2 access for the line; the
            // interval between successive ones is the L2 access interval.
            if let Some(prev) = self.l2_last_access.insert(line.get(), now) {
                self.l2_access_interval.record(now.since(prev));
            }
        }
        if self.cfg.collect_metrics {
            let hist = self.tracker.line_history(line).copied();
            let ri = hist.map(|h| now.since(h.last_start));
            self.metrics.on_miss(kind, hist.as_ref(), ri);
        }

        // The Markov predictor correlates the global miss stream.
        if let PrefetcherImpl::Markov(mk) = &mut self.prefetcher {
            let targets = mk.on_miss(line);
            for t in targets {
                self.enqueue_prefetch(
                    PrefetchRequest {
                        line: t,
                        frame: (geom.index_of_line(t) * geom.assoc() as u64) as usize,
                        need_in_ticks: None,
                    },
                    now,
                );
            }
        }

        // Resolve / annotate pending prefetch state for this set.
        self.resolve_pending_on_miss(set, line, now);

        // Victim-cache probe.
        if self.victim.is_some() {
            let vc_hit = self.victim.as_mut().expect("checked").cache.take(line);
            if vc_hit {
                self.stats.vc_hits += 1;
                self.evt.evicted = evicted;
                // Swap: close the displaced generation and move the block
                // into the victim cache unfiltered (it is an exchange, not
                // eviction traffic).
                if let Some(ev) = evicted {
                    self.close_generation(victim_frame, ev, now, EvictCause::Demand, None);
                    self.writeback_if_dirty(victim_frame, now);
                    let v = self.victim.as_mut().expect("checked");
                    v.cache.insert(ev);
                    v.swap_fills += 1;
                }
                self.l1d.fill_frame(victim_frame, mref.addr);
                self.begin_generation(victim_frame, line, set, mref, now);
                let ready = now + self.cfg.machine.l1_hit_latency + 1;
                return AccessOutcome {
                    ready_at: ready,
                    l1_hit: false,
                    vc_hit: true,
                };
            }
        }

        // Merge with an outstanding demand miss for the same line.
        if let Some(ready) = self.demand_mshrs.lookup(line) {
            self.evt.level = Some(SimLevel::InFlight);
            // The tag was filled by the first miss unless it was evicted in
            // between; refill if needed.
            if self.l1d.peek(mref.addr).is_none() {
                self.evict_and_fill(mref, line, set, now);
            }
            return AccessOutcome {
                ready_at: ready,
                l1_hit: false,
                vc_hit: false,
            };
        }

        // A prefetch already in flight for this line: the demand takes
        // ownership of it.
        if let Some(pf_ready) = self.prefetch_mshrs.remove(line) {
            self.evt.level = Some(SimLevel::InFlight);
            self.pf_queue.cancel_line(line);
            self.evict_and_fill(mref, line, set, now);
            let ready = pf_ready.max(now + 1);
            self.alloc_demand(line, ready, now);
            return AccessOutcome {
                ready_at: ready,
                l1_hit: false,
                vc_hit: false,
            };
        }
        // Still queued (never issued): fetch normally.
        self.pf_queue.cancel_line(line);

        let ready = self.fetch_from_l2(mref.addr, now, true);
        self.alloc_demand(line, ready, now);
        self.evict_and_fill(mref, line, set, now);
        AccessOutcome {
            ready_at: ready,
            l1_hit: false,
            vc_hit: false,
        }
    }

    /// Allocates a demand MSHR, modeling queueing delay when full.
    fn alloc_demand(&mut self, line: LineAddr, ready: Cycle, now: Cycle) {
        // `fetch_from_l2` already folded MSHR queuing into `ready` via
        // `demand_base`; here we only record occupancy.
        if self.demand_mshrs.next_free(now).is_none() {
            self.demand_mshrs.allocate(line, ready);
        }
        // When full the request queued behind the earliest entry; that
        // entry's register is reused, so no separate allocation is needed.
    }

    /// Start time for a new demand request, accounting for MSHR
    /// availability.
    fn demand_base(&mut self, now: Cycle) -> Cycle {
        match self.demand_mshrs.next_free(now) {
            None => now,
            Some(free_at) => free_at,
        }
    }

    /// Computes the completion time of a block fetch entering at the L2,
    /// updating L2 state, buses and counters. `demand` selects demand
    /// (priority) or prefetch scheduling.
    fn fetch_from_l2(&mut self, addr: timekeeping::Addr, now: Cycle, demand: bool) -> Cycle {
        let m = self.cfg.machine;
        let base = if demand { self.demand_base(now) } else { now };
        if demand {
            self.stats.l2_accesses += 1;
        }
        // Bus occupancy is charged at request time (the response slot is
        // reserved when the request enters): latency pipelines around the
        // occupancy, so the backlog reflects genuine congestion rather
        // than in-flight latency.
        match self.l2.probe(addr) {
            ProbeResult::Hit(_) => {
                if demand {
                    self.stats.l2_hits += 1;
                    self.evt.level = Some(SimLevel::L2);
                } else {
                    self.notify_prefetch_l2(addr, true);
                }
                let start = self.l1l2_bus.schedule(base);
                self.l1l2_bus.done_at(start) + m.l2_latency
            }
            ProbeResult::Miss { .. } => {
                if demand {
                    self.stats.mem_accesses += 1;
                    self.evt.level = Some(SimLevel::Mem);
                } else {
                    self.notify_prefetch_l2(addr, false);
                }
                let start1 = self.l1l2_bus.schedule(base);
                let at_l2 = self.l1l2_bus.done_at(start1) + m.l2_latency;
                let start2 = self.l2mem_bus.schedule(at_l2);
                // An L2 fill may evict a dirty L2 line: write it to memory.
                let (l2_victim, l2_resident) = self.l2.peek_victim(addr);
                if l2_resident.is_some() && self.l2.frame_dirty(l2_victim) {
                    self.stats.l2_writebacks += 1;
                    self.l2mem_bus.schedule(at_l2);
                }
                self.l2.fill(addr);
                self.l2mem_bus.done_at(start2) + m.mem_latency
            }
        }
    }

    /// A reference to a decayed (switched-off) line: ends the generation
    /// at the decay point, refetches the block from the L2 and starts a
    /// fresh generation. The interval between switch-off and this access
    /// is banked as leakage saving.
    fn decay_refetch(
        &mut self,
        mref: &MemRef,
        line: LineAddr,
        frame: usize,
        last_use: Cycle,
        interval: u64,
        now: Cycle,
    ) -> AccessOutcome {
        self.evt.decay = true;
        self.stats.decay_misses += 1;
        let off_at = last_use + interval;
        self.stats.decay_off_cycles += now.since(off_at);
        // The decayed generation ended when the line switched off.
        self.close_generation(frame, line, off_at, EvictCause::Flush, None);
        // Refetch: the shadow still sees a reference (decay is invisible
        // to the fully-associative model — these are not program misses).
        self.shadow.on_access(line);
        let ready = self.fetch_from_l2(mref.addr, now, true);
        self.alloc_demand(line, ready, now);
        self.l1d.fill_frame(frame, mref.addr);
        let set = self.l1d.geometry().index_of_line(line);
        self.begin_generation(frame, line, set, mref, now);
        AccessOutcome {
            ready_at: ready,
            l1_hit: false,
            vc_hit: false,
        }
    }

    /// Writes a dirty evicted L1 line back toward the L2: the transfer
    /// occupies the L1/L2 bus (write-backs contend with demand fills). If
    /// the line is no longer L2-resident (the hierarchy is not inclusive),
    /// the write continues to memory over the L2/memory bus.
    fn writeback_if_dirty(&mut self, frame: usize, now: Cycle) {
        if !self.l1d.frame_dirty(frame) {
            return;
        }
        self.stats.l1_writebacks += 1;
        self.l1l2_bus.schedule(now);
        let line = self.l1d.line_in_frame(frame).expect("dirty frame is valid");
        let addr = self.l1d.geometry().addr_of_line(line);
        match self.l2.peek(addr) {
            Some(l2_frame) => self.l2.mark_dirty(l2_frame),
            None => {
                // Not L2-resident: the write-back continues to memory.
                self.stats.l2_writebacks += 1;
                self.l2mem_bus.schedule(now);
            }
        }
    }

    /// Banks leakage savings for a frame being evicted while decayed.
    fn bank_decay_off_time(&mut self, frame: usize, now: Cycle) {
        if let Some(interval) = self.cfg.decay_interval {
            if let Some(last_use) = self.tracker.last_use(frame) {
                let off_at = last_use + interval;
                self.stats.decay_off_cycles += now.since(off_at);
            }
        }
    }

    /// Closes the generation in `frame` (which holds `ev_line`) and offers
    /// the victim to the victim cache. `incoming_tag` is the tag replacing
    /// it (None for prefetch fills where Collins detection does not apply).
    fn close_generation(
        &mut self,
        frame: usize,
        ev_line: LineAddr,
        now: Cycle,
        cause: EvictCause,
        incoming_tag: Option<u64>,
    ) {
        let geom = *self.l1d.geometry();
        if let Some(rec) = self.tracker.evict(frame, now, cause) {
            self.evt.closed = true;
            if self.cfg.collect_metrics {
                self.metrics.on_generation(&rec);
            }
            if let Some(v) = self.victim.as_mut() {
                let info = EvictionInfo {
                    line: ev_line,
                    set_index: geom.index_of_line(ev_line),
                    tag: geom.tag_of_line(ev_line),
                    dead_time: rec.dead_time,
                    live_time: rec.live_time,
                    cause,
                    reload_interval: rec.reload_interval,
                    incoming_tag: incoming_tag.unwrap_or(u64::MAX),
                };
                let admitted = v.cache.offer(v.filter.as_mut(), &info);
                self.evt.vc_admitted = Some(admitted);
            }
        }
    }

    /// Forwards a prefetch's L2 probe outcome to the lockstep checker.
    fn notify_prefetch_l2(&mut self, addr: timekeeping::Addr, hit: bool) {
        if let Some(mut chk) = self.checker.take() {
            chk.check_prefetch_l2(addr, hit);
            self.checker = Some(chk);
        }
    }

    /// Demand-miss path tail: evict the resident block (if any) and begin
    /// the new generation.
    fn evict_and_fill(&mut self, mref: &MemRef, line: LineAddr, set: u64, now: Cycle) {
        let geom = *self.l1d.geometry();
        {
            let (victim_frame, resident) = self.l1d.peek_victim(mref.addr);
            if resident.is_some() {
                if self.cfg.decay_interval.is_some() {
                    self.bank_decay_off_time(victim_frame, now);
                }
                self.writeback_if_dirty(victim_frame, now);
            }
        }
        let (frame, evicted) = self.l1d.fill(mref.addr);
        self.evt.evicted = evicted;
        if let Some(ev) = evicted {
            self.close_generation(
                frame,
                ev,
                now,
                EvictCause::Demand,
                Some(geom.tag_of_line(line)),
            );
        }
        self.begin_generation(frame, line, set, mref, now);
    }

    /// Common generation-begin bookkeeping: tracker fill, prefetcher hooks,
    /// address-prediction resolution.
    fn begin_generation(
        &mut self,
        frame: usize,
        line: LineAddr,
        set: u64,
        mref: &MemRef,
        now: Cycle,
    ) {
        let geom = *self.l1d.geometry();
        self.tracker.fill(frame, line, now);
        let new_tag = geom.tag_of_line(line);
        // Score the previous address prediction for this frame.
        if let Some(pred) = self.addr_pred[frame].take() {
            self.stats.addr_predictions += 1;
            if pred == new_tag {
                self.stats.addr_correct += 1;
            }
        }
        let dbcp_target = match &mut self.prefetcher {
            PrefetcherImpl::Tk(p) => {
                p.on_fill(frame, set, new_tag);
                self.addr_pred[frame] = p.predicted_next(frame);
                None
            }
            PrefetcherImpl::Dbcp(d) => {
                d.on_replace(frame, line);
                d.on_access(frame, mref.pc)
            }
            PrefetcherImpl::None | PrefetcherImpl::Markov(_) | PrefetcherImpl::Stride(_) => None,
        };
        if let Some(target) = dbcp_target {
            self.enqueue_prefetch(
                PrefetchRequest {
                    line: target,
                    frame: (geom.index_of_line(target) * geom.assoc() as u64) as usize,
                    need_in_ticks: None,
                },
                now,
            );
        }
    }

    /// Resolves or annotates the pending prefetch for `set` when a demand
    /// miss to `miss_line` occurs there.
    fn resolve_pending_on_miss(&mut self, set: u64, miss_line: LineAddr, now: Cycle) {
        let Some(p) = self.pending_pf.get(&set).copied() else {
            return;
        };
        let correct = p.line == miss_line;
        let class = match p.state {
            PfState::Queued => {
                self.pf_queue.cancel_line(p.line);
                Timeliness::NotStarted
            }
            PfState::Discarded => Timeliness::Discarded,
            PfState::Issued(arrive) => {
                if arrive > now {
                    Timeliness::StartedNotTimely
                } else {
                    // Arrival pending processing this very cycle; treat as
                    // arrived-in-time.
                    Timeliness::Timely
                }
            }
            PfState::Arrived {
                displaced,
                displaced_missed,
            } => {
                if displaced == Some(miss_line) || displaced_missed {
                    Timeliness::Early
                } else {
                    Timeliness::Timely
                }
            }
        };
        self.pending_pf.remove(&set);
        self.timeliness.record(correct, class);
    }

    /// Accepts a prefetch request from a prefetcher.
    fn enqueue_prefetch(&mut self, req: PrefetchRequest, now: Cycle) {
        if self.cfg.predict_only {
            return;
        }
        let geom = *self.l1d.geometry();
        let addr = geom.addr_of_line(req.line);
        // Drop if already cached or already being fetched.
        if self.l1d.peek(addr).is_some()
            || self.demand_mshrs.contains(req.line)
            || self.prefetch_mshrs.contains(req.line)
        {
            self.stats.pf_redundant += 1;
            return;
        }
        let set = geom.index_of_line(req.line);
        // One pending prefetch per set: keep the older one.
        if self.pending_pf.contains_key(&set) {
            self.stats.pf_redundant += 1;
            return;
        }
        self.stats.pf_enqueued += 1;
        let deadline = req
            .need_in_ticks
            .map(|t| now + self.ticker.cycles(t as u64));
        self.pending_pf.insert(
            set,
            PendingPf {
                line: req.line,
                state: PfState::Queued,
                deadline,
            },
        );
        if let Some(dropped) = self.pf_queue.push(req) {
            let dset = geom.index_of_line(dropped.line);
            if let Some(dp) = self.pending_pf.get_mut(&dset) {
                if dp.line == dropped.line && dp.state == PfState::Queued {
                    dp.state = PfState::Discarded;
                }
            }
        }
    }

    /// Issues queued prefetches while the L1/L2 bus backlog is low and
    /// prefetch MSHRs are available (demand priority). The backlog bound is
    /// one L2 round-trip: beyond that, demand traffic owns the bus.
    fn issue_prefetches(&mut self, now: Cycle) {
        let geom = *self.l1d.geometry();
        let m = self.cfg.machine;
        let max_backlog = m.l2_latency + 2 * m.l1l2_bus_occupancy;
        let max_mem_backlog = 4 * m.l2mem_bus_occupancy;
        // A prefetch is "urgent" once its predicted need time is within a
        // worst-case fetch latency of now.
        let urgency_window = m.l2_latency + m.mem_latency + 2 * m.l2mem_bus_occupancy;
        loop {
            if self.pf_queue.is_empty() {
                return;
            }
            if self.l1l2_bus.backlog(now) > max_backlog
                || self.l2mem_bus.backlog(now) > max_mem_backlog
            {
                return;
            }
            // Slack scheduling (§5.2.2): while the bus is doing anything at
            // all, hold back prefetches whose deadline is still far out;
            // they will go out in a genuinely idle window instead of
            // queueing in front of near-future demand.
            if self.cfg.slack_prefetch {
                let head_deadline = self
                    .pf_queue
                    .peek()
                    .and_then(|r| geom_deadline(&self.pending_pf, geom, r));
                let urgent = match head_deadline {
                    Some(d) => d.since(now) <= urgency_window,
                    None => true, // unknown deadline: treat as urgent
                };
                if !urgent && (self.l1l2_bus.backlog(now) > 0 || self.l2mem_bus.backlog(now) > 0) {
                    return;
                }
            }
            if self.prefetch_mshrs.next_free(now).is_some() {
                return; // file full
            }
            let Some(req) = self.pf_queue.pop() else {
                return;
            };
            let set = geom.index_of_line(req.line);
            // Stale request (superseded or resolved)?
            let valid = self
                .pending_pf
                .get(&set)
                .map(|p| p.line == req.line && p.state == PfState::Queued)
                .unwrap_or(false);
            if !valid {
                continue;
            }
            let addr = geom.addr_of_line(req.line);
            let arrive = self.fetch_from_l2(addr, now, false);
            self.prefetch_mshrs.allocate(req.line, arrive);
            self.inflight_pf
                .push(Reverse((arrive.get(), req.line.get(), set)));
            let deadline = self.pending_pf.get(&set).and_then(|p| p.deadline);
            self.pending_pf.insert(
                set,
                PendingPf {
                    line: req.line,
                    state: PfState::Issued(arrive),
                    deadline,
                },
            );
            self.stats.pf_issued += 1;
        }
    }

    /// Fills prefetches whose data has arrived by `now`.
    fn process_arrivals(&mut self, now: Cycle) {
        let geom = *self.l1d.geometry();
        while let Some(&Reverse((arrive, line_raw, set))) = self.inflight_pf.peek() {
            if arrive > now.get() {
                break;
            }
            self.inflight_pf.pop();
            let line = LineAddr::new(line_raw);
            let at = Cycle::new(arrive);
            self.prefetch_mshrs.remove(line);
            // Superseded by a demand fetch (tag already present) or pending
            // state cleared: nothing to fill.
            let addr = geom.addr_of_line(line);
            if self.l1d.peek(addr).is_some() {
                continue;
            }
            // §5.1: "prefetches that arrive into the cache before the
            // resident block is dead will induce extra cache misses."
            // The arrival consults the paper's own live-time dead-block
            // prediction: the resident is presumed dead once its
            // generation age exceeds twice its previous live time; an
            // earlier arrival is dropped rather than displacing a
            // likely-live block. (Single-use blocks — previous live time
            // zero — are dead the moment they are filled.)
            let set0 = geom.index_of_line(line);
            // The frame the fill will actually use (LRU way for
            // associative L1s).
            let (target_frame, _) = self.l1d.peek_victim(addr);
            if let (Some(resident), Some(start)) = (
                self.tracker.resident(target_frame),
                self.tracker.generation_start(target_frame),
            ) {
                let prev_lt = self
                    .tracker
                    .line_history(resident)
                    .filter(|h| h.completed)
                    .map(|h| h.last_live_time)
                    .unwrap_or(0);
                let dead_point = 2 * prev_lt;
                if at.since(start) < dead_point {
                    self.stats.pf_dropped_live += 1;
                    if self
                        .pending_pf
                        .get(&set0)
                        .map(|p| p.line == line)
                        .unwrap_or(false)
                    {
                        self.pending_pf.remove(&set0);
                    }
                    continue;
                }
            }
            let still_pending = self
                .pending_pf
                .get(&set)
                .map(|p| p.line == line && matches!(p.state, PfState::Issued(_)))
                .unwrap_or(false);
            {
                let (victim_frame, resident) = self.l1d.peek_victim(addr);
                if resident.is_some() {
                    self.writeback_if_dirty(victim_frame, at);
                }
            }
            if self.checker.is_some() {
                self.evt = TapEvent::default();
            }
            let (frame, evicted) = self.l1d.fill(addr);
            if let Some(ev) = evicted {
                self.close_generation(frame, ev, at, EvictCause::Prefetch, None);
            }
            if self.checker.is_some() {
                let (closed, admitted) = (self.evt.closed, self.evt.vc_admitted);
                let mut chk = self.checker.take().expect("checked above");
                chk.check_prefetch_fill(&self.l1d, line, evicted, closed, admitted);
                self.checker = Some(chk);
            }
            self.stats.pf_fills += 1;
            // A prefetch fill is a generation start, and trains the
            // prefetcher exactly like a demand fill (enabling chained
            // prefetches), but carries no referencing PC.
            self.tracker.fill(frame, line, at);
            let new_tag = geom.tag_of_line(line);
            if let Some(pred) = self.addr_pred[frame].take() {
                self.stats.addr_predictions += 1;
                if pred == new_tag {
                    self.stats.addr_correct += 1;
                }
            }
            match &mut self.prefetcher {
                PrefetcherImpl::Tk(p) => {
                    p.on_prefetch_fill(frame, set, new_tag);
                    self.addr_pred[frame] = p.predicted_next(frame);
                }
                PrefetcherImpl::Dbcp(d) => d.on_replace(frame, line),
                PrefetcherImpl::None | PrefetcherImpl::Markov(_) | PrefetcherImpl::Stride(_) => {}
            }
            if still_pending {
                let deadline = self.pending_pf.get(&set).and_then(|p| p.deadline);
                self.pending_pf.insert(
                    set,
                    PendingPf {
                        line,
                        deadline,
                        state: PfState::Arrived {
                            displaced: evicted,
                            displaced_missed: false,
                        },
                    },
                );
            }
        }
        // Early detection: a demand miss to a displaced line is recorded in
        // `resolve_pending_on_miss`; nothing to do here.
    }

    /// Flushes all open generations into the metrics (end of simulation).
    pub fn finish(&mut self, now: Cycle) {
        if self.cfg.decay_interval.is_some() {
            for frame in 0..self.addr_pred.len() {
                self.bank_decay_off_time(frame, now);
            }
        }
        for rec in self.tracker.flush(now) {
            if self.cfg.collect_metrics {
                self.metrics.on_generation(&rec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekeeping::{Addr, CorrelationConfig, Pc};

    fn mref(addr: u64) -> MemRef {
        MemRef::new(Addr::new(addr), Pc::new(0x1000 + (addr % 97)))
    }

    fn base_system() -> MemorySystem {
        MemorySystem::new(SystemConfig::base())
    }

    #[test]
    fn miss_then_hit_latency() {
        let mut sys = base_system();
        let t0 = Cycle::new(0);
        let out = sys.access(&mref(0x40), false, t0);
        assert!(!out.l1_hit);
        // Cold L1 and L2 miss: latency includes L2 + memory + buses.
        let m = MachineLatencyProbe::expected_cold(&sys.cfg.machine);
        assert_eq!(out.ready_at.get(), m);
        let out2 = sys.access(&mref(0x44), false, Cycle::new(1)); // same L1 line
        assert!(out2.l1_hit);
        // Hit under miss: data still in flight.
        assert_eq!(out2.ready_at, out.ready_at);
        // After the fill, a hit is 1 cycle.
        let late = Cycle::new(out.ready_at.get() + 10);
        let out3 = sys.access(&mref(0x44), false, late);
        assert!(out3.l1_hit);
        assert_eq!(out3.ready_at, late + 1);
    }

    /// Helper computing the expected cold-miss latency from the config.
    struct MachineLatencyProbe;
    impl MachineLatencyProbe {
        fn expected_cold(m: &crate::config::MachineConfig) -> u64 {
            // L2 probe (12) + mem latency (70) + l2mem bus (5) + l1l2 bus (1)
            m.l2_latency + m.mem_latency + m.l2mem_bus_occupancy + m.l1l2_bus_occupancy
        }
    }

    #[test]
    fn l2_hit_is_cheaper_than_memory() {
        let mut sys = base_system();
        sys.access(&mref(0x40), false, Cycle::new(0));
        // Evict 0x40's L1 line by touching the conflicting address
        // (L1 is 32 KB direct-mapped).
        sys.access(&mref(0x40 + 32 * 1024), false, Cycle::new(1000));
        // Re-access 0x40: L1 miss, L2 hit.
        let out = sys.access(&mref(0x40), false, Cycle::new(2000));
        assert!(!out.l1_hit);
        let m = &sys.cfg.machine;
        assert_eq!(
            out.ready_at.get(),
            2000 + m.l2_latency + m.l1l2_bus_occupancy
        );
        assert_eq!(sys.stats().l2_hits, 1);
    }

    #[test]
    fn miss_classification_ground_truth() {
        let mut sys = base_system();
        sys.access(&mref(0x40), false, Cycle::new(0)); // cold
        sys.access(&mref(0x40 + 32 * 1024), false, Cycle::new(100)); // cold, evicts
        sys.access(&mref(0x40), false, Cycle::new(200)); // conflict
        let b = sys.miss_breakdown();
        assert_eq!(b.cold, 2);
        assert_eq!(b.conflict, 1);
        assert_eq!(b.capacity, 0);
    }

    #[test]
    fn generations_recorded_on_eviction() {
        let mut sys = base_system();
        sys.access(&mref(0x40), false, Cycle::new(0));
        sys.access(&mref(0x44), false, Cycle::new(50)); // hit, live time grows
        sys.access(&mref(0x40 + 32 * 1024), false, Cycle::new(5000)); // evict
        assert_eq!(sys.metrics().generations(), 1);
        assert_eq!(sys.metrics().live.total(), 1);
        // live = 50, dead = 4950.
        assert_eq!(sys.metrics().live.mean(), Some(50.0));
        assert_eq!(sys.metrics().dead.mean(), Some(4950.0));
    }

    #[test]
    fn cold_only_mode_hits_after_first_touch() {
        let mut sys = MemorySystem::new(SystemConfig::ideal());
        let a = mref(0x40);
        let conflicting = mref(0x40 + 32 * 1024);
        assert!(!sys.access(&a, false, Cycle::new(0)).l1_hit);
        assert!(!sys.access(&conflicting, false, Cycle::new(500)).l1_hit);
        // In the oracle there are no conflict misses.
        assert!(sys.access(&a, false, Cycle::new(1000)).l1_hit);
    }

    #[test]
    fn victim_cache_catches_conflict_ping_pong() {
        let mut sys = MemorySystem::new(SystemConfig::with_victim(VictimMode::Unfiltered));
        let a = mref(0x40);
        let b = mref(0x40 + 32 * 1024);
        sys.access(&a, false, Cycle::new(0));
        sys.access(&b, false, Cycle::new(200)); // evicts a -> victim cache
        let out = sys.access(&a, false, Cycle::new(400)); // VC hit
        assert!(out.vc_hit);
        assert!(out.ready_at.get() <= 402 + 2);
        assert_eq!(sys.stats().vc_hits, 1);
        let vs = sys.victim_stats().unwrap();
        assert_eq!(vs.hits, 1);
    }

    #[test]
    fn dead_time_filter_blocks_stale_victims() {
        let mut sys = MemorySystem::new(SystemConfig::with_victim(VictimMode::paper_dead_time()));
        let a = mref(0x40);
        let b = mref(0x40 + 32 * 1024);
        sys.access(&a, false, Cycle::new(0));
        // Evict a with a huge dead time: filtered out.
        sys.access(&b, false, Cycle::new(100_000));
        let out = sys.access(&a, false, Cycle::new(100_100));
        assert!(!out.vc_hit, "stale victim must not be buffered");
        // a's eviction (dead 100 K cycles) was rejected; re-fetching a
        // evicted b with a 100-cycle dead time, which was admitted.
        let vs = sys.victim_stats().unwrap();
        assert_eq!(vs.offered, 2);
        assert_eq!(vs.admitted, 1);

        // b was evicted at 100_100 with a 100-cycle dead time: admitted.
        let out2 = sys.access(&b, false, Cycle::new(100_300));
        assert!(out2.vc_hit, "fresh victim must be buffered: {out2:?}");
    }

    /// Advances the system in small steps (as the per-cycle core loop
    /// would) from `from` to `to`.
    fn advance_stepped(sys: &mut MemorySystem, from: u64, to: u64) {
        let mut t = from;
        while t < to {
            sys.advance(Cycle::new(t));
            t += 32;
        }
        sys.advance(Cycle::new(to));
    }

    #[test]
    fn timekeeping_prefetcher_learns_stream() {
        let cfg =
            SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB));
        let mut sys = MemorySystem::new(cfg);
        // A repeating cyclic sweep over 3 conflicting lines in one set
        // teaches (prev, cur) -> next; after training, prefetches fire and
        // arrive well within the 2000-cycle inter-access gap.
        let stride = 32 * 1024u64; // same L1 set each time
        let mut now = 0u64;
        let mut hits_after_training = 0;
        for rep in 0..50 {
            for i in 0..3u64 {
                let a = mref(0x40 + i * stride);
                advance_stepped(&mut sys, now.saturating_sub(2000), now);
                let out = sys.access(&a, false, Cycle::new(now));
                if rep >= 10 && out.l1_hit {
                    hits_after_training += 1;
                }
                now += 2000;
            }
        }
        assert!(sys.stats().pf_enqueued > 0, "prefetches must be scheduled");
        assert!(sys.stats().pf_issued > 0, "prefetches must issue");
        assert!(sys.stats().pf_fills > 0, "prefetches must fill");
        let cs = sys.correlation_stats().unwrap();
        assert!(cs.hits > 0, "correlation table must hit");
        assert!(
            hits_after_training > 50,
            "trained prefetcher must convert misses to hits, got {hits_after_training}"
        );
    }

    #[test]
    fn dbcp_issues_prefetches_on_signature_match() {
        let cfg =
            SystemConfig::with_prefetch(PrefetchMode::Dbcp(timekeeping::DbcpConfig::PAPER_2MB));
        let mut sys = MemorySystem::new(cfg);
        let stride = 32 * 1024u64;
        let mut now = Cycle::new(0);
        // Same cyclic pattern with fixed PCs per line builds stable
        // signatures.
        for _ in 0..60 {
            for i in 0..3u64 {
                let r = MemRef::new(Addr::new(0x40 + i * stride), Pc::new(0x400 + i * 4));
                sys.advance(now);
                sys.access(&r, false, now);
                now += 700;
            }
        }
        let ds = sys.dbcp_stats().unwrap();
        assert!(ds.predictions > 0, "DBCP must match signatures: {ds:?}");
        assert!(sys.stats().pf_enqueued > 0);
    }

    #[test]
    fn prefetch_timeliness_resolved() {
        let cfg =
            SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB));
        let mut sys = MemorySystem::new(cfg);
        let stride = 32 * 1024u64;
        let mut now = 0u64;
        for _ in 0..80 {
            for i in 0..3u64 {
                let a = mref(0x40 + i * stride);
                advance_stepped(&mut sys, now.saturating_sub(900), now);
                sys.access(&a, false, Cycle::new(now));
                now += 900;
            }
        }
        let t = sys.timeliness();
        let total: u64 = (0..2).map(|c| t.total(c == 1)).sum();
        assert!(total > 0, "timeliness outcomes must be recorded");
    }

    #[test]
    fn software_prefetch_counts_as_access() {
        // The hierarchy itself doesn't distinguish; this documents that the
        // core passes software prefetches through as normal references.
        let mut sys = base_system();
        sys.access(&mref(0x40), false, Cycle::new(0));
        assert_eq!(sys.stats().l1_accesses, 1);
    }

    #[test]
    fn finish_flushes_generations() {
        let mut sys = base_system();
        sys.access(&mref(0x40), false, Cycle::new(0));
        sys.access(&mref(0x80), false, Cycle::new(10));
        assert_eq!(sys.metrics().generations(), 0);
        sys.finish(Cycle::new(1000));
        assert_eq!(sys.metrics().generations(), 2);
    }

    #[test]
    fn mshr_merge_shares_completion() {
        let mut sys = base_system();
        let out1 = sys.access(&mref(0x40), false, Cycle::new(0));
        // A second miss to the same line from a different word, issued
        // before data returns — merged, same ready time. (It hits in L1
        // because the tag was allocated at miss time.)
        let out2 = sys.access(&mref(0x40), false, Cycle::new(2));
        assert_eq!(out1.ready_at, out2.ready_at);
    }

    #[test]
    fn prefetching_works_with_associative_l1() {
        // §5.2.1: "we use per set miss trace history but we still perform
        // all timekeeping and accounting on a per frame basis." The same
        // machinery must run (and help) on a 2-way L1.
        let mut cfg =
            SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB));
        cfg.machine.l1d = timekeeping::CacheGeometry::new(32 * 1024, 2, 32).unwrap();
        let mut sys = MemorySystem::new(cfg);
        // A cyclic sweep of 4 lines aliasing one 2-way set.
        let stride = 16 * 1024u64; // 2-way 32 KB: sets repeat every 16 KB
        let mut now = 0u64;
        for _ in 0..60 {
            for i in 0..4u64 {
                advance_stepped(&mut sys, now.saturating_sub(2000), now);
                sys.access(&mref(0x40 + i * stride), false, Cycle::new(now));
                now += 2000;
            }
        }
        assert!(
            sys.stats().pf_issued > 0,
            "prefetches must issue on 2-way L1"
        );
        assert!(sys.stats().pf_fills > 0, "prefetches must fill on 2-way L1");
    }

    #[test]
    fn slack_mode_defers_non_urgent_prefetches() {
        // Two systems differ only in slack scheduling; both must still
        // complete prefetches, and slack mode must never issue MORE than
        // the eager policy.
        let run = |slack: bool| {
            let mut cfg = SystemConfig::with_prefetch(PrefetchMode::Timekeeping(
                CorrelationConfig::PAPER_8KB,
            ));
            cfg.slack_prefetch = slack;
            let mut sys = MemorySystem::new(cfg);
            let stride = 32 * 1024u64;
            let mut now = 0u64;
            for _ in 0..60 {
                for i in 0..3u64 {
                    advance_stepped(&mut sys, now.saturating_sub(2000), now);
                    sys.access(&mref(0x40 + i * stride), false, Cycle::new(now));
                    now += 2000;
                }
            }
            sys.stats()
        };
        let eager = run(false);
        let slack = run(true);
        assert!(slack.pf_issued > 0, "slack mode must still prefetch");
        assert!(
            slack.pf_issued <= eager.pf_issued,
            "slack mode must not issue more: {} vs {}",
            slack.pf_issued,
            eager.pf_issued
        );
    }

    #[test]
    fn l2_monitor_tracks_conflict_misses() {
        // A conflict ping-pong between two aliasing lines, slow enough that
        // MSHRs expire: the L2 monitor must flag the short re-access
        // intervals as conflicts with high accuracy.
        let mut sys = base_system();
        let a = mref(0x40);
        let b = mref(0x40 + 32 * 1024);
        let mut now = 0u64;
        for _ in 0..200 {
            sys.access(&a, false, Cycle::new(now));
            sys.access(&b, false, Cycle::new(now + 600));
            now += 1200;
        }
        let score = sys.l2_monitor_score();
        assert!(score.observed() > 100, "monitor must score misses");
        assert!(
            score.accuracy().unwrap() > 0.9,
            "short L2 intervals must flag conflicts: {}",
            score.accuracy().unwrap()
        );
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut sys = base_system();
        // Store to a line, then evict it with the conflicting address.
        sys.access(&mref(0x40), true, Cycle::new(0));
        sys.access(&mref(0x40 + 32 * 1024), false, Cycle::new(200));
        assert_eq!(sys.stats().l1_writebacks, 1);
        // The line is still L2-resident, so no memory write-back.
        assert_eq!(sys.stats().l2_writebacks, 0);
        // A clean eviction writes nothing back.
        sys.access(&mref(0x40), false, Cycle::new(400));
        assert_eq!(sys.stats().l1_writebacks, 1);
    }

    #[test]
    fn store_miss_allocates_dirty() {
        let mut sys = base_system();
        sys.access(&mref(0x40), true, Cycle::new(0)); // store miss: allocate dirty
        sys.access(&mref(0x40 + 32 * 1024), false, Cycle::new(200));
        assert_eq!(
            sys.stats().l1_writebacks,
            1,
            "write-allocated line must be dirty"
        );
    }

    #[test]
    fn read_only_traffic_never_writes_back() {
        let mut sys = base_system();
        let mut now = Cycle::new(0);
        for i in 0..4096u64 {
            sys.access(&mref(0x40 + i * 32), false, now);
            now += 5;
        }
        assert_eq!(sys.stats().l1_writebacks, 0);
        assert_eq!(sys.stats().l2_writebacks, 0);
    }

    #[test]
    fn l2_access_interval_equals_l1_reload_interval() {
        // The paper's §3 identity, demonstrated mechanically: sweep a
        // footprint that thrashes the L1 so lines reload repeatedly.
        let mut sys = base_system();
        let mut now = Cycle::new(0);
        for _ in 0..6 {
            for i in 0..4096u64 {
                sys.advance(now);
                sys.access(&mref(0x40 + i * 32), false, now);
                now += 3;
            }
        }
        sys.finish(now);
        let l2 = sys.l2_access_intervals();
        let reload = &sys.metrics().reload;
        assert!(l2.total() > 0);
        assert_eq!(
            l2.total(),
            reload.total(),
            "one reload per repeat L2 access"
        );
        assert_eq!(l2.mean(), reload.mean());
    }

    #[test]
    fn decay_turns_idle_lines_off() {
        let mut sys = MemorySystem::new(SystemConfig::with_decay(10_000));
        sys.access(&mref(0x40), false, Cycle::new(0));
        // Within the decay interval: a normal 1-cycle hit.
        let warm = sys.access(&mref(0x44), false, Cycle::new(5_000));
        assert!(warm.l1_hit);
        // Long idle: the line decayed; the access refetches from L2.
        let cold = sys.access(&mref(0x48), false, Cycle::new(100_000));
        assert!(!cold.l1_hit, "decayed line must refetch");
        assert_eq!(sys.stats().decay_misses, 1);
        // Off time spans from decay point (5000 + 10000) to the access.
        assert_eq!(sys.stats().decay_off_cycles, 100_000 - 15_000);
        // After the refetch the line is live again.
        let rewarm = sys.access(&mref(0x40), false, Cycle::new(100_010));
        assert!(rewarm.l1_hit);
    }

    #[test]
    fn decay_interval_trades_leakage_for_misses() {
        let run = |interval: Option<u64>| {
            let cfg = match interval {
                Some(i) => SystemConfig::with_decay(i),
                None => SystemConfig::base(),
            };
            let mut sys = MemorySystem::new(cfg);
            let mut now = 0u64;
            // A slow periodic scan: lines idle ~8K cycles between touches.
            for rep in 0..40 {
                for i in 0..16u64 {
                    sys.access(&mref(0x40 + i * 32), false, Cycle::new(now + i));
                }
                now += 8_000;
                let _ = rep;
            }
            sys.finish(Cycle::new(now));
            sys.stats()
        };
        let aggressive = run(Some(2_000));
        let conservative = run(Some(32_768));
        assert!(
            aggressive.decay_misses > conservative.decay_misses,
            "shorter interval must induce more misses"
        );
        assert!(
            aggressive.decay_off_cycles > conservative.decay_off_cycles,
            "shorter interval must save more leakage"
        );
        assert_eq!(run(None).decay_misses, 0);
    }

    #[test]
    fn adaptive_victim_filter_runs() {
        let mut sys = MemorySystem::new(SystemConfig::with_victim(VictimMode::AdaptiveDeadTime));
        let a = mref(0x40);
        let b = mref(0x40 + 32 * 1024);
        sys.access(&a, false, Cycle::new(0));
        sys.access(&b, false, Cycle::new(200));
        let out = sys.access(&a, false, Cycle::new(400));
        assert!(out.vc_hit, "fresh conflict victim must be buffered");
    }

    #[test]
    fn addr_predictions_scored() {
        let cfg =
            SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB));
        let mut sys = MemorySystem::new(cfg);
        let stride = 32 * 1024u64;
        let mut now = Cycle::new(0);
        for _ in 0..50 {
            for i in 0..4u64 {
                sys.advance(now);
                sys.access(&mref(0x40 + i * stride), false, now);
                now += 100;
            }
        }
        let s = sys.stats();
        assert!(s.addr_predictions > 0);
        assert!(
            s.addr_accuracy().unwrap() > 0.5,
            "cyclic pattern must predict well"
        );
    }
}
