//! The full memory system: L1D (+ optional victim cache), L2, buses, DRAM,
//! MSHRs, miss classification, generational timekeeping, and the two
//! prefetchers.
//!
//! This is the substrate every experiment runs on. The timing model is
//! occupancy-based: every shared resource (buses, MSHRs) tracks when it is
//! next free, and a request's completion time is computed by walking its
//! path through the hierarchy. Tags are allocated at miss time; data
//! arrives at the computed completion time (hits under outstanding misses
//! observe the fill time through the MSHRs).
//!
//! The access path itself is a staged pipeline of typed events consumed
//! by an observer plane — see [`crate::pipeline`]. This module holds the
//! machine state ([`MemorySystem`]), its constructor and accessors, the
//! per-access lockstep-checker wrapper, and the aggregate counters.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use timekeeping::snapshot::{Json, Snapshot, SnapshotError};
use timekeeping::{
    AdaptiveDeadTimeFilter, CollinsFilter, DeadTimeFilter, NoFilter, ReloadIntervalFilter,
};
use timekeeping::{
    Cycle, Dbcp, FullyAssocShadow, GenerationTracker, GlobalTicker, LineSet, MetricsCollector,
    MissBreakdown, PrefetchQueue, TimekeepingPrefetcher, TimelinessStats, VictimCache,
};

use crate::bus::Bus;
use crate::cache::SetAssocCache;
use crate::config::{PrefetchMode, SystemConfig, VictimMode};
use crate::dram::{DramStats, MemBackend};
use crate::mshr::MshrFile;
use crate::obs::{
    self, ProfStage, ProfileReport, Profiler, TraceCategories, TraceObserver, TraceRecord,
};
use crate::oracle::{FunctionalOracle, LockstepChecker, SimLevel, SimObservation};
use crate::pipeline::{
    GenObserver, MetricsObserver, Observers, OracleTap, PendingPf, PipelineEvent,
    PredictorObserver, PrefetcherImpl, TapEvent, VictimObserver, VictimUnit,
};
use crate::trace::MemRef;

/// Result of one data-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which the data is available to the core.
    pub ready_at: Cycle,
    /// Whether the access hit in the L1.
    pub l1_hit: bool,
    /// Whether an L1 miss was served by the victim cache.
    pub vc_hit: bool,
}

/// Aggregate hierarchy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 data-cache accesses.
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses served by the victim cache.
    pub vc_hits: u64,
    /// L2 accesses (demand).
    pub l2_accesses: u64,
    /// L2 hits (demand).
    pub l2_hits: u64,
    /// Main-memory accesses (demand).
    pub mem_accesses: u64,
    /// Prefetches enqueued.
    pub pf_enqueued: u64,
    /// Prefetches issued to the L2/memory.
    pub pf_issued: u64,
    /// Prefetch fills that landed in the L1.
    pub pf_fills: u64,
    /// Prefetches dropped because the line was already cached/outstanding
    /// or the target set already had a pending prefetch.
    pub pf_redundant: u64,
    /// Prefetch arrivals dropped because the resident block was recently
    /// used (likely live) — the §5.1 displacement guard.
    pub pf_dropped_live: u64,
    /// Address predictions checked against the next fill (Figure 20).
    pub addr_predictions: u64,
    /// Address predictions that matched.
    pub addr_correct: u64,
    /// Dirty L1 lines written back to the L2 at eviction.
    pub l1_writebacks: u64,
    /// Dirty L2 lines written back to memory at eviction.
    pub l2_writebacks: u64,
    /// Misses induced by cache decay (line was switched off while idle).
    pub decay_misses: u64,
    /// Frame-cycles spent switched off by cache decay (leakage saving).
    pub decay_off_cycles: u64,
}

impl HierarchyStats {
    /// L1 misses.
    pub fn l1_misses(&self) -> u64 {
        self.l1_accesses - self.l1_hits
    }

    /// L1 miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_misses() as f64 / self.l1_accesses as f64
        }
    }

    /// Address-prediction accuracy (Figure 20).
    pub fn addr_accuracy(&self) -> Option<f64> {
        (self.addr_predictions > 0).then(|| self.addr_correct as f64 / self.addr_predictions as f64)
    }
}

impl Snapshot for HierarchyStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("l1_accesses", Json::U64(self.l1_accesses)),
            ("l1_hits", Json::U64(self.l1_hits)),
            ("vc_hits", Json::U64(self.vc_hits)),
            ("l2_accesses", Json::U64(self.l2_accesses)),
            ("l2_hits", Json::U64(self.l2_hits)),
            ("mem_accesses", Json::U64(self.mem_accesses)),
            ("pf_enqueued", Json::U64(self.pf_enqueued)),
            ("pf_issued", Json::U64(self.pf_issued)),
            ("pf_fills", Json::U64(self.pf_fills)),
            ("pf_redundant", Json::U64(self.pf_redundant)),
            ("pf_dropped_live", Json::U64(self.pf_dropped_live)),
            ("addr_predictions", Json::U64(self.addr_predictions)),
            ("addr_correct", Json::U64(self.addr_correct)),
            ("l1_writebacks", Json::U64(self.l1_writebacks)),
            ("l2_writebacks", Json::U64(self.l2_writebacks)),
            ("decay_misses", Json::U64(self.decay_misses)),
            ("decay_off_cycles", Json::U64(self.decay_off_cycles)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, SnapshotError> {
        Ok(HierarchyStats {
            l1_accesses: v.u64_field("l1_accesses")?,
            l1_hits: v.u64_field("l1_hits")?,
            vc_hits: v.u64_field("vc_hits")?,
            l2_accesses: v.u64_field("l2_accesses")?,
            l2_hits: v.u64_field("l2_hits")?,
            mem_accesses: v.u64_field("mem_accesses")?,
            pf_enqueued: v.u64_field("pf_enqueued")?,
            pf_issued: v.u64_field("pf_issued")?,
            pf_fills: v.u64_field("pf_fills")?,
            pf_redundant: v.u64_field("pf_redundant")?,
            pf_dropped_live: v.u64_field("pf_dropped_live")?,
            addr_predictions: v.u64_field("addr_predictions")?,
            addr_correct: v.u64_field("addr_correct")?,
            l1_writebacks: v.u64_field("l1_writebacks")?,
            l2_writebacks: v.u64_field("l2_writebacks")?,
            decay_misses: v.u64_field("decay_misses")?,
            decay_off_cycles: v.u64_field("decay_off_cycles")?,
        })
    }
}

/// The complete simulated memory system.
///
/// Timing state (caches, buses, MSHRs, the prefetch queue) lives here;
/// everything that merely *watches* the access stream — generation
/// tracking, metrics, predictors, victim-cache admission, the
/// lockstep-oracle tap — lives in the `Observers` plane and is driven
/// by the pipeline stages in [`crate::pipeline`].
#[derive(Debug)]
pub struct MemorySystem {
    pub(crate) cfg: SystemConfig,
    pub(crate) ticker: GlobalTicker,
    pub(crate) l1d: SetAssocCache,
    pub(crate) l2: SetAssocCache,
    /// The event-observer plane, dispatched in fixed order.
    pub(crate) obs: Observers,
    pub(crate) shadow: FullyAssocShadow,
    pub(crate) demand_mshrs: MshrFile,
    pub(crate) prefetch_mshrs: MshrFile,
    pub(crate) l1l2_bus: Bus,
    pub(crate) l2mem_bus: Bus,
    /// Main-memory model behind the L2↔memory bus (see [`crate::dram`]).
    pub(crate) backend: Box<dyn MemBackend>,
    pub(crate) pf_queue: PrefetchQueue,
    /// In-flight prefetches ordered by arrival: `(arrive, line, set)`.
    pub(crate) inflight_pf: BinaryHeap<Reverse<(u64, u64, u64)>>,
    /// At most one pending prefetch per L1 set, indexed by set.
    pub(crate) pending_pf: Vec<Option<PendingPf>>,
    pub(crate) timeliness: TimelinessStats,
    /// Lines ever seen, for the cold-miss-only study L1.
    pub(crate) cold_seen: LineSet,
    pub(crate) last_tick: u64,
    /// High-water mark of [`advance`](MemorySystem::advance) calls: the
    /// event-replay loop walks from here to the requested cycle.
    pub(crate) last_advance: Cycle,
    /// Reusable buffer for prefetches fired by a global tick (avoids a
    /// per-tick allocation; sized one request per frame, so it never
    /// grows).
    pub(crate) tick_scratch: Vec<timekeeping::PrefetchRequest>,
    pub(crate) stats: HierarchyStats,
    pub(crate) checker: Option<Box<LockstepChecker>>,
    /// Optional pipeline event trace (see
    /// [`record_events`](MemorySystem::record_events)).
    pub(crate) event_log: Option<Vec<PipelineEvent>>,
    /// Optional self-profiler (`--profile`); `None` keeps the disabled
    /// path to one pointer-sized branch per scope.
    pub(crate) prof: Option<Box<Profiler>>,
}

impl MemorySystem {
    /// Builds the memory system described by `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let m = &cfg.machine;
        let num_frames = m.l1d.num_frames() as usize;
        let num_sets = m.l1d.num_sets() as usize;
        let collect = cfg.collect_metrics;
        let ticker = GlobalTicker::new(m.tick_period);
        let victim = match cfg.victim {
            VictimMode::None => None,
            VictimMode::Unfiltered => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(NoFilter),
                swap_fills: 0,
            }),
            VictimMode::Collins => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(CollinsFilter::new(num_sets)),
                swap_fills: 0,
            }),
            VictimMode::DeadTime { threshold } => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(DeadTimeFilter::new(threshold, ticker)),
                swap_fills: 0,
            }),
            VictimMode::AdaptiveDeadTime => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(AdaptiveDeadTimeFilter::new(ticker, m.victim_entries)),
                swap_fills: 0,
            }),
            VictimMode::ReloadInterval { threshold } => Some(VictimUnit {
                cache: VictimCache::new(m.victim_entries),
                filter: Box::new(ReloadIntervalFilter::new(threshold)),
                swap_fills: 0,
            }),
        };
        let prefetcher = match cfg.prefetch {
            PrefetchMode::None => PrefetcherImpl::None,
            PrefetchMode::Timekeeping(tcfg) => {
                PrefetcherImpl::Tk(TimekeepingPrefetcher::new(m.l1d, tcfg, ticker))
            }
            PrefetchMode::Dbcp(dcfg) => PrefetcherImpl::Dbcp(Dbcp::new(dcfg, num_frames)),
            PrefetchMode::Markov(mcfg) => PrefetcherImpl::Markov(timekeeping::Markov::new(mcfg)),
            PrefetchMode::Stride(scfg) => {
                PrefetcherImpl::Stride(timekeeping::StridePrefetcher::new(scfg, m.l1d))
            }
        };
        let obs = Observers {
            gens: GenObserver {
                plane: GenerationTracker::new(num_frames),
                collect,
            },
            metrics: MetricsObserver {
                collector: MetricsCollector::new(),
                l2_access_interval: timekeeping::Histogram::paper_x1000(),
                l2_monitor: timekeeping::L2IntervalMonitor::new(m.l2, ticker, 16_384),
                collect,
            },
            predictors: PredictorObserver {
                prefetcher,
                addr_pred: vec![None; num_frames],
                geom: m.l1d,
            },
            victim: VictimObserver { unit: victim },
            oracle: OracleTap::default(),
            trace: obs::trace_from_global(m.l1d),
        };
        MemorySystem {
            ticker,
            l1d: SetAssocCache::new(m.l1d),
            l2: SetAssocCache::new(m.l2),
            obs,
            shadow: FullyAssocShadow::new(m.l1d.num_frames() as usize),
            demand_mshrs: MshrFile::new(m.demand_mshrs),
            prefetch_mshrs: MshrFile::new(m.prefetch_mshrs),
            l1l2_bus: Bus::new(m.l1l2_bus_occupancy),
            l2mem_bus: Bus::new(m.l2mem_bus_occupancy),
            #[allow(deprecated)] // Fixed-latency alias feeds the default backend
            backend: crate::dram::build_backend(cfg.memory, m.mem_latency),
            pf_queue: PrefetchQueue::new(m.prefetch_queue),
            inflight_pf: BinaryHeap::new(),
            pending_pf: vec![None; num_sets],
            timeliness: TimelinessStats::new(),
            cold_seen: LineSet::default(),
            last_tick: 0,
            last_advance: Cycle::ZERO,
            tick_scratch: match cfg.prefetch {
                PrefetchMode::Timekeeping(_) => Vec::with_capacity(num_frames),
                _ => Vec::new(),
            },
            stats: HierarchyStats::default(),
            checker: None,
            event_log: None,
            prof: obs::profiler_from_global(),
            cfg,
        }
    }

    /// Installs the functional-oracle lockstep checker (see
    /// [`crate::oracle`]): every subsequent demand access, prefetch fill
    /// and prefetch L2 touch is replayed into a timing-free reference
    /// model, and any disagreement on hit/miss classification, level
    /// serviced, evicted-line identity or generation boundaries panics
    /// with a divergence report.
    ///
    /// Returns whether the checker was installed; configurations the
    /// oracle cannot mirror (the cold-miss-only L1 study mode) are left
    /// unchecked.
    ///
    /// # Panics
    ///
    /// Panics if the system has already performed accesses — the oracle
    /// mirrors an empty hierarchy.
    pub fn enable_lockstep_check(&mut self) -> bool {
        assert_eq!(
            self.stats.l1_accesses, 0,
            "lockstep checker must be installed before any access"
        );
        if !FunctionalOracle::supports(&self.cfg) {
            return false;
        }
        self.checker = Some(Box::new(LockstepChecker::new(&self.cfg)));
        true
    }

    /// Whether the lockstep checker is installed.
    pub fn lockstep_check_active(&self) -> bool {
        self.checker.is_some()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Aggregate counters.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Capacity of the reusable buffer receiving tick-fired prefetches.
    /// Pre-sized to one request per L1 frame (the per-tick maximum), so a
    /// value unchanged across a run demonstrates the global-tick hot path
    /// performed no allocation — `core_bench` asserts exactly that.
    #[doc(hidden)]
    pub fn tick_scratch_capacity(&self) -> usize {
        self.tick_scratch.capacity()
    }

    /// Bytes of trace ring-buffer capacity held by this system: 0 when
    /// tracing is disabled. With observability off this must stay 0 for
    /// the life of the system — `core_bench` asserts it, the same way it
    /// asserts [`tick_scratch_capacity`](Self::tick_scratch_capacity)
    /// proves the tick hot path allocation-free.
    #[doc(hidden)]
    pub fn obs_trace_capacity(&self) -> usize {
        self.obs.trace.as_deref().map_or(0, |t| {
            t.ring_capacity() * std::mem::size_of::<TraceRecord>()
        })
    }

    /// Installs an in-memory trace observer directly on this system,
    /// bypassing the process-global configuration — for hermetic tests
    /// (the golden `tk_obs_dump` run) that must not race with other
    /// tests over the global flags.
    ///
    /// # Panics
    ///
    /// Panics if the system has already performed accesses.
    pub fn install_trace(&mut self, cats: TraceCategories, sample: u64) {
        assert_eq!(
            self.stats.l1_accesses, 0,
            "trace observer must be installed before any access"
        );
        let geom = self.cfg.machine.l1d;
        self.obs.trace = Some(Box::new(TraceObserver::memory(cats, sample, geom)));
    }

    /// Installs a profiler directly on this system, bypassing the
    /// process-global configuration (see [`install_trace`](Self::install_trace)).
    pub fn install_profiler(&mut self) {
        self.prof = Some(Box::new(Profiler::new()));
    }

    /// The records captured by an in-memory trace observer; `None` when
    /// tracing is disabled or streaming to files.
    pub fn trace_records(&mut self) -> Option<&[TraceRecord]> {
        self.obs.trace.as_deref_mut().map(|t| t.records())
    }

    /// The profiling report accumulated so far, when profiling is on.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.prof.as_deref().map(|p| p.report())
    }

    /// Starts a profiling scope: the timestamp when profiling is on,
    /// nothing (and no clock read) otherwise.
    #[inline]
    pub(crate) fn prof_t0(&self) -> Option<std::time::Instant> {
        self.prof.as_deref().map(|_| std::time::Instant::now())
    }

    /// Closes a profiling scope opened by [`prof_t0`](Self::prof_t0).
    #[inline]
    pub(crate) fn prof_rec(&mut self, stage: ProfStage, t0: Option<std::time::Instant>) {
        if let (Some(p), Some(t0)) = (self.prof.as_deref_mut(), t0) {
            p.record(stage, t0.elapsed());
        }
    }

    /// Timekeeping metric distributions and predictor scores.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.obs.metrics.collector
    }

    /// Access intervals observed at the L2 (one sample per repeat L1 miss
    /// of a line). Per §3, this distribution coincides with the L1 reload
    /// intervals — see `l2_access_interval_equals_l1_reload_interval`.
    pub fn l2_access_intervals(&self) -> &timekeeping::Histogram {
        &self.obs.metrics.l2_access_interval
    }

    /// Prediction scores of the hardware L2 interval monitor (§4.1's
    /// L2-side conflict predictor, with real counter quantization).
    pub fn l2_monitor_score(&self) -> &timekeeping::AccuracyCoverage {
        self.obs.metrics.l2_monitor.score()
    }

    /// Mutable access to the metrics, so a finished run can move them out
    /// without cloning the histograms.
    pub fn metrics_mut(&mut self) -> &mut MetricsCollector {
        &mut self.obs.metrics.collector
    }

    /// Ground-truth miss breakdown (Figure 2).
    pub fn miss_breakdown(&self) -> MissBreakdown {
        self.shadow.breakdown()
    }

    /// Victim-cache statistics, if a victim cache is configured.
    pub fn victim_stats(&self) -> Option<timekeeping::VictimStats> {
        self.obs.victim.unit.as_ref().map(|v| v.cache.stats())
    }

    /// Blocks entered into the victim cache by L1↔VC swaps.
    pub fn victim_swap_fills(&self) -> Option<u64> {
        self.obs.victim.unit.as_ref().map(|v| v.swap_fills)
    }

    /// Prefetch timeliness breakdown (Figure 21).
    pub fn timeliness(&self) -> &TimelinessStats {
        &self.timeliness
    }

    /// Prefetch queue drop count.
    pub fn pf_queue_discards(&self) -> u64 {
        self.pf_queue.discarded()
    }

    /// Correlation-table statistics of the timekeeping prefetcher, if
    /// configured (hit rate = Figure 20 coverage).
    pub fn correlation_stats(&self) -> Option<timekeeping::CorrelationStats> {
        match &self.obs.predictors.prefetcher {
            PrefetcherImpl::Tk(p) => Some(p.table_stats()),
            _ => None,
        }
    }

    /// Banked-DRAM statistics; `None` under the fixed-latency backend
    /// (which has nothing to report, keeping snapshots byte-identical).
    pub fn dram_stats(&self) -> Option<DramStats> {
        self.backend.snapshot()
    }

    /// DBCP statistics, if configured.
    pub fn dbcp_stats(&self) -> Option<timekeeping::DbcpStats> {
        match &self.obs.predictors.prefetcher {
            PrefetcherImpl::Dbcp(d) => Some(d.stats()),
            _ => None,
        }
    }

    /// Performs one data reference. Stores mark the line dirty
    /// (write-back, write-allocate); the caller decides whether to stall
    /// on the result.
    pub fn access(&mut self, mref: &MemRef, is_store: bool, now: Cycle) -> AccessOutcome {
        let t0 = self.prof_t0();
        let out = self.access_impl(mref, is_store, now);
        self.prof_rec(ProfStage::Access, t0);
        out
    }

    fn access_impl(&mut self, mref: &MemRef, is_store: bool, now: Cycle) -> AccessOutcome {
        if self.checker.is_none() {
            return self.stage_lookup(mref, is_store, now);
        }
        self.obs.oracle.evt = TapEvent::default();
        let out = self.stage_lookup(mref, is_store, now);
        let evt = self.obs.oracle.evt;
        let level = if out.l1_hit {
            SimLevel::L1
        } else if out.vc_hit {
            SimLevel::Victim
        } else {
            evt.level.expect("miss path records the serving level")
        };
        let obs = SimObservation {
            addr: mref.addr,
            level,
            evicted: evt.evicted,
            closed_generation: evt.closed,
            decay_refetch: evt.decay,
            vc_admitted: evt.vc_admitted,
        };
        let vc_lines = self.obs.victim.unit.as_ref().map(|v| v.cache.lines());
        let mut chk = self.checker.take().expect("checked above");
        chk.check_demand(&self.l1d, vc_lines.as_deref(), &obs);
        self.checker = Some(chk);
        out
    }

    /// Flushes all open generations into the metrics (end of simulation),
    /// then finalizes the observability plane: the trace sinks are
    /// flushed, and when profiling to a directory the profile report is
    /// written out (both idempotent across repeated calls).
    pub fn finish(&mut self, now: Cycle) {
        let t0 = self.prof_t0();
        if self.cfg.decay_interval.is_some() {
            for frame in 0..self.obs.predictors.addr_pred.len() {
                self.bank_decay_off_time(frame, now);
            }
        }
        for rec in self.obs.gens.plane.flush(now) {
            if self.cfg.collect_metrics {
                self.obs.metrics.collector.on_generation(&rec);
            }
        }
        self.prof_rec(ProfStage::Finish, t0);
        self.finish_obs();
    }

    /// Flushes trace sinks and emits the profile report (first call only).
    fn finish_obs(&mut self) {
        if let Some(t) = self.obs.trace.as_deref_mut() {
            t.finish();
        }
        let Some(p) = self.prof.as_deref_mut() else {
            return;
        };
        if !p.mark_finished() {
            return;
        }
        let report = p.report();
        match obs::out_dir() {
            Some(dir) => {
                let path = dir.join(format!("profile-{:04}.json", obs::next_seq()));
                let write = std::fs::create_dir_all(&dir)
                    .and_then(|()| std::fs::write(&path, report.to_json().render()));
                match write {
                    Ok(()) => eprintln!("profile report written to {}", path.display()),
                    Err(e) => eprintln!(
                        "warning: cannot write profile report to {}: {e}\n{}",
                        path.display(),
                        report.to_json().render()
                    ),
                }
            }
            None => eprintln!("profile report:\n{}", report.to_json().render()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timekeeping::{Addr, CorrelationConfig, Pc};

    fn mref(addr: u64) -> MemRef {
        MemRef::new(Addr::new(addr), Pc::new(0x1000 + (addr % 97)))
    }

    fn base_system() -> MemorySystem {
        MemorySystem::new(SystemConfig::base())
    }

    #[test]
    fn miss_then_hit_latency() {
        let mut sys = base_system();
        let t0 = Cycle::new(0);
        let out = sys.access(&mref(0x40), false, t0);
        assert!(!out.l1_hit);
        // Cold L1 and L2 miss: latency includes L2 + memory + buses.
        let m = MachineLatencyProbe::expected_cold(&sys.cfg.machine);
        assert_eq!(out.ready_at.get(), m);
        let out2 = sys.access(&mref(0x44), false, Cycle::new(1)); // same L1 line
        assert!(out2.l1_hit);
        // Hit under miss: data still in flight.
        assert_eq!(out2.ready_at, out.ready_at);
        // After the fill, a hit is 1 cycle.
        let late = Cycle::new(out.ready_at.get() + 10);
        let out3 = sys.access(&mref(0x44), false, late);
        assert!(out3.l1_hit);
        assert_eq!(out3.ready_at, late + 1);
    }

    /// Helper computing the expected cold-miss latency from the config.
    struct MachineLatencyProbe;
    impl MachineLatencyProbe {
        #[allow(deprecated)] // the Fixed backend reads the latency alias
        fn expected_cold(m: &crate::config::MachineConfig) -> u64 {
            // L2 probe (12) + mem latency (70) + l2mem bus (5) + l1l2 bus (1)
            m.l2_latency + m.mem_latency + m.l2mem_bus_occupancy + m.l1l2_bus_occupancy
        }
    }

    #[test]
    fn l2_hit_is_cheaper_than_memory() {
        let mut sys = base_system();
        sys.access(&mref(0x40), false, Cycle::new(0));
        // Evict 0x40's L1 line by touching the conflicting address
        // (L1 is 32 KB direct-mapped).
        sys.access(&mref(0x40 + 32 * 1024), false, Cycle::new(1000));
        // Re-access 0x40: L1 miss, L2 hit.
        let out = sys.access(&mref(0x40), false, Cycle::new(2000));
        assert!(!out.l1_hit);
        let m = &sys.cfg.machine;
        assert_eq!(
            out.ready_at.get(),
            2000 + m.l2_latency + m.l1l2_bus_occupancy
        );
        assert_eq!(sys.stats().l2_hits, 1);
    }

    #[test]
    fn miss_classification_ground_truth() {
        let mut sys = base_system();
        sys.access(&mref(0x40), false, Cycle::new(0)); // cold
        sys.access(&mref(0x40 + 32 * 1024), false, Cycle::new(100)); // cold, evicts
        sys.access(&mref(0x40), false, Cycle::new(200)); // conflict
        let b = sys.miss_breakdown();
        assert_eq!(b.cold, 2);
        assert_eq!(b.conflict, 1);
        assert_eq!(b.capacity, 0);
    }

    #[test]
    fn generations_recorded_on_eviction() {
        let mut sys = base_system();
        sys.access(&mref(0x40), false, Cycle::new(0));
        sys.access(&mref(0x44), false, Cycle::new(50)); // hit, live time grows
        sys.access(&mref(0x40 + 32 * 1024), false, Cycle::new(5000)); // evict
        assert_eq!(sys.metrics().generations(), 1);
        assert_eq!(sys.metrics().live.total(), 1);
        // live = 50, dead = 4950.
        assert_eq!(sys.metrics().live.mean(), Some(50.0));
        assert_eq!(sys.metrics().dead.mean(), Some(4950.0));
    }

    #[test]
    fn cold_only_mode_hits_after_first_touch() {
        let mut sys = MemorySystem::new(SystemConfig::ideal());
        let a = mref(0x40);
        let conflicting = mref(0x40 + 32 * 1024);
        assert!(!sys.access(&a, false, Cycle::new(0)).l1_hit);
        assert!(!sys.access(&conflicting, false, Cycle::new(500)).l1_hit);
        // In the oracle there are no conflict misses.
        assert!(sys.access(&a, false, Cycle::new(1000)).l1_hit);
    }

    #[test]
    fn victim_cache_catches_conflict_ping_pong() {
        let mut sys = MemorySystem::new(SystemConfig::with_victim(VictimMode::Unfiltered));
        let a = mref(0x40);
        let b = mref(0x40 + 32 * 1024);
        sys.access(&a, false, Cycle::new(0));
        sys.access(&b, false, Cycle::new(200)); // evicts a -> victim cache
        let out = sys.access(&a, false, Cycle::new(400)); // VC hit
        assert!(out.vc_hit);
        assert!(out.ready_at.get() <= 402 + 2);
        assert_eq!(sys.stats().vc_hits, 1);
        let vs = sys.victim_stats().unwrap();
        assert_eq!(vs.hits, 1);
    }

    #[test]
    fn dead_time_filter_blocks_stale_victims() {
        let mut sys = MemorySystem::new(SystemConfig::with_victim(VictimMode::paper_dead_time()));
        let a = mref(0x40);
        let b = mref(0x40 + 32 * 1024);
        sys.access(&a, false, Cycle::new(0));
        // Evict a with a huge dead time: filtered out.
        sys.access(&b, false, Cycle::new(100_000));
        let out = sys.access(&a, false, Cycle::new(100_100));
        assert!(!out.vc_hit, "stale victim must not be buffered");
        // a's eviction (dead 100 K cycles) was rejected; re-fetching a
        // evicted b with a 100-cycle dead time, which was admitted.
        let vs = sys.victim_stats().unwrap();
        assert_eq!(vs.offered, 2);
        assert_eq!(vs.admitted, 1);

        // b was evicted at 100_100 with a 100-cycle dead time: admitted.
        let out2 = sys.access(&b, false, Cycle::new(100_300));
        assert!(out2.vc_hit, "fresh victim must be buffered: {out2:?}");
    }

    // These prefetcher tests jump `advance` straight across each
    // inter-access gap: `advance` is jump-capable (it replays every
    // intermediate tick, arrival, and issue event at its true timestamp),
    // so the old hand-rolled small-step emulation of the per-cycle core
    // loop is unnecessary (`tests/step_equivalence.rs` proves jumping and
    // stepping bit-identical).

    #[test]
    fn timekeeping_prefetcher_learns_stream() {
        let cfg =
            SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB));
        let mut sys = MemorySystem::new(cfg);
        // A repeating cyclic sweep over 3 conflicting lines in one set
        // teaches (prev, cur) -> next; after training, prefetches fire and
        // arrive well within the 2000-cycle inter-access gap.
        let stride = 32 * 1024u64; // same L1 set each time
        let mut now = 0u64;
        let mut hits_after_training = 0;
        for rep in 0..50 {
            for i in 0..3u64 {
                let a = mref(0x40 + i * stride);
                sys.advance(Cycle::new(now));
                let out = sys.access(&a, false, Cycle::new(now));
                if rep >= 10 && out.l1_hit {
                    hits_after_training += 1;
                }
                now += 2000;
            }
        }
        assert!(sys.stats().pf_enqueued > 0, "prefetches must be scheduled");
        assert!(sys.stats().pf_issued > 0, "prefetches must issue");
        assert!(sys.stats().pf_fills > 0, "prefetches must fill");
        let cs = sys.correlation_stats().unwrap();
        assert!(cs.hits > 0, "correlation table must hit");
        assert!(
            hits_after_training > 50,
            "trained prefetcher must convert misses to hits, got {hits_after_training}"
        );
    }

    #[test]
    fn dbcp_issues_prefetches_on_signature_match() {
        let cfg =
            SystemConfig::with_prefetch(PrefetchMode::Dbcp(timekeeping::DbcpConfig::PAPER_2MB));
        let mut sys = MemorySystem::new(cfg);
        let stride = 32 * 1024u64;
        let mut now = Cycle::new(0);
        // Same cyclic pattern with fixed PCs per line builds stable
        // signatures.
        for _ in 0..60 {
            for i in 0..3u64 {
                let r = MemRef::new(Addr::new(0x40 + i * stride), Pc::new(0x400 + i * 4));
                sys.advance(now);
                sys.access(&r, false, now);
                now += 700;
            }
        }
        let ds = sys.dbcp_stats().unwrap();
        assert!(ds.predictions > 0, "DBCP must match signatures: {ds:?}");
        assert!(sys.stats().pf_enqueued > 0);
    }

    #[test]
    fn prefetch_timeliness_resolved() {
        let cfg =
            SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB));
        let mut sys = MemorySystem::new(cfg);
        let stride = 32 * 1024u64;
        let mut now = 0u64;
        for _ in 0..80 {
            for i in 0..3u64 {
                let a = mref(0x40 + i * stride);
                sys.advance(Cycle::new(now));
                sys.access(&a, false, Cycle::new(now));
                now += 900;
            }
        }
        let t = sys.timeliness();
        let total: u64 = (0..2).map(|c| t.total(c == 1)).sum();
        assert!(total > 0, "timeliness outcomes must be recorded");
    }

    #[test]
    fn software_prefetch_counts_as_access() {
        // The hierarchy itself doesn't distinguish; this documents that the
        // core passes software prefetches through as normal references.
        let mut sys = base_system();
        sys.access(&mref(0x40), false, Cycle::new(0));
        assert_eq!(sys.stats().l1_accesses, 1);
    }

    #[test]
    fn finish_flushes_generations() {
        let mut sys = base_system();
        sys.access(&mref(0x40), false, Cycle::new(0));
        sys.access(&mref(0x80), false, Cycle::new(10));
        assert_eq!(sys.metrics().generations(), 0);
        sys.finish(Cycle::new(1000));
        assert_eq!(sys.metrics().generations(), 2);
    }

    #[test]
    fn trace_observer_is_invisible_to_the_simulation() {
        use crate::obs::{TraceCategories, TraceKind};
        // Identical access sequences with and without the sixth
        // observer must produce bit-identical stats.
        let mut plain = base_system();
        let mut traced = base_system();
        traced.install_trace(TraceCategories::all(), 1);
        assert!(traced.obs_trace_capacity() > 0);
        assert_eq!(plain.obs_trace_capacity(), 0, "disabled path holds no ring");
        for i in 0..200u64 {
            let a = mref((i % 32) * 0x40 + (i / 32) * 32 * 1024);
            let at = Cycle::new(i * 10);
            assert_eq!(
                plain.access(&a, false, at),
                traced.access(&a, false, at),
                "traced access {i} diverged"
            );
        }
        plain.finish(Cycle::new(10_000));
        traced.finish(Cycle::new(10_000));
        assert_eq!(plain.stats(), traced.stats());
        let recs = traced.trace_records().expect("memory sink installed");
        assert!(!recs.is_empty());
        // Every demand access produced a Lookup; hits + misses = accesses.
        let count = |k: TraceKind| recs.iter().filter(|r| r.kind == k).count() as u64;
        assert_eq!(count(TraceKind::Lookup), 200);
        assert_eq!(count(TraceKind::Hit) + count(TraceKind::Miss), 200);
        assert_eq!(count(TraceKind::Fill), count(TraceKind::GenOpen));
        assert!(plain.trace_records().is_none());
    }

    #[test]
    fn profiler_sees_the_access_and_advance_stages() {
        let mut sys = base_system();
        sys.install_profiler();
        for i in 0..50u64 {
            sys.advance(Cycle::new(i * 100));
            sys.access(&mref(i * 0x40), false, Cycle::new(i * 100));
        }
        sys.finish(Cycle::new(100_000));
        let rep = sys.profile_report().expect("profiler installed");
        let calls = |name: &str| {
            rep.stages
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.calls)
                .unwrap_or(0)
        };
        assert_eq!(calls("access"), 50);
        assert_eq!(calls("obs_lookup"), 50);
        assert_eq!(calls("advance"), 50);
        assert_eq!(calls("finish"), 1);
        assert!(rep.hops.total() > 0, "forward jumps recorded as hops");
        assert!(rep.events >= 100, "lookups + hits/misses/fills dispatched");
    }

    #[test]
    fn mshr_merge_shares_completion() {
        let mut sys = base_system();
        let out1 = sys.access(&mref(0x40), false, Cycle::new(0));
        // A second miss to the same line from a different word, issued
        // before data returns — merged, same ready time. (It hits in L1
        // because the tag was allocated at miss time.)
        let out2 = sys.access(&mref(0x40), false, Cycle::new(2));
        assert_eq!(out1.ready_at, out2.ready_at);
    }

    #[test]
    fn prefetching_works_with_associative_l1() {
        // §5.2.1: "we use per set miss trace history but we still perform
        // all timekeeping and accounting on a per frame basis." The same
        // machinery must run (and help) on a 2-way L1.
        let mut cfg =
            SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB));
        cfg.machine.l1d = timekeeping::CacheGeometry::new(32 * 1024, 2, 32).unwrap();
        let mut sys = MemorySystem::new(cfg);
        // A cyclic sweep of 4 lines aliasing one 2-way set.
        let stride = 16 * 1024u64; // 2-way 32 KB: sets repeat every 16 KB
        let mut now = 0u64;
        for _ in 0..60 {
            for i in 0..4u64 {
                sys.advance(Cycle::new(now));
                sys.access(&mref(0x40 + i * stride), false, Cycle::new(now));
                now += 2000;
            }
        }
        assert!(
            sys.stats().pf_issued > 0,
            "prefetches must issue on 2-way L1"
        );
        assert!(sys.stats().pf_fills > 0, "prefetches must fill on 2-way L1");
    }

    #[test]
    fn slack_mode_defers_non_urgent_prefetches() {
        // Two systems differ only in slack scheduling; both must still
        // complete prefetches, and slack mode must never issue MORE than
        // the eager policy.
        let run = |slack: bool| {
            let mut cfg = SystemConfig::with_prefetch(PrefetchMode::Timekeeping(
                CorrelationConfig::PAPER_8KB,
            ));
            cfg.slack_prefetch = slack;
            let mut sys = MemorySystem::new(cfg);
            let stride = 32 * 1024u64;
            let mut now = 0u64;
            for _ in 0..60 {
                for i in 0..3u64 {
                    sys.advance(Cycle::new(now));
                    sys.access(&mref(0x40 + i * stride), false, Cycle::new(now));
                    now += 2000;
                }
            }
            sys.stats()
        };
        let eager = run(false);
        let slack = run(true);
        assert!(slack.pf_issued > 0, "slack mode must still prefetch");
        assert!(
            slack.pf_issued <= eager.pf_issued,
            "slack mode must not issue more: {} vs {}",
            slack.pf_issued,
            eager.pf_issued
        );
    }

    #[test]
    fn l2_monitor_tracks_conflict_misses() {
        // A conflict ping-pong between two aliasing lines, slow enough that
        // MSHRs expire: the L2 monitor must flag the short re-access
        // intervals as conflicts with high accuracy.
        let mut sys = base_system();
        let a = mref(0x40);
        let b = mref(0x40 + 32 * 1024);
        let mut now = 0u64;
        for _ in 0..200 {
            sys.access(&a, false, Cycle::new(now));
            sys.access(&b, false, Cycle::new(now + 600));
            now += 1200;
        }
        let score = sys.l2_monitor_score();
        assert!(score.observed() > 100, "monitor must score misses");
        assert!(
            score.accuracy().unwrap() > 0.9,
            "short L2 intervals must flag conflicts: {}",
            score.accuracy().unwrap()
        );
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut sys = base_system();
        // Store to a line, then evict it with the conflicting address.
        sys.access(&mref(0x40), true, Cycle::new(0));
        sys.access(&mref(0x40 + 32 * 1024), false, Cycle::new(200));
        assert_eq!(sys.stats().l1_writebacks, 1);
        // The line is still L2-resident, so no memory write-back.
        assert_eq!(sys.stats().l2_writebacks, 0);
        // A clean eviction writes nothing back.
        sys.access(&mref(0x40), false, Cycle::new(400));
        assert_eq!(sys.stats().l1_writebacks, 1);
    }

    #[test]
    fn store_miss_allocates_dirty() {
        let mut sys = base_system();
        sys.access(&mref(0x40), true, Cycle::new(0)); // store miss: allocate dirty
        sys.access(&mref(0x40 + 32 * 1024), false, Cycle::new(200));
        assert_eq!(
            sys.stats().l1_writebacks,
            1,
            "write-allocated line must be dirty"
        );
    }

    #[test]
    fn read_only_traffic_never_writes_back() {
        let mut sys = base_system();
        let mut now = Cycle::new(0);
        for i in 0..4096u64 {
            sys.access(&mref(0x40 + i * 32), false, now);
            now += 5;
        }
        assert_eq!(sys.stats().l1_writebacks, 0);
        assert_eq!(sys.stats().l2_writebacks, 0);
    }

    #[test]
    fn l2_access_interval_equals_l1_reload_interval() {
        // The paper's §3 identity, demonstrated mechanically: sweep a
        // footprint that thrashes the L1 so lines reload repeatedly.
        let mut sys = base_system();
        let mut now = Cycle::new(0);
        for _ in 0..6 {
            for i in 0..4096u64 {
                sys.advance(now);
                sys.access(&mref(0x40 + i * 32), false, now);
                now += 3;
            }
        }
        sys.finish(now);
        let l2 = sys.l2_access_intervals();
        let reload = &sys.metrics().reload;
        assert!(l2.total() > 0);
        assert_eq!(
            l2.total(),
            reload.total(),
            "one reload per repeat L2 access"
        );
        assert_eq!(l2.mean(), reload.mean());
    }

    #[test]
    fn decay_turns_idle_lines_off() {
        let mut sys = MemorySystem::new(SystemConfig::with_decay(10_000));
        sys.access(&mref(0x40), false, Cycle::new(0));
        // Within the decay interval: a normal 1-cycle hit.
        let warm = sys.access(&mref(0x44), false, Cycle::new(5_000));
        assert!(warm.l1_hit);
        // Long idle: the line decayed; the access refetches from L2.
        let cold = sys.access(&mref(0x48), false, Cycle::new(100_000));
        assert!(!cold.l1_hit, "decayed line must refetch");
        assert_eq!(sys.stats().decay_misses, 1);
        // Off time spans from decay point (5000 + 10000) to the access.
        assert_eq!(sys.stats().decay_off_cycles, 100_000 - 15_000);
        // After the refetch the line is live again.
        let rewarm = sys.access(&mref(0x40), false, Cycle::new(100_010));
        assert!(rewarm.l1_hit);
    }

    #[test]
    fn decay_interval_trades_leakage_for_misses() {
        let run = |interval: Option<u64>| {
            let cfg = match interval {
                Some(i) => SystemConfig::with_decay(i),
                None => SystemConfig::base(),
            };
            let mut sys = MemorySystem::new(cfg);
            let mut now = 0u64;
            // A slow periodic scan: lines idle ~8K cycles between touches.
            for rep in 0..40 {
                for i in 0..16u64 {
                    sys.access(&mref(0x40 + i * 32), false, Cycle::new(now + i));
                }
                now += 8_000;
                let _ = rep;
            }
            sys.finish(Cycle::new(now));
            sys.stats()
        };
        let aggressive = run(Some(2_000));
        let conservative = run(Some(32_768));
        assert!(
            aggressive.decay_misses > conservative.decay_misses,
            "shorter interval must induce more misses"
        );
        assert!(
            aggressive.decay_off_cycles > conservative.decay_off_cycles,
            "shorter interval must save more leakage"
        );
        assert_eq!(run(None).decay_misses, 0);
    }

    #[test]
    fn adaptive_victim_filter_runs() {
        let mut sys = MemorySystem::new(SystemConfig::with_victim(VictimMode::AdaptiveDeadTime));
        let a = mref(0x40);
        let b = mref(0x40 + 32 * 1024);
        sys.access(&a, false, Cycle::new(0));
        sys.access(&b, false, Cycle::new(200));
        let out = sys.access(&a, false, Cycle::new(400));
        assert!(out.vc_hit, "fresh conflict victim must be buffered");
    }

    #[test]
    fn addr_predictions_scored() {
        let cfg =
            SystemConfig::with_prefetch(PrefetchMode::Timekeeping(CorrelationConfig::PAPER_8KB));
        let mut sys = MemorySystem::new(cfg);
        let stride = 32 * 1024u64;
        let mut now = Cycle::new(0);
        for _ in 0..50 {
            for i in 0..4u64 {
                sys.advance(now);
                sys.access(&mref(0x40 + i * stride), false, now);
                now += 100;
            }
        }
        let s = sys.stats();
        assert!(s.addr_predictions > 0);
        assert!(
            s.addr_accuracy().unwrap() > 0.5,
            "cyclic pattern must predict well"
        );
    }
}
