//! Criterion benchmarks of whole-simulation throughput: instructions
//! simulated per wall-clock second for representative workload × machine
//! combinations. These guard the harness against performance regressions —
//! every figure run multiplies these costs by 26 benchmarks × several
//! configurations.

//!
//! Criterion is not available in offline environments, so these benches
//! compile only with `--features criterion-benches` (after restoring the
//! `criterion` dev-dependency).

#[cfg(feature = "criterion-benches")]
mod suite {
    use criterion::{black_box, criterion_group, BenchmarkId, Criterion, Throughput};
    use timekeeping::{CorrelationConfig, Cycle};
    use tk_sim::trace::{MemRef, Workload};
    use tk_sim::{run_workload, Instr, MemorySystem, PrefetchMode, SystemConfig, VictimMode};
    use tk_workloads::SpecBenchmark;

    const INSTS: u64 = 200_000;
    const ACCESSES: u64 = 100_000;

    /// Pre-generates a mixed demand-reference stream (gcc/mcf/swim
    /// round-robin), so the access-path bench excludes workload
    /// generation cost. Mirrors `src/bin/pipeline_bench.rs`.
    fn reference_stream(accesses: u64) -> Vec<(MemRef, bool)> {
        let mut refs = Vec::with_capacity(accesses as usize);
        let mut sources = [
            SpecBenchmark::Gcc.build(1),
            SpecBenchmark::Mcf.build(1),
            SpecBenchmark::Swim.build(1),
        ];
        'outer: loop {
            for w in &mut sources {
                loop {
                    match w.next_instr() {
                        Instr::Op => continue,
                        Instr::Store(m) => {
                            refs.push((m, true));
                            break;
                        }
                        Instr::Load(m) | Instr::ChainedLoad(m) | Instr::SwPrefetch(m) => {
                            refs.push((m, false));
                            break;
                        }
                    }
                }
                if refs.len() as u64 >= accesses {
                    break 'outer;
                }
            }
        }
        refs
    }

    /// Raw `MemorySystem::access` throughput — the staged pipeline hot
    /// path with no out-of-order core in front. The wall-clock numbers
    /// for offline environments live in `BENCH_pipeline.json`
    /// (regenerate with `--bin pipeline_bench`).
    fn bench_access_path(c: &mut Criterion) {
        let refs = reference_stream(ACCESSES);
        let mut g = c.benchmark_group("access_path");
        g.throughput(Throughput::Elements(refs.len() as u64));
        g.sample_size(10);
        let cases: [(&str, SystemConfig); 4] = [
            ("base", SystemConfig::base()),
            (
                "victim_deadtime",
                SystemConfig::with_victim(VictimMode::paper_dead_time()),
            ),
            (
                "tk_prefetch",
                SystemConfig::with_prefetch(PrefetchMode::Timekeeping(
                    CorrelationConfig::PAPER_8KB,
                )),
            ),
            ("decay", SystemConfig::with_decay(8_192)),
        ];
        for (name, cfg) in cases {
            g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, &cfg| {
                b.iter(|| {
                    let mut sys = MemorySystem::new(cfg);
                    let mut now = 0u64;
                    for (m, store) in &refs {
                        sys.advance(Cycle::new(now));
                        let out = sys.access(m, *store, Cycle::new(now));
                        now = out.ready_at.get().max(now + 1);
                    }
                    sys.finish(Cycle::new(now));
                    black_box(sys.stats().l1_miss_rate())
                });
            });
        }
        g.finish();
    }

    fn bench_simulation_throughput(c: &mut Criterion) {
        let mut g = c.benchmark_group("simulate");
        g.throughput(Throughput::Elements(INSTS));
        g.sample_size(10);

        let cases: [(&str, SpecBenchmark, SystemConfig); 4] = [
            ("eon_base", SpecBenchmark::Eon, SystemConfig::base()),
            ("gcc_base", SpecBenchmark::Gcc, SystemConfig::base()),
            (
                "twolf_victim",
                SpecBenchmark::Twolf,
                SystemConfig::with_victim(VictimMode::paper_dead_time()),
            ),
            (
                "swim_tk_prefetch",
                SpecBenchmark::Swim,
                SystemConfig::with_prefetch(PrefetchMode::Timekeeping(
                    CorrelationConfig::PAPER_8KB,
                )),
            ),
        ];
        for (name, bench, cfg) in cases {
            g.bench_with_input(
                BenchmarkId::from_parameter(name),
                &(bench, cfg),
                |b, &(w, cfg)| {
                    b.iter(|| {
                        let mut workload = w.build(1);
                        black_box(run_workload(&mut workload, cfg, INSTS).ipc())
                    });
                },
            );
        }
        g.finish();
    }

    criterion_group!(benches, bench_simulation_throughput, bench_access_path);

    pub fn run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    suite::run()
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {}
