//! Criterion benchmarks of whole-simulation throughput: instructions
//! simulated per wall-clock second for representative workload × machine
//! combinations. These guard the harness against performance regressions —
//! every figure run multiplies these costs by 26 benchmarks × several
//! configurations.

//!
//! Criterion is not available in offline environments, so these benches
//! compile only with `--features criterion-benches` (after restoring the
//! `criterion` dev-dependency).

#[cfg(feature = "criterion-benches")]
mod suite {
    use criterion::{black_box, criterion_group, BenchmarkId, Criterion, Throughput};
    use timekeeping::CorrelationConfig;
    use tk_sim::{run_workload, PrefetchMode, SystemConfig, VictimMode};
    use tk_workloads::SpecBenchmark;

    const INSTS: u64 = 200_000;

    fn bench_simulation_throughput(c: &mut Criterion) {
        let mut g = c.benchmark_group("simulate");
        g.throughput(Throughput::Elements(INSTS));
        g.sample_size(10);

        let cases: [(&str, SpecBenchmark, SystemConfig); 4] = [
            ("eon_base", SpecBenchmark::Eon, SystemConfig::base()),
            ("gcc_base", SpecBenchmark::Gcc, SystemConfig::base()),
            (
                "twolf_victim",
                SpecBenchmark::Twolf,
                SystemConfig::with_victim(VictimMode::paper_dead_time()),
            ),
            (
                "swim_tk_prefetch",
                SpecBenchmark::Swim,
                SystemConfig::with_prefetch(PrefetchMode::Timekeeping(
                    CorrelationConfig::PAPER_8KB,
                )),
            ),
        ];
        for (name, bench, cfg) in cases {
            g.bench_with_input(
                BenchmarkId::from_parameter(name),
                &(bench, cfg),
                |b, &(w, cfg)| {
                    b.iter(|| {
                        let mut workload = w.build(1);
                        black_box(run_workload(&mut workload, cfg, INSTS).ipc())
                    });
                },
            );
        }
        g.finish();
    }

    criterion_group!(benches, bench_simulation_throughput);

    pub fn run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    suite::run()
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {}
