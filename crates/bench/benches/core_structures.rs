//! Criterion microbenchmarks of the timekeeping hardware structures: per
//! operation costs of the correlation table, the DBCP table, the
//! fully-associative shadow classifier, the victim cache, the generation
//! tracker and the histograms. These bound the simulator's hot loops and
//! document the (software) cost of each modeled structure.

//!
//! Criterion is not available in offline environments, so these benches
//! compile only with `--features criterion-benches` (after restoring the
//! `criterion` dev-dependency).

#[cfg(feature = "criterion-benches")]
mod suite {
    use criterion::{black_box, criterion_group, Criterion};
    use timekeeping::{
        CacheGeometry, CorrelationConfig, CorrelationTable, Cycle, Dbcp, DbcpConfig, EvictCause,
        FullyAssocShadow, GenerationTracker, GlobalTicker, Histogram, LineAddr, Pc,
        TimekeepingPrefetcher, VictimCache,
    };

    fn bench_correlation_table(c: &mut Criterion) {
        let mut g = c.benchmark_group("correlation_table");
        g.bench_function("update", |b| {
            let mut t = CorrelationTable::new(CorrelationConfig::PAPER_8KB);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                t.update(
                    black_box(i),
                    black_box(i + 1),
                    i & 1023,
                    i + 2,
                    (i % 32) as u8,
                    (i % 32) as u8,
                );
            });
        });
        g.bench_function("lookup_hit", |b| {
            let mut t = CorrelationTable::new(CorrelationConfig::PAPER_8KB);
            for i in 0..2048u64 {
                t.update(i, i + 1, i & 1023, i + 2, 3, 6);
            }
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 2048;
                black_box(t.lookup(i, i + 1, i & 1023));
            });
        });
        g.finish();
    }

    fn bench_dbcp(c: &mut Criterion) {
        let mut g = c.benchmark_group("dbcp");
        g.bench_function("access", |b| {
            let mut d = Dbcp::new(DbcpConfig::PAPER_2MB, 1024);
            d.on_replace(0, LineAddr::new(1));
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(d.on_access(0, Pc::new(0x400 + (i % 8) * 4)));
            });
        });
        g.bench_function("replace", |b| {
            let mut d = Dbcp::new(DbcpConfig::PAPER_2MB, 1024);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                d.on_replace((i % 1024) as usize, LineAddr::new(black_box(i)));
            });
        });
        g.finish();
    }

    fn bench_shadow(c: &mut Criterion) {
        c.bench_function("shadow_classify_miss", |b| {
            let mut s = FullyAssocShadow::new(1024);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(s.classify_miss(LineAddr::new(black_box(i % 4096))));
            });
        });
    }

    fn bench_victim_cache(c: &mut Criterion) {
        c.bench_function("victim_cache_take_insert", |b| {
            let mut vc = VictimCache::paper_default();
            for i in 0..32u64 {
                vc.insert(LineAddr::new(i));
            }
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                let line = LineAddr::new(i % 64);
                if !vc.take(black_box(line)) {
                    vc.insert(line);
                }
            });
        });
    }

    fn bench_generation_tracker(c: &mut Criterion) {
        c.bench_function("tracker_generation_cycle", |b| {
            let mut t = GenerationTracker::new(1024);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                let frame = (i % 1024) as usize;
                let now = Cycle::new(i * 10);
                t.evict(frame, now, EvictCause::Demand);
                t.fill(frame, LineAddr::new(black_box(i % 8192)), now);
                t.hit(frame, now + 3);
            });
        });
    }

    fn bench_histogram(c: &mut Criterion) {
        c.bench_function("histogram_record", |b| {
            let mut h = Histogram::paper_x100();
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(997);
                h.record(black_box(i % 20_000));
            });
        });
    }

    fn bench_prefetcher(c: &mut Criterion) {
        c.bench_function("tk_prefetcher_fill_and_tick", |b| {
            let geom = CacheGeometry::new(32 * 1024, 1, 32).unwrap();
            let mut p = TimekeepingPrefetcher::new(
                geom,
                CorrelationConfig::PAPER_8KB,
                GlobalTicker::default(),
            );
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                let frame = (i % 1024) as usize;
                p.on_fill(frame, frame as u64, black_box(i / 1024));
                if i.is_multiple_of(1024) {
                    black_box(p.tick());
                }
            });
        });
    }

    criterion_group!(
        benches,
        bench_correlation_table,
        bench_dbcp,
        bench_shadow,
        bench_victim_cache,
        bench_generation_tracker,
        bench_histogram,
        bench_prefetcher,
    );

    pub fn run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    suite::run()
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {}
