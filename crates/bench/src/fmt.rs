//! Plain-text table and bar-chart rendering for figure reports.

use timekeeping::Histogram;

/// Renders a fraction (0.0–1.0) as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Renders an optional fraction, with `n/a` for `None`.
pub fn pct_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "n/a".to_owned(), pct)
}

/// Renders a horizontal bar of `width` characters filled to `frac`
/// (clamped to 0–1).
pub fn bar(frac: f64, width: usize) -> String {
    let f = frac.clamp(0.0, 1.0);
    let filled = (f * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// A minimal aligned-column text table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align first column, right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders a histogram as percentage bars over its first `buckets` buckets
/// plus the overflow tail, in the paper's figure style.
pub fn histogram_chart(h: &Histogram, buckets: usize, unit: &str) -> String {
    let mut out = String::new();
    if h.is_empty() {
        out.push_str("(no samples)\n");
        return out;
    }
    let fractions = h.fractions();
    let shown = buckets.min(h.num_buckets());
    let max_frac = fractions[..shown]
        .iter()
        .copied()
        .fold(h.overflow_fraction(), f64::max)
        .max(1e-9);
    for (i, &f) in fractions.iter().enumerate().take(shown) {
        let lo = i as u64 * h.bucket_width();
        out.push_str(&format!(
            "{:>8} {:>6} | {}\n",
            format!("{lo}{unit}"),
            pct(f),
            bar(f / max_frac, 40)
        ));
    }
    out.push_str(&format!(
        "{:>8} {:>6} | {}\n",
        format!(">{}{}", shown as u64 * h.bucket_width(), unit),
        pct(h.overflow_fraction()),
        bar(h.overflow_fraction() / max_frac, 40)
    ));
    out
}

/// Geometric mean of `1 + x` minus one — the paper's convention for
/// averaging IPC improvements (safe for mild negatives).
pub fn geomean_improvement(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| (1.0 + x).max(0.05).ln()).sum();
    (log_sum / xs.len() as f64).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(pct_opt(None), "n/a");
        assert_eq!(pct_opt(Some(1.0)), "100.0%");
    }

    #[test]
    fn bar_clamps_and_fills() {
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(2.0, 3), "###");
        assert_eq!(bar(-1.0, 3), "...");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2"]);
        let r = t.render();
        assert!(r.contains("name"));
        assert!(r.contains("long-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn histogram_chart_renders() {
        let mut h = Histogram::new(100, 10);
        h.record(50);
        h.record(150);
        h.record(5000);
        let c = histogram_chart(&h, 3, "c");
        assert!(c.contains("0c"));
        assert!(c.contains(">300c"));
        assert!(c.contains('#'));
        let empty = Histogram::new(100, 10);
        assert!(histogram_chart(&empty, 3, "c").contains("no samples"));
    }

    #[test]
    fn geomean_of_improvements() {
        let g = geomean_improvement(&[0.1, 0.1, 0.1]);
        assert!((g - 0.1).abs() < 1e-9);
        assert_eq!(geomean_improvement(&[]), 0.0);
        // Mild negatives are fine.
        let g2 = geomean_improvement(&[0.2, -0.05]);
        assert!(g2 > 0.0 && g2 < 0.2);
    }
}
