//! The parallel experiment engine.
//!
//! Every figure of the paper's evaluation is a pile of *independent*
//! simulations — `(benchmark, configuration, seed, instruction budget)`
//! tuples whose results are pure functions of the tuple. The engine
//! exploits that three ways:
//!
//! * **Fan-out** — [`run_jobs`] spreads a batch of [`Job`]s across a
//!   fixed-size pool of worker threads (`--jobs N`), returning results in
//!   the order the jobs were submitted. Because each simulation is
//!   deterministic and shares nothing, `--jobs 1` and `--jobs N` produce
//!   bit-identical results.
//! * **Memoization** — a process-wide cache keyed by the job tuple. The
//!   `report` binary regenerates a dozen figures, most of which re-run
//!   `SystemConfig::base()` over the whole suite; with the memo each
//!   distinct tuple is simulated at most once per invocation.
//!   [`memo_stats`] exposes the hit/run counters.
//! * **Disk cache** (optional, [`set_disk_cache`]) — completed
//!   [`RunResult`]s are persisted as JSON snapshots (default under
//!   `reports/.cache/`), so re-running a report binary with the same
//!   budgets skips straight to rendering. Files carry the full job key
//!   and are ignored (and rewritten) on any mismatch. Delete the
//!   directory to invalidate.
//! * **Checkpoint sharding** — sampled jobs that share a functional
//!   fingerprint (same instruction stream, geometry and sampling
//!   parameters; timing knobs free) reuse one profiled/clustered/warmed
//!   [`SampleCheckpoint`] from `tk_sim`'s
//!   two-tier store, and each job's timed representatives become
//!   independent work units on the same pool. Shard results merge in
//!   the checkpoint's fixed order, so the schedule cannot affect the
//!   output: a sharded run is bit-identical to `Job::simulate`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use timekeeping::snapshot::{Json, Snapshot};
use tk_sim::{run_workload, RunResult, SampleCheckpoint, SystemConfig};

use crate::workload::WorkloadId;

/// One independent simulation: the result is a pure function of this
/// tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// The workload to run: a synthetic benchmark or a registered
    /// external trace ([`WorkloadId`]).
    pub bench: WorkloadId,
    /// The system configuration.
    pub cfg: SystemConfig,
    /// Workload seed.
    pub seed: u64,
    /// Instruction budget.
    pub instructions: u64,
}

impl Job {
    /// Creates a job. Accepts a bare [`SpecBenchmark`](tk_workloads::SpecBenchmark)
    /// or any [`WorkloadId`].
    pub fn new(
        bench: impl Into<WorkloadId>,
        cfg: SystemConfig,
        seed: u64,
        instructions: u64,
    ) -> Self {
        Job {
            bench: bench.into(),
            cfg,
            seed,
            instructions,
        }
    }

    /// A canonical, process-independent description of the tuple — the
    /// disk-cache key. (The in-process memo hashes the tuple directly;
    /// `std`'s hasher is randomized per process, so filenames use an FNV
    /// hash of this string instead.) Synthetic jobs keep the historical
    /// `bench={name};…` format; trace jobs lead with
    /// `trace={digest:016x}` so entries can never alias across traces
    /// or against a benchmark.
    pub fn cache_key(&self) -> String {
        format!(
            "{};{};seed={};instructions={}",
            self.bench.key_fragment(),
            self.cfg.cache_key(),
            self.seed,
            self.instructions,
        )
    }

    /// The simulation itself (no caching).
    fn simulate(&self) -> RunResult {
        let mut w = self.bench.build(self.seed);
        run_workload(&mut w, self.cfg, self.instructions)
    }
}

/// 64-bit FNV-1a — a stable, dependency-free hash for cache filenames
/// and golden-digest fingerprints.
pub(crate) fn fnv1a64(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Engine {
    memo: Mutex<HashMap<Job, Arc<RunResult>>>,
    disk_dir: Mutex<Option<PathBuf>>,
    recorded: Mutex<Option<Vec<Job>>>,
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
    sims_run: AtomicU64,
}

fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| Engine {
        memo: Mutex::new(HashMap::new()),
        disk_dir: Mutex::new(None),
        recorded: Mutex::new(None),
        memo_hits: AtomicU64::new(0),
        disk_hits: AtomicU64::new(0),
        sims_run: AtomicU64::new(0),
    })
}

/// Enables (`Some(dir)`) or disables (`None`) the on-disk result cache.
///
/// Results are written as one JSON file per job under `dir`, which is
/// created on first write. Clear the cache by deleting the directory
/// (e.g. `rm -rf reports/.cache`).
pub fn set_disk_cache(dir: Option<PathBuf>) {
    *engine().disk_dir.lock().expect("cache poisoned") = dir;
}

/// The current disk-cache directory, if enabled.
pub fn disk_cache_dir() -> Option<PathBuf> {
    engine().disk_dir.lock().expect("cache poisoned").clone()
}

/// Turns the job log on or off. While on, every *distinct* job submitted
/// to [`run_jobs`] is appended (in submission order, including memo and
/// disk hits) so a caller can discover exactly which simulations back a
/// figure — the golden-figure harness uses this to build its digests.
pub fn record_jobs(enable: bool) {
    let mut rec = engine().recorded.lock().expect("record poisoned");
    *rec = if enable { Some(Vec::new()) } else { None };
}

/// Drains the job log accumulated since [`record_jobs`]`(true)` (or the
/// previous drain), leaving recording on. Empty when recording is off.
pub fn take_recorded_jobs() -> Vec<Job> {
    let mut rec = engine().recorded.lock().expect("record poisoned");
    match rec.as_mut() {
        Some(v) => std::mem::take(v),
        None => Vec::new(),
    }
}

/// Engine counters since process start (or the last [`reset_stats`]):
/// `(memo_hits, disk_hits, simulations_run)`.
///
/// Every job submitted to [`run_jobs`] lands in exactly one bucket, so
/// `memo_hits + disk_hits + simulations_run` equals the total number of
/// jobs submitted — and `simulations_run` equals the number of *distinct*
/// job tuples that had to be simulated.
pub fn memo_stats() -> (u64, u64, u64) {
    let e = engine();
    (
        e.memo_hits.load(Ordering::Relaxed),
        e.disk_hits.load(Ordering::Relaxed),
        e.sims_run.load(Ordering::Relaxed),
    )
}

/// Clears the in-process memo and zeroes the counters (test hook; the
/// disk cache is left untouched).
pub fn reset_stats() {
    let e = engine();
    e.memo.lock().expect("memo poisoned").clear();
    e.memo_hits.store(0, Ordering::Relaxed);
    e.disk_hits.store(0, Ordering::Relaxed);
    e.sims_run.store(0, Ordering::Relaxed);
}

/// The default worker-pool size: one worker per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn disk_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{:016x}.json", fnv1a64(key)))
}

/// Loads a result from the disk cache, verifying the embedded key.
fn disk_load(dir: &Path, key: &str) -> Option<RunResult> {
    let text = std::fs::read_to_string(disk_path(dir, key)).ok()?;
    let v = Json::parse(&text).ok()?;
    if v.get("key").ok()?.as_str().ok()? != key {
        return None; // FNV collision or stale format: re-simulate.
    }
    RunResult::from_json(v.get("result").ok()?).ok()
}

/// Persists a result to the disk cache (best-effort: I/O errors only
/// cost future cache hits).
fn disk_store(dir: &Path, key: &str, result: &RunResult) {
    let doc = Json::obj([
        ("key", Json::Str(key.to_owned())),
        ("result", result.to_json()),
    ]);
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(disk_path(dir, key), doc.render());
    }
}

/// Runs a batch of jobs on a pool of `workers` threads, returning the
/// results in submission order.
///
/// Duplicate tuples within the batch — and tuples already resolved
/// earlier in the process — are simulated once and shared. `workers` is
/// clamped to at least 1; `workers == 1` runs the batch serially on the
/// calling thread and produces bit-identical results to any other pool
/// size.
pub fn run_jobs(jobs: &[Job], workers: usize) -> Vec<Arc<RunResult>> {
    let e = engine();
    let disk_dir = e.disk_dir.lock().expect("cache poisoned").clone();
    if let Some(rec) = e.recorded.lock().expect("record poisoned").as_mut() {
        for job in jobs {
            if !rec.contains(job) {
                rec.push(*job);
            }
        }
    }

    // Resolve what we can from the memo and disk; collect the distinct
    // tuples that actually need simulating.
    let mut pending: Vec<Job> = Vec::new();
    {
        let mut memo = e.memo.lock().expect("memo poisoned");
        for job in jobs {
            if memo.contains_key(job) {
                e.memo_hits.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if let Some(r) = disk_dir
                .as_deref()
                .and_then(|d| disk_load(d, &job.cache_key()))
            {
                e.disk_hits.fetch_add(1, Ordering::Relaxed);
                memo.insert(*job, Arc::new(r));
                continue;
            }
            if pending.contains(job) {
                // Duplicate within this batch: one simulation covers it.
                e.memo_hits.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            pending.push(*job);
        }
    }

    // Plan the batch's checkpoint plane: group sampled jobs by
    // functional fingerprint, materialize each distinct checkpoint once,
    // and split those jobs into per-representative timing shards.
    let workers = workers.max(1);
    let plan = plan_checkpoints(&pending, workers);
    let units = plan.units(&pending);

    // Fan the work units across the pool. Each slot is written by
    // exactly one worker; unit order is fixed by `pending` order and
    // shard index, so the pool size cannot affect the output.
    let checked = tk_sim::lockstep_check_enabled();
    let unit_results: Vec<Mutex<Option<RunResult>>> =
        units.iter().map(|_| Mutex::new(None)).collect();
    let run_unit = |u: &Unit| match *u {
        Unit::Whole(j) => pending[j].simulate(),
        Unit::Shard { job, ckpt, shard } => {
            tk_sim::run_shard(&plan.ckpts[ckpt], pending[job].cfg, shard, checked)
        }
    };
    let pool = workers.min(units.len().max(1));
    if pool <= 1 {
        for (u, slot) in units.iter().zip(&unit_results) {
            *slot.lock().expect("slot poisoned") = Some(run_unit(u));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..pool {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(u) = units.get(i) else { break };
                    let r = run_unit(u);
                    *unit_results[i].lock().expect("slot poisoned") = Some(r);
                });
            }
        });
    }
    e.sims_run
        .fetch_add(pending.len() as u64, Ordering::Relaxed);

    // Reassemble sharded jobs — always in the checkpoint's fixed shard
    // order, regardless of which worker timed which shard when.
    let mut per_job: Vec<Vec<RunResult>> = (0..pending.len()).map(|_| Vec::new()).collect();
    for (u, slot) in units.iter().zip(unit_results) {
        let r = slot
            .into_inner()
            .expect("slot poisoned")
            .expect("worker ran");
        match *u {
            Unit::Whole(j) | Unit::Shard { job: j, .. } => per_job[j].push(r),
        }
    }

    // Publish the new results, then answer the batch in order.
    {
        let mut memo = e.memo.lock().expect("memo poisoned");
        for (j, (job, mut rs)) in pending.iter().zip(per_job).enumerate() {
            let r = match plan.assignment[j] {
                Some(c) => tk_sim::assemble_shards(&plan.ckpts[c], &rs),
                None => rs.pop().expect("whole job ran"),
            };
            if let Some(dir) = disk_dir.as_deref() {
                disk_store(dir, &job.cache_key(), &r);
            }
            memo.insert(*job, Arc::new(r));
        }
    }
    let memo = e.memo.lock().expect("memo poisoned");
    jobs.iter()
        .map(|job| Arc::clone(memo.get(job).expect("job resolved")))
        .collect()
}

/// One schedulable piece of a batch: a whole simulation, or a single
/// timed representative of a checkpointed job.
enum Unit {
    Whole(usize),
    Shard {
        job: usize,
        ckpt: usize,
        shard: usize,
    },
}

/// The checkpoint plan for one batch of pending jobs.
struct SweepPlan {
    /// Per pending job: index into `ckpts`, or `None` to simulate whole.
    assignment: Vec<Option<usize>>,
    /// The batch's distinct checkpoints, materialized once each.
    ckpts: Vec<Arc<SampleCheckpoint>>,
}

impl SweepPlan {
    /// Expands the plan into the batch's work units, job-major so each
    /// job's shard results arrive in shard order.
    fn units(&self, pending: &[Job]) -> Vec<Unit> {
        let mut units = Vec::with_capacity(pending.len());
        for j in 0..pending.len() {
            match self.assignment[j] {
                Some(c) => units.extend((0..self.ckpts[c].shard_count()).map(|s| Unit::Shard {
                    job: j,
                    ckpt: c,
                    shard: s,
                })),
                None => units.push(Unit::Whole(j)),
            }
        }
        units
    }
}

/// Groups the pending jobs by functional fingerprint and materializes
/// each distinct checkpoint once, fanning the builds across the pool
/// (profiling, clustering and warmup dominate a sampled job's cost, so
/// a sweep of F distinct streams warms F ways wide). Jobs whose
/// fingerprint is `None` — unsampled, multi-core, unsupported L1 mode,
/// degenerate or over-cap budgets — simulate whole, as do jobs whose
/// build overflows the compact stream encoding (`Job::simulate` then
/// takes the identical streaming fallback).
fn plan_checkpoints(pending: &[Job], workers: usize) -> SweepPlan {
    let mut assignment: Vec<Option<usize>> = vec![None; pending.len()];
    if !tk_sim::checkpoints_enabled() || pending.is_empty() {
        // `--no-ckpt`: every job still *builds* its checkpoint
        // transiently inside `run_sampled`, so results are identical —
        // only the sharing and the shard-level parallelism are lost.
        return SweepPlan {
            assignment,
            ckpts: Vec::new(),
        };
    }
    // The stream probe forks and hashes the head of the workload, so
    // memoize it per distinct stream, not per job.
    let mut probes: HashMap<(WorkloadId, u64), Option<u64>> = HashMap::new();
    let mut group_of: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<(String, usize)> = Vec::new(); // (fingerprint, exemplar job)
    for (i, job) in pending.iter().enumerate() {
        if job.cfg.sample.is_none() {
            continue;
        }
        let probe = *probes
            .entry((job.bench, job.seed))
            .or_insert_with(|| tk_sim::stream_probe(&job.bench.build(job.seed)));
        let Some(probe) = probe else { continue };
        let Some(fp) =
            tk_sim::job_fingerprint(probe, &job.bench.name(), &job.cfg, job.instructions)
        else {
            continue;
        };
        let g = *group_of.entry(fp.clone()).or_insert_with(|| {
            groups.push((fp, i));
            groups.len() - 1
        });
        assignment[i] = Some(g);
    }

    let built: Vec<Mutex<Option<Arc<SampleCheckpoint>>>> =
        groups.iter().map(|_| Mutex::new(None)).collect();
    let build = |g: &(String, usize)| {
        let job = &pending[g.1];
        tk_sim::obtain_keyed(&job.bench.build(job.seed), &job.cfg, job.instructions, &g.0)
    };
    let pool = workers.max(1).min(groups.len().max(1));
    if pool <= 1 {
        for (g, slot) in groups.iter().zip(&built) {
            *slot.lock().expect("slot poisoned") = build(g);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..pool {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(g) = groups.get(i) else { break };
                    let r = build(g);
                    *built[i].lock().expect("slot poisoned") = r;
                });
            }
        });
    }

    // Compact to the successful builds and remap the assignments.
    let mut ckpts = Vec::new();
    let mut remap: Vec<Option<usize>> = Vec::with_capacity(groups.len());
    for slot in built {
        match slot.into_inner().expect("slot poisoned") {
            Some(c) => {
                remap.push(Some(ckpts.len()));
                ckpts.push(c);
            }
            None => remap.push(None),
        }
    }
    for a in &mut assignment {
        *a = a.and_then(|g| remap[g]);
    }
    SweepPlan { assignment, ckpts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::FigureOpts;
    use tk_workloads::SpecBenchmark;

    fn quick_job(cfg: SystemConfig) -> Job {
        Job::new(
            SpecBenchmark::Gzip,
            cfg,
            1,
            FigureOpts::quick().instructions,
        )
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn cache_key_distinguishes_tuples() {
        let a = quick_job(SystemConfig::base());
        let mut b = a;
        b.seed = 2;
        let mut c = a;
        c.instructions += 1;
        let d = quick_job(SystemConfig::ideal());
        let keys = [a.cache_key(), b.cache_key(), c.cache_key(), d.cache_key()];
        for (i, k) in keys.iter().enumerate() {
            for other in &keys[i + 1..] {
                assert_ne!(k, other);
            }
        }
    }

    #[test]
    fn disk_cache_round_trips_and_rejects_mismatches() {
        let dir = std::env::temp_dir().join(format!("tk-engine-test-{}", std::process::id()));
        let job = quick_job(SystemConfig::base());
        let r = job.simulate();
        disk_store(&dir, &job.cache_key(), &r);
        assert_eq!(disk_load(&dir, &job.cache_key()), Some(r.clone()));
        // A different key must not read another key's file, even if we
        // force the same path by writing it there.
        std::fs::write(disk_path(&dir, "other-key"), {
            Json::obj([("key", Json::Str(job.cache_key())), ("result", r.to_json())]).render()
        })
        .unwrap();
        assert_eq!(disk_load(&dir, "other-key"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
