//! Experiment plumbing shared by all figure binaries.
//!
//! [`FigureOpts`] carries the knobs every binary understands and
//! [`FigureOpts::from_args`] parses the shared command line:
//!
//! ```text
//! <binary> [INSTRUCTIONS] [--instructions N] [--seed S] [--quick]
//!          [--jobs J] [--cache[=DIR]] [--no-cache] [--check]
//!          [--trace[=CATS]] [--trace-sample N] [--profile] [--obs-out DIR]
//! ```
//!
//! A bare leading number is accepted as the instruction budget for
//! backward compatibility with the original positional interface.
//! Unrecognized arguments are an error (exit code 2), not silently
//! ignored. Binaries with their own positional operands (`report`'s
//! output directory, `quickcheck`'s benchmark names) use
//! [`FigureOpts::from_args_with_positionals`].
//!
//! The run helpers ([`run_bench`], [`run_suite`], [`suite_metrics`]) sit
//! on the [`engine`]: results are memoized per job tuple
//! and suites fan out across `opts.jobs` workers.

use std::sync::Arc;

use timekeeping::MetricsCollector;
use tk_sim::{RunResult, SystemConfig};
use tk_workloads::SpecBenchmark;

use crate::engine::{self, Job};
use crate::workload::{self, WorkloadId};

/// Options common to every figure run.
#[derive(Debug, Clone, Copy)]
pub struct FigureOpts {
    /// Instructions simulated per benchmark per configuration.
    pub instructions: u64,
    /// Workload seed (figures are bit-reproducible per seed).
    pub seed: u64,
    /// Worker threads for independent simulations (default: all cores).
    pub jobs: usize,
    /// Whether the budget came from the command line (as opposed to the
    /// default) — lets binaries with a non-standard default budget
    /// ([`or_default_budget`](Self::or_default_budget)) respect an
    /// explicit `--instructions`.
    pub instructions_explicit: bool,
    /// Whether `--check` was given: every simulation runs in lockstep
    /// with the functional oracle (see `tk_sim::oracle`). The parser
    /// also sets the process-wide flag so the engine's workers pick it
    /// up.
    pub check: bool,
    /// Whether `--trace[=CATS]` was given: memory systems stream typed
    /// event records (see `tk_sim::obs`). Like `--check`, the parser
    /// sets the process-wide flag; this field records it for manifests.
    pub trace: bool,
    /// Whether `--profile` was given: memory systems time their own
    /// pipeline stages and report the breakdown.
    pub profile: bool,
    /// The `--dram` memory backend. Like `--check`, the parser also sets
    /// the process-wide default (`tk_sim::set_default_mem_backend`) so
    /// every `SystemConfig::builder()` in every figure picks it up; this
    /// field records the choice for manifests.
    pub dram: tk_sim::MemBackendConfig,
    /// The `--sample[=interval,k]` statistical-sampling mode (`None` =
    /// full simulation). Like `--dram`, the parser also sets the
    /// process-wide default (`tk_sim::set_default_sample`) so every
    /// `SystemConfig::builder()` in every figure picks it up; this field
    /// records the choice for manifests.
    pub sample: Option<tk_sim::SampleConfig>,
    /// The `--cores=N` timing-core count (default 1, the single-core
    /// paper machine). Like `--dram`, the parser also sets the
    /// process-wide default (`tk_sim::set_default_cores`) so every
    /// `SystemConfig::builder()` in every figure picks it up; multi-core
    /// configs run the MESI-coherent hierarchy (`tk_sim::multicore`).
    pub cores: u32,
    /// Whether `--trace-once` was given: registered `--trace-file`
    /// workloads play a single pass and then pad with `O` ops instead
    /// of looping. Like `--check`, the parser sets the process-wide
    /// flag ([`workload::set_trace_once`]); this field records it for
    /// manifests.
    pub trace_once: bool,
}

impl FigureOpts {
    /// The default figure budget: 8 M instructions per run — enough for
    /// every workload's footprint to be traversed several times.
    pub const DEFAULT_INSTRUCTIONS: u64 = 8_000_000;

    /// The reduced `--quick` budget.
    pub const QUICK_INSTRUCTIONS: u64 = 300_000;

    /// The default disk-cache location of `--cache`.
    pub const DEFAULT_CACHE_DIR: &'static str = "reports/.cache";

    /// The default checkpoint-store location of `--ckpt`.
    pub const DEFAULT_CKPT_DIR: &'static str = "reports/.ckpt";

    /// Creates options with the default budget.
    pub fn new() -> Self {
        FigureOpts {
            instructions: Self::DEFAULT_INSTRUCTIONS,
            seed: 1,
            jobs: engine::default_jobs(),
            instructions_explicit: false,
            check: false,
            trace: false,
            profile: false,
            dram: tk_sim::default_mem_backend(),
            sample: tk_sim::default_sample(),
            cores: tk_sim::default_cores(),
            trace_once: workload::trace_once(),
        }
    }

    /// Replaces the budget with `n` unless one was given explicitly on
    /// the command line (for binaries whose default differs from
    /// [`DEFAULT_INSTRUCTIONS`](Self::DEFAULT_INSTRUCTIONS)).
    pub fn or_default_budget(mut self, n: u64) -> Self {
        if !self.instructions_explicit {
            self.instructions = n;
        }
        self
    }

    /// A reduced budget for smoke tests.
    pub fn quick() -> Self {
        FigureOpts {
            instructions: Self::QUICK_INSTRUCTIONS,
            instructions_explicit: true,
            ..Self::new()
        }
    }

    /// Parses the shared flags from the process arguments. Leftover
    /// positional operands (beyond the legacy leading instruction count)
    /// are an error; binaries that take positionals use
    /// [`from_args_with_positionals`](Self::from_args_with_positionals).
    ///
    /// On a parse error, prints the error and usage to stderr and exits
    /// with status 2.
    pub fn from_args() -> Self {
        let (opts, positionals) = Self::from_args_with_positionals();
        if let Some(p) = positionals.first() {
            usage_error(&format!("unexpected argument `{p}`"));
        }
        opts
    }

    /// Like [`from_args`](Self::from_args), but hands back non-flag
    /// positional operands for the binary to interpret.
    pub fn from_args_with_positionals() -> (Self, Vec<String>) {
        match Self::parse(std::env::args().skip(1)) {
            Ok(parsed) => parsed,
            Err(e) => usage_error(&e),
        }
    }

    /// The pure parser behind [`from_args`](Self::from_args).
    ///
    /// A bare number in first position is the instruction budget (the
    /// legacy interface). `--cache` flags apply their side effect
    /// (enabling or disabling the engine's disk cache) immediately.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending argument on unknown flags,
    /// missing or malformed flag values.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<(Self, Vec<String>), String> {
        let mut opts = Self::new();
        let mut positionals = Vec::new();
        let mut args = args.peekable();
        let mut first = true;

        fn value_of(
            flag: &str,
            inline: Option<&str>,
            args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
        ) -> Result<String, String> {
            match inline {
                Some(v) => Ok(v.to_owned()),
                None => args.next().ok_or_else(|| format!("{flag} needs a value")),
            }
        }

        fn parse_u64(flag: &str, v: &str) -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|_| format!("{flag} needs an unsigned integer, got `{v}`"))
        }

        while let Some(arg) = args.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f, Some(v)),
                None => (arg.as_str(), None),
            };
            match flag {
                "--instructions" => {
                    let v = value_of(flag, inline, &mut args)?;
                    opts.instructions = parse_u64(flag, &v)?;
                    opts.instructions_explicit = true;
                }
                "--seed" => {
                    let v = value_of(flag, inline, &mut args)?;
                    opts.seed = parse_u64(flag, &v)?;
                }
                "--jobs" => {
                    let v = value_of(flag, inline, &mut args)?;
                    let n = parse_u64(flag, &v)?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".to_owned());
                    }
                    opts.jobs = n as usize;
                }
                "--quick" => {
                    opts.instructions = Self::QUICK_INSTRUCTIONS;
                    opts.instructions_explicit = true;
                }
                "--cache" => {
                    let dir = inline
                        .map(str::to_owned)
                        .unwrap_or_else(|| Self::DEFAULT_CACHE_DIR.to_owned());
                    engine::set_disk_cache(Some(dir.into()));
                }
                "--no-cache" => engine::set_disk_cache(None),
                "--ckpt" => {
                    // Like `--cache`: the in-process checkpoint tier is
                    // on by default; this flag adds the on-disk tier so
                    // profiling/clustering/warmup survive the process.
                    let dir = inline
                        .map(str::to_owned)
                        .unwrap_or_else(|| Self::DEFAULT_CKPT_DIR.to_owned());
                    tk_sim::set_checkpoints_enabled(true);
                    tk_sim::set_checkpoint_dir(Some(dir.into()));
                }
                "--no-ckpt" => {
                    tk_sim::set_checkpoints_enabled(false);
                    tk_sim::set_checkpoint_dir(None);
                }
                "--check" => {
                    opts.check = true;
                    tk_sim::set_lockstep_check(true);
                }
                "--dram" => {
                    let v = value_of(flag, inline, &mut args)?;
                    let backend = tk_sim::parse_backend_arg(&v)?;
                    opts.dram = backend;
                    tk_sim::set_default_mem_backend(backend);
                }
                "--cores" => {
                    let v = value_of(flag, inline, &mut args)?;
                    let n = parse_u64(flag, &v)?;
                    if n == 0 || n > u64::from(tk_sim::MAX_CORES) {
                        return Err(format!(
                            "--cores must be between 1 and {}, got {n}",
                            tk_sim::MAX_CORES
                        ));
                    }
                    opts.cores = n as u32;
                    tk_sim::set_default_cores(opts.cores);
                }
                "--trace-file" => {
                    // Registers the trace process-wide (like --dram's
                    // backend default): every suite-driving helper and
                    // figure picks it up as a first-class workload.
                    let v = value_of(flag, inline, &mut args)?;
                    workload::register_trace(&v).map_err(|e| format!("--trace-file: {e}"))?;
                }
                "--trace-once" => {
                    opts.trace_once = true;
                    workload::set_trace_once(true);
                }
                "--sample" => {
                    // Bare `--sample` selects the default parameters
                    // rather than consuming the next argument (like
                    // `--cache`).
                    let sc = match inline {
                        Some(v) => tk_sim::parse_sample_arg(v)?,
                        None => tk_sim::SampleConfig::DEFAULT,
                    };
                    opts.sample = Some(sc);
                    tk_sim::set_default_sample(Some(sc));
                }
                "--help" | "-h" => {
                    println!("{}", usage());
                    std::process::exit(0);
                }
                _ if flag.starts_with('-') => {
                    // Observability flags share one parser with core_bench
                    // (tk_sim::obs::apply_cli_flag) — their side effects
                    // are process-global, like --check and --cache.
                    let mut next = || args.next();
                    if tk_sim::obs::apply_cli_flag(flag, inline, &mut next)? {
                        match flag {
                            "--trace" => opts.trace = true,
                            "--profile" => opts.profile = true,
                            _ => {}
                        }
                        first = false;
                        continue;
                    }
                    return Err(format!("unknown flag `{flag}`"));
                }
                _ => {
                    // Legacy positional interface: a bare leading number
                    // is the instruction budget.
                    if first && inline.is_none() {
                        if let Ok(n) = arg.parse::<u64>() {
                            opts.instructions = n;
                            opts.instructions_explicit = true;
                            first = false;
                            continue;
                        }
                    }
                    positionals.push(arg);
                }
            }
            first = false;
        }
        Ok((opts, positionals))
    }
}

/// The shared usage text.
fn usage() -> String {
    format!(
        "usage: <binary> [INSTRUCTIONS] [options]\n\
         \n\
         options:\n\
         \x20 --instructions N   instruction budget per run (default {instr})\n\
         \x20 --seed S           workload seed (default 1)\n\
         \x20 --quick            reduced {quick}-instruction budget for smoke runs\n\
         \x20 --jobs J           worker threads (default: all cores)\n\
         \x20 --cache[=DIR]      persist results as JSON (default dir {cache})\n\
         \x20 --no-cache         disable the disk cache\n\
         \x20 --ckpt[=DIR]       persist sampling checkpoints (profile +\n\
         \x20                    clustering + warm state) on disk (default\n\
         \x20                    dir {ckpt}); sweeps over timing knobs\n\
         \x20                    reuse them across runs\n\
         \x20 --no-ckpt          disable checkpoint sharing entirely\n\
         \x20                    (results are bit-identical either way)\n\
         \x20 --check            self-verify: run every simulation in\n\
         \x20                    lockstep with the functional oracle\n\
         \x20 --dram=BACKEND     memory model: fixed (default, the paper's\n\
         \x20                    constant latency) or banked[:ddr2|:ddr4]\n\
         \x20                    (row buffers, banks, channel buses)\n\
         \x20 --cores=N          timing cores (default 1; 2..8 runs the\n\
         \x20                    MESI-coherent multi-core hierarchy with\n\
         \x20                    private L1s over the shared L2)\n\
         \x20 --sample[=I,K]     statistical sampling: split the budget into\n\
         \x20                    I-instruction intervals, k-means them into K\n\
         \x20                    clusters, time only the representatives with\n\
         \x20                    functional warmup (default {interval},{k}; results\n\
         \x20                    carry a `sampled` tag and separate cache keys)\n\
         \x20 --trace-file=SPEC  register an external trace (PATH[:fmt], fmt\n\
         \x20                    among text/champsim/auto/stream; gzip sniffed\n\
         \x20                    by magic) as a first-class workload in every\n\
         \x20                    suite-driven figure; repeatable\n\
         \x20 --trace-once       registered traces play one pass then pad\n\
         \x20                    with non-memory ops instead of looping\n\
         \x20 --trace[=CATS]     stream typed memory events (binary + JSONL);\n\
         \x20                    CATS filters categories, e.g. miss,fill,pf\n\
         \x20                    (add `ref` to capture the raw reference\n\
         \x20                    stream for tk_trace_export)\n\
         \x20 --trace-sample N   keep 1-in-N L1 sets in the trace\n\
         \x20 --profile          time the simulator's own pipeline stages\n\
         \x20 --obs-out DIR      directory for trace/profile/manifest files\n\
         \x20 --help             this text\n\
         \n\
         A bare leading number is accepted as INSTRUCTIONS (legacy\n\
         interface). Clear the disk cache with: rm -rf {cache}",
        instr = FigureOpts::DEFAULT_INSTRUCTIONS,
        quick = FigureOpts::QUICK_INSTRUCTIONS,
        interval = tk_sim::SampleConfig::DEFAULT.interval,
        k = tk_sim::SampleConfig::DEFAULT.k,
        cache = FigureOpts::DEFAULT_CACHE_DIR,
        ckpt = FigureOpts::DEFAULT_CKPT_DIR,
    )
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{}", usage());
    std::process::exit(2);
}

impl Default for FigureOpts {
    fn default() -> Self {
        Self::new()
    }
}

/// The full workload suite: every synthetic benchmark, then every
/// trace registered with `--trace-file`, in registration order — the
/// iteration set of every suite-driven figure.
pub fn suite_workloads() -> Vec<WorkloadId> {
    SpecBenchmark::ALL
        .iter()
        .copied()
        .map(WorkloadId::Spec)
        .chain(
            workload::registered_traces()
                .into_iter()
                .map(WorkloadId::Trace),
        )
        .collect()
}

/// The best-performer subset plus every registered trace (external
/// traces always ride along: the user asked for them by path).
pub fn best_workloads() -> Vec<WorkloadId> {
    SpecBenchmark::BEST_PERFORMERS
        .iter()
        .copied()
        .map(WorkloadId::Spec)
        .chain(
            workload::registered_traces()
                .into_iter()
                .map(WorkloadId::Trace),
        )
        .collect()
}

/// Runs one workload under one configuration (memoized).
pub fn run_bench(
    bench: impl Into<WorkloadId>,
    cfg: SystemConfig,
    opts: FigureOpts,
) -> Arc<RunResult> {
    engine::run_jobs(&[Job::new(bench, cfg, opts.seed, opts.instructions)], 1)
        .pop()
        .expect("one job in, one result out")
}

/// Runs every suite workload (benchmarks plus registered traces) under
/// `cfg` on `opts.jobs` workers, returning per-workload results in
/// suite order.
pub fn run_suite(cfg: SystemConfig, opts: FigureOpts) -> Vec<(WorkloadId, Arc<RunResult>)> {
    let suite = suite_workloads();
    let jobs: Vec<Job> = suite
        .iter()
        .map(|&b| Job::new(b, cfg, opts.seed, opts.instructions))
        .collect();
    let results = engine::run_jobs(&jobs, opts.jobs);
    suite.into_iter().zip(results).collect()
}

/// Runs the base machine on every suite workload and merges the
/// timekeeping metrics into one suite-wide collector (the "all
/// SPEC2000" aggregate of Figures 4, 5, 7–10 and 14).
pub fn suite_metrics(opts: FigureOpts) -> (Vec<(WorkloadId, Arc<RunResult>)>, MetricsCollector) {
    let results = run_suite(SystemConfig::base(), opts);
    let mut merged = MetricsCollector::new();
    for (_, r) in &results {
        merged.merge(&r.metrics);
    }
    (results, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk_sim::SystemConfig;

    fn parse(args: &[&str]) -> Result<(FigureOpts, Vec<String>), String> {
        FigureOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn opts_default_and_quick() {
        assert_eq!(FigureOpts::new().instructions, 8_000_000);
        assert!(FigureOpts::quick().instructions < 1_000_000);
        assert!(FigureOpts::new().jobs >= 1);
    }

    #[test]
    fn parses_flags_in_any_form() {
        let (o, pos) = parse(&["--instructions", "123", "--seed=7", "--jobs", "3"]).unwrap();
        assert_eq!(o.instructions, 123);
        assert_eq!(o.seed, 7);
        assert_eq!(o.jobs, 3);
        assert!(pos.is_empty());
    }

    #[test]
    fn quick_flag_sets_budget() {
        let (o, _) = parse(&["--quick"]).unwrap();
        assert_eq!(o.instructions, FigureOpts::QUICK_INSTRUCTIONS);
        // Explicit budget after --quick wins (last flag wins).
        let (o, _) = parse(&["--quick", "--instructions", "42"]).unwrap();
        assert_eq!(o.instructions, 42);
    }

    #[test]
    fn legacy_positional_budget_still_works() {
        let (o, pos) = parse(&["2000000"]).unwrap();
        assert_eq!(o.instructions, 2_000_000);
        assert!(pos.is_empty());
        // ...but only in first position; later numbers are positionals.
        let (o, pos) = parse(&["--seed", "2", "5"]).unwrap();
        assert_eq!(o.instructions, FigureOpts::DEFAULT_INSTRUCTIONS);
        assert_eq!(o.seed, 2);
        assert_eq!(pos, vec!["5"]);
    }

    #[test]
    fn positionals_are_returned() {
        let (o, pos) = parse(&["1000", "out-dir", "gzip"]).unwrap();
        assert_eq!(o.instructions, 1000);
        assert_eq!(pos, vec!["out-dir", "gzip"]);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--instructions"]).is_err());
        assert!(parse(&["--instructions", "many"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--seed=-1"]).is_err());
    }

    #[test]
    fn jobs_zero_error_states_minimum() {
        let err = parse(&["--jobs", "0"]).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
        // Inline form hits the same validation.
        assert_eq!(parse(&["--jobs=0"]).unwrap_err(), err);
    }

    #[test]
    fn unknown_flag_error_names_the_flag() {
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
        // The inline `=value` part is not blamed, only the flag itself.
        let err = parse(&["--frobnicate=3"]).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
        assert!(!err.contains("=3"), "{err}");
    }

    #[test]
    fn cache_flag_path_handling() {
        let prev = engine::disk_cache_dir();

        let (_, pos) = parse(&["--cache=/tmp/tk-golden-test-cache"]).unwrap();
        assert!(pos.is_empty());
        assert_eq!(
            engine::disk_cache_dir(),
            Some(std::path::PathBuf::from("/tmp/tk-golden-test-cache"))
        );

        // Bare `--cache` falls back to the default directory rather than
        // consuming the next argument as a value.
        let (o, pos) = parse(&["--cache", "777"]).unwrap();
        assert_eq!(
            engine::disk_cache_dir(),
            Some(std::path::PathBuf::from(FigureOpts::DEFAULT_CACHE_DIR))
        );
        assert_eq!(o.instructions, FigureOpts::DEFAULT_INSTRUCTIONS);
        assert_eq!(pos, vec!["777"]); // not first position → positional

        parse(&["--no-cache"]).unwrap();
        assert_eq!(engine::disk_cache_dir(), None);

        engine::set_disk_cache(prev);
    }

    #[test]
    fn ckpt_flag_toggles_the_checkpoint_plane() {
        // Mutates the process-global checkpoint store: save and restore,
        // like cache_flag_path_handling does for the disk cache.
        let prev_on = tk_sim::checkpoints_enabled();
        let prev_dir = tk_sim::checkpoint_dir();

        let (_, pos) = parse(&["--ckpt=/tmp/tk-ckpt-flag-test"]).unwrap();
        assert!(pos.is_empty());
        assert!(tk_sim::checkpoints_enabled());
        assert_eq!(
            tk_sim::checkpoint_dir(),
            Some(std::path::PathBuf::from("/tmp/tk-ckpt-flag-test"))
        );

        // Bare `--ckpt` falls back to the default directory rather than
        // consuming the next argument as a value.
        let (_, pos) = parse(&["--ckpt", "777"]).unwrap();
        assert_eq!(
            tk_sim::checkpoint_dir(),
            Some(std::path::PathBuf::from(FigureOpts::DEFAULT_CKPT_DIR))
        );
        assert_eq!(pos, vec!["777"]);

        parse(&["--no-ckpt"]).unwrap();
        assert!(!tk_sim::checkpoints_enabled());
        assert_eq!(tk_sim::checkpoint_dir(), None);

        tk_sim::set_checkpoints_enabled(prev_on);
        tk_sim::set_checkpoint_dir(prev_dir);
    }

    #[test]
    fn quick_and_instructions_last_one_wins() {
        let (o, _) = parse(&["--instructions", "42", "--quick"]).unwrap();
        assert_eq!(o.instructions, FigureOpts::QUICK_INSTRUCTIONS);
        assert!(o.instructions_explicit);
        let (o, _) = parse(&["--quick", "--instructions=42"]).unwrap();
        assert_eq!(o.instructions, 42);
        assert!(o.instructions_explicit);
    }

    #[test]
    fn check_flag_arms_the_lockstep_oracle() {
        assert!(!FigureOpts::new().check);
        let (o, _) = parse(&["--check"]).unwrap();
        assert!(o.check);
        assert!(tk_sim::lockstep_check_enabled());
        tk_sim::set_lockstep_check(false);
    }

    #[test]
    fn obs_flags_share_the_sim_parser() {
        // Mutates the process-global obs config: save and restore, like
        // cache_flag_path_handling does for the disk cache.
        let prev = tk_sim::obs_config();

        let (o, pos) = parse(&["--trace=miss,fill", "--trace-sample=4", "--profile"]).unwrap();
        assert!(pos.is_empty());
        assert!(o.trace);
        assert!(o.profile);
        let cfg = tk_sim::obs_config();
        assert_eq!(
            cfg.trace,
            Some(tk_sim::TraceCategories::parse("miss,fill").unwrap())
        );
        assert_eq!(cfg.sample, 4);
        assert!(cfg.profile);

        // Space-separated value form and --obs-out.
        let (o, pos) = parse(&["--obs-out", "/tmp/tk-obs-runner-test", "--trace"]).unwrap();
        assert!(pos.is_empty());
        assert!(o.trace && !o.profile);
        let cfg = tk_sim::obs_config();
        assert_eq!(cfg.trace, Some(tk_sim::TraceCategories::all()));
        assert_eq!(
            cfg.out_dir,
            Some(std::path::PathBuf::from("/tmp/tk-obs-runner-test"))
        );

        // Malformed values surface as parse errors, not panics.
        assert!(parse(&["--trace=bogus"]).is_err());
        assert!(parse(&["--trace-sample=0"]).is_err());
        assert!(parse(&["--obs-out"]).is_err());

        tk_sim::set_obs_config(prev);
    }

    #[test]
    fn dram_flag_sets_the_process_default_backend() {
        // Mutates the process-global default: save and restore, like
        // cache_flag_path_handling does for the disk cache.
        let prev = tk_sim::default_mem_backend();

        let (o, pos) = parse(&["--dram=banked"]).unwrap();
        assert!(pos.is_empty());
        assert_eq!(
            o.dram,
            tk_sim::MemBackendConfig::Banked(tk_sim::BankedDramConfig::DDR2)
        );
        assert_eq!(tk_sim::default_mem_backend(), o.dram);
        // Configs built after the flag carry the backend.
        assert_eq!(SystemConfig::base().memory, o.dram);

        // Space-separated value form, explicit presets, and fixed.
        let (o, _) = parse(&["--dram", "banked:ddr4"]).unwrap();
        assert_eq!(
            o.dram,
            tk_sim::MemBackendConfig::Banked(tk_sim::BankedDramConfig::DDR4)
        );
        let (o, _) = parse(&["--dram=fixed"]).unwrap();
        assert_eq!(o.dram, tk_sim::MemBackendConfig::Fixed);

        // Malformed values surface as parse errors naming the value.
        assert!(parse(&["--dram=warp-core"])
            .unwrap_err()
            .contains("warp-core"));
        assert!(parse(&["--dram"]).is_err());

        tk_sim::set_default_mem_backend(prev);
    }

    #[test]
    fn sample_flag_sets_the_process_default() {
        // Mutates the process-global default: save and restore, like
        // dram_flag_sets_the_process_default_backend.
        let prev = tk_sim::default_sample();

        let (o, pos) = parse(&["--sample"]).unwrap();
        assert!(pos.is_empty());
        assert_eq!(o.sample, Some(tk_sim::SampleConfig::DEFAULT));
        assert_eq!(tk_sim::default_sample(), o.sample);
        // Configs built after the flag carry the sampling mode (and
        // their cache keys gain the fragment).
        assert_eq!(SystemConfig::base().sample, o.sample);
        assert!(SystemConfig::base().cache_key().contains("sample={"));

        // Explicit parameters, both argument forms.
        let (o, _) = parse(&["--sample=50000,8"]).unwrap();
        assert_eq!(
            o.sample,
            Some(tk_sim::SampleConfig {
                interval: 50_000,
                k: 8
            })
        );
        // Bare `--sample` does not consume the next argument.
        let (o, pos) = parse(&["--sample", "777"]).unwrap();
        assert_eq!(o.sample, Some(tk_sim::SampleConfig::DEFAULT));
        assert_eq!(pos, vec!["777"]);

        // Malformed values surface as parse errors.
        assert!(parse(&["--sample=0,4"]).is_err());
        assert!(parse(&["--sample=10,0"]).is_err());
        assert!(parse(&["--sample=nope"]).is_err());

        tk_sim::set_default_sample(prev);
        assert_eq!(SystemConfig::base().sample, prev);
    }

    #[test]
    fn cores_flag_sets_the_process_default() {
        // Mutates the process-global default: save and restore, like
        // dram_flag_sets_the_process_default_backend.
        let prev = tk_sim::default_cores();

        let (o, pos) = parse(&["--cores=4"]).unwrap();
        assert!(pos.is_empty());
        assert_eq!(o.cores, 4);
        assert_eq!(tk_sim::default_cores(), 4);
        // Configs built after the flag carry the core count (and their
        // cache keys gain the fragment).
        let cfg = SystemConfig::base();
        assert_eq!(cfg.cores, 4);
        assert!(cfg.cache_key().contains("cores=4"));

        // Space-separated form; cores=1 restores the single-core key.
        let (o, _) = parse(&["--cores", "2"]).unwrap();
        assert_eq!(o.cores, 2);
        let (o, _) = parse(&["--cores=1"]).unwrap();
        assert_eq!(o.cores, 1);
        assert!(!SystemConfig::base().cache_key().contains("cores="));

        // Out-of-range and malformed values surface as parse errors.
        assert!(parse(&["--cores=0"]).unwrap_err().contains("between"));
        assert!(parse(&["--cores=9"]).unwrap_err().contains("between"));
        assert!(parse(&["--cores=two"]).is_err());
        assert!(parse(&["--cores"]).is_err());

        tk_sim::set_default_cores(prev);
    }

    #[test]
    fn run_bench_produces_result() {
        let r = run_bench(
            SpecBenchmark::Gzip,
            SystemConfig::base(),
            FigureOpts::quick(),
        );
        assert_eq!(r.core.instructions, FigureOpts::quick().instructions);
        assert!(r.ipc() > 0.0);
    }
}
