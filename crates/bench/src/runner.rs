//! Experiment plumbing shared by all figure binaries.

use timekeeping::MetricsCollector;
use tk_sim::{run_workload, RunResult, SystemConfig};
use tk_workloads::SpecBenchmark;

/// Options common to every figure run.
#[derive(Debug, Clone, Copy)]
pub struct FigureOpts {
    /// Instructions simulated per benchmark per configuration.
    pub instructions: u64,
    /// Workload seed (figures are bit-reproducible per seed).
    pub seed: u64,
}

impl FigureOpts {
    /// The default figure budget: 8 M instructions per run — enough for
    /// every workload's footprint to be traversed several times.
    pub const DEFAULT_INSTRUCTIONS: u64 = 8_000_000;

    /// Creates options with the default budget.
    pub fn new() -> Self {
        FigureOpts {
            instructions: Self::DEFAULT_INSTRUCTIONS,
            seed: 1,
        }
    }

    /// Parses `[instructions]` from the process arguments, e.g.
    /// `fig01 2000000`, falling back to the default.
    pub fn from_args() -> Self {
        let mut opts = Self::new();
        if let Some(n) = std::env::args().nth(1).and_then(|a| a.parse::<u64>().ok()) {
            opts.instructions = n;
        }
        opts
    }

    /// A reduced budget for smoke tests.
    pub fn quick() -> Self {
        FigureOpts {
            instructions: 300_000,
            seed: 1,
        }
    }
}

impl Default for FigureOpts {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs one benchmark under one configuration.
pub fn run_bench(bench: SpecBenchmark, cfg: SystemConfig, opts: FigureOpts) -> RunResult {
    let mut w = bench.build(opts.seed);
    run_workload(&mut w, cfg, opts.instructions)
}

/// Runs every benchmark under `cfg`, returning per-benchmark results in
/// suite order.
pub fn run_suite(cfg: SystemConfig, opts: FigureOpts) -> Vec<(SpecBenchmark, RunResult)> {
    SpecBenchmark::ALL
        .iter()
        .map(|&b| (b, run_bench(b, cfg, opts)))
        .collect()
}

/// Runs the base machine on every benchmark and merges the timekeeping
/// metrics into one suite-wide collector (the "all SPEC2000" aggregate of
/// Figures 4, 5, 7–10 and 14).
pub fn suite_metrics(opts: FigureOpts) -> (Vec<(SpecBenchmark, RunResult)>, MetricsCollector) {
    let results = run_suite(SystemConfig::base(), opts);
    let mut merged = MetricsCollector::new();
    for (_, r) in &results {
        merged.merge(&r.metrics);
    }
    (results, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk_sim::SystemConfig;

    #[test]
    fn opts_default_and_quick() {
        assert_eq!(FigureOpts::new().instructions, 8_000_000);
        assert!(FigureOpts::quick().instructions < 1_000_000);
    }

    #[test]
    fn run_bench_produces_result() {
        let r = run_bench(
            SpecBenchmark::Gzip,
            SystemConfig::base(),
            FigureOpts::quick(),
        );
        assert_eq!(r.core.instructions, FigureOpts::quick().instructions);
        assert!(r.ipc() > 0.0);
    }
}
