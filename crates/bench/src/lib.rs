//! # tk-bench — figure and table regeneration harness
//!
//! One report generator per table/figure of the paper's evaluation
//! ([`figures`]), plus the shared experiment plumbing ([`runner`]) and
//! plain-text rendering ([`fmt`]). Every `src/bin/figNN` binary prints the
//! corresponding report; pass an instruction budget as the first argument
//! (default 8,000,000 per run):
//!
//! ```text
//! cargo run --release -p tk-bench --bin fig19            # paper budget
//! cargo run --release -p tk-bench --bin fig19 -- 2000000 # quick look
//! ```
//!
//! All runs are deterministic: the same budget and seed reproduce a report
//! bit-for-bit.

#![warn(missing_docs)]

pub mod engine;
pub mod figures;
pub mod fmt;
pub mod golden;
pub mod manifest;
pub mod runner;

pub use engine::{memo_stats, run_jobs, set_disk_cache, Job};
pub use runner::{run_bench, run_suite, suite_metrics, FigureOpts};

/// Expands to the `main` of a figure/table binary.
///
/// Every `src/bin/figNN` stub is this one macro call, so the CLI contract
/// (one optional instruction-budget argument plus the shared
/// [`FigureOpts`] flags) cannot drift between figures:
///
/// ```ignore
/// tk_bench::figure_main!(fig19);
/// ```
///
/// Argument-free reports (Table 1) use the `no_args` form, which rejects
/// any command-line argument with exit code 2:
///
/// ```ignore
/// tk_bench::figure_main!(table1, no_args);
/// ```
#[macro_export]
macro_rules! figure_main {
    ($fig:ident) => {
        fn main() {
            let opts = $crate::FigureOpts::from_args();
            // When --obs-out is configured, describe the run in a
            // manifest beside the trace/profile files.
            let manifest = $crate::manifest::arm_for_figure();
            let before = $crate::engine::memo_stats();
            let started = std::time::Instant::now();
            println!("{}", $crate::figures::$fig(opts));
            if manifest {
                $crate::manifest::finish_for_figure(
                    stringify!($fig),
                    &opts,
                    started.elapsed(),
                    before,
                );
            }
        }
    };
    ($fig:ident, no_args) => {
        fn main() {
            if let Some(arg) = std::env::args().nth(1) {
                eprintln!(
                    concat!(
                        "error: ",
                        stringify!($fig),
                        " takes no arguments (got `{}`)"
                    ),
                    arg
                );
                std::process::exit(2);
            }
            println!("{}", $crate::figures::$fig());
        }
    };
}
