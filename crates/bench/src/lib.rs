//! # tk-bench — figure and table regeneration harness
//!
//! One report generator per table/figure of the paper's evaluation
//! ([`figures`]), plus the shared experiment plumbing ([`runner`]) and
//! plain-text rendering ([`fmt`]). Every `src/bin/figNN` binary prints the
//! corresponding report; pass an instruction budget as the first argument
//! (default 8,000,000 per run):
//!
//! ```text
//! cargo run --release -p tk-bench --bin fig19            # paper budget
//! cargo run --release -p tk-bench --bin fig19 -- 2000000 # quick look
//! ```
//!
//! All runs are deterministic: the same budget and seed reproduce a report
//! bit-for-bit.

#![warn(missing_docs)]

pub mod engine;
pub mod figures;
pub mod fmt;
pub mod golden;
pub mod manifest;
pub mod runner;
pub mod workload;

pub use engine::{memo_stats, run_jobs, set_disk_cache, Job};
pub use runner::{
    best_workloads, run_bench, run_suite, suite_metrics, suite_workloads, FigureOpts,
};
pub use workload::{register_trace, registered_traces, TraceHandle, WorkloadId};

/// Asserts that `actual` is within `pct` percent of `expected`
/// (relative, symmetric: `|actual - expected| <= pct/100 * |expected|`).
///
/// The calibration tests pin paper-replication numbers and sampling
/// error bounds with this one helper so every tolerance check fails
/// with the same self-describing message.
///
/// # Panics
///
/// Panics when the relative difference exceeds `pct`, or when exactly
/// one of the two values is zero (the relative error is undefined, and
/// a hard zero against a nonzero pin is always a regression).
#[track_caller]
pub fn assert_within_pct(actual: f64, expected: f64, pct: f64, what: &str) {
    if expected == 0.0 && actual == 0.0 {
        return;
    }
    assert!(
        expected != 0.0,
        "{what}: expected value pinned at 0 but got {actual}"
    );
    let rel = ((actual - expected) / expected).abs() * 100.0;
    assert!(
        rel <= pct,
        "{what}: {actual} is {rel:.2}% from {expected} (allowed {pct}%)"
    );
}

/// Expands to the `main` of a figure/table binary.
///
/// Every `src/bin/figNN` stub is this one macro call, so the CLI contract
/// (one optional instruction-budget argument plus the shared
/// [`FigureOpts`] flags) cannot drift between figures:
///
/// ```ignore
/// tk_bench::figure_main!(fig19);
/// ```
///
/// Argument-free reports (Table 1) use the `no_args` form, which rejects
/// any command-line argument with exit code 2:
///
/// ```ignore
/// tk_bench::figure_main!(table1, no_args);
/// ```
#[macro_export]
macro_rules! figure_main {
    ($fig:ident) => {
        fn main() {
            let opts = $crate::FigureOpts::from_args();
            // When --obs-out is configured, describe the run in a
            // manifest beside the trace/profile files.
            let manifest = $crate::manifest::arm_for_figure();
            let before = $crate::engine::memo_stats();
            let ckpt_before = $crate::manifest::ckpt_snapshot();
            let started = std::time::Instant::now();
            println!("{}", $crate::figures::$fig(opts));
            if manifest {
                $crate::manifest::finish_for_figure(
                    stringify!($fig),
                    &opts,
                    started.elapsed(),
                    before,
                    ckpt_before,
                );
            }
        }
    };
    ($fig:ident, no_args) => {
        fn main() {
            if let Some(arg) = std::env::args().nth(1) {
                eprintln!(
                    concat!(
                        "error: ",
                        stringify!($fig),
                        " takes no arguments (got `{}`)"
                    ),
                    arg
                );
                std::process::exit(2);
            }
            println!("{}", $crate::figures::$fig());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::assert_within_pct;

    #[test]
    fn within_pct_accepts_close_values() {
        assert_within_pct(1.015, 1.0, 2.0, "well inside, high");
        assert_within_pct(0.985, 1.0, 2.0, "well inside, low");
        assert_within_pct(0.0, 0.0, 1.0, "both zero");
        assert_within_pct(-1.01, -1.0, 2.0, "negative pins work");
    }

    #[test]
    #[should_panic(expected = "drifted metric")]
    fn within_pct_rejects_drift() {
        assert_within_pct(1.05, 1.0, 2.0, "drifted metric");
    }

    #[test]
    #[should_panic(expected = "expected value pinned at 0")]
    fn within_pct_rejects_zero_pin_mismatch() {
        assert_within_pct(0.5, 0.0, 2.0, "zero pin");
    }
}
