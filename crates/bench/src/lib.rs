//! # tk-bench — figure and table regeneration harness
//!
//! One report generator per table/figure of the paper's evaluation
//! ([`figures`]), plus the shared experiment plumbing ([`runner`]) and
//! plain-text rendering ([`fmt`]). Every `src/bin/figNN` binary prints the
//! corresponding report; pass an instruction budget as the first argument
//! (default 8,000,000 per run):
//!
//! ```text
//! cargo run --release -p tk-bench --bin fig19            # paper budget
//! cargo run --release -p tk-bench --bin fig19 -- 2000000 # quick look
//! ```
//!
//! All runs are deterministic: the same budget and seed reproduce a report
//! bit-for-bit.

#![warn(missing_docs)]

pub mod engine;
pub mod figures;
pub mod fmt;
pub mod golden;
pub mod runner;

pub use engine::{memo_stats, run_jobs, set_disk_cache, Job};
pub use runner::{run_bench, run_suite, suite_metrics, FigureOpts};
