//! Golden-figure regression digests.
//!
//! Every figure binary's output is a pure function of `(figure, seed,
//! instruction budget)`. The harness runs each figure at a reduced budget
//! with the engine's job log turned on and builds a digest capturing
//!
//! * the rendered figure text, verbatim, and
//! * every distinct simulation behind it — its engine cache key, an
//!   FNV-64 fingerprint of the full [`RunResult`](tk_sim::RunResult)
//!   JSON (so *any* stat-level change is caught, including deep inside
//!   the metric histograms), and the headline core / hierarchy / miss
//!   counters in the clear for a readable diff.
//!
//! Digests are compared bit-exactly against `tests/golden/<name>.json`
//! by `tests/golden_figures.rs`; regenerate them with
//! `TK_BLESS=1 cargo test --test golden_figures`.

use std::path::PathBuf;
use std::sync::Mutex;

use timekeeping::snapshot::{Json, Snapshot};

use crate::engine;
use crate::figures;
use crate::runner::FigureOpts;

/// Budget for golden runs: small enough for the whole manifest to run
/// inside a debug-mode `cargo test`, large enough to exercise the miss,
/// victim, decay and prefetch paths of every figure.
pub const GOLDEN_INSTRUCTIONS: u64 = 60_000;

/// The options every golden digest is generated under.
pub fn golden_opts() -> FigureOpts {
    let mut o = FigureOpts::new();
    o.instructions = GOLDEN_INSTRUCTIONS;
    o.instructions_explicit = true;
    o
}

/// A figure generator: renders one report at the given options.
pub type FigureFn = fn(FigureOpts) -> String;

/// Every pinned figure/table: name → generator. The names double as the
/// golden filenames (`tests/golden/<name>.json`).
pub fn figure_manifest() -> Vec<(&'static str, FigureFn)> {
    vec![
        ("table1", |_| figures::table1()),
        ("fig01", figures::fig01),
        ("fig02", figures::fig02),
        ("fig04", figures::fig04),
        ("fig05", figures::fig05),
        ("fig07", figures::fig07),
        ("fig08", figures::fig08),
        ("fig09", figures::fig09),
        ("fig10", figures::fig10),
        ("fig11", figures::fig11),
        ("fig13", figures::fig13),
        ("fig14", figures::fig14),
        ("fig15", figures::fig15),
        ("fig16", figures::fig16),
        ("fig19", figures::fig19),
        ("fig20", figures::fig20),
        ("fig21", figures::fig21),
        ("fig22", figures::fig22),
        ("fig22_mp", figures::fig22_mp),
        ("mesi_compare", figures::mesi_compare),
        ("dram_compare", figures::dram_compare),
    ]
}

/// The repository-root `tests/golden` directory.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Builds the digest document for one figure by running it at `opts`
/// with the engine's job log on.
///
/// The engine's job log is process-global, so digest construction is
/// serialized internally; concurrent [`digest`] calls are safe but run
/// one at a time.
pub fn digest(name: &str, generate: FigureFn, opts: FigureOpts) -> Json {
    static LOG_GUARD: Mutex<()> = Mutex::new(());
    let _guard = LOG_GUARD.lock().expect("digest lock poisoned");

    engine::record_jobs(true);
    let _ = engine::take_recorded_jobs();
    let text = generate(opts);
    let jobs = engine::take_recorded_jobs();
    engine::record_jobs(false);

    let entries: Vec<Json> = jobs
        .iter()
        .map(|job| {
            // Memoized: this re-lookup never re-simulates.
            let r = engine::run_jobs(&[*job], 1).pop().expect("memoized job");
            Json::obj([
                ("key", Json::Str(job.cache_key())),
                (
                    "result_fnv",
                    Json::Str(format!("{:016x}", engine::fnv1a64(&r.to_json().render()))),
                ),
                ("core", r.core.to_json()),
                ("hierarchy", r.hierarchy.to_json()),
                ("breakdown", r.breakdown.to_json()),
            ])
        })
        .collect();
    Json::obj([
        ("figure", Json::Str(name.to_owned())),
        ("instructions", Json::U64(opts.instructions)),
        ("seed", Json::U64(opts.seed)),
        ("jobs", Json::Arr(entries)),
        ("text", Json::Str(text)),
    ])
}

/// Locates the first line where two renders differ, for a failure
/// message that names the divergence instead of dumping both documents.
pub fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!(
                "first difference at line {}:\n  expected: {e}\n  actual:   {a}",
                i + 1
            );
        }
    }
    let (el, al) = (expected.lines().count(), actual.lines().count());
    if el != al {
        return format!("line counts differ: expected {el}, actual {al}");
    }
    "documents are identical".to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_names_are_unique_filenames() {
        let names: Vec<&str> = figure_manifest().iter().map(|(n, _)| *n).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(n), "duplicate golden name {n}");
            assert!(
                n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "odd name {n}"
            );
        }
    }

    #[test]
    fn first_diff_pinpoints_line() {
        let d = first_diff("a\nb\nc", "a\nX\nc");
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains('X'), "{d}");
        assert!(first_diff("a\nb", "a\nb\nc").contains("line counts"));
        assert!(first_diff("same", "same").contains("identical"));
    }

    #[test]
    fn digest_captures_jobs_and_text() {
        let mut opts = FigureOpts::quick();
        opts.instructions = 20_000;
        let doc = digest("fig04", figures::fig04, opts);
        let rendered = doc.render();
        assert!(rendered.contains("\"figure\""));
        let jobs = doc.get("jobs").unwrap();
        match jobs {
            Json::Arr(entries) => assert!(!entries.is_empty(), "fig04 must record jobs"),
            other => panic!("jobs must be an array, got {other:?}"),
        }
        // Deterministic: the same digest twice renders identically.
        let again = digest("fig04", figures::fig04, opts).render();
        assert_eq!(rendered, again);
    }
}
