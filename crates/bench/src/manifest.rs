//! Run manifests: the audit record written beside every report.
//!
//! A manifest makes a committed figure auditable after the fact — it
//! pins the exact simulations behind it (config fingerprints via
//! [`Job::cache_key`]), the seed and instruction budget, the crate
//! versions that produced it, the wall time, and the cache-hit
//! provenance from the [`engine`](crate::engine) (how many results were
//! memo hits, disk hits, or freshly simulated).
//!
//! The figure binaries write `<obs-out>/<name>.manifest.json` when
//! `--obs-out DIR` is given; the `report` binary writes
//! `<dir>/<name>.manifest.json` beside every report it regenerates.

use std::path::{Path, PathBuf};
use std::time::Duration;

use timekeeping::snapshot::Json;

use crate::engine::Job;
use crate::FigureOpts;

/// Checkpoint-plane provenance for one report: how many sampling
/// checkpoints the run served from each tier, and the functional
/// fingerprints of every checkpoint it touched (see `tk_sim::ckpt`).
#[derive(Debug, Clone, Default)]
pub struct CkptDelta {
    /// Whether the checkpoint store was enabled for the run.
    pub enabled: bool,
    /// Checkpoints served from the in-process tier.
    pub mem_hits: u64,
    /// Checkpoints loaded from the on-disk tier.
    pub disk_hits: u64,
    /// Checkpoints built from scratch.
    pub builds: u64,
    /// Functional fingerprints, deduplicated, first-use order.
    pub fingerprints: Vec<String>,
}

impl CkptDelta {
    /// Computes the counter delta since `before` and drains the
    /// fingerprints recorded by `tk_sim::record_checkpoints(true)`.
    pub fn since(before: tk_sim::CkptStats) -> Self {
        let now = tk_sim::checkpoint_stats();
        CkptDelta {
            enabled: tk_sim::checkpoints_enabled(),
            // Saturating: a mid-run `reset_checkpoint_store` (benchmark
            // harnesses do this) zeroes the monotonic counters.
            mem_hits: now.mem_hits.saturating_sub(before.mem_hits),
            disk_hits: now.disk_hits.saturating_sub(before.disk_hits),
            builds: now.builds.saturating_sub(before.builds),
            fingerprints: tk_sim::take_recorded_checkpoints(),
        }
    }
}

/// Snapshot of the checkpoint-store counters, taken before a figure
/// runs so [`CkptDelta::since`] can attribute activity to it.
pub fn ckpt_snapshot() -> tk_sim::CkptStats {
    tk_sim::checkpoint_stats()
}

/// Builds the manifest JSON for one generated report.
///
/// `jobs` is the engine's job log for the run (see
/// [`engine::take_recorded_jobs`](crate::engine::take_recorded_jobs));
/// `provenance` is the engine's `(memo_hits, disk_hits, sims_run)`
/// delta for the run; `ckpt` is the checkpoint-plane delta.
pub fn manifest_json(
    name: &str,
    opts: &FigureOpts,
    wall: Duration,
    jobs: &[Job],
    provenance: (u64, u64, u64),
    ckpt: &CkptDelta,
) -> Json {
    let mut fingerprints: Vec<String> = jobs.iter().map(Job::cache_key).collect();
    fingerprints.sort();
    fingerprints.dedup();
    let (memo_hits, disk_hits, sims_run) = provenance;
    Json::obj([
        ("name", Json::Str(name.to_owned())),
        ("instructions", Json::U64(opts.instructions)),
        ("seed", Json::U64(opts.seed)),
        ("jobs", Json::U64(opts.jobs as u64)),
        ("check", Json::Bool(opts.check)),
        ("trace", Json::Bool(opts.trace)),
        ("profile", Json::Bool(opts.profile)),
        ("trace_once", Json::Bool(opts.trace_once)),
        (
            "trace_files",
            Json::Arr(
                crate::workload::registered_traces()
                    .into_iter()
                    .map(|h| {
                        let t = crate::workload::trace_info(h);
                        Json::obj([
                            ("spec", Json::Str(t.spec)),
                            ("name", Json::Str(t.name)),
                            ("digest", Json::Str(format!("{:016x}", t.digest))),
                            ("format", Json::Str(t.format.to_owned())),
                            ("records", Json::U64(t.records)),
                            ("gzip", Json::Bool(t.compressed)),
                            ("streaming", Json::Bool(t.streaming)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("dram", Json::Str(opts.dram.describe())),
        (
            "sample",
            Json::Str(match opts.sample {
                None => "off".to_owned(),
                Some(s) => format!("interval={},k={}", s.interval, s.k),
            }),
        ),
        ("wall_ms", Json::U64(wall.as_millis() as u64)),
        (
            "crate_versions",
            Json::obj([
                ("timekeeping", Json::Str(timekeeping::VERSION.to_owned())),
                ("tk-sim", Json::Str(tk_sim::VERSION.to_owned())),
                ("tk-workloads", Json::Str(tk_workloads::VERSION.to_owned())),
                ("tk-bench", Json::Str(env!("CARGO_PKG_VERSION").to_owned())),
            ]),
        ),
        (
            "provenance",
            Json::obj([
                ("memo_hits", Json::U64(memo_hits)),
                ("disk_hits", Json::U64(disk_hits)),
                ("simulations_run", Json::U64(sims_run)),
            ]),
        ),
        (
            "checkpoints",
            Json::obj([
                ("enabled", Json::Bool(ckpt.enabled)),
                ("mem_hits", Json::U64(ckpt.mem_hits)),
                ("disk_hits", Json::U64(ckpt.disk_hits)),
                ("builds", Json::U64(ckpt.builds)),
                (
                    "fingerprints",
                    Json::Arr(ckpt.fingerprints.iter().cloned().map(Json::Str).collect()),
                ),
            ]),
        ),
        ("simulations", Json::U64(jobs.len() as u64)),
        (
            "config_fingerprints",
            Json::Arr(fingerprints.into_iter().map(Json::Str).collect()),
        ),
    ])
}

/// Writes `<dir>/<name>.manifest.json` and returns its path.
///
/// # Errors
///
/// Returns the I/O error when the directory or file cannot be written.
pub fn write_manifest(
    dir: &Path,
    name: &str,
    opts: &FigureOpts,
    wall: Duration,
    jobs: &[Job],
    provenance: (u64, u64, u64),
    ckpt: &CkptDelta,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.manifest.json"));
    let json = manifest_json(name, opts, wall, jobs, provenance, ckpt);
    std::fs::write(&path, json.render())?;
    Ok(path)
}

/// The manifest hook used by [`figure_main!`](crate::figure_main): arms
/// the engine's job log and the checkpoint-fingerprint log when
/// `--obs-out` is configured, so the finished run can be described.
/// Returns whether manifests are enabled.
pub fn arm_for_figure() -> bool {
    if tk_sim::obs::out_dir().is_none() {
        return false;
    }
    crate::engine::record_jobs(true);
    tk_sim::record_checkpoints(true);
    true
}

/// Completes the [`arm_for_figure`] cycle: drains the job and
/// checkpoint logs and writes the manifest into the configured
/// `--obs-out` directory. `before` is the
/// [`memo_stats`](crate::engine::memo_stats) snapshot taken before the
/// run; `ckpt_before` the [`ckpt_snapshot`] one.
pub fn finish_for_figure(
    name: &str,
    opts: &FigureOpts,
    wall: Duration,
    before: (u64, u64, u64),
    ckpt_before: tk_sim::CkptStats,
) {
    let jobs = crate::engine::take_recorded_jobs();
    crate::engine::record_jobs(false);
    let ckpt = CkptDelta::since(ckpt_before);
    tk_sim::record_checkpoints(false);
    let Some(dir) = tk_sim::obs::out_dir() else {
        return;
    };
    let (m, d, s) = crate::engine::memo_stats();
    let delta = (m - before.0, d - before.1, s - before.2);
    match write_manifest(&dir, name, opts, wall, &jobs, delta, &ckpt) {
        Ok(path) => eprintln!("manifest written to {}", path.display()),
        Err(e) => eprintln!("warning: cannot write manifest for {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk_sim::SystemConfig;
    use tk_workloads::SpecBenchmark;

    #[test]
    fn manifest_pins_the_run() {
        let mut opts = FigureOpts::quick();
        // Pin the backend and sampling mode rather than inheriting the
        // process globals, which a parallel CLI test may be toggling.
        opts.dram = tk_sim::MemBackendConfig::Fixed;
        opts.sample = Some(tk_sim::SampleConfig {
            interval: 50_000,
            k: 7,
        });
        let jobs = vec![
            Job::new(SpecBenchmark::Gzip, SystemConfig::base(), 1, 10_000),
            Job::new(SpecBenchmark::Mcf, SystemConfig::base(), 1, 10_000),
            // A duplicate submission dedupes in the fingerprint list.
            Job::new(SpecBenchmark::Gzip, SystemConfig::base(), 1, 10_000),
        ];
        let ckpt = CkptDelta {
            enabled: true,
            mem_hits: 3,
            disk_hits: 1,
            builds: 2,
            fingerprints: vec!["v1 wl=gzip/0000000000000000 budget=10000".to_owned()],
        };
        let j = manifest_json(
            "fig99",
            &opts,
            Duration::from_millis(250),
            &jobs,
            (2, 0, 1),
            &ckpt,
        );
        assert_eq!(j.get("name").unwrap().as_str().unwrap(), "fig99");
        assert_eq!(
            j.u64_field("instructions").unwrap(),
            FigureOpts::QUICK_INSTRUCTIONS
        );
        assert_eq!(j.u64_field("wall_ms").unwrap(), 250);
        assert_eq!(j.u64_field("simulations").unwrap(), 3);
        assert_eq!(j.get("dram").unwrap().as_str().unwrap(), "fixed");
        assert_eq!(
            j.get("sample").unwrap().as_str().unwrap(),
            "interval=50000,k=7"
        );
        opts.sample = None;
        let off = manifest_json(
            "fig99",
            &opts,
            Duration::ZERO,
            &[],
            (0, 0, 0),
            &CkptDelta::default(),
        );
        assert_eq!(off.get("sample").unwrap().as_str().unwrap(), "off");
        let ck = j.get("checkpoints").unwrap();
        assert!(matches!(ck.get("enabled").unwrap(), Json::Bool(true)));
        assert_eq!(ck.u64_field("mem_hits").unwrap(), 3);
        assert_eq!(ck.u64_field("disk_hits").unwrap(), 1);
        assert_eq!(ck.u64_field("builds").unwrap(), 2);
        let fps = ck.get("fingerprints").unwrap().as_arr().unwrap();
        assert_eq!(fps.len(), 1);
        assert!(fps[0].as_str().unwrap().starts_with("v1 wl=gzip/"));
        let fps = j.get("config_fingerprints").unwrap().as_arr().unwrap();
        assert_eq!(fps.len(), 2, "duplicate job tuples dedupe");
        assert!(fps[0].as_str().unwrap().contains("bench="));
        let prov = j.get("provenance").unwrap();
        assert_eq!(prov.u64_field("memo_hits").unwrap(), 2);
        assert_eq!(prov.u64_field("simulations_run").unwrap(), 1);
        let vers = j.get("crate_versions").unwrap();
        assert_eq!(
            vers.get("tk-sim").unwrap().as_str().unwrap(),
            tk_sim::VERSION
        );
    }

    #[test]
    fn write_manifest_round_trips() {
        let dir = std::env::temp_dir().join(format!("tk_manifest_{}", std::process::id()));
        let opts = FigureOpts::quick();
        let path = write_manifest(
            &dir,
            "figX",
            &opts,
            Duration::ZERO,
            &[],
            (0, 0, 0),
            &CkptDelta::default(),
        )
        .unwrap();
        assert!(path.ends_with("figX.manifest.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("name").unwrap().as_str().unwrap(), "figX");
        assert_eq!(back.u64_field("simulations").unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
